"""Finite-rate chemistry: the Park two-temperature air mechanism.

The paper's nonequilibrium flows ("finite-rate processes for chemical- and
energy-exchange phenomena") are driven by this module.  It implements

* a generic :class:`Reaction` / :class:`ReactionMechanism` pair with
  vectorised production rates over batches of cells,
* :func:`park_air_mechanism` — the standard dissociating/ionizing air
  mechanism (Park 1990 rate constants) restricted automatically to whatever
  species subset the caller's :class:`SpeciesDB` carries.

Two-temperature coupling follows Park: dissociation forward rates are
evaluated at the geometric mean ``Ta = sqrt(T * Tv)``; electron-impact
ionization at ``Tv`` (the free-electron temperature is tied to the
vibrational-electronic pool); everything else at ``T``.  Backward rates are
obtained from the forward rate evaluated at ``T`` divided by the
concentration equilibrium constant, which is computed from the *same*
statmech Gibbs functions the equilibrium solver uses — so finite-rate
chemistry relaxes exactly onto the equilibrium solver's composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.constants import R_UNIVERSAL as R
from repro.constants import arrhenius_si
from repro.errors import InputError
from repro.numerics.safety import safe_exp
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import P_STANDARD, ThermoSet

__all__ = ["Reaction", "ReactionMechanism", "park_air_mechanism"]

#: Forward-rate controlling temperature options.
_RATE_TEMPS = ("T", "TTv", "Tv")


@dataclass(frozen=True)
class Reaction:
    """One elementary (optionally third-body) reversible reaction.

    Rate constants are stored in SI molar units (m^3/mol/s based); use
    :meth:`from_cgs` for literature (cm^3/mol/s) values.
    """

    equation: str
    reactants: Mapping[str, int]
    products: Mapping[str, int]
    #: Arrhenius pre-exponential, SI molar units.
    A: float
    #: Temperature exponent.
    n: float
    #: Activation temperature theta = Ea/R [K].
    theta: float
    #: True for M-catalysed reactions (adds one order to both directions).
    third_body: bool = False
    #: Relative third-body efficiencies by species name (default 1.0).
    efficiencies: Mapping[str, float] = field(default_factory=dict)
    #: Which temperature controls the forward rate: "T", "TTv" or "Tv".
    rate_T: str = "T"

    def __post_init__(self):
        if self.rate_T not in _RATE_TEMPS:
            raise InputError(f"rate_T must be one of {_RATE_TEMPS}")

    @classmethod
    def from_cgs(cls, equation: str, reactants, products, A_cgs, n, theta,
                 *, third_body=False, efficiencies=None, rate_T="T"):
        """Build from CGS-molar Arrhenius constants (cm^3/mol/s units)."""
        order = sum(reactants.values()) + (1 if third_body else 0)
        return cls(equation=equation, reactants=dict(reactants),
                   products=dict(products),
                   A=arrhenius_si(A_cgs, order), n=n, theta=theta,
                   third_body=third_body,
                   efficiencies=dict(efficiencies or {}), rate_T=rate_T)

    @property
    def delta_nu(self) -> int:
        """Net change in moles (products minus reactants, no third body)."""
        return sum(self.products.values()) - sum(self.reactants.values())


class ReactionMechanism:
    """Vectorised production-rate evaluator for a set of reactions.

    Parameters
    ----------
    db:
        Species ordering used for all composition arrays.
    reactions:
        Reactions whose species must all be members of ``db``.
    """

    def __init__(self, db: SpeciesDB | str, reactions: Sequence[Reaction]):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.thermo = ThermoSet(self.db)
        self.reactions = tuple(reactions)
        nr, ns = len(self.reactions), self.db.n
        if nr == 0:
            raise InputError("mechanism needs at least one reaction")
        self.nu_r = np.zeros((nr, ns), dtype=np.float64)
        self.nu_p = np.zeros((nr, ns), dtype=np.float64)
        self.tb_eff = np.ones((nr, ns), dtype=np.float64)
        self.is_tb = np.zeros(nr, dtype=bool)
        self._A = np.empty(nr, dtype=np.float64)
        self._n = np.empty(nr, dtype=np.float64)
        self._theta = np.empty(nr, dtype=np.float64)
        self._rate_T = []
        for i, rx in enumerate(self.reactions):
            for name, nu in rx.reactants.items():
                self.nu_r[i, self.db.index[name]] = nu
            for name, nu in rx.products.items():
                self.nu_p[i, self.db.index[name]] = nu
            self.is_tb[i] = rx.third_body
            for name, eff in rx.efficiencies.items():
                if name in self.db:
                    self.tb_eff[i, self.db.index[name]] = eff
            self._A[i] = rx.A
            self._n[i] = rx.n
            self._theta[i] = rx.theta
            self._rate_T.append(rx.rate_T)
        self.dnu = self.nu_p - self.nu_r
        self._dnu_tot = self.dnu.sum(axis=1)
        # masks for the three controlling temperatures
        self._mask = {key: np.array([rt == key for rt in self._rate_T])
                      for key in _RATE_TEMPS}

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    # ------------------------------------------------------------------
    # rate constants
    # ------------------------------------------------------------------

    def _arrhenius(self, T):
        """kf at a given controlling temperature for all reactions.

        The exponent is clipped (:func:`repro.numerics.safety.safe_exp`):
        a custom mechanism with a negative activation temperature, or a
        transiently tiny controlling temperature, would otherwise
        overflow the exponential to ``inf`` and flood the production
        rates with NaN.
        """
        T = np.asarray(T, dtype=float)[..., None]
        return self._A * T**self._n * safe_exp(
            -self._theta / np.maximum(T, 1.0))

    def kf(self, T, Tv=None):
        """Forward rate constants, shape (..., n_reactions).

        ``Tv`` defaults to ``T`` (one-temperature chemistry).
        """
        T = np.asarray(T, dtype=float)
        Tv = T if Tv is None else np.asarray(Tv, dtype=float)
        # catlint: disable=CAT002 -- controlling temperatures are
        # positive by solver state sanitisation
        Ta = np.sqrt(T * Tv)
        out = np.empty(T.shape + (self.n_reactions,), dtype=np.float64)
        for key, Tc in (("T", T), ("TTv", Ta), ("Tv", Tv)):
            m = self._mask[key]
            if np.any(m):
                out[..., m] = self._arrhenius(Tc)[..., m]
        return out

    def Kc(self, T):
        """Concentration equilibrium constants [(mol/m^3)^dnu], (..., nr)."""
        T = np.asarray(T, dtype=float)
        g_rt = self.thermo.g0_over_RT(T)            # (..., ns)
        dG = np.einsum("rs,...s->...r", self.dnu, g_rt)
        ln_kp = -dG
        # catlint: disable=CAT001 -- T > 0 by solver state sanitisation
        ln_kc = ln_kp + self._dnu_tot * np.log(
            P_STANDARD / (R * T))[..., None]
        return safe_exp(ln_kc)

    def kb(self, T, Tv=None):
        """Backward rate constants (..., nr) via detailed balance at T."""
        return self._arrhenius(np.asarray(T, dtype=float)) / self.Kc(T)

    # ------------------------------------------------------------------
    # production rates
    # ------------------------------------------------------------------

    def rates_of_progress(self, rho, T, y, Tv=None):
        """Net molar rates of progress q_r [mol/(m^3 s)], (..., nr)."""
        rho = np.asarray(rho, dtype=float)
        y = np.asarray(y, dtype=float)
        c = np.maximum(rho[..., None] * y / self.db.molar_mass, 0.0)
        kf = self.kf(T, Tv)
        kb = self.kb(T, Tv)
        # products of concentrations: exp(sum nu log c) with c=0 handled
        logc = np.log(np.maximum(c, 1e-300))
        # catlint: disable=CAT004 -- exponent = sum(nu log c) with nu <= 3
        # per side and physical c < 1e6 mol/m^3: bounded far below
        # overflow, and the exact underflow to 0 for trace species is
        # load-bearing (the zero mask below relies on it)
        Rf = kf * np.exp(np.einsum("rs,...s->...r", self.nu_r, logc))
        # catlint: disable=CAT004 -- same bound for the product side
        Rb = kb * np.exp(np.einsum("rs,...s->...r", self.nu_p, logc))
        # zero concentration kills the corresponding direction exactly
        zero = c <= 0.0
        if np.any(zero):
            rf_dead = np.einsum("rs,...s->...r", self.nu_r,
                                zero.astype(float)) > 0
            rb_dead = np.einsum("rs,...s->...r", self.nu_p,
                                zero.astype(float)) > 0
            Rf = np.where(rf_dead, 0.0, Rf)
            Rb = np.where(rb_dead, 0.0, Rb)
        q = Rf - Rb
        if np.any(self.is_tb):
            cm = np.einsum("rs,...s->...r", self.tb_eff, c)
            q = np.where(self.is_tb, q * cm, q)
        return q

    def wdot(self, rho, T, y, Tv=None):
        """Species mass production rates [kg/(m^3 s)], shape (..., ns)."""
        q = self.rates_of_progress(rho, T, y, Tv)
        return np.einsum("...r,rs->...s", q, self.dnu) * self.db.molar_mass

    def jacobian_y(self, rho, T, y, Tv=None, *, eps=1e-7):
        """d wdot / d y numerical Jacobian, shape (..., ns, ns).

        Used by the point-implicit source integrator; finite differences are
        adequate because the species axis is short.
        """
        y = np.asarray(y, dtype=float)
        base = self.wdot(rho, T, y, Tv)
        out = np.empty(base.shape + (self.db.n,), dtype=np.float64)
        for j in range(self.db.n):
            yp = y.copy()
            # perturbation floor keeps the step well above roundoff even
            # for zero-concentration species (otherwise the difference
            # quotient is pure noise amplified by 1/dy)
            dy = np.maximum(np.abs(y[..., j]) * eps, 1e-9)
            yp[..., j] = y[..., j] + dy
            out[..., j] = (self.wdot(rho, T, yp, Tv) - base) / dy[..., None]
        return out


# ---------------------------------------------------------------------------
# The Park air mechanism
# ---------------------------------------------------------------------------

#: Atomic colliders get enhanced dissociation efficiencies.
_ATOMS = ("N", "O", "H", "C")


def _eff(db: SpeciesDB, atom_factor: float, special: dict | None = None):
    eff = {}
    for sp in db.species:
        if sp.name in _ATOMS or (sp.n_atoms == 1 and sp.charge > 0):
            eff[sp.name] = atom_factor
    eff.update(special or {})
    return eff


def park_air_mechanism(db: SpeciesDB | str) -> ReactionMechanism:
    """Park (1990) air mechanism restricted to the species in ``db``.

    Works for the air5/air7/air9/air11 sets: every candidate reaction whose
    participants are all present is included.  Rate constants are the
    widely used Park values (CGS molar units in the literature table below).
    """
    db = db if isinstance(db, SpeciesDB) else species_set(db)
    cands: list[Reaction] = []

    def rx(eq, reac, prod, A, n, theta, **kw):
        names = set(reac) | set(prod)
        if all(name in db for name in names):
            cands.append(Reaction.from_cgs(eq, reac, prod, A, n, theta,
                                           **kw))

    # --- dissociation (Park Ta = sqrt(T Tv) control) ----------------------
    rx("N2 + M <=> N + N + M", {"N2": 1}, {"N": 2},
       7.0e21, -1.6, 113200.0, third_body=True,
       efficiencies=_eff(db, 30.0 / 7.0, {"e-": 1714.0}), rate_T="TTv")
    rx("O2 + M <=> O + O + M", {"O2": 1}, {"O": 2},
       2.0e21, -1.5, 59500.0, third_body=True,
       efficiencies=_eff(db, 5.0), rate_T="TTv")
    rx("NO + M <=> N + O + M", {"NO": 1}, {"N": 1, "O": 1},
       5.0e15, 0.0, 75500.0, third_body=True,
       efficiencies=_eff(db, 22.0, {"NO": 22.0}), rate_T="TTv")

    # --- Zeldovich exchange -------------------------------------------------
    rx("N2 + O <=> NO + N", {"N2": 1, "O": 1}, {"NO": 1, "N": 1},
       6.4e17, -1.0, 38370.0)
    rx("NO + O <=> O2 + N", {"NO": 1, "O": 1}, {"O2": 1, "N": 1},
       8.4e12, 0.0, 19450.0)

    # --- associative ionization ---------------------------------------------
    rx("N + O <=> NO+ + e-", {"N": 1, "O": 1}, {"NO+": 1, "e-": 1},
       8.8e8, 1.0, 31900.0)
    rx("N + N <=> N2+ + e-", {"N": 2}, {"N2+": 1, "e-": 1},
       4.4e7, 1.5, 67500.0)
    rx("O + O <=> O2+ + e-", {"O": 2}, {"O2+": 1, "e-": 1},
       7.1e2, 2.7, 80600.0)

    # --- electron-impact ionization (controlled by Te ~ Tv) ----------------
    rx("N + e- <=> N+ + e- + e-", {"N": 1, "e-": 1}, {"N+": 1, "e-": 2},
       2.5e34, -3.82, 168600.0, rate_T="Tv")
    rx("O + e- <=> O+ + e- + e-", {"O": 1, "e-": 1}, {"O+": 1, "e-": 2},
       3.9e33, -3.78, 158500.0, rate_T="Tv")

    # --- charge exchange -----------------------------------------------------
    rx("NO+ + O <=> N+ + O2", {"NO+": 1, "O": 1}, {"N+": 1, "O2": 1},
       1.0e12, 0.5, 77200.0)
    rx("N2 + N+ <=> N2+ + N", {"N2": 1, "N+": 1}, {"N2+": 1, "N": 1},
       1.0e12, 0.5, 12200.0)
    rx("NO+ + N <=> N2+ + O", {"NO+": 1, "N": 1}, {"N2+": 1, "O": 1},
       7.2e13, 0.0, 35500.0)
    rx("O+ + N2 <=> N2+ + O", {"O+": 1, "N2": 1}, {"N2+": 1, "O": 1},
       9.1e11, 0.36, 22800.0)
    rx("NO+ + O2 <=> O2+ + NO", {"NO+": 1, "O2": 1}, {"O2+": 1, "NO": 1},
       2.4e13, 0.41, 32600.0)

    return ReactionMechanism(db, cands)
