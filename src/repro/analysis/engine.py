"""catlint core: rule registry, AST walking, pragma filtering.

A :class:`Rule` inspects one parsed module and yields
:class:`~repro.analysis.findings.Finding` objects.  Rules register
themselves with :func:`register`; the engine parses each file once,
annotates parent links, builds the pragma index and runs every
selected rule.

The engine is stdlib-only by design — it must run before the
scientific stack is importable.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import PragmaIndex

#: Registry of all known rules, keyed by code (e.g. ``"CAT001"``).
RULES: dict[str, "Rule"] = {}

#: Source subtrees where dtype discipline is enforced (CAT021 et al.).
HOT_PATH_PARTS = ("solvers", "numerics", "parallel", "thermo", "transport")


def register(rule_cls: type["Rule"]) -> type["Rule"]:
    """Class decorator: instantiate and add a rule to :data:`RULES`."""
    rule = rule_cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule_cls


class LintContext:
    """Everything a rule needs about one module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        norm = path.replace(os.sep, "/")
        parts = norm.split("/")
        base = os.path.basename(norm)
        self.is_test = "tests" in parts or base.startswith("test_")
        self.is_hot_path = (not self.is_test
                            and any(p in parts for p in HOT_PATH_PARTS))
        #: Names known positive in this module: physical constants
        #: imported from repro.constants (all positive by convention)
        #: and module-level aliases / positive literals.
        self.positive_names: set[str] = set()
        for node in tree.body:
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "repro.constants"):
                for alias in node.names:
                    self.positive_names.add(alias.asname or alias.name)
        for node in tree.body:
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                if is_guarded(node.value,
                              lambda n: n in self.positive_names):
                    self.positive_names.add(node.targets[0].id)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str,
                severity: str | None = None) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule.code, severity=severity or rule.severity,
                       path=self.path, line=line, col=col, message=message,
                       source_line=self.source_line(line))

    def enclosing_function(self, node: ast.AST):
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``, ``name``, ``severity``, ``description``
    and implement :meth:`check`.
    """

    code = "CAT000"
    name = "abstract"
    severity = Severity.WARNING
    description = ""

    def applies(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


# --- shared AST helpers used by the concrete rules -----------------------

def dotted_name(node: ast.AST) -> str:
    """``np.linalg.norm`` -> "np.linalg.norm"; "" if not a name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    return dotted_name(node.func)


def is_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def const_value(node: ast.AST):
    if is_number(node):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and is_number(node.operand)):
        return -node.operand.value
    return None


_GUARD_CALLS = {
    "np.maximum", "np.fmax", "np.clip", "np.abs", "np.absolute",
    "numpy.maximum", "numpy.fmax", "numpy.clip", "numpy.abs",
    "abs", "max", "np.exp", "np.expm1", "np.cosh", "np.hypot",
    "np.square", "math.exp", "math.cosh", "math.hypot",
    "np.linalg.norm",
    # repro's own clamping helpers (repro.numerics.safety and the
    # thermo temperature coercer, which clamps T >= 1e-3 K)
    "clamp_positive", "safe_log", "safe_sqrt", "safe_div", "_as_T",
}

#: Names that are positive by mathematical definition, plus the repo's
#: own positive reference-state constants (repro.thermo.statmech /
#: repro.constants).
_POSITIVE_NAMES = {"math.pi", "np.pi", "numpy.pi", "math.e", "np.e",
                   "math.tau", "math.inf", "np.inf", "numpy.inf",
                   "P_STANDARD", "P_ATM"}


def is_guarded(node: ast.AST, resolve=None) -> bool:
    """Heuristic: is this expression protected against zero/negative?

    True when the expression is a clamping or positivity-preserving
    construct: ``np.maximum``/``np.clip``/``abs``-family calls, a
    positive numeric literal, an added positive epsilon, an even
    power, ``x * x``, or products/quotients of guarded factors.

    ``resolve`` is an optional callback ``(dotted_name) -> bool`` that
    answers whether a bare name is known positive (module constants,
    variables whose every assignment is guarded).
    """
    v = const_value(node)
    if v is not None:
        return v > 0
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        if name in _POSITIVE_NAMES:
            return True
        return bool(resolve and resolve(name))
    if isinstance(node, ast.Call):
        return call_name(node) in _GUARD_CALLS
    if isinstance(node, ast.UnaryOp):
        return (isinstance(node.op, ast.UAdd)
                and is_guarded(node.operand, resolve))
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Add):
            lv, rv = const_value(node.left), const_value(node.right)
            if (lv is not None and lv > 0) or (rv is not None and rv > 0):
                return True
            return (is_guarded(node.left, resolve)
                    or is_guarded(node.right, resolve))
        if isinstance(node.op, ast.Pow):
            exp = const_value(node.right)
            if (exp is not None and exp == int(exp)
                    and int(exp) % 2 == 0):
                return True
            return is_guarded(node.left, resolve)
        if isinstance(node.op, ast.Mult):
            if (isinstance(node.left, ast.Name)
                    and isinstance(node.right, ast.Name)
                    and node.left.id == node.right.id):
                return True
            return (is_guarded(node.left, resolve)
                    and is_guarded(node.right, resolve))
        if isinstance(node.op, ast.Div):
            return (is_guarded(node.left, resolve)
                    and is_guarded(node.right, resolve))
    return False


# --- running -------------------------------------------------------------

def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in {"__pycache__", ".git"})
                for f in sorted(files):
                    if f.endswith(".py"):
                        yield os.path.join(root, f)


def lint_source(source: str, path: str = "<string>",
                select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one source string; returns pragma-filtered findings."""
    # make sure the default rule set is registered
    from repro.analysis import rules as _rules  # noqa: F401
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return [Finding(rule="CAT999", severity=Severity.ERROR, path=path,
                        line=err.lineno or 1, col=(err.offset or 1) - 1,
                        message=f"syntax error: {err.msg}")]
    ctx = LintContext(path, source, tree)
    pragmas = PragmaIndex.from_source(source)
    selected = set(select) if select is not None else None
    out: list[Finding] = []
    for code in sorted(RULES):
        rule = RULES[code]
        if selected is not None and code not in selected:
            continue
        if not rule.applies(ctx):
            continue
        for f in rule.check(ctx):
            if not pragmas.disabled(f.rule, f.line):
                out.append(f)
    if selected is None or "CAT090" in selected:
        for line, codes in pragmas.missing_reason:
            if pragmas.disabled("CAT090", line):
                continue
            out.append(Finding(
                rule="CAT090", severity=Severity.INFO, path=path,
                line=line, col=0,
                message=("pragma disables "
                         f"{','.join(codes)} without a '-- reason'"),
                source_line=ctx.source_line(line)))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out


def lint_paths(paths: Iterable[str],
               select: Iterable[str] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as err:
            findings.append(Finding(
                rule="CAT998", severity=Severity.ERROR, path=path,
                line=1, col=0, message=f"unreadable file: {err}"))
            continue
        findings.extend(lint_source(source, path=path, select=select))
    return findings
