"""Fig. 5 — Space Shuttle Orbiter geometry (the PNS simulation shape).

Generates the planform outline, windward-centerline profile at angle of
attack, and fuselage cross sections of the equivalent engineering
geometry model.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import OrbiterWindwardProfile
from repro.geometry.orbiter import (ORBITER_LENGTH, orbiter_cross_sections,
                                    orbiter_planform)
from repro.postprocess.ascii_plot import ascii_plot

__all__ = ["run", "main"]


def run(quick: bool = False) -> dict:
    x_pf, y_pf = orbiter_planform(120 if quick else 240)
    prof = OrbiterWindwardProfile(alpha_deg=40.0, nose_radius=1.3)
    s = np.linspace(0.0, prof.s_max, 80 if quick else 200)
    x_w, r_w = prof.point(s)
    return {
        "planform": {"x": x_pf, "y": y_pf},
        "windward_profile": {"x": x_w, "r": r_w, "s": s},
        "cross_sections": orbiter_cross_sections(),
        "length": ORBITER_LENGTH,
        "profile": prof,
    }


def main(quick: bool = True) -> str:
    res = run(quick)
    pf = res["planform"]
    wp = res["windward_profile"]
    top = ascii_plot([(pf["x"], pf["y"], "planform half-outline")],
                     title="Fig. 5 - Orbiter geometry [m]",
                     xlabel="x [m]", ylabel="y [m]", height=14)
    side = ascii_plot([(wp["x"], wp["r"],
                        "windward equivalent profile (alpha=40deg)")],
                      xlabel="x [m]", ylabel="r [m]", height=12)
    n_cs = len(res["cross_sections"])
    return (f"{top}\n\n{side}\n\ncross sections at x/L = "
            + ", ".join(f"{xl:g}" for xl, _, _ in res["cross_sections"])
            + f"  (L = {res['length']:.2f} m)")


if __name__ == "__main__":
    print(main())
