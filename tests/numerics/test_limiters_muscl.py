"""Property tests for limiters and MUSCL reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.limiters import minmod, superbee, van_albada, van_leer
from repro.numerics.muscl import muscl_interface_states

LIMITERS = [minmod, van_leer, van_albada, superbee]
SLOPES = st.floats(min_value=-100.0, max_value=100.0)


class TestLimiterProperties:
    @pytest.mark.parametrize("lim", LIMITERS)
    @given(a=SLOPES, b=SLOPES)
    @settings(max_examples=60, deadline=None)
    def test_zero_at_extrema(self, lim, a, b):
        if a * b <= 0:
            assert float(lim(a, b)) == pytest.approx(0.0, abs=1e-15)

    @pytest.mark.parametrize("lim", LIMITERS)
    @given(a=SLOPES, b=SLOPES)
    @settings(max_examples=60, deadline=None)
    def test_tvd_bound(self, lim, a, b):
        # |phi| <= 2 min(|a|, |b|) for all classical TVD limiters
        s = float(lim(a, b))
        assert abs(s) <= 2.0 * min(abs(a), abs(b)) + 1e-12

    @pytest.mark.parametrize("lim", LIMITERS)
    @given(a=SLOPES, b=SLOPES)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, lim, a, b):
        assert float(lim(a, b)) == pytest.approx(float(lim(b, a)),
                                                 rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("lim", LIMITERS)
    @given(a=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_equal_slopes_pass_through(self, lim, a):
        assert float(lim(a, a)) == pytest.approx(a, rel=1e-9)

    def test_minmod_picks_smaller(self):
        assert float(minmod(1.0, 3.0)) == pytest.approx(1.0, rel=1e-15)
        assert float(minmod(-3.0, -2.0)) == pytest.approx(-2.0, rel=1e-15)

    def test_superbee_least_dissipative(self):
        # superbee >= minmod in magnitude when both are active
        a, b = 1.0, 2.0
        assert abs(float(superbee(a, b))) >= abs(float(minmod(a, b)))


class TestMUSCL:
    def test_linear_data_reproduced_exactly(self):
        # second-order reconstruction is exact for linear data
        x = np.arange(10.0)
        W = 3.0 * x + 1.0
        WL, WR = muscl_interface_states(W)
        # interior faces: left and right states agree at the face value
        face_vals = 3.0 * (x[:-1] + 0.5) + 1.0
        assert np.allclose(WL[1:-1], face_vals[1:-1])
        assert np.allclose(WR[1:-1], face_vals[1:-1])

    def test_first_order_mode(self):
        W = np.array([1.0, 2.0, 5.0, 3.0])
        WL, WR = muscl_interface_states(W, order=1)
        assert np.allclose(WL, W[:-1])
        assert np.allclose(WR, W[1:])

    def test_no_new_extrema(self, rng):
        W = rng.random(50)
        WL, WR = muscl_interface_states(W)
        lo, hi = W.min(), W.max()
        assert WL.min() >= lo - 1e-12 and WL.max() <= hi + 1e-12
        assert WR.min() >= lo - 1e-12 and WR.max() <= hi + 1e-12

    def test_monotone_data_stays_monotone(self):
        W = np.sort(np.random.default_rng(3).random(30))
        WL, WR = muscl_interface_states(W)
        # interface states ordered like the data
        assert np.all(WR - WL >= -1e-12)

    def test_vector_axis_handling(self, rng):
        W = rng.random((6, 8, 4))
        WL, WR = muscl_interface_states(W, axis=1)
        assert WL.shape == (6, 7, 4)
        assert WR.shape == (6, 7, 4)

    def test_too_few_cells_raises(self):
        with pytest.raises(ValueError):
            muscl_interface_states(np.array([1.0]))
