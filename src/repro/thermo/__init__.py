"""High-temperature gas thermochemistry.

This subpackage is the real-gas heart of the toolkit (the paper's
"modeling of high-temperature phenomena"):

* :mod:`repro.thermo.species` — molecular-constant database for air and
  Titan-atmosphere species.
* :mod:`repro.thermo.statmech` — rigid-rotor / harmonic-oscillator /
  electronic-level thermodynamics (cp, h, s, Gibbs) from first principles.
* :mod:`repro.thermo.nasa7` — NASA 7-coefficient polynomial evaluation and
  least-squares fitting against the statmech model.
* :mod:`repro.thermo.mixture` — mass-fraction mixture thermodynamics.
* :mod:`repro.thermo.equilibrium` — element-potential chemical-equilibrium
  solver (batched Newton) and derived equilibrium gas properties.
* :mod:`repro.thermo.eos_table` — tabulated "effective gamma" equilibrium
  EOS for fast in-solver lookups.
* :mod:`repro.thermo.kinetics` — finite-rate (Park two-temperature) air
  reaction mechanism with equilibrium-consistent backward rates.
* :mod:`repro.thermo.relaxation` — Millikan–White/Park vibrational
  relaxation times.
* :mod:`repro.thermo.two_temperature` — two-temperature gas model and
  energy-exchange source terms.
"""

from repro.thermo.species import Species, SpeciesDB, SPECIES, species_set
from repro.thermo.statmech import SpeciesThermo
from repro.thermo.mixture import MixtureThermo

__all__ = [
    "Species",
    "SpeciesDB",
    "SPECIES",
    "species_set",
    "SpeciesThermo",
    "MixtureThermo",
]
