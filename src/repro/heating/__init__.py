"""Engineering aerothermal heating correlations and catalysis models.

The design-code layer the paper's solvers were validated against:
Fay–Riddell and Sutton–Graves stagnation convective heating, Lees' laminar
heating distribution, reference-enthalpy flat-plate heating, Tauber–Sutton
radiative heating, and catalytic-wall heating factors.
"""

from repro.heating.fay_riddell import fay_riddell_heating
from repro.heating.sutton_graves import sutton_graves_heating
from repro.heating.lees import lees_distribution
from repro.heating.reference_enthalpy import flat_plate_heating
from repro.heating.catalysis import catalytic_factor, CatalyticWall

__all__ = ["fay_riddell_heating", "sutton_graves_heating",
           "lees_distribution", "flat_plate_heating", "catalytic_factor",
           "CatalyticWall"]
