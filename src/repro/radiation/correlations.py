"""Engineering radiative-heating correlations (Tauber–Sutton).

q_rad = C * R_n^a * rho^1.22 * f(V)  [W/cm^2 with CGS-ish inputs in the
original; implemented here in SI with the published tabulated f(V)].
Valid for Earth entry between ~9 and 16 km/s; used as the design-code
baseline against the tangent-slab results.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["tauber_sutton_radiative"]

# Tauber-Sutton Earth f(V) tabulation (V [m/s] -> f)
_V_TAB = np.array([9000.0, 10000.0, 11000.0, 12000.0, 13000.0, 14000.0,
                   15000.0, 16000.0])
_F_TAB = np.array([1.5, 35.0, 151.0, 359.0, 660.0, 1065.0, 1550.0,
                   2040.0])

_C = 4.736e4
_B = 1.22


def tauber_sutton_radiative(rho, V, nose_radius):
    """Stagnation radiative heating [W/m^2] for Earth entry.

    Parameters
    ----------
    rho:
        Freestream density [kg/m^3].
    V:
        Velocity [m/s]; clipped into the correlation's 9-16 km/s validity
        band (f ~ 0 below it).
    nose_radius:
        [m].  The exponent a depends weakly on conditions; the common
        a = 0.6 engineering value is used (valid for modest radii).
    """
    rho = np.asarray(rho, dtype=float)
    V = np.asarray(V, dtype=float)
    if np.any(rho <= 0):
        raise InputError("density must be positive")
    f = np.interp(V, _V_TAB, _F_TAB, left=0.0, right=_F_TAB[-1])
    q_wcm2 = _C * nose_radius**0.6 * rho**_B * f
    return q_wcm2 * 1.0e4  # W/cm^2 -> W/m^2