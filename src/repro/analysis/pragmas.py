"""``# catlint: disable=...`` pragma parsing.

Grammar (inside a comment, anywhere on the line)::

    # catlint: disable=CAT001,CAT010 -- reason for the suppression
    # catlint: disable=all -- reason
    # catlint: disable-file=CAT021 -- reason

* A trailing pragma suppresses the named rules on the whole logical
  statement containing its line (multi-line expressions included).
* A pragma on a comment-only line suppresses them on the next logical
  statement (so long pragmas can sit above the code they excuse).
* ``disable-file`` suppresses the rules for the whole file.
* The ``-- reason`` tail is required by convention; pragmas without a
  reason are themselves reported (rule ``CAT090``).

Comments are found with :mod:`tokenize`, so a string literal that
happens to contain ``# catlint:`` is never treated as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize

_PRAGMA_RE = re.compile(
    r"#\s*catlint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?|all)\s*(?:--\s*(.*))?$")

ALL = "all"

_SKIP_TOKENS = frozenset({
    tokenize.NL, tokenize.COMMENT, tokenize.INDENT, tokenize.DEDENT,
    tokenize.NEWLINE, tokenize.ENDMARKER, tokenize.ENCODING,
})


def _logical_spans(toks) -> dict[int, tuple[int, int]]:
    """Map each physical line of a logical statement to its extent.

    A logical statement runs from its first substantive token to the
    NEWLINE that terminates it (continuation lines included).
    """
    spans: dict[int, tuple[int, int]] = {}
    start: int | None = None
    end: int | None = None
    for tok in toks:
        if tok.type == tokenize.NEWLINE:
            if start is not None and end is not None:
                for ln in range(start, end + 1):
                    spans[ln] = (start, end)
            start = end = None
        elif tok.type not in _SKIP_TOKENS:
            if start is None:
                start = tok.start[0]
            end = tok.end[0]
    if start is not None and end is not None:
        for ln in range(start, end + 1):
            spans[ln] = (start, end)
    return spans


class PragmaIndex:
    """Per-file index answering 'is RULE disabled on LINE?'."""

    def __init__(self) -> None:
        # line -> set of rule codes (or {"all"})
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        #: pragmas missing a ``-- reason`` tail: list of (line, codes)
        self.missing_reason: list[tuple[int, tuple[str, ...]]] = []

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        idx = cls()
        comments: list[tuple[int, str, bool]] = []  # line, text, alone?
        spans: dict[int, tuple[int, int]] = {}  # line -> logical extent
        try:
            toks = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
            for tok in toks:
                if tok.type == tokenize.COMMENT:
                    line_text = tok.line or ""
                    alone = line_text[:tok.start[1]].strip() == ""
                    comments.append((tok.start[0], tok.string, alone))
            spans = _logical_spans(toks)
        except (tokenize.TokenError, SyntaxError, IndentationError):
            # fall back to a plain line scan on broken source
            for i, text in enumerate(source.splitlines(), start=1):
                if "#" in text:
                    comments.append((i, text[text.index("#"):],
                                     text.lstrip().startswith("#")))
        n_lines = len(source.splitlines())
        for line, text, alone in comments:
            m = _PRAGMA_RE.search(text)
            if m is None:
                continue
            kind, codes_raw, reason = m.groups()
            codes = {c.strip() for c in codes_raw.split(",") if c.strip()}
            if not codes:
                continue
            if not (reason or "").strip():
                idx.missing_reason.append((line, tuple(sorted(codes))))
            if kind == "disable-file":
                idx._file_wide |= codes
                continue
            if alone:
                # cover the next logical statement
                target = None
                for j in range(line + 1, n_lines + 1):
                    if j in spans:
                        target = j
                        break
                if target is None:
                    idx._add(line + 1, codes)
                    continue
                lo, hi = spans[target]
            else:
                lo, hi = spans.get(line, (line, line))
            for j in range(lo, hi + 1):
                idx._add(j, codes)
        return idx

    def _add(self, line: int, codes: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(codes)

    def disabled(self, rule: str, line: int) -> bool:
        if ALL in self._file_wide or rule in self._file_wide:
            return True
        codes = self._by_line.get(line)
        if not codes:
            return False
        return ALL in codes or rule in codes
