"""Tests for the tabulated effective-gamma equilibrium EOS."""

import os

import numpy as np
import pytest

from repro.errors import InputError, TableRangeError
from repro.thermo.eos_table import EquilibriumEOSTable


@pytest.fixture(scope="module")
def small_table(air_gas_module):
    return EquilibriumEOSTable.build(air_gas_module, n_rho=20, n_e=28)


@pytest.fixture(scope="module")
def air_gas_module():
    from repro.thermo.equilibrium import (EquilibriumGas,
                                          air_reference_mass_fractions)
    from repro.thermo.species import species_set
    db = species_set("air11")
    return EquilibriumGas(db, air_reference_mass_fractions(db))


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(InputError):
            EquilibriumEOSTable(np.linspace(0, 1, 4), np.linspace(0, 1, 5),
                                np.zeros((5, 4)), np.zeros((5, 4)))

    def test_nonuniform_grid_rejected(self):
        lr = np.array([0.0, 1.0, 3.0])
        le = np.linspace(0, 1, 4)
        with pytest.raises(InputError):
            EquilibriumEOSTable(lr, le, np.ones((3, 4)), np.ones((3, 4)))


class TestAccuracy:
    def test_pressure_against_direct_solve(self, small_table,
                                           air_gas_module, rng):
        rho = 10.0 ** rng.uniform(-5.5, 0.5, 50)
        e = 10.0 ** rng.uniform(5.3, 7.8, 50)
        st = air_gas_module.state_rho_e(rho, e)
        p_tab = small_table.pressure(rho, e)
        # coarse (20x28) table: several-percent bilinear error is expected
        assert np.max(np.abs(p_tab / st["p"] - 1.0)) < 0.08

    def test_temperature_against_direct_solve(self, small_table,
                                              air_gas_module, rng):
        rho = 10.0 ** rng.uniform(-5.5, 0.5, 50)
        e = 10.0 ** rng.uniform(5.3, 7.8, 50)
        st = air_gas_module.state_rho_e(rho, e)
        T_tab = small_table.temperature(rho, e)
        assert np.max(np.abs(T_tab / st["T"] - 1.0)) < 0.08

    def test_gamma_bounds(self, small_table):
        assert np.all(small_table.gamma > 1.0)
        assert np.all(small_table.gamma < 1.7)

    def test_sound_speed_reasonable(self, small_table, air_gas_module):
        # cold air point
        st = air_gas_module.state_rho_T(np.array([1.2]), np.array([300.0]))
        a = small_table.sound_speed(1.2, st["e"][0])
        assert 320.0 < float(a) < 380.0

    def test_exact_at_nodes(self, small_table):
        # interpolation reproduces node values exactly
        i, j = 7, 11
        rho = np.exp(small_table.log_rho[i])
        e = np.exp(small_table.log_e[j])
        gamma, T = small_table.lookup(rho, e)
        assert float(gamma) == pytest.approx(small_table.gamma[i, j],
                                             rel=1e-12)
        assert float(T) == pytest.approx(small_table.T[i, j], rel=1e-12)


class TestRangeHandling:
    def test_clamped_lookup(self, small_table):
        # default clamps: extreme inputs return boundary values
        g_lo, _ = small_table.lookup(1e-30, 1e5)
        assert np.isfinite(g_lo)

    def test_strict_mode_raises(self, small_table):
        strict = EquilibriumEOSTable(small_table.log_rho, small_table.log_e,
                                     small_table.gamma, small_table.T,
                                     clamp=False)
        with pytest.raises(TableRangeError):
            strict.lookup(1e-30, 1e5)


class TestPersistence:
    def test_save_load_roundtrip(self, small_table, tmp_path):
        path = os.path.join(tmp_path, "eos.npz")
        small_table.save(path)
        loaded = EquilibriumEOSTable.load(path)
        assert np.array_equal(loaded.gamma, small_table.gamma)
        assert np.array_equal(loaded.T, small_table.T)
        g1, t1 = loaded.lookup(0.01, 3e6)
        g2, t2 = small_table.lookup(0.01, 3e6)
        assert float(g1) == float(g2) and float(t1) == float(t2)
