"""Solver state checkpoints for rollback-and-retry marching.

A checkpoint is a deep copy of everything a marching solver needs to
resume from a known-good step: the conserved field, clocks/counters and
any warm-start caches.  Solvers advertise what to save via
``get_state()`` / ``set_state()``; solvers without those methods fall
back to a conventional attribute list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Checkpoint"]

#: Fallback attributes snapshotted for solvers without ``get_state``.
_DEFAULT_ATTRS = ("U", "t", "steps", "residual_history", "T")


def _copy_value(v):
    """Recursive copy: ndarrays nested inside dicts/lists (warm-start
    caches, ``residual_history`` entries) must not stay aliased to live
    solver state, or a later step silently mutates the "restored" data."""
    if isinstance(v, np.ndarray):
        return v.copy()
    if isinstance(v, dict):
        return {k: _copy_value(x) for k, x in v.items()}
    if isinstance(v, list):
        return [_copy_value(x) for x in v]
    if isinstance(v, tuple):
        return tuple(_copy_value(x) for x in v)
    return v


@dataclass
class Checkpoint:
    """One restorable snapshot of a marching solver."""

    step: int
    payload: dict

    @classmethod
    def capture(cls, solver) -> "Checkpoint":
        """Deep-copy the solver's marching state."""
        if hasattr(solver, "get_state"):
            # re-copy defensively: a get_state() that hands back a live
            # container (warm-start cache dict, history list) would
            # otherwise alias the checkpoint to the marching state
            payload = {k: _copy_value(v)
                       for k, v in solver.get_state().items()}
        else:
            payload = {name: _copy_value(getattr(solver, name))
                       for name in _DEFAULT_ATTRS
                       if getattr(solver, name, None) is not None}
        return cls(step=int(getattr(solver, "steps", 0) or 0),
                   payload=payload)

    def restore(self, solver) -> None:
        """Restore the solver to this snapshot (copies again, so the
        checkpoint stays valid for further rollbacks)."""
        if hasattr(solver, "set_state"):
            solver.set_state({k: _copy_value(v)
                              for k, v in self.payload.items()})
        else:
            for name, v in self.payload.items():
                setattr(solver, name, _copy_value(v))
