"""High-level mixture transport model used by the viscous solvers.

Bundles species viscosities, Eucken conductivities, Wilke mixing and
Lewis-number diffusion behind one object so that solvers can ask for
``(mu, k, D)`` at a batch of states in one call.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import ThermoSet
from repro.transport.conductivity import eucken_conductivity
from repro.transport.diffusion import DEFAULT_LEWIS, lewis_diffusivity
from repro.transport.mixture_rules import wilke_mixture
from repro.transport.viscosity import species_viscosities

__all__ = ["TransportModel"]


class TransportModel:
    """Mixture transport properties over a fixed species set.

    Parameters
    ----------
    db:
        Species set (or name).
    lewis:
        Constant Lewis number for the effective diffusivity.
    """

    def __init__(self, db: SpeciesDB | str, *, lewis: float = DEFAULT_LEWIS):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.thermo = ThermoSet(self.db)
        self.lewis = lewis

    def viscosity(self, T, y):
        """Mixture viscosity [Pa s] via Blottner/LJ + Wilke."""
        x = self.db.mass_to_mole(np.maximum(np.asarray(y, float), 1e-30))
        mu_s = species_viscosities(self.db, T)
        return wilke_mixture(self.db, x, mu_s)

    def conductivity(self, T, y):
        """Frozen mixture thermal conductivity [W/(m K)]."""
        x = self.db.mass_to_mole(np.maximum(np.asarray(y, float), 1e-30))
        mu_s = species_viscosities(self.db, T)
        cp = self.thermo.cp(T)
        k_s = eucken_conductivity(mu_s, cp, self.db.molar_mass)
        return wilke_mixture(self.db, x, k_s)

    def diffusivity(self, rho, T, y):
        """Effective (constant-Lewis) diffusion coefficient [m^2/s]."""
        k = self.conductivity(T, y)
        y_arr = np.asarray(y, dtype=float)
        cp_mass = np.sum(y_arr * self.thermo.cp_mass(T), axis=-1)
        return lewis_diffusivity(k, rho, cp_mass, self.lewis)

    def prandtl(self, T, y):
        """Frozen Prandtl number Pr = mu cp / k."""
        y_arr = np.asarray(y, dtype=float)
        cp_mass = np.sum(y_arr * self.thermo.cp_mass(T), axis=-1)
        return self.viscosity(T, y) * cp_mass / self.conductivity(T, y)

    def all_properties(self, rho, T, y):
        """Return dict with mu, k, D, Pr in one pass (shares species work)."""
        y_arr = np.maximum(np.asarray(y, dtype=float), 1e-30)
        x = self.db.mass_to_mole(y_arr)
        mu_s = species_viscosities(self.db, T)
        cp_molar = self.thermo.cp(T)
        k_s = eucken_conductivity(mu_s, cp_molar, self.db.molar_mass)
        mu = wilke_mixture(self.db, x, mu_s)
        k = wilke_mixture(self.db, x, k_s)
        cp_mass = np.sum(np.asarray(y, float) * cp_molar
                         / self.db.molar_mass, axis=-1)
        D = lewis_diffusivity(k, rho, cp_mass, self.lewis)
        return {"mu": mu, "k": k, "D": D, "Pr": mu * cp_mass / k,
                "cp": cp_mass}
