"""Durable filesystem work queue: atomic claims, crash-safe journal,
retry/backoff requeue and a dead-letter ledger.

The queue is a directory; every mutation is an atomic filesystem
operation, so any number of worker processes can share it and a crash
at any instant leaves a state the survivors can read:

```
queue-dir/
  jobs/<id>.json      immutable job spec (atomic write at enqueue)
  state/<id>.json     mutable status record (atomic replace)
  leases/lease-<id>.json   ownership (O_EXCL create, see lease.py)
  results/<id>.json   result payload of a completed job
  dead/<id>.json      dead-letter record (error + FailureReport)
  work/<id>/          per-job workdir: ckpt/ (durable snapshots) and
                      sandbox/ (isolation heartbeat + error notes)
  journal.jsonl       append-only campaign ledger (fsync'd lines)
```

A job moves through a small state machine::

    pending --claim--> running --complete--> done
       ^                  |
       |                  +--fail (attempts < max) --> pending
       |                  |     (not_before = now + backoff + jitter)
       |                  +--fail (attempts == max) --> dead
       |                  +--preempt (drain; attempt not counted)
       +---reclaim (lease expired: owner died) ---------+

Claims are arbitrated by the lease file (exactly one ``O_EXCL`` create
wins); completion and failure are fenced by the lease token so a
worker that lost its lease mid-job cannot clobber its successor.  The
journal records every transition — enqueue, claim, complete, fail,
requeue, reclaim, preempt, dead-letter, worker kills — and is the raw
material for the campaign ledger and the ``BENCH_farm.json``
throughput numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

from repro.errors import InputError, SolverError
from repro.resilience.lease import Lease, LeaseManager

__all__ = ["BackoffPolicy", "Job", "WorkQueue"]


# ----------------------------------------------------------------------
# retry / backoff
# ----------------------------------------------------------------------

@dataclass
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    Delay before attempt ``n+1`` (after ``n`` failed attempts) is
    ``min(max_delay, base * factor**(n-1)) * (1 + jitter * u)`` where
    ``u`` in [0, 1) is a pure function of (job id, attempt) — the same
    campaign replays with the same requeue times, yet concurrent
    failures of different jobs never thundering-herd the same instant.
    """

    max_attempts: int = 3
    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InputError("max_attempts must be >= 1")
        if self.base < 0.0 or self.max_delay < 0.0 or self.jitter < 0.0:
            raise InputError("backoff delays and jitter must be >= 0")
        if self.factor < 1.0:
            raise InputError("backoff factor must be >= 1")

    def delay(self, job_id: str, attempt: int) -> float:
        """Requeue delay after ``attempt`` (1-based) failed attempts."""
        if attempt < 1:
            return 0.0
        raw = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        h = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        u = int.from_bytes(h[:8], "big") / 2.0 ** 64
        return raw * (1.0 + self.jitter * u)


# ----------------------------------------------------------------------
# job spec
# ----------------------------------------------------------------------

@dataclass
class Job:
    """Immutable description of one unit of work.

    ``kind`` names a registered executor in
    :data:`repro.resilience.farm.JOB_KINDS`; ``payload`` is its
    JSON-able argument.  The three budget fields become the per-job
    :class:`~repro.resilience.isolation.IsolationPolicy` the worker
    sandboxes the job under (None = farm default).
    """

    id: str
    kind: str
    payload: dict = field(default_factory=dict)
    priority: int = 0
    max_attempts: int | None = None
    deadline: float | None = None
    memory_mb: float | None = None
    stall_timeout: float | None = None

    def __post_init__(self):
        if (not self.id or "/" in self.id or self.id != self.id.strip()
                or self.id.startswith(".")):
            raise InputError(f"invalid job id {self.id!r} (must be a "
                             f"clean filename fragment)")

    def to_dict(self) -> dict:
        return {"id": self.id, "kind": self.kind,
                "payload": dict(self.payload),
                "priority": int(self.priority),
                "max_attempts": self.max_attempts,
                "deadline": self.deadline, "memory_mb": self.memory_mb,
                "stall_timeout": self.stall_timeout}

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        return cls(id=d["id"], kind=d["kind"],
                   payload=dict(d.get("payload") or {}),
                   priority=int(d.get("priority", 0)),
                   max_attempts=d.get("max_attempts"),
                   deadline=d.get("deadline"),
                   memory_mb=d.get("memory_mb"),
                   stall_timeout=d.get("stall_timeout"))


#: terminal statuses — a campaign is over when every job reaches one
TERMINAL = frozenset(("done", "dead"))


# ----------------------------------------------------------------------
# the queue
# ----------------------------------------------------------------------

class WorkQueue:
    """Shared, durable job queue rooted at ``dir``.

    Every process (enqueuer, N workers, the supervising farm, a reaper)
    opens its own ``WorkQueue`` on the same directory; there is no
    in-memory authority to lose.
    """

    def __init__(self, dir, *, lease_ttl: float = 15.0,
                 backoff: BackoffPolicy | None = None,
                 fsync: bool = True):
        self.dir = os.fspath(dir)
        self.backoff = backoff or BackoffPolicy()
        self.fsync = bool(fsync)
        self.jobs_dir = os.path.join(self.dir, "jobs")
        self.state_dir = os.path.join(self.dir, "state")
        self.results_dir = os.path.join(self.dir, "results")
        self.dead_dir = os.path.join(self.dir, "dead")
        self.work_dir = os.path.join(self.dir, "work")
        for d in (self.jobs_dir, self.state_dir, self.results_dir,
                  self.dead_dir, self.work_dir):
            os.makedirs(d, exist_ok=True)
        self.leases = LeaseManager(os.path.join(self.dir, "leases"),
                                   ttl=lease_ttl)
        self.journal_path = os.path.join(self.dir, "journal.jsonl")

    # -- atomic JSON plumbing ------------------------------------------

    def _write_json(self, path: str, obj: dict) -> None:
        tmp = os.path.join(os.path.dirname(path),
                           f".tmp-{os.getpid()}-{os.path.basename(path)}")
        with open(tmp, "w") as f:
            json.dump(obj, f, indent=1, default=str)
            f.flush()
            if self.fsync:
                os.fsync(f.fileno())
        os.replace(tmp, path)

    def _read_json(self, path: str) -> dict | None:
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def journal(self, event: str, **fields) -> None:
        """Append one fsync'd line to the campaign journal.

        O_APPEND writes of one line are atomic on local filesystems, so
        concurrent workers interleave whole records, never torn ones.
        """
        rec = {"t": time.time(), "event": event}
        rec.update(fields)
        line = json.dumps(rec, default=str) + "\n"
        fd = os.open(self.journal_path,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    def read_journal(self) -> list[dict]:
        """Every journal record, oldest first (torn tails skipped)."""
        out: list[dict] = []
        try:
            with open(self.journal_path) as f:
                for line in f:
                    try:
                        out.append(json.loads(line))
                    except ValueError:
                        continue   # torn tail from a crash mid-append
        except OSError:
            pass
        return out

    # -- enqueue --------------------------------------------------------

    def enqueue(self, job: Job) -> bool:
        """Add ``job``; idempotent (an existing id keeps its state and
        returns False — re-running a campaign never resets progress)."""
        spec_path = os.path.join(self.jobs_dir, f"{job.id}.json")
        if os.path.exists(spec_path):
            return False
        self._write_json(spec_path, job.to_dict())
        self._write_json(self._state_path(job.id),
                         {"id": job.id, "status": "pending",
                          "attempts": 0, "not_before": 0.0,
                          "owner": None, "last_error": None})
        self.journal("enqueue", job=job.id, kind=job.kind,
                     priority=job.priority)
        return True

    # -- introspection --------------------------------------------------

    def _state_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def job(self, job_id: str) -> Job:
        spec = self._read_json(os.path.join(self.jobs_dir,
                                            f"{job_id}.json"))
        if spec is None:
            raise SolverError(f"work queue: unknown job {job_id!r}")
        return Job.from_dict(spec)

    def state(self, job_id: str) -> dict:
        st = self._read_json(self._state_path(job_id))
        return st or {"id": job_id, "status": "unknown", "attempts": 0}

    def job_ids(self) -> list[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except FileNotFoundError:
            return []
        return sorted(n[:-len(".json")] for n in names
                      if n.endswith(".json"))

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for job_id in self.job_ids():
            status = self.state(job_id).get("status", "unknown")
            out[status] = out.get(status, 0) + 1
        return out

    def all_terminal(self) -> bool:
        return all(self.state(j).get("status") in TERMINAL
                   for j in self.job_ids())

    def result(self, job_id: str) -> dict | None:
        return self._read_json(os.path.join(self.results_dir,
                                            f"{job_id}.json"))

    def dead_letter(self, job_id: str) -> dict | None:
        return self._read_json(os.path.join(self.dead_dir,
                                            f"{job_id}.json"))

    def job_workdir(self, job_id: str) -> str:
        d = os.path.join(self.work_dir, job_id)
        os.makedirs(d, exist_ok=True)
        return d

    # -- claim ----------------------------------------------------------

    def ready(self, now: float | None = None) -> list[str]:
        """Pending, unleased, past-backoff job ids in (priority, id)
        order."""
        if now is None:
            now = time.time()
        out = []
        for job_id in self.job_ids():
            st = self.state(job_id)
            if st.get("status") != "pending":
                continue
            if float(st.get("not_before") or 0.0) > now:
                continue
            if self.leases.holder(job_id) is not None:
                continue
            out.append(job_id)
        out.sort(key=lambda j: (self.job(j).priority, j))
        return out

    def claim(self, owner: str, now: float | None = None
              ) -> tuple[Job, Lease] | None:
        """Claim the first ready job for ``owner``; None when nothing is
        claimable right now.  Losing every race returns None too — the
        caller just polls again."""
        for job_id in self.ready(now):
            lease = self.leases.acquire(job_id, owner)
            if lease is None:
                continue
            st = self.state(job_id)
            job = self.job(job_id)
            limit = (self.backoff.max_attempts if job.max_attempts is
                     None else int(job.max_attempts))
            if int(st.get("attempts", 0)) >= limit:
                # poison job: every past attempt took its worker down
                # (reclaims charge the attempt but never reach fail()),
                # so it must dead-letter here or loop forever
                self._write_json(
                    os.path.join(self.dead_dir, f"{job_id}.json"),
                    {"id": job_id, "attempts": st["attempts"],
                     "worker": owner, "report": None, "t": time.time(),
                     "error": (st.get("last_error")
                               or "attempt budget exhausted: every "
                                  "attempt lost its worker (lease "
                                  "reclaimed, no failure recorded)")})
                st.update(status="dead", owner=None)
                self._write_json(self._state_path(job_id), st)
                self.journal("dead-letter", job=job_id, worker=owner,
                             attempts=st["attempts"],
                             error="attempt budget exhausted on claim")
                self.leases.release(lease)
                continue
            st.update(status="running", owner=owner,
                      attempts=int(st.get("attempts", 0)) + 1)
            self._write_json(self._state_path(job_id), st)
            self.journal("claim", job=job_id, worker=owner,
                         attempt=st["attempts"])
            return job, lease
        return None

    # -- completion / failure / preemption ------------------------------

    def complete(self, job: Job, lease: Lease, result: dict | None
                 ) -> bool:
        """Commit a result.  Returns False (and journals ``fenced``)
        when the lease was lost — the successor owns the job now and
        this result is discarded."""
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="complete")
            return False
        self._write_json(os.path.join(self.results_dir,
                                      f"{job.id}.json"),
                         {"id": job.id, "result": result,
                          "worker": lease.owner, "t": time.time()})
        st = self.state(job.id)
        st.update(status="done", owner=None)
        self._write_json(self._state_path(job.id), st)
        self.journal("complete", job=job.id, worker=lease.owner,
                     attempt=st.get("attempts"))
        self.leases.release(lease)
        return True

    def fail(self, job: Job, lease: Lease, error: str, *,
             report: dict | None = None) -> str:
        """Record a failed attempt: requeue with backoff, or dead-letter
        once attempts are exhausted.  Returns the resulting status."""
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="fail")
            return self.state(job.id).get("status", "unknown")
        st = self.state(job.id)
        attempts = int(st.get("attempts", 0))
        limit = (self.backoff.max_attempts if job.max_attempts is None
                 else int(job.max_attempts))
        if attempts >= limit:
            self._write_json(os.path.join(self.dead_dir,
                                          f"{job.id}.json"),
                             {"id": job.id, "error": error,
                              "attempts": attempts,
                              "worker": lease.owner,
                              "report": report, "t": time.time()})
            st.update(status="dead", owner=None, last_error=error)
            self._write_json(self._state_path(job.id), st)
            self.journal("dead-letter", job=job.id, worker=lease.owner,
                         attempts=attempts, error=error)
            status = "dead"
        else:
            delay = self.backoff.delay(job.id, attempts)
            st.update(status="pending", owner=None, last_error=error,
                      not_before=time.time() + delay)
            self._write_json(self._state_path(job.id), st)
            self.journal("requeue", job=job.id, worker=lease.owner,
                         attempt=attempts, backoff=round(delay, 3),
                         error=error)
            status = "pending"
        self.leases.release(lease)
        return status

    def preempt(self, job: Job, lease: Lease) -> None:
        """Return a job to the pool without charging an attempt (the
        graceful-drain path: the worker checkpointed and is exiting)."""
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="preempt")
            return
        st = self.state(job.id)
        st.update(status="pending", owner=None,
                  attempts=max(0, int(st.get("attempts", 1)) - 1),
                  not_before=0.0)
        self._write_json(self._state_path(job.id), st)
        self.journal("preempt", job=job.id, worker=lease.owner)
        self.leases.release(lease)

    # -- lease expiry ----------------------------------------------------

    def reclaim_expired(self, now: float | None = None) -> list[str]:
        """Reap expired leases and return their jobs to the pending
        pool (attempt already charged at claim).  The dead worker's
        durable snapshots remain under ``work/<id>/ckpt``, so the next
        attempt resumes the march instead of restarting it."""
        freed = self.leases.reap(now)
        for job_id in freed:
            st = self.state(job_id)
            if st.get("status") != "running":
                continue   # completed/failed just before expiry
            owner = st.get("owner")
            st.update(status="pending", owner=None, not_before=0.0)
            self._write_json(self._state_path(job_id), st)
            self.journal("reclaim", job=job_id, worker=owner)
        return freed
