"""Fig. 7 — Two-temperature post-shock relaxation structure (Ref. 22).

Shock-tube condition: freestream velocity 10 km/s, pressure 0.1 Torr.
The figure's content: T jumps to the frozen value and relaxes down while
Tv rises from the freestream, both merging at the equilibrium plateau;
N2 dissociates and the electron density rises through the zone.
"""

from __future__ import annotations

import numpy as np

from repro.constants import TORR
from repro.postprocess.ascii_plot import ascii_plot
from repro.solvers.shock_relaxation import ShockRelaxationSolver

__all__ = ["run", "main", "CONDITION"]

#: The Ref. 22 shock-tube case.
CONDITION = dict(u1=10000.0, p1=0.1 * TORR, T1=300.0)


def run(quick: bool = False) -> dict:
    solver = ShockRelaxationSolver("air11")
    profile = solver.solve(
        x_end=0.02 if quick else 0.06,
        n_out=120 if quick else 300,
        rtol=1e-6 if quick else 1e-8,
        **CONDITION)
    return {"profile": profile, "condition": CONDITION,
            "db": solver.db,
            "T_frozen": float(profile.T[0]),
            "T_equilibrium": float(profile.T[-1]),
            "Tv_equilibrium": float(profile.Tv[-1])}


def main(quick: bool = True) -> str:
    res = run(quick)
    p = res["profile"]
    x_mm = p.x * 1e3
    keep = x_mm > 1e-4
    txt = ascii_plot(
        [(x_mm[keep], p.T[keep] / 1e3, "T [kK]"),
         (x_mm[keep], p.Tv[keep] / 1e3, "Tv [kK]")],
        logx=True, title="Fig. 7 - two-temperature relaxation "
                         "(10 km/s, 0.1 Torr)",
        xlabel="distance behind shock [mm]", ylabel="T [1000 K]")
    db = res["db"]
    x_species = []
    for name in ("N2", "O2", "N", "O", "e-"):
        j = db.index[name]
        y = np.maximum(p.y[:, j], 1e-10)
        x_species.append((x_mm[keep], y[keep], name))
    txt += "\n" + ascii_plot(x_species, logx=True, logy=True,
                             xlabel="x [mm]", ylabel="mass fraction")
    txt += (f"\nfrozen T = {res['T_frozen']:.0f} K -> equilibrium "
            f"T = Tv = {res['T_equilibrium']:.0f} K")
    return txt


if __name__ == "__main__":
    print(main())
