"""Benchmark: regenerate Fig. 4 (reacting vs ideal bow-shock shape)."""

import numpy as np

from repro.experiments import fig4_shock_shape


def test_bench_fig4_shock_shape(once):
    res = once(fig4_shock_shape.run, True)
    # --- the paper's content --------------------------------------------
    # the reacting (equilibrium) shock stands much closer to the body
    assert res["standoff_ratio"] > 1.8
    assert res["equilibrium"]["standoff"] < 0.10   # m, on a 1.3 m nose
    assert res["ideal"]["standoff"] > 0.10
    # both shocks wrap the body: radial extent grows along the shock
    for mode in ("ideal", "equilibrium"):
        y = res[mode]["y"]
        ok = np.isfinite(y)
        assert y[ok][-1] > y[ok][0]
    print("\nFig. 4 series: standoff ideal "
          f"{res['ideal']['standoff']:.3f} m, equilibrium "
          f"{res['equilibrium']['standoff']:.3f} m, ratio "
          f"{res['standoff_ratio']:.2f}")
    for mode in ("ideal", "equilibrium"):
        x, y = res[mode]["x"], res[mode]["y"]
        ok = np.isfinite(x)
        pts = ", ".join(f"({a:.2f},{b:.2f})"
                        for a, b in zip(x[ok][::8], y[ok][::8]))
        print(f"  {mode:12s} shock locus [m]: {pts}")
