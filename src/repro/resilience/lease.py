"""Lease-based job ownership, heartbeat-age liveness and host clocks.

A distributed farm needs one answer to one question: *who owns this
job, and are they still alive?*  This module gives both halves a single
implementation — and, since PR 7, an answer that stays correct when the
claimants live on **different machines with different clocks**:

* :class:`LeaseManager` — filesystem leases.  A worker claims a job by
  exclusively creating ``lease-<job>.json`` (``O_CREAT | O_EXCL`` — the
  kernel arbitrates, so exactly one claimant wins no matter how many
  race), embeds a random fencing ``token``, its ``host`` identity and a
  monotonic heartbeat ``epoch``, and renews by atomically rewriting the
  file with the epoch incremented.  A worker that dies simply stops
  renewing; any process may then :meth:`~LeaseManager.reap` the expired
  lease and the job returns to the pending pool.  The token fences late
  writers: a worker that lost its lease (reaped while stalled or
  partitioned) discovers the token mismatch before committing a result
  and abandons it instead of double-completing.

* **Clock-skew-tolerant expiry.**  Same-host leases age on the shared
  wall clock as before.  A *cross-host* lease is never aged by
  comparing the holder's wall timestamps to the observer's clock
  (raw mtime comparison double-frees jobs the moment two hosts
  disagree by more than a ttl): instead the observer watches the
  lease's ``(token, epoch)`` pair and ages *changes* on its **own
  monotonic clock** — exactly the convention the
  :class:`~repro.resilience.isolation.Heartbeat` channel uses.  A
  cross-host lease expires only after it has been *observed unchanged*
  for ``ttl + max_skew`` seconds; a freshly started reaper therefore
  waits out one full observation window before touching anything,
  which is the safe direction to fail.

* :class:`HostBeacon` / :func:`read_beacons` / :func:`estimate_skew` —
  each farm supervisor periodically writes ``hosts/<host>.json``
  containing its wall clock, monotonic clock, epoch counter and live
  worker pids.  Beacons are advisory: skew estimates feed diagnostics
  and cross-host ledger merging, never reaping decisions (a frozen
  beacon must not get a healthy host's jobs reaped — lease epochs, not
  beacons, prove liveness).

* :func:`heartbeat_ages` / :func:`stalest_index` /
  :func:`expired_indices` — the one liveness-by-silence code path
  shared by the farm supervisor (worker heartbeat files), the stencil
  pool (:mod:`repro.parallel.executor` names its stalest worker with
  these) and lease expiry itself.  "Dead" always means the same thing:
  silent longer than the timeout, aged against the observer's own
  clock.

Testing hook: ``REPRO_CLOCK_SKEW`` (seconds, float) offsets the wall
clock every :func:`default_clock` returns — the distributed chaos
harness sets it per supervisor process to inject +/- skew between
hosts without touching the system clock.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from dataclasses import dataclass, field

from repro.errors import InputError

__all__ = ["HostBeacon", "Lease", "LeaseManager", "default_clock",
           "default_host_id", "estimate_skew", "expired_indices",
           "format_ages", "heartbeat_ages", "read_beacons",
           "stalest_index"]


# ----------------------------------------------------------------------
# host identity and (injectable) clocks
# ----------------------------------------------------------------------

def default_host_id() -> str:
    """This machine's identity in the queue directory (hostname).

    Every process on one machine shares it, so their wall clocks are
    mutually comparable; ``serve --host-id`` overrides it when two
    logical "hosts" share a box (tests, containers).
    """
    return socket.gethostname() or "localhost"


def default_clock():
    """Wall clock, plus the ``REPRO_CLOCK_SKEW`` test offset.

    The offset is read once (children inherit it through the
    environment at fork), so a chaos host created with skew keeps that
    skew for life — like a machine whose clock is simply wrong.
    """
    try:
        offset = float(os.environ.get("REPRO_CLOCK_SKEW", "") or 0.0)
    except ValueError:
        offset = 0.0
    # catlint: disable=CAT010 -- an unset/empty env var parses to the
    # literal 0.0; this tests "no skew configured", not a computed value
    if offset == 0.0:
        return time.time
    return lambda: time.time() + offset


# ----------------------------------------------------------------------
# liveness by silence (shared helpers)
# ----------------------------------------------------------------------

def heartbeat_ages(last_beats, now: float | None = None) -> list[float]:
    """Age of each heartbeat against ``now`` (monotonic seconds).

    A beat of 0.0 (or negative) means "never beat" and ages to
    ``inf`` — a member that never reported is always the prime suspect.
    """
    if now is None:
        now = time.monotonic()
    return [(now - b) if b > 0.0 else float("inf") for b in last_beats]


def stalest_index(ages: list[float]) -> int:
    """Index of the member silent the longest."""
    if not ages:
        raise InputError("stalest_index needs at least one member")
    return max(range(len(ages)), key=ages.__getitem__)


def expired_indices(ages: list[float], timeout: float) -> list[int]:
    """Members silent past ``timeout`` — the declared-dead set."""
    if timeout <= 0.0:
        raise InputError("liveness timeout must be positive")
    return [i for i, a in enumerate(ages) if a > timeout]


def format_ages(ages: list[float]) -> str:
    """``w0=1.2s, w1=never`` summary used in diagnostics."""
    return ", ".join(
        f"w{i}={'never' if a == float('inf') else f'{a:.1f}s'}"
        for i, a in enumerate(ages))


# ----------------------------------------------------------------------
# filesystem leases
# ----------------------------------------------------------------------

@dataclass
class Lease:
    """One granted job lease.

    ``token`` is the fencing credential: every mutation the holder
    commits is validated against the token on disk, so a holder whose
    lease was reaped (and possibly re-granted) cannot clobber the new
    owner's work.  ``host`` names the clock domain the ``renewed``
    timestamp belongs to; ``epoch`` increments on every renewal and is
    what cross-host observers age instead of the timestamp.
    """

    job_id: str
    owner: str
    token: str
    ttl: float
    renewed: float   # holder's wall clock at the last renewal
    host: str = ""
    epoch: int = 0

    @property
    def expires_at(self) -> float:
        return self.renewed + self.ttl

    def to_payload(self) -> dict:
        return {"job_id": self.job_id, "owner": self.owner,
                "token": self.token, "ttl": self.ttl,
                "renewed": self.renewed, "host": self.host,
                "epoch": self.epoch}


class LeaseManager:
    """Grant, renew, verify and reap filesystem leases in one directory.

    Parameters
    ----------
    dir:
        The lease directory (inside the shared queue directory).
    ttl:
        Renewal deadline [s].  Holders renew every ttl/3.
    host_id:
        This process's clock domain (default: hostname).  Leases whose
        ``host`` matches are aged on the wall clock; everything else is
        aged by observed ``(token, epoch)`` change on this process's
        monotonic clock.
    max_skew:
        Cross-host slack [s]: a foreign lease must sit unchanged for
        ``ttl + max_skew`` before it is declared expired.  Generous
        values only delay reclaim; small values never cause premature
        reaping (expiry is observation-based), they just leave less
        margin for slow NFS propagation of renew writes.
    clock:
        Wall clock callable (injectable for skew tests; defaults to
        :func:`default_clock`).
    """

    def __init__(self, dir, *, ttl: float = 15.0,
                 host_id: str | None = None, max_skew: float = 2.0,
                 clock=None):
        if ttl <= 0.0:
            raise InputError("lease ttl must be positive")
        if max_skew < 0.0:
            raise InputError("max_skew must be >= 0")
        self.dir = os.fspath(dir)
        self.ttl = float(ttl)
        self.host_id = host_id or default_host_id()
        self.max_skew = float(max_skew)
        self.clock = clock or default_clock()
        #: job_id -> ((token, epoch), first-observed monotonic time):
        #: the cross-host expiry state.  Per-process, never persisted —
        #: a fresh reaper simply starts its observation window anew.
        self._observed: dict[str, tuple[tuple, float]] = {}
        os.makedirs(self.dir, exist_ok=True)

    def _path(self, job_id: str) -> str:
        return os.path.join(self.dir, f"lease-{job_id}.json")

    def _read(self, job_id: str) -> dict | None:
        try:
            with open(self._path(job_id)) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    # -- grant / renew / release ---------------------------------------

    def acquire(self, job_id: str, owner: str) -> Lease | None:
        """Exclusively claim ``job_id``; None when someone else holds it.

        The ``O_CREAT | O_EXCL`` create is the arbitration point: of N
        racing workers exactly one syscall succeeds.
        """
        lease = Lease(job_id=job_id, owner=owner,
                      token=secrets.token_hex(8), ttl=self.ttl,
                      renewed=self.clock(), host=self.host_id, epoch=0)
        try:
            fd = os.open(self._path(job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(lease.to_payload(), f)
        except OSError:
            return None
        return lease

    def renew(self, lease: Lease) -> bool:
        """Push the expiry forward (epoch +1); False when the lease was
        lost (reaped, re-granted, or the file vanished) — the holder
        must then abandon the job."""
        held = self._read(lease.job_id)
        if held is None or held.get("token") != lease.token:
            return False
        lease.renewed = self.clock()
        lease.epoch += 1
        tmp = f"{self._path(lease.job_id)}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(lease.to_payload(), f)
            os.replace(tmp, self._path(lease.job_id))
        except OSError:
            return False
        return True

    def verify(self, lease: Lease) -> bool:
        """Does the on-disk lease still carry the holder's token?"""
        held = self._read(lease.job_id)
        return held is not None and held.get("token") == lease.token

    def release(self, lease: Lease) -> None:
        """Drop the lease (only when still held — never unlink a
        successor's grant)."""
        if self.verify(lease):
            try:
                os.remove(self._path(lease.job_id))
            except OSError:
                pass
            self._observed.pop(lease.job_id, None)

    # -- expiry ---------------------------------------------------------

    def holder(self, job_id: str) -> dict | None:
        """Current on-disk lease payload, if any."""
        return self._read(job_id)

    def is_expired(self, job_id: str, now: float | None = None) -> bool:
        """Has this lease's holder gone silent past its deadline?

        Same-host leases (holder's ``host`` equals ours, so one wall
        clock covers both) age as ``now - renewed > ttl``.  Cross-host
        leases — or legacy leases without a host field — expire only
        after their ``(token, epoch)`` has been **observed unchanged**
        for ``ttl + max_skew`` on *this process's* monotonic clock:
        no cross-machine timestamp is ever compared, so a +/- 5 s (or
        +/- 5 h) wall-clock disagreement can neither reap a healthy
        holder nor immortalise a dead one.
        """
        held = self._read(job_id)
        if held is None:
            self._observed.pop(job_id, None)
            return False
        if held.get("host") == self.host_id:
            if now is None:
                now = self.clock()
            age = now - float(held.get("renewed", 0.0))
            return bool(expired_indices(
                [age], float(held.get("ttl", self.ttl))))
        key = (held.get("token"), held.get("epoch"))
        mono = time.monotonic()
        seen = self._observed.get(job_id)
        if seen is None or seen[0] != key:
            self._observed[job_id] = (key, mono)
            return False
        unchanged_for = mono - seen[1]
        return unchanged_for > float(held.get("ttl", self.ttl)) \
            + self.max_skew

    def reap(self, now: float | None = None) -> list[str]:
        """Remove every expired lease; returns the freed job ids.

        Any process may reap — the farm supervisor does it each poll,
        so a SIGKILLed worker's jobs return to the pool within one ttl
        (plus ``max_skew`` when the dead holder lived on another host).
        Concurrent reapers race on the ``os.remove``; the kernel picks
        exactly one winner per lease.
        """
        freed: list[str] = []
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return freed
        live = set()
        for name in names:
            if not (name.startswith("lease-") and name.endswith(".json")):
                continue
            job_id = name[len("lease-"):-len(".json")]
            live.add(job_id)
            if self.is_expired(job_id, now):
                try:
                    os.remove(os.path.join(self.dir, name))
                except OSError:
                    continue
                self._observed.pop(job_id, None)
                freed.append(job_id)
        # drop observation state for leases released elsewhere
        for job_id in list(self._observed):
            if job_id not in live:
                del self._observed[job_id]
        return freed


# ----------------------------------------------------------------------
# per-host clock beacons
# ----------------------------------------------------------------------

@dataclass
class HostBeacon:
    """Advisory per-host presence record in ``<queue>/hosts/``.

    The farm supervisor writes it every ``interval``; the payload
    carries the host's wall clock, monotonic clock, a change epoch and
    its live worker pids.  Consumers use it for skew *estimates*
    (diagnostics, cross-host ledger merging) and for host inventory
    (the distributed chaos harness reads worker pids from here to
    simulate whole-machine death).  Liveness decisions never depend on
    it — a frozen beacon is a diagnostic, not a death sentence.
    """

    dir: str
    host_id: str = ""
    interval: float = 2.0
    clock: object = None
    workers: list = field(default_factory=list)

    def __post_init__(self):
        self.dir = os.fspath(self.dir)
        self.host_id = self.host_id or default_host_id()
        self.clock = self.clock or default_clock()
        self._epoch = 0
        self._last = 0.0
        self.frozen = False
        os.makedirs(self.dir, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.dir, f"{self.host_id}.json")

    def write(self, *, force: bool = False) -> None:
        """Atomically (re)write the beacon, throttled to ``interval``.

        A frozen beacon (chaos ``--partition`` injects this) silently
        skips the write — the file goes stale while the host keeps
        working, which reapers must tolerate.
        """
        now = time.monotonic()
        if self.frozen or (not force and now - self._last < self.interval):
            return
        self._last = now
        self._epoch += 1
        payload = {"host": self.host_id, "pid": os.getpid(),
                   "epoch": self._epoch, "wall": self.clock(),
                   "mono": now, "workers": list(self.workers)}
        tmp = f"{self.path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, self.path)
        except OSError:
            pass   # advisory: never take the farm down over a beacon


def read_beacons(dir) -> dict:
    """Every ``hosts/<host>.json`` payload, keyed by host id."""
    out: dict[str, dict] = {}
    try:
        names = os.listdir(os.fspath(dir))
    except OSError:
        return out
    for name in sorted(names):
        if not name.endswith(".json") or name.startswith("."):
            continue
        try:
            with open(os.path.join(os.fspath(dir), name)) as f:
                payload = json.load(f)
        except (OSError, ValueError):
            continue
        host = payload.get("host") or name[:-len(".json")]
        out[host] = payload
    return out


def estimate_skew(beacons: dict, *, host_id: str | None = None,
                  clock=None) -> dict:
    """Per-host wall-clock offset estimates, seconds, *relative to this
    process's clock* (positive = that host's clock runs ahead of ours).

    The estimate is ``beacon.wall - our wall at read`` and is therefore
    only a bound: it includes however long the beacon sat on disk
    (up to its write interval, or forever for a frozen beacon — which
    is why skew estimates feed diagnostics and ledger merging, never
    reaping).  Our own host reads as 0.0 by definition.
    """
    clock = clock or default_clock()
    host_id = host_id or default_host_id()
    now = clock()
    out: dict[str, float] = {}
    for host, payload in beacons.items():
        if host == host_id:
            out[host] = 0.0
            continue
        try:
            out[host] = round(float(payload["wall"]) - now, 3)
        except (KeyError, TypeError, ValueError):
            continue
    return out
