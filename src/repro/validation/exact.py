"""Closed-form reference solutions for viscous-solver validation."""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, InputError

__all__ = ["couette_velocity_profile", "couette_temperature_profile",
           "isentropic_nozzle_mach"]


def couette_velocity_profile(y, h, u_wall):
    """Incompressible constant-viscosity Couette flow: u = u_w y / h."""
    y = np.asarray(y, dtype=float)
    if h <= 0:
        raise InputError("gap height must be positive")
    return u_wall * y / h


def couette_temperature_profile(y, h, u_wall, *, T0, Th, mu, k):
    """Compressible-dissipation Couette temperature profile.

    For constant properties the energy equation integrates to::

        T(y) = T0 + (Th - T0) y/h + (mu u_w^2 / (2 k)) (y/h)(1 - y/h)

    — the classic viscous-dissipation parabola used to validate the
    NS solver's shear/heat coupling.
    """
    y = np.asarray(y, dtype=float)
    eta = y / h
    return (T0 + (Th - T0) * eta
            + mu * u_wall**2 / (2.0 * k) * eta * (1.0 - eta))


def isentropic_nozzle_mach(area_ratio, gamma=1.4, *, supersonic=True,
                           tol=1e-12, max_iter=200):
    """Mach number from the isentropic area-Mach relation A/A*.

    Parameters
    ----------
    area_ratio:
        A/A* >= 1.
    supersonic:
        Select the supersonic branch.
    """
    ar = float(area_ratio)
    if ar < 1.0:
        raise InputError("area ratio must be >= 1")
    if ar - 1.0 < 1e-14:
        # sonic throat: the two branches coalesce at M = 1
        return 1.0
    g = gamma

    def f(M):
        t = (2.0 / (g + 1.0)) * (1.0 + 0.5 * (g - 1.0) * M * M)
        return t ** ((g + 1.0) / (2.0 * (g - 1.0))) / M - ar

    lo, hi = (1.0 + 1e-12, 100.0) if supersonic else (1e-8, 1.0 - 1e-12)
    flo, fhi = f(lo), f(hi)
    if flo * fhi > 0:
        raise ConvergenceError("area-Mach bracketing failed")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fm = f(mid)
        if abs(fm) < tol:
            return mid
        if flo * fm < 0:
            hi, fhi = mid, fm
        else:
            lo, flo = mid, fm
    return 0.5 * (lo + hi)
