"""Dimension algebra and unit-tag parsing.

The codebase annotates quantities with bracket tags — ``[J/kg]``,
``[W/(m^2 K^4)]``, ``[1/mol]``, ``[-]`` — in docstrings and
``constants.py`` ``#:`` comments.  This module parses those tags into
:class:`Dim` vectors over the SI base dimensions (plus steradian,
kept distinct so radiance and flux don't alias).

Only *dimensions* are tracked, not scale factors: ``cm`` and ``m``
are the same dimension (scale bugs are a different tool), but
``J/mol`` vs ``J/kg`` — the classic molar/specific enthalpy mix-up —
differ and are flagged.

Grammar (whitespace = multiplication)::

    unit    := product ('/' product)*
    product := power+
    power   := atom ('^' signed-int)?
    atom    := NAME | '1' | '-' | '(' unit ')'
"""

from __future__ import annotations

import re

_BASES = ("kg", "m", "s", "K", "mol", "A", "sr")


class UnitParseError(ValueError):
    """A bracket tag that does not parse as a unit expression."""


class Dim:
    """Immutable vector of integer exponents over the base dimensions."""

    __slots__ = ("exps",)

    def __init__(self, **exps: int) -> None:
        bad = set(exps) - set(_BASES)
        if bad:
            raise ValueError(f"unknown base dimensions: {sorted(bad)}")
        object.__setattr__(self, "exps",
                           tuple(exps.get(b, 0) for b in _BASES))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Dim is immutable")

    @classmethod
    def _from_tuple(cls, t: tuple) -> "Dim":
        d = cls()
        object.__setattr__(d, "exps", t)
        return d

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim._from_tuple(tuple(a + b for a, b
                                     in zip(self.exps, other.exps)))

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim._from_tuple(tuple(a - b for a, b
                                     in zip(self.exps, other.exps)))

    def __pow__(self, n: int) -> "Dim":
        return Dim._from_tuple(tuple(a * n for a in self.exps))

    def __eq__(self, other) -> bool:
        return isinstance(other, Dim) and self.exps == other.exps

    def __hash__(self) -> int:
        return hash(self.exps)

    @property
    def dimensionless(self) -> bool:
        return all(e == 0 for e in self.exps)

    def __repr__(self) -> str:
        if self.dimensionless:
            return "[-]"
        num = " ".join(f"{b}^{e}" if e != 1 else b
                       for b, e in zip(_BASES, self.exps) if e > 0)
        den = " ".join(f"{b}^{-e}" if e != -1 else b
                       for b, e in zip(_BASES, self.exps) if e < 0)
        if num and den:
            return f"[{num}/({den})]" if " " in den else f"[{num}/{den}]"
        if num:
            return f"[{num}]"
        return f"[1/({den})]" if " " in den else f"[1/{den}]"


DIMENSIONLESS = Dim()

# Named units -> Dim.  Scale is intentionally ignored.
_KG, _M, _S, _K, _MOL, _A, _SR = (Dim(**{b: 1}) for b in _BASES)
_J = _KG * _M ** 2 / _S ** 2
_W = _J / _S
_N = _KG * _M / _S ** 2
_PA = _N / _M ** 2

UNITS: dict[str, Dim] = {
    "kg": _KG, "g": _KG, "amu": _KG,
    "m": _M, "cm": _M, "mm": _M, "um": _M, "km": _M, "nm": _M,
    "angstrom": _M, "ft": _M,
    "s": _S, "min": _S, "hr": _S, "h": _S,
    "K": _K, "eV_T": _K,
    "mol": _MOL, "kmol": _MOL,
    "A": _A,
    "sr": _SR,
    "J": _J, "erg": _J, "cal": _J, "kcal": _J, "eV": _J, "Btu": _J,
    "W": _W, "kW": _W, "MW": _W,
    "N": _N, "dyn": _N,
    "Pa": _PA, "kPa": _PA, "MPa": _PA, "bar": _PA, "atm": _PA,
    "Torr": _PA, "torr": _PA, "psi": _PA,
    "Hz": DIMENSIONLESS / _S,
    "C": _A * _S,
    "V": _W / _A,
    "rad": DIMENSIONLESS, "deg": DIMENSIONLESS,
    "%": DIMENSIONLESS,
}

_TOKEN_RE = re.compile(r"\s*(?:(?P<name>[A-Za-zµ%]+)|(?P<one>1)"
                       r"|(?P<op>[/()^-])|(?P<int>\d+))")


def _tokenize(text: str) -> list[str]:
    toks: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:
            raise UnitParseError(f"bad unit syntax at {text[pos:]!r}")
        toks.append(m.group().strip())
        pos = m.end()
    return toks


class _Parser:
    def __init__(self, toks: list[str]) -> None:
        self.toks = toks
        self.i = 0

    def peek(self) -> str | None:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise UnitParseError("unexpected end of unit")
        self.i += 1
        return tok

    def parse(self) -> Dim:
        d = self.expr()
        if self.peek() is not None:
            raise UnitParseError(f"trailing tokens: {self.toks[self.i:]}")
        return d

    def expr(self) -> Dim:
        d = self.product()
        while self.peek() == "/":
            self.next()
            d = d / self.product()
        return d

    def product(self) -> Dim:
        d = self.power()
        while self.peek() not in (None, "/", ")"):
            d = d * self.power()
        return d

    def power(self) -> Dim:
        d = self.atom()
        if self.peek() == "^":
            self.next()
            sign = 1
            tok = self.next()
            if tok == "-":
                sign = -1
                tok = self.next()
            if not tok.isdigit():
                raise UnitParseError(f"bad exponent {tok!r}")
            d = d ** (sign * int(tok))
        return d

    def atom(self) -> Dim:
        tok = self.next()
        if tok == "(":
            d = self.expr()
            if self.next() != ")":
                raise UnitParseError("unbalanced parentheses")
            return d
        if tok in ("1", "-"):
            return DIMENSIONLESS
        if tok in UNITS:
            return UNITS[tok]
        raise UnitParseError(f"unknown unit {tok!r}")


def parse_unit(text: str) -> Dim:
    """Parse the inside of a bracket tag, e.g. ``"J/(mol K)"``."""
    text = text.strip()
    if text in ("", "-", "1", "dimensionless"):
        return DIMENSIONLESS
    return _Parser(_tokenize(text)).parse()


_TAG_RE = re.compile(r"\[([^\][]{1,40})\]")


def find_unit_tag(text: str) -> Dim | None:
    """First parseable ``[unit]`` tag in a line of prose, else None.

    Non-unit brackets (citations, shapes) simply fail to parse and are
    skipped, so prose is safe to scan.
    """
    for m in _TAG_RE.finditer(text):
        try:
            return parse_unit(m.group(1))
        except UnitParseError:
            continue
    return None
