"""CFD numerics: fluxes, reconstruction, Riemann solvers, integrators.

The discretisation toolbox under the four solver families:

* upwind face fluxes — HLLE (any convex EOS), van Leer and Steger–Warming
  flux-vector splitting, AUSM+ (ideal gas),
* MUSCL reconstruction with TVD limiters,
* an exact ideal-gas Riemann solver for validation,
* explicit SSP Runge–Kutta time integration with CFL control,
* point-implicit source treatment and (block-)tridiagonal solvers for the
  stiff chemistry and line-implicit viscous terms.
"""

from repro.numerics.fluxes import (euler_flux, hlle_flux, primitives,
                                   rotate_to_normal, rotate_from_normal)
from repro.numerics.upwind import (ausm_plus_flux, steger_warming_flux,
                                   van_leer_flux)
from repro.numerics.limiters import minmod, superbee, van_albada, van_leer
from repro.numerics.muscl import muscl_interface_states
from repro.numerics.riemann import exact_riemann, sample_riemann, sod_exact
from repro.numerics.time_integration import (cfl_timestep_1d,
                                             ssp_rk2_step, ssp_rk3_step)
from repro.numerics.interp import interp_columns
from repro.numerics.tridiag import block_thomas, thomas
from repro.numerics.implicit import point_implicit_species_update
from repro.numerics.safety import (TINY, clamp_positive, safe_div,
                                   safe_log, safe_sqrt)

__all__ = [
    "euler_flux", "hlle_flux", "primitives", "rotate_to_normal",
    "rotate_from_normal", "ausm_plus_flux", "steger_warming_flux",
    "van_leer_flux", "minmod", "superbee", "van_albada", "van_leer",
    "muscl_interface_states", "exact_riemann", "sample_riemann",
    "sod_exact", "cfl_timestep_1d", "ssp_rk2_step", "ssp_rk3_step",
    "block_thomas", "thomas", "interp_columns",
    "point_implicit_species_update",
    "TINY", "clamp_positive", "safe_div", "safe_log", "safe_sqrt",
]
