"""Quickstart: the CAT toolkit in five minutes.

Walks the core layers bottom-up: equilibrium air chemistry, shock
relations, entry heating, and a small shock-capturing CFD run — each step
printing the numbers a hypersonics engineer would sanity-check.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.core.gas import IdealGasEOS
from repro.heating import sutton_graves_heating
from repro.postprocess.tables import format_table
from repro.solvers.euler1d import Euler1DSolver
from repro.solvers.shock import equilibrium_normal_shock, normal_shock_ideal
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set


def main():
    # ------------------------------------------------------------------
    # 1. equilibrium air chemistry
    # ------------------------------------------------------------------
    db = species_set("air11")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    print("1) Equilibrium air composition at 1 atm:")
    rows = []
    for T in (300.0, 3000.0, 5000.0, 8000.0, 12000.0):
        y, rho = gas.composition_T_p(np.array(T), np.array(101325.0))
        x = db.mass_to_mole(np.atleast_2d(y))[0]
        rows.append((T, float(x[db.index['N2']]),
                     float(x[db.index['O2']]), float(x[db.index['O']]),
                     float(x[db.index['N']]),
                     float(x[db.index['e-']])))
    print(format_table(["T [K]", "x_N2", "x_O2", "x_O", "x_N", "x_e-"],
                       rows, floatfmt=".3g"))

    # ------------------------------------------------------------------
    # 2. real-gas shock physics (the Fig. 4 effect)
    # ------------------------------------------------------------------
    atm = EarthAtmosphere()
    h, V = 65500.0, 6700.0
    rho_inf = float(atm.density(h))
    T_inf = float(atm.temperature(h))
    M = float(atm.mach_number(V, h))
    ideal = normal_shock_ideal(M)
    eq = equilibrium_normal_shock(gas, rho_inf, T_inf, V)
    print(f"\n2) Normal shock at V={V:.0f} m/s, h={h / 1e3:.1f} km "
          f"(M={M:.1f}):")
    print(f"   ideal gas:       T2 = {T_inf * ideal['T_ratio']:8.0f} K, "
          f"rho2/rho1 = {float(ideal['rho_ratio']):.2f}")
    print(f"   equilibrium air: T2 = {eq['T2']:8.0f} K, "
          f"rho2/rho1 = {1.0 / eq['eps']:.2f}   <- chemistry absorbs the "
          f"shock heating")

    # ------------------------------------------------------------------
    # 3. entry heating
    # ------------------------------------------------------------------
    q = float(sutton_graves_heating(rho_inf, V, 1.3))
    print(f"\n3) Stagnation heating (Sutton-Graves, R_n=1.3 m): "
          f"{q / 1e4:.1f} W/cm^2")

    # ------------------------------------------------------------------
    # 4. a CFD run: Sod shock tube vs the exact solution
    # ------------------------------------------------------------------
    x = np.linspace(0.0, 1.0, 201)
    xc = 0.5 * (x[1:] + x[:-1])
    solver = Euler1DSolver(x, IdealGasEOS(1.4))
    solver.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                       np.where(xc < 0.5, 1.0, 0.1))
    solver.run(0.2)
    from repro.numerics.riemann import sod_exact
    rho, u, p = solver.primitives()
    re, _, _ = sod_exact(solver.xc, 0.2)
    print(f"\n4) Sod shock tube, 200 cells, MUSCL+HLLE: "
          f"L1 density error = {np.abs(rho - re).mean():.4f} "
          f"({solver.steps} steps)")
    print("\nNext: python -m repro.experiments.runner   "
          "(regenerates every paper figure)")


if __name__ == "__main__":
    main()
