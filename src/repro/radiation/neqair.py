"""NEQAIR-lite: nonequilibrium radiation from two-temperature flowfields.

The paper couples "a nonequilibrium radiation analysis (Ref. 23, Park's
NEQAIR)" to the shock-relaxation flowfield to predict shock-tube emission
spectra (Fig. 8).  In the two-temperature quasi-steady-state picture the
electronic states are populated at the vibrational-electronic temperature
Tv, so the emission model is simply evaluated with ``T_ex = Tv`` layer by
layer; this module walks a relaxation profile and produces

* the line-of-sight spectral radiance (what a shock-tube spectrometer
  sees),
* the wall-directed integrated flux via the tangent slab.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError
from repro.radiation.spectra import EmissionModel
from repro.radiation.tangent_slab import tangent_slab_flux
from repro.thermo.species import SpeciesDB

__all__ = ["NonequilibriumRadiator"]


class NonequilibriumRadiator:
    """Spectral radiation along two-temperature profiles."""

    def __init__(self, db: SpeciesDB, *, include_lines: bool = True):
        self.db = db
        self.model = EmissionModel(db, include_lines=include_lines)

    def spectral_radiance(self, x, rho, y, T_ex, wavelengths):
        """Line-of-sight radiance [W/(m^2 sr m)] through a 1-D profile.

        Optically thin integration of j_lambda along x (the shock-tube
        configuration: the spectrometer views across the relaxing slug).

        Parameters
        ----------
        x:
            Positions along the line of sight [m], (nx,).
        rho, y, T_ex:
            Profile of density, mass fractions (nx, ns) and excitation
            temperature (nx,).
        wavelengths:
            Grid [m], (nw,).
        """
        x = np.asarray(x, dtype=float)
        if np.any(np.diff(x) <= 0):
            raise InputError("x must be strictly increasing")
        n = self.model.number_densities(rho, y)
        j = self.model.emission_coefficient(wavelengths, n, T_ex)
        return np.trapezoid(j, x, axis=0)

    def wall_flux(self, y_coord, rho, y, T, T_ex, wavelengths, *,
                  optically_thin=False):
        """Tangent-slab wall flux from a shock-layer profile.

        Returns (q_total [W/m^2], q_lambda at the wall).
        """
        n = self.model.number_densities(rho, y)
        j = self.model.emission_coefficient(wavelengths, n, T_ex)
        return tangent_slab_flux(y_coord, j, T, wavelengths,
                                 optically_thin=optically_thin)

    def from_relaxation_profile(self, profile, wavelengths):
        """Spectral radiance seen across a shock-relaxation profile.

        ``profile`` is a
        :class:`repro.solvers.shock_relaxation.RelaxationProfile`.
        """
        return self.spectral_radiance(profile.x, profile.rho, profile.y,
                                      profile.Tv, wavelengths)
