"""MUSCL interface reconstruction.

Second-order TVD reconstruction of interface states from cell averages
along one axis, with any limiter from :mod:`repro.numerics.limiters`.
First-order (no reconstruction) is a degenerate case used near boundaries
and for the most violent transients.
"""

from __future__ import annotations

import numpy as np

from repro.numerics.limiters import minmod

__all__ = ["muscl_interface_states"]


def muscl_interface_states(W, *, axis: int = 0, limiter=minmod,
                           order: int = 2, first_order_mask=None):
    """Left/right states at the interior faces along ``axis``.

    Parameters
    ----------
    W:
        Cell-centred array; reconstruction acts along ``axis`` and leaves
        other axes (including a trailing variable axis) untouched.
    limiter:
        Slope limiter (two-argument form).
    order:
        1 (piecewise constant) or 2 (MUSCL).
    first_order_mask:
        Optional boolean cell mask (indexed like ``W`` *without* the
        trailing variable axis, or 1-D along ``axis``).  Slopes of masked
        cells are zeroed, degrading reconstruction to first order locally
        — the resilience layer's quarantine zone around watchdog-flagged
        cells.  ``None`` (the default) adds no work.

    Returns
    -------
    (WL, WR):
        States on the left/right side of each of the ``n-1`` interior
        faces (arrays with ``n-1`` entries along ``axis``).
    """
    W = np.asarray(W, dtype=float)
    W = np.moveaxis(W, axis, 0)
    n = W.shape[0]
    if n < 2:
        raise ValueError("need at least two cells to form a face")
    if order == 1 or n < 3:
        WL = W[:-1]
        WR = W[1:]
    else:
        d = W[1:] - W[:-1]                      # n-1 differences
        # limited slope per interior cell (cells 1..n-2)
        slope = limiter(d[:-1], d[1:])          # n-2 slopes
        slopes = np.concatenate([np.zeros_like(W[:1]), slope,
                                 np.zeros_like(W[:1])], axis=0)
        if first_order_mask is not None:
            mask = np.asarray(first_order_mask, dtype=bool)
            if mask.ndim > 1:
                mask = np.moveaxis(mask, axis, 0)
            # broadcast over any axes the mask doesn't carry (trailing
            # variable axis, and cross-axes for a 1-D mask)
            mask = mask.reshape(mask.shape + (1,) * (W.ndim - mask.ndim))
            slopes = np.where(mask, 0.0, slopes)
        WL = W[:-1] + 0.5 * slopes[:-1]
        WR = W[1:] - 0.5 * slopes[1:]
    return (np.moveaxis(WL, 0, axis), np.moveaxis(WR, 0, axis))
