"""Axisymmetric body geometries for the blunt-body and marching solvers."""

from repro.geometry.bodies import (AxisymBody, Hemisphere, Sphere,
                                   SphereCone, Biconic)
from repro.geometry.orbiter import OrbiterWindwardProfile

__all__ = ["AxisymBody", "Sphere", "Hemisphere", "SphereCone", "Biconic",
           "OrbiterWindwardProfile"]
