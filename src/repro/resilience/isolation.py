"""Process-level isolation: sandboxed solves under deadline, memory
budget and heartbeat supervision.

The in-process resilience ladder (rollback-retry, degradation,
durable persistence) recovers from *numerical* and *crash* failures —
but a solve that **hangs** (livelocked implicit sub-solve, a process
SIGSTOPped by an operator, a stuck Newton continuation) or **leaks
memory** until the kernel OOM killer fires still takes the whole
process, and every figure queued behind it, down with it.  Production
hypersonic codes run solves as supervised jobs with wall-clock budgets;
this module brings that operational layer to `repro` with nothing
beyond the standard library and ``/proc``:

* :class:`Heartbeat` — a tiny file-based liveness channel the child
  touches every supervised marching step (throttled, atomic writes);
* :class:`IsolationPolicy` — the budgets: wall-clock **deadline**, RSS
  **memory budget** (polled from ``/proc/<pid>/status``, falling back
  to the child's self-reported ``getrusage`` numbers), heartbeat
  **stall timeout** (a hang is declared after silence, not just total
  elapsed time) and a bounded **restart budget**;
* :class:`IsolationEvent` — the typed record (``hang`` / ``oom`` /
  ``deadline`` / ``crash``) every kill leaves behind;
* :class:`IsolatedRunner` — executes any persist-protocol marching
  solver (:meth:`IsolatedRunner.run_solver`) or an arbitrary callable
  (:meth:`IsolatedRunner.run_callable`, used by the figure suite and
  the high-level API) in a supervised child process.  On a violation
  the child is SIGCONT+SIGTERMed, then SIGKILLed after a grace period
  (its whole process group, so grandchildren die too), the event is
  recorded, and the solve is **auto-resumed in a fresh child from the
  durable** :class:`~repro.resilience.persistence.SnapshotStore` —
  optionally down a tightened ladder (lower CFL, degradation
  pre-armed).  A wedged solve becomes a resumed solve, not an abort;
  only restart-budget exhaustion raises, and then with a
  :class:`~repro.resilience.report.FailureReport` carrying every
  isolation event (and the exact fault schedule, when one was armed).

The chaos harness (:mod:`repro.resilience.chaos`, ``python -m repro
chaos``) drives random fault schedules through this runner and asserts
the invariants hold round after round.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field

import multiprocessing as mp

from repro.errors import CheckpointError, SolverError
from repro.resilience.report import FailureReport

__all__ = ["Heartbeat", "IsolationEvent", "IsolationPolicy",
           "IsolatedRunner", "current_process_cancel",
           "current_process_heartbeat", "set_process_cancel",
           "set_process_heartbeat", "signal_group", "kill_pid_tree",
           "terminate_process"]


# ----------------------------------------------------------------------
# RSS introspection (no third-party deps)
# ----------------------------------------------------------------------

def _read_rss_mb(pid: int | None = None) -> float | None:
    """Resident set size in MiB via ``/proc/<pid>/status`` (``VmRSS``).

    For the calling process itself (``pid=None``) falls back to
    ``resource.getrusage`` (peak RSS — good enough for budget checks)
    where ``/proc`` is unavailable.  Returns None when nothing works.
    """
    path = f"/proc/{pid}/status" if pid is not None else "/proc/self/status"
    try:
        with open(path) as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    if pid is None:
        try:
            import resource
            return resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss / 1024.0
        except (ImportError, OSError, ValueError):
            return None
    return None


# ----------------------------------------------------------------------
# heartbeat channel
# ----------------------------------------------------------------------

class Heartbeat:
    """File-based liveness channel between a supervised child and its
    parent.

    The child calls :meth:`beat` every supervised marching step (the
    supervisor does it automatically); the write is throttled to
    ``min_interval`` and atomic (temp file + rename) so the parent
    never reads a torn payload.  The parent does not compare clocks —
    it watches the payload *change* and timestamps changes with its own
    monotonic clock, so no cross-process time agreement is needed.

    The payload attributes the beat to its writer (``pid``, plus an
    optional ``host``) so a shared-directory farm can tell *whose*
    heartbeat file it is looking at after workers die and are replaced.
    """

    def __init__(self, path, *, min_interval: float = 0.02,
                 host: str | None = None):
        self.path = os.fspath(path)
        self.min_interval = float(min_interval)
        self.host = host
        self._last = 0.0
        self._seq = 0
        self._progress: dict | None = None
        self.beat(force=True)

    def beat(self, *, step: int | None = None, force: bool = False,
             progress: dict | None = None):
        """Record liveness (rate-limited unless ``force``).

        ``progress`` attaches a JSON-able payload (march step / time /
        residual, published by the run supervisor) that *sticks*: later
        beats without one re-publish the last progress, so a throttled
        or forced renewal beat never blanks what ``jobs status`` shows.
        """
        if progress is not None:
            self._progress = dict(progress)
        now = time.monotonic()
        if not force and now - self._last < self.min_interval:
            return
        self._last = now
        self._seq += 1
        payload = {"seq": self._seq,
                   "step": None if step is None else int(step),
                   "rss_mb": _read_rss_mb(),
                   "pid": os.getpid()}
        if self._progress is not None:
            payload["progress"] = self._progress
        if self.host is not None:
            payload["host"] = self.host
        tmp = f"{self.path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, self.path)
        except OSError:
            pass  # liveness is advisory; never kill the solve over it


#: Process-global heartbeat: set inside an isolated child so every
#: supervised march (and supervised_call ladder) in that process beats
#: without each call site having to thread the object through.
_PROCESS_HEARTBEAT: Heartbeat | None = None


def set_process_heartbeat(hb: Heartbeat | None):
    """Install (or clear) the process-global heartbeat."""
    global _PROCESS_HEARTBEAT
    _PROCESS_HEARTBEAT = hb


def current_process_heartbeat() -> Heartbeat | None:
    """The heartbeat installed for this process, if any."""
    return _PROCESS_HEARTBEAT


#: Process-global cancellation hook: a callable returning a reason
#: string when the current run should stop (None/"" = keep going).
#: The async-job executor installs a throttled cancel-flag file poll
#: here; RunSupervisor.march checks it once per iteration, the same
#: pattern as the process heartbeat.
_PROCESS_CANCEL = None


def set_process_cancel(fn) -> None:
    """Install (or clear, with None) the process-global cancel hook."""
    global _PROCESS_CANCEL
    _PROCESS_CANCEL = fn


def current_process_cancel():
    """The cancel hook installed for this process, if any."""
    return _PROCESS_CANCEL


# ----------------------------------------------------------------------
# process-tree killing (one code path for every supervisor)
# ----------------------------------------------------------------------

def signal_group(pid: int | None, sig: int) -> None:
    """Deliver ``sig`` to ``pid``'s process group, falling back to the
    process alone while it has not yet moved into its own group."""
    if pid is None:
        return
    try:
        os.killpg(pid, sig)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            os.kill(pid, sig)
        except (ProcessLookupError, OSError):
            pass


def terminate_process(proc, *, grace: float = 2.0) -> None:
    """SIGTERM -> grace -> SIGKILL a ``multiprocessing.Process`` and its
    whole group; SIGCONT alongside so a SIGSTOPped tree still dies.

    Used by :class:`IsolatedRunner` on budget violations and by the
    farm supervisor (:mod:`repro.resilience.farm`) on worker kills —
    the same escalation everywhere a child must die.
    """
    signal_group(proc.pid, signal.SIGTERM)
    signal_group(proc.pid, signal.SIGCONT)
    proc.join(grace)
    if proc.is_alive():
        signal_group(proc.pid, signal.SIGKILL)
        signal_group(proc.pid, signal.SIGCONT)
        proc.join(10.0)
    proc.join(0.1)   # reap


def kill_pid_tree(pid: int | None) -> None:
    """SIGKILL a process group we cannot ``join`` (not our direct
    child): the farm uses this to take down the orphaned sandbox
    children of a SIGKILLed worker."""
    signal_group(pid, signal.SIGKILL)
    signal_group(pid, signal.SIGCONT)


# ----------------------------------------------------------------------
# policy and events
# ----------------------------------------------------------------------

@dataclass
class IsolationPolicy:
    """Budgets and knobs of a sandboxed solve.

    Attributes
    ----------
    deadline:
        Wall-clock budget per attempt [s]; None = unlimited.
    memory_mb:
        RSS budget [MiB] for the child; None = unlimited.  Note that a
        fork child initially *shares* its parent's resident pages, so
        absolute budgets should be set relative to the parent's own RSS
        (see :func:`_read_rss_mb`).
    stall_timeout:
        Heartbeat silence [s] after which the child is declared hung.
        None disables hang detection (the right default for callables
        that never beat); marching solves under
        :meth:`IsolatedRunner.run_solver` beat every supervised step.
    max_restarts:
        Fresh children spawned after kills before the runner gives up
        and raises with a report.  0 = one attempt, no resume.
    poll_interval:
        Parent supervision poll period [s].
    term_grace:
        Seconds between SIGTERM and SIGKILL escalation.
    every_n_steps:
        Durable snapshot cadence the child marches with (the resume
        granularity after a kill).
    cfl_tighten:
        Multiplier applied to the run's ``cfl`` on every restart (< 1
        re-enters the march more conservatively after a kill).
    prearm_degradation:
        Arm the graceful-degradation cascade on restarted attempts even
        when the original call did not request it.
    heartbeat_interval:
        Child-side beat throttle [s].
    """

    deadline: float | None = None
    memory_mb: float | None = None
    stall_timeout: float | None = None
    max_restarts: int = 2
    poll_interval: float = 0.05
    term_grace: float = 2.0
    every_n_steps: int = 10
    cfl_tighten: float = 1.0
    prearm_degradation: bool = False
    heartbeat_interval: float = 0.02


def as_isolation(value) -> IsolationPolicy | None:
    """Coerce ``None`` / ``True`` / policy into an optional policy."""
    if value is None or value is False:
        return None
    if value is True:
        return IsolationPolicy()
    if isinstance(value, IsolationPolicy):
        return value
    raise SolverError(f"cannot interpret {value!r} as an IsolationPolicy")


@dataclass
class IsolationEvent:
    """One kill (or child death) observed by the supervising parent.

    ``kind`` is one of ``"hang"`` (heartbeat silence beyond the stall
    timeout), ``"oom"`` (RSS budget exceeded), ``"deadline"``
    (wall-clock budget exceeded) or ``"crash"`` (the child died on its
    own — non-zero exit or a signal).
    """

    kind: str
    attempt: int
    elapsed: float
    message: str
    step: int | None = None
    rss_mb: float | None = None
    exitcode: int | None = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "attempt": int(self.attempt),
                "elapsed": round(float(self.elapsed), 3),
                "message": self.message, "step": self.step,
                "rss_mb": (None if self.rss_mb is None
                           else round(float(self.rss_mb), 1)),
                "exitcode": self.exitcode}


# ----------------------------------------------------------------------
# child mains (run under the fork start method: no pickling of targets)
# ----------------------------------------------------------------------

def _enter_sandbox(hb_path, heartbeat_interval):
    """Common child prologue: own process group + process heartbeat."""
    try:
        os.setpgid(0, 0)   # so the parent can kill the whole group
    except OSError:
        pass
    hb = Heartbeat(hb_path, min_interval=heartbeat_interval)
    set_process_heartbeat(hb)
    return hb


def _write_error(err_path, exc):
    try:
        with open(err_path, "w") as f:
            f.write("".join(traceback.format_exception(exc)))
    except OSError:
        pass


def _solver_child(factory, run_kwargs, ckpt_dir, hb_path, err_path,
                  faults, resilience, watchdog, degradation,
                  heartbeat_interval, every_n_steps):
    """Build the solver and march it durably inside the sandbox."""
    from repro.resilience.persistence import PersistencePolicy
    hb = _enter_sandbox(hb_path, heartbeat_interval)
    try:
        solver = factory()
        policy = PersistencePolicy(dir=ckpt_dir,
                                   every_n_steps=int(every_n_steps))
        solver.run(**dict(run_kwargs or {}), persist=policy,
                   heartbeat=hb, faults=faults, resilience=resilience,
                   watchdog=watchdog, degradation=degradation)
        sys.exit(0)
    except SystemExit:
        raise
    # catlint: disable=CAT012 -- sandbox child boundary: every failure,
    # *including* SimulatedCrash, must become a written traceback plus a
    # nonzero exit so the supervising parent sees a crash, not a hang
    except BaseException as exc:
        _write_error(err_path, exc)
        sys.exit(70)


def _callable_child(fn, args, kwargs, res_path, hb_path, err_path,
                    heartbeat_interval):
    """Run ``fn`` in the sandbox and pickle its result for the parent."""
    _enter_sandbox(hb_path, heartbeat_interval)
    try:
        out = fn(*args, **dict(kwargs or {}))
        tmp = f"{res_path}.tmp"
        with open(tmp, "wb") as f:
            pickle.dump(out, f)
        os.replace(tmp, res_path)
        sys.exit(0)
    except SystemExit:
        raise
    # catlint: disable=CAT012 -- sandbox child boundary: every failure
    # must become a written traceback plus a nonzero exit (see
    # _solver_child)
    except BaseException as exc:
        _write_error(err_path, exc)
        sys.exit(70)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

class IsolatedRunner:
    """Supervised, sandboxed execution with auto-resume.

    Parameters
    ----------
    policy:
        An :class:`IsolationPolicy` (or None / True for defaults).
    label:
        Name used in events, errors and reports.

    After a run, :attr:`events` holds every :class:`IsolationEvent`
    observed (empty for an undisturbed solve).
    """

    def __init__(self, policy: IsolationPolicy | None = None, *,
                 label: str | None = None):
        self.policy = as_isolation(policy) or IsolationPolicy()
        self.label = label or "isolated"
        self.events: list[IsolationEvent] = []

    # -- supervision core ----------------------------------------------

    def _spawn(self, target, args):
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=target, args=args, daemon=False)
        proc.start()
        return proc

    def _kill(self, proc):
        """SIGTERM -> grace -> SIGKILL; SIGCONT first so a stopped
        (SIGSTOPped) child can actually receive the termination."""
        terminate_process(proc, grace=self.policy.term_grace)

    def _read_beat(self, hb_path):
        try:
            with open(hb_path, "rb") as f:
                return f.read()
        except OSError:
            return None

    def _parse_beat(self, raw):
        if not raw:
            return {}
        try:
            return json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError):
            return {}

    def _supervise(self, proc, hb_path, attempt) -> IsolationEvent | None:
        """Watch one child until clean exit (None) or violation/death
        (the recorded :class:`IsolationEvent`; the child is dead on
        return either way)."""
        pol = self.policy
        t0 = time.monotonic()
        last_raw = self._read_beat(hb_path)
        last_change = t0
        while True:
            proc.join(pol.poll_interval)
            now = time.monotonic()
            raw = self._read_beat(hb_path)
            if raw != last_raw:
                last_raw, last_change = raw, now
            beat = self._parse_beat(last_raw)
            if not proc.is_alive():
                if proc.exitcode == 0:
                    return None
                code = proc.exitcode
                sig_note = (f"signal {-code}" if code is not None
                            and code < 0 else f"exit code {code}")
                ev = IsolationEvent(
                    kind="crash", attempt=attempt, elapsed=now - t0,
                    step=beat.get("step"), rss_mb=beat.get("rss_mb"),
                    exitcode=code,
                    message=f"{self.label}: child died with {sig_note}")
                self.events.append(ev)
                return ev
            rss = _read_rss_mb(proc.pid)
            if rss is None:
                rss = beat.get("rss_mb")
            violation = None
            if pol.deadline is not None and now - t0 > pol.deadline:
                violation = ("deadline",
                             f"{self.label}: wall-clock deadline "
                             f"{pol.deadline:.1f} s exceeded")
            elif (pol.memory_mb is not None and rss is not None
                    and rss > pol.memory_mb):
                violation = ("oom",
                             f"{self.label}: RSS {rss:.0f} MiB exceeds "
                             f"budget {pol.memory_mb:.0f} MiB")
            elif (pol.stall_timeout is not None
                    and now - last_change > pol.stall_timeout):
                violation = ("hang",
                             f"{self.label}: no heartbeat for "
                             f"{now - last_change:.1f} s (stall timeout "
                             f"{pol.stall_timeout:.1f} s)")
            if violation is None:
                continue
            kind, msg = violation
            self._kill(proc)
            ev = IsolationEvent(kind=kind, attempt=attempt,
                                elapsed=now - t0, step=beat.get("step"),
                                rss_mb=rss, exitcode=proc.exitcode,
                                message=msg)
            self.events.append(ev)
            return ev

    def _read_error_tail(self, err_path) -> str:
        try:
            with open(err_path) as f:
                lines = f.read().strip().splitlines()
            return lines[-1] if lines else ""
        except OSError:
            return ""

    def _exhausted(self, faults=None) -> SolverError:
        """Typed abort: restart budget gone; report carries the events
        (and, when a fault injector was armed, its exact schedule)."""
        last = self.events[-1] if self.events else None
        report = FailureReport(
            label=self.label,
            error=(last.message if last is not None
                   else f"{self.label}: isolation budget exhausted"),
            step=None if last is None else last.step,
            attempts=[e.to_dict() for e in self.events],
            isolation=[e.to_dict() for e in self.events],
            fault_schedule=(None if faults is None
                            or not hasattr(faults, "to_json")
                            else faults.to_json()))
        err = SolverError(
            f"{self.label}: isolated solve killed "
            f"{len(self.events)} time(s) "
            f"({'/'.join(e.kind for e in self.events)}) and the restart "
            f"budget ({self.policy.max_restarts}) is exhausted",
            exitcode=None if last is None else last.exitcode)
        err.report = report
        return err

    # -- public API -----------------------------------------------------

    def run_solver(self, factory, run_kwargs: dict | None = None, *,
                   workdir, faults=None, resilience=None, watchdog=None,
                   degradation=None, on_spawn=None):
        """March ``factory()`` to completion inside supervised children.

        Parameters
        ----------
        factory:
            Zero-argument callable building a fresh, initialised
            persist-protocol solver (euler1d, euler2d/ns2d,
            reacting_euler2d).  Runs inside the child (fork start
            method: no pickling needed).
        run_kwargs:
            Keyword arguments for ``solver.run`` (``cfl`` is tightened
            by ``policy.cfl_tighten`` on every restart).
        workdir:
            Directory for the durable snapshot ladder, heartbeat file
            and error notes.  The snapshots are what a fresh child
            resumes from after a kill.
        faults:
            Optional :class:`~repro.resilience.faults.FaultInjector`
            armed **only for the first attempt** — the model is a
            transient upset; restarted children run clean and replay
            from the last durable snapshot.
        resilience, watchdog, degradation:
            Passed through to ``solver.run`` in the child; with
            ``policy.prearm_degradation`` restarts force the cascade on.
        on_spawn:
            Optional ``on_spawn(pid, attempt)`` hook called right after
            each child starts (ops/testing: pin, trace or — in the test
            suite — SIGSTOP it).

        Returns the completed solver, rebuilt bit-for-bit from the
        final durable snapshot, with ``solver.isolation_events`` set.
        Raises :class:`~repro.errors.SolverError` (with a
        :class:`~repro.resilience.report.FailureReport`) only when the
        restart budget is exhausted.
        """
        from repro.resilience.persistence import (PersistencePolicy,
                                                  SnapshotStore,
                                                  rebuild_solver)
        pol = self.policy
        self.events = []
        workdir = os.fspath(workdir)
        os.makedirs(workdir, exist_ok=True)
        ckpt_dir = os.path.join(workdir, "ckpt")
        hb_path = os.path.join(workdir, "heartbeat.json")
        kwargs = dict(run_kwargs or {})
        for attempt in range(pol.max_restarts + 1):
            err_path = os.path.join(workdir, f"attempt-{attempt}.err")
            if attempt > 0:
                # catlint: disable=CAT010 -- 1.0 is the exact no-op
                # default sentinel, never a computed value
                if "cfl" in kwargs and pol.cfl_tighten != 1.0:
                    kwargs["cfl"] = float(kwargs["cfl"]) * pol.cfl_tighten
                if pol.prearm_degradation and degradation is None:
                    degradation = True
            proc = self._spawn(_solver_child, (
                factory, kwargs, ckpt_dir, hb_path, err_path,
                faults if attempt == 0 else None, resilience, watchdog,
                degradation, pol.heartbeat_interval, pol.every_n_steps))
            try:
                if on_spawn is not None:
                    on_spawn(proc.pid, attempt)
                ev = self._supervise(proc, hb_path, attempt)
            finally:
                if proc.is_alive():   # supervisor itself raised
                    self._kill(proc)
            if ev is None:
                store = SnapshotStore(PersistencePolicy(dir=ckpt_dir))
                try:
                    snap = store.load_latest()
                except CheckpointError:
                    snap = None
                if snap is not None and snap.completed:
                    solver = rebuild_solver(snap)
                    solver.converged = snap.converged
                    solver.isolation_events = [e.to_dict()
                                               for e in self.events]
                    return solver
                # clean exit but the completed generation is missing or
                # failed verification (e.g. a torn/corrupt tail): treat
                # like a crash and let a fresh child re-march from the
                # newest valid snapshot
                ev = IsolationEvent(
                    kind="crash", attempt=attempt, elapsed=0.0,
                    exitcode=0,
                    message=(f"{self.label}: child exited cleanly but "
                             f"left no completed snapshot in "
                             f"{ckpt_dir!r} (corrupt or missing tail)"))
                self.events.append(ev)
                continue
            if ev.kind == "crash":
                tail = self._read_error_tail(err_path)
                if tail:
                    ev.message = f"{ev.message}: {tail}"
        raise self._exhausted(faults)

    def run_callable(self, fn, args: tuple = (), kwargs: dict | None
                     = None, *, workdir=None, on_spawn=None):
        """Run ``fn(*args, **kwargs)`` sandboxed; return its (pickled)
        result.

        Restarts call ``fn`` again from scratch — idempotent work only
        (the figure suite qualifies: durable done-markers and solver
        snapshots make re-entry cheap).  Hang detection applies only
        when ``policy.stall_timeout`` is set *and* the callable beats
        (supervised marches inside it do, via the process heartbeat).
        """
        pol = self.policy
        self.events = []
        own_tmp = None
        if workdir is None:
            own_tmp = tempfile.TemporaryDirectory(prefix="repro-isolate-")
            workdir = own_tmp.name
        workdir = os.fspath(workdir)
        os.makedirs(workdir, exist_ok=True)
        hb_path = os.path.join(workdir, "heartbeat.json")
        res_path = os.path.join(workdir, "result.pkl")
        try:
            for attempt in range(pol.max_restarts + 1):
                err_path = os.path.join(workdir,
                                        f"attempt-{attempt}.err")
                try:
                    os.remove(res_path)
                except OSError:
                    pass
                proc = self._spawn(_callable_child, (
                    fn, args, kwargs, res_path, hb_path, err_path,
                    pol.heartbeat_interval))
                try:
                    if on_spawn is not None:
                        on_spawn(proc.pid, attempt)
                    ev = self._supervise(proc, hb_path, attempt)
                finally:
                    if proc.is_alive():
                        self._kill(proc)
                if ev is None:
                    try:
                        with open(res_path, "rb") as f:
                            return pickle.load(f)
                    except (OSError, pickle.UnpicklingError, EOFError) \
                            as exc:
                        raise SolverError(
                            f"{self.label}: isolated child exited "
                            f"cleanly but its result could not be "
                            f"read back: {exc}") from exc
                if ev.kind == "crash":
                    tail = self._read_error_tail(err_path)
                    if tail:
                        ev.message = f"{ev.message}: {tail}"
            raise self._exhausted()
        finally:
            if own_tmp is not None:
                own_tmp.cleanup()
