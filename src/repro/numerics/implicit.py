"""Point-implicit treatment of stiff chemistry source terms.

"The species equations are often effectively uncoupled from the flowfield
equations and solved separately in a 'loosely' coupled manner, often by a
different (typically implicit) numerical technique" — this module is that
technique: the species sub-step solves

    (I - dt * dw/dy) dy = dt * w / rho

cell by cell (batched over the grid), which removes the chemical-time-scale
stability limit from the flow solver's CFL condition.
"""

from __future__ import annotations

import numpy as np

from repro.thermo.kinetics import ReactionMechanism

__all__ = ["point_implicit_species_update"]


def point_implicit_species_update(mech: ReactionMechanism, rho, T, y, dt,
                                  Tv=None, *, limit: bool = True):
    """One backward-Euler-linearised chemistry sub-step.

    The linear solve conserves mass and elements *exactly* (every row sum
    and element-weighted sum of the source Jacobian vanishes because
    ``wdot`` does), so positivity is enforced by **uniformly scaling the
    update** rather than by clipping individual species — clipping plus
    renormalisation would silently move atoms between elements whenever
    the linearisation overshoots (e.g. when ``(I - dt J)`` is nearly
    singular off-equilibrium), corrupting the state onto the equilibrium
    manifold of a *different* mixture.

    Parameters
    ----------
    mech:
        Reaction mechanism.
    rho, T, y:
        State arrays; y has the trailing species axis.
    dt:
        Time step (scalar or per-cell array).
    Tv:
        Optional vibrational temperature for two-temperature rates.
    limit:
        Apply the positivity step limiter (fraction of the full Newton-like
        step such that no species drops below 10% of its current value
        when heading negative).

    Returns
    -------
    Updated mass fractions with the same shape as ``y``.
    """
    y = np.asarray(y, dtype=float)
    rho = np.asarray(rho, dtype=float)
    dt_arr = np.broadcast_to(np.asarray(dt, dtype=float), rho.shape)
    w = mech.wdot(rho, T, y, Tv) / rho[..., None]
    J = mech.jacobian_y(rho, T, y, Tv) / rho[..., None, None]
    ns = mech.db.n
    A = np.eye(ns) - dt_arr[..., None, None] * J
    rhs = dt_arr[..., None] * w
    dy = np.linalg.solve(A, rhs[..., None])[..., 0]
    if limit:
        # largest theta in (0, 1] keeping y + theta dy >= 0 with margin
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(dy < 0.0, -(y + 1e-16) / dy, np.inf)
        theta = np.minimum(1.0, 0.9 * np.min(ratio, axis=-1))
        theta = np.maximum(theta, 0.0)
        dy = theta[..., None] * dy
    y_new = y + dy
    # roundoff-scale cleanup only (element-conservation-neutral at 1e-16)
    return np.maximum(y_new, 0.0)
