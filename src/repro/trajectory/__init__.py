"""Atmospheric-entry trajectory integration (3-DOF planar)."""

from repro.trajectory.entry import (EntryVehicle, Trajectory,
                                    integrate_entry, AOTV, SHUTTLE,
                                    TAV, TITAN_PROBE)

__all__ = ["EntryVehicle", "Trajectory", "integrate_entry", "AOTV",
           "SHUTTLE", "TAV", "TITAN_PROBE"]
