"""Command-line entry point.

``python -m repro``                 — overview and quick sanity numbers
``python -m repro figures [--full]`` — regenerate every paper figure
``python -m repro stagnation V H RN`` — stagnation environment at
                                        (V [m/s], h [m], R_n [m])
"""

from __future__ import annotations

import sys


def _overview() -> None:
    import numpy as np

    from repro.core import make_gas
    print(__doc__)
    gas = make_gas("equilibrium-air")
    y, _ = gas.composition_T_p(np.array(8000.0), np.array(101325.0))
    x = gas.db.mass_to_mole(np.atleast_2d(y))[0]
    print("sanity: equilibrium air at 8000 K, 1 atm -> "
          f"x_N = {x[gas.db.index['N']]:.3f}, "
          f"x_O = {x[gas.db.index['O']]:.3f} (mostly dissociated)")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        _overview()
        return 0
    cmd = argv[0]
    if cmd == "figures":
        from repro.experiments.runner import run_all
        res = run_all(quick="--full" not in argv)
        return 1 if res["failures"] else 0
    if cmd == "stagnation":
        if len(argv) != 4:
            print("usage: python -m repro stagnation V[m/s] h[m] Rn[m]")
            return 2
        from repro.core import stagnation_environment
        V, h, rn = map(float, argv[1:4])
        env = stagnation_environment(V=V, h=h, nose_radius=rn)
        print(f"V = {V:.0f} m/s, h = {h / 1e3:.1f} km, R_n = {rn} m:")
        print(f"  q_conv   = {env['q_conv'] / 1e4:10.2f} W/cm^2")
        print(f"  q_rad    = {env['q_rad'] / 1e4:10.2f} W/cm^2")
        print(f"  standoff = {env['standoff'] * 100:10.2f} cm")
        print(f"  p_stag   = {env['p_stag'] / 1e3:10.2f} kPa")
        print(f"  T_edge   = {env['T_edge']:10.0f} K")
        return 0
    print(f"unknown command {cmd!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
