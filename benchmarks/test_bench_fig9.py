"""Benchmark: regenerate Fig. 9 (N2 contours, Mach-20 hemisphere)."""

import numpy as np

from repro.experiments import fig9_n2_contours
from repro.experiments.fig9_n2_contours import CONTOUR_LEVELS


def test_bench_fig9_n2_contours(once):
    res = once(fig9_n2_contours.run, True)
    # --- the paper's content --------------------------------------------
    # freestream N2 mole fraction ~0.78 upstream of the shock
    assert abs(res["N2"].max() - 0.79) < 0.02
    # stagnation-region dissociation drives N2 toward ~0.5
    assert res["n2_min"] < 0.55
    # every plotted contour level of the paper exists in the field
    for lv in CONTOUR_LEVELS:
        assert len(res["contours"][lv]) > 0, f"missing contour {lv}"
    # the shock is captured: a thin standoff on the small nose
    assert 0.001 < res["standoff"] < 0.03
    # contour levels nest: lower levels hug the body mor closely than
    # higher ones along the stagnation line
    sl = res["stagnation_line"]
    x_first = {}
    for lv in CONTOUR_LEVELS:
        below = np.nonzero(sl["N2"] < lv)[0]
        x_first[lv] = sl["x"][below[-1]] if below.size else np.nan
    print(f"\nFig. 9: min x_N2 = {res['n2_min']:.3f}, standoff = "
          f"{res['standoff'] * 1e3:.1f} mm")
    print("  stagnation-line x positions where x_N2 crosses each level:")
    for lv in CONTOUR_LEVELS:
        n_seg = len(res["contours"][lv])
        print(f"  level {lv:.2f}: {n_seg:4d} contour segments, "
              f"stag-line crossing x = {x_first[lv] * 1e3:8.2f} mm")
