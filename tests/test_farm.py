"""Solve-farm tests: queue, leases, retry/backoff, dead-letter, drain
and kill-and-resume campaigns.

The contract under test (ISSUE 6 acceptance criteria and DESIGN.md
"Fault-tolerant solve farm"):

* the filesystem queue is durable and idempotent: atomic claims (one
  winner per job no matter how many workers race), crash-safe journal,
  re-enqueue never resets progress,
* lease ownership fences: an expired lease is reclaimed and the late
  holder's commit is discarded (``fenced``), never double-applied,
* retry/backoff: a failing job requeues with deterministic jittered
  exponential backoff and dead-letters at ``max_attempts`` with its
  :class:`~repro.resilience.FailureReport` attached,
* SIGKILLing a random worker mid-campaign still completes the campaign
  with solver results **bitwise identical** to an unkilled reference,
* graceful drain: SIGTERM preempts the running job back to the queue
  (attempt uncharged) and the worker exits 0.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import InputError
from repro.resilience.chaos import CASES
from repro.resilience.farm import (Farm, FarmPolicy, WorkerKillPlan,
                                   audit_exactly_once, bench_from_journal,
                                   build_ledger, merge_ledgers,
                                   run_campaign, state_fingerprint,
                                   write_bench_json)
from repro.resilience.lease import (LeaseManager, expired_indices,
                                    format_ages, heartbeat_ages,
                                    stalest_index)
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue

FAST = BackoffPolicy(max_attempts=3, base=0.01, factor=2.0,
                     max_delay=0.05, jitter=0.5)


def fast_policy(**kw):
    kw.setdefault("n_workers", 2)
    kw.setdefault("lease_ttl", 4.0)
    kw.setdefault("poll_interval", 0.05)
    kw.setdefault("backoff", FAST)
    return FarmPolicy(**kw)


# ----------------------------------------------------------------------
# queue mechanics
# ----------------------------------------------------------------------


class TestQueue:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        assert q.enqueue(Job(id="a", kind="sleep",
                             payload={"duration": 0.01}))
        assert q.state("a")["status"] == "pending"
        job, lease = q.claim("w0")
        assert job.id == "a"
        assert q.state("a")["status"] == "running"
        assert q.claim("w1") is None  # exclusively leased
        assert q.complete(job, lease, {"x": 1})
        assert q.state("a")["status"] == "done"
        assert q.result("a")["result"] == {"x": 1}
        assert q.all_terminal()
        events = [r["event"] for r in q.read_journal()]
        assert events == ["enqueue", "claim", "complete"]

    def test_enqueue_is_idempotent(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        assert q.enqueue(Job(id="a", kind="sleep"))
        job, lease = q.claim("w0")
        q.complete(job, lease, None)
        # re-running the campaign re-enqueues: progress must survive
        assert not q.enqueue(Job(id="a", kind="sleep"))
        assert q.state("a")["status"] == "done"

    def test_claim_exclusivity_under_racing_workers(self, tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST)
        for i in range(5):
            q.enqueue(Job(id=f"j{i}", kind="sleep"))
        claims = [q.claim(f"w{i}") for i in range(8)]
        got = [c[0].id for c in claims if c is not None]
        assert sorted(got) == [f"j{i}" for i in range(5)]
        assert claims[5:] == [None, None, None]

    def test_bad_job_id_rejected(self, tmp_path):
        with pytest.raises(InputError):
            Job(id="../escape", kind="sleep")
        with pytest.raises(InputError):
            Job(id="", kind="sleep")

    def test_backoff_is_deterministic_and_bounded(self):
        pol = BackoffPolicy(max_attempts=5, base=0.5, factor=2.0,
                            max_delay=4.0, jitter=0.5)
        d1 = [pol.delay("job-x", n) for n in range(1, 6)]
        d2 = [pol.delay("job-x", n) for n in range(1, 6)]
        assert d1 == d2  # same job+attempt -> same jitter
        assert pol.delay("job-y", 1) != pol.delay("job-x", 1)
        for n, d in enumerate(d1, start=1):
            raw = min(4.0, 0.5 * 2.0 ** (n - 1))
            assert raw <= d <= raw * 1.5

    def test_fail_requeues_with_backoff_then_dead_letters(self, tmp_path):
        q = WorkQueue(tmp_path / "q",
                      backoff=BackoffPolicy(max_attempts=2, base=5.0,
                                            jitter=0.0))
        q.enqueue(Job(id="a", kind="sleep"))
        job, lease = q.claim("w0")
        assert q.fail(job, lease, "boom 1") == "pending"
        st = q.state("a")
        assert st["attempts"] == 1 and st["last_error"] == "boom 1"
        assert st["not_before"] > time.time() + 1.0  # backoff armed
        assert q.claim("w0") is None  # not ready until backoff passes
        job, lease = q.claim("w0", now=time.time() + 60.0)
        assert q.fail(job, lease, "boom 2",
                      report={"error": "boom 2"}) == "dead"
        assert q.state("a")["status"] == "dead"
        rec = q.dead_letter("a")
        assert rec["error"] == "boom 2"
        assert rec["report"] == {"error": "boom 2"}
        assert q.all_terminal()


# ----------------------------------------------------------------------
# leases: expiry, reclaim, fencing
# ----------------------------------------------------------------------


class TestLeases:
    def test_acquire_is_exclusive_and_released(self, tmp_path):
        lm = LeaseManager(tmp_path / "leases", ttl=5.0)
        lease = lm.acquire("job", "w0")
        assert lease is not None
        assert lm.acquire("job", "w1") is None
        lm.release(lease)
        assert lm.acquire("job", "w1") is not None

    def test_expired_lease_reaped_and_job_reclaimed(self, tmp_path):
        q = WorkQueue(tmp_path / "q", lease_ttl=0.2, backoff=FAST)
        q.enqueue(Job(id="a", kind="sleep"))
        job, lease = q.claim("w0")
        assert q.reclaim_expired() == []  # still fresh
        time.sleep(0.3)  # owner "dies": no renewals
        assert q.reclaim_expired() == ["a"]
        st = q.state("a")
        assert st["status"] == "pending" and st["attempts"] == 1
        job2, lease2 = q.claim("w1")
        assert job2.id == "a" and q.state("a")["attempts"] == 2

    def test_late_holder_is_fenced_after_reclaim(self, tmp_path):
        q = WorkQueue(tmp_path / "q", lease_ttl=0.2, backoff=FAST)
        q.enqueue(Job(id="a", kind="sleep"))
        job, stale = q.claim("w0")
        time.sleep(0.3)
        q.reclaim_expired()
        job2, lease2 = q.claim("w1")
        # the stalled original holder wakes up and tries to commit
        assert not q.complete(job, stale, {"from": "w0"})
        assert q.state("a")["status"] == "running"  # w1 still owns it
        assert q.fail(job, stale, "late failure") == "running"
        assert q.complete(job2, lease2, {"from": "w1"})
        assert q.result("a")["result"] == {"from": "w1"}
        fenced = [r for r in q.read_journal() if r["event"] == "fenced"]
        assert {f["action"] for f in fenced} == {"complete", "fail"}

    def test_renew_extends_and_detects_loss(self, tmp_path):
        lm = LeaseManager(tmp_path / "leases", ttl=0.3)
        lease = lm.acquire("job", "w0")
        time.sleep(0.2)
        assert lm.renew(lease)
        time.sleep(0.2)
        assert not lm.is_expired("job")  # renewal pushed expiry out
        time.sleep(0.25)
        assert lm.reap() == ["job"]
        assert not lm.renew(lease)  # loss detected on next renewal

    def test_poison_job_dead_letters_at_claim(self, tmp_path):
        """A job whose every attempt kills its worker never reaches
        fail(); the attempt budget must still end it, at claim time."""
        q = WorkQueue(tmp_path / "q", lease_ttl=0.1,
                      backoff=BackoffPolicy(max_attempts=2, base=0.0,
                                            jitter=0.0))
        q.enqueue(Job(id="a", kind="sleep"))
        for _ in range(2):  # two claims, two owner deaths
            assert q.claim("w0") is not None
            time.sleep(0.15)
            assert q.reclaim_expired() == ["a"]
        assert q.claim("w0") is None  # third claim dead-letters instead
        assert q.state("a")["status"] == "dead"
        assert "attempt budget" in q.dead_letter("a")["error"]

    def test_liveness_helpers_shared_with_executor(self):
        ages = heartbeat_ages([10.0, 0.0, 12.0], now=13.0)
        # catlint: disable=CAT010 -- 13.0 - 10.0 is exact in binary fp,
        # and inf compares exactly by definition
        assert ages[0] == 3.0 and ages[1] == float("inf")
        assert stalest_index(ages) == 1
        assert expired_indices(ages, 2.5) == [0, 1]
        assert format_ages(ages) == "w0=3.0s, w1=never, w2=1.0s"


# ----------------------------------------------------------------------
# campaigns end to end
# ----------------------------------------------------------------------


class TestCampaign:
    def test_flaky_job_retries_then_succeeds(self, tmp_path, silent):
        jobs = [Job(id="fl", kind="flaky", payload={"fail_first": 2},
                    max_attempts=4)]
        ledger = run_campaign(tmp_path / "q", jobs,
                              policy=fast_policy(n_workers=1),
                              stream=silent)
        assert ledger["ok"] and ledger["jobs"] == {"done": 1}
        q = WorkQueue(tmp_path / "q")
        assert q.result("fl")["result"]["attempts_used"] == 3
        assert ledger["requeues"] == 2

    def test_exhausted_job_dead_letters_with_report(self, tmp_path,
                                                    silent):
        jobs = [Job(id="bad", kind="flaky", payload={"fail_first": 99},
                    max_attempts=2),
                Job(id="ok", kind="sleep", payload={"duration": 0.01})]
        ledger = run_campaign(tmp_path / "q", jobs,
                              policy=fast_policy(), stream=silent)
        assert ledger["jobs"] == {"dead": 1, "done": 1}
        assert ledger["ok"]  # dead-lettered *with accounting* is ok
        [dead] = ledger["dead_letter"]
        assert dead["id"] == "bad" and dead["has_report"]
        rec = WorkQueue(tmp_path / "q").dead_letter("bad")
        assert rec["report"]["attempts"]  # FailureReport attached

    def test_campaign_is_resumable_from_queue_dir(self, tmp_path,
                                                  silent):
        jobs = [Job(id=f"s{i}", kind="sleep",
                    payload={"duration": 0.01}) for i in range(3)]
        run_campaign(tmp_path / "q", jobs, policy=fast_policy(),
                     stream=silent)
        # second run over the same durable queue: nothing recomputes
        ledger = run_campaign(tmp_path / "q", jobs,
                              policy=fast_policy(), stream=silent)
        assert ledger["ok"] and ledger["attempts"] == 3  # not 6

    def test_bench_record_from_journal(self, tmp_path, silent):
        jobs = [Job(id=f"s{i}", kind="sleep",
                    payload={"duration": 0.02}) for i in range(4)]
        run_campaign(tmp_path / "q", jobs, policy=fast_policy(),
                     stream=silent)
        q = WorkQueue(tmp_path / "q")
        bench = bench_from_journal(q, wall_time=1.0, n_workers=2)
        assert bench["jobs_done"] == 4
        # catlint: disable=CAT010 -- round(4 / 1.0, 4) is exactly 4.0
        assert bench["requests_per_s"] == 4.0
        assert bench["per_job_latency_s"]["mean"] >= 0.02
        path = tmp_path / "BENCH_farm.json"
        write_bench_json(path, bench)
        on_disk = json.loads(path.read_text())
        assert on_disk["bench"] == "farm" and on_disk["jobs_done"] == 4


# ----------------------------------------------------------------------
# kill-and-resume: the acceptance scenario
# ----------------------------------------------------------------------


def _reference_fingerprints(names):
    out = {}
    for n in names:
        factory, run_kwargs, _, _ = CASES[n]
        solver = factory()
        solver.run(**run_kwargs)
        out[n] = state_fingerprint(solver)
    return out


class TestKillAndResume:
    def test_sigkilled_worker_campaign_bitwise_identical(self, tmp_path,
                                                         silent):
        """SIGKILL workers mid-campaign; every solver job must still
        complete with a final state bitwise identical to an unkilled
        in-process reference march."""
        names = ["euler1d", "euler2d"]
        ref = _reference_fingerprints(names)
        # solver cases first (priority), sleep ballast keeps the
        # campaign alive past the kill schedule so the kills land
        jobs = ([Job(id=f"case-{n}", kind="solver_case", priority=-1,
                     payload={"case": n, "every_n_steps": 2},
                     max_attempts=8) for n in names]
                + [Job(id=f"pad{i}", kind="sleep", max_attempts=8,
                       payload={"duration": 0.5}) for i in range(6)])
        policy = fast_policy(
            n_workers=2, lease_ttl=1.5, worker_restart_budget=8,
            backoff=BackoffPolicy(max_attempts=8, base=0.02,
                                  max_delay=0.1))
        plan = WorkerKillPlan(seed=3, kills=2, min_interval=0.25,
                              max_interval=0.5)
        ledger = run_campaign(tmp_path / "q", jobs, policy=policy,
                              stream=silent, kill_plan=plan)
        assert ledger["ok"], ledger
        assert ledger["worker_kills"], "no kill landed — tune the plan"
        q = WorkQueue(tmp_path / "q")
        for n in names:
            res = q.result(f"case-{n}")
            assert res is not None, q.state(f"case-{n}")
            assert res["result"]["state_sha256"] == ref[n], \
                f"{n}: resumed state differs from unkilled reference"

    def test_kill_plan_is_deterministic(self):
        a = WorkerKillPlan(seed=5, kills=4).schedule()
        b = WorkerKillPlan(seed=5, kills=4).schedule()
        assert a == b and len(a) == 4
        assert a == sorted(a)  # cumulative offsets
        assert WorkerKillPlan(seed=6, kills=4).schedule() != a

    def test_worker_death_reclaims_via_lease_expiry(self, tmp_path,
                                                    silent):
        """Kill the *only* worker's claim path directly: a SIGKILLed
        worker never completes its job, the lease expires, the farm
        reclaims and a replacement worker finishes."""
        jobs = [Job(id=f"s{i}", kind="sleep",
                    payload={"duration": 0.6}, max_attempts=5)
                for i in range(2)]
        policy = fast_policy(
            n_workers=1, lease_ttl=1.0, worker_restart_budget=4,
            backoff=BackoffPolicy(max_attempts=5, base=0.02,
                                  max_delay=0.1))
        plan = WorkerKillPlan(seed=11, kills=1, min_interval=0.3,
                              max_interval=0.4)
        ledger = run_campaign(tmp_path / "q", jobs, policy=policy,
                              stream=silent, kill_plan=plan)
        assert ledger["ok"] and ledger["jobs"] == {"done": 2}
        assert len(ledger["worker_kills"]) == 1
        # the killed worker's job came back through reclaim or the
        # poison-guard; either way the journal shows the recovery
        events = {r["event"] for r in
                  WorkQueue(tmp_path / "q").read_journal()}
        assert "worker-kill" in events


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_sigterm_preempts_and_drains(self, tmp_path, silent):
        """SIGTERM mid-campaign: the farm stops, running jobs are
        preempted (attempt uncharged) or finished, and a later campaign
        on the same queue completes the rest."""
        import threading

        jobs = [Job(id=f"s{i}", kind="sleep",
                    payload={"duration": 0.4}) for i in range(6)]
        policy = fast_policy(n_workers=2)
        queue = WorkQueue(tmp_path / "q", lease_ttl=policy.lease_ttl,
                          backoff=policy.backoff)
        for j in jobs:
            queue.enqueue(j)
        farm = Farm(queue, policy, stream=silent)
        timer = threading.Timer(0.6, lambda: setattr(farm, "_stop",
                                                     True))
        timer.start()
        ledger = farm.run()
        timer.cancel()
        done_first = ledger["jobs"].get("done", 0)
        assert done_first < 6  # interrupted mid-campaign
        # preempted jobs are pending again with attempts uncharged
        for job_id in queue.job_ids():
            st = queue.state(job_id)
            assert st["status"] in ("pending", "done")
            if st["status"] == "pending":
                assert st["attempts"] == 0
        ledger2 = run_campaign(tmp_path / "q", jobs, policy=policy,
                               stream=silent)
        assert ledger2["ok"]
        assert ledger2["jobs"] == {"done": 6}

    def test_ledger_accounts_for_every_job(self, tmp_path, silent):
        jobs = ([Job(id=f"s{i}", kind="sleep",
                     payload={"duration": 0.01}) for i in range(3)]
                + [Job(id="bad", kind="flaky",
                       payload={"fail_first": 99}, max_attempts=1)])
        ledger = run_campaign(tmp_path / "q", jobs,
                              policy=fast_policy(), stream=silent)
        assert ledger["n_jobs"] == 4
        assert ledger["jobs"]["done"] + len(ledger["dead_letter"]) == 4
        assert ledger["throughput_jobs_per_s"] > 0
        rebuilt = build_ledger(WorkQueue(tmp_path / "q"), wall_time=1.0,
                               label="rebuild", n_workers=2)
        assert rebuilt["jobs"] == ledger["jobs"]  # journal is durable


# ----------------------------------------------------------------------
# farm policy validation
# ----------------------------------------------------------------------


class TestPolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(InputError):
            FarmPolicy(n_workers=0)
        with pytest.raises(InputError):
            FarmPolicy(lease_ttl=0.0)
        with pytest.raises(InputError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(InputError):
            BackoffPolicy(factor=0.5)

    def test_unknown_job_kind_dead_letters(self, tmp_path, silent):
        jobs = [Job(id="x", kind="no-such-kind", max_attempts=1)]
        ledger = run_campaign(tmp_path / "q", jobs,
                              policy=fast_policy(n_workers=1),
                              stream=silent)
        assert ledger["jobs"] == {"dead": 1}
        rec = WorkQueue(tmp_path / "q").dead_letter("x")
        assert "unknown job kind" in rec["error"]


# ----------------------------------------------------------------------
# multi-host leases under clock skew
# ----------------------------------------------------------------------


def _skewed(offset):
    """A wall clock that is simply wrong by ``offset`` seconds."""
    return lambda: time.time() + offset


class TestLeaseSkew:
    def test_skew_alone_never_expires_a_cross_host_lease(self, tmp_path):
        """A wall-clock disagreement far beyond max_skew — in either
        direction — must not free a freshly granted foreign lease:
        cross-host expiry is observation-based, never mtime-based."""
        for offset in (60.0, -60.0):
            d = tmp_path / f"leases{offset:+.0f}"
            holder = LeaseManager(d, ttl=5.0, host_id="hostA",
                                  clock=_skewed(offset))
            reaper = LeaseManager(d, ttl=5.0, host_id="hostB",
                                  max_skew=0.5)
            assert holder.acquire("job", "hostA:1") is not None
            assert not reaper.is_expired("job")
            assert reaper.reap() == []

    def test_renewed_cross_host_lease_survives_reaper(self, tmp_path):
        """Concurrent renew-vs-reap: as long as the holder keeps
        bumping the lease epoch, a skewed observer must never reap it,
        even long past ttl + max_skew of wall time."""
        import threading

        holder = LeaseManager(tmp_path / "l", ttl=0.15, host_id="hostA",
                              clock=_skewed(120.0))
        reaper = LeaseManager(tmp_path / "l", ttl=0.15, host_id="hostB",
                              max_skew=0.1)
        lease = holder.acquire("job", "hostA:1")
        lost = []
        stop = threading.Event()

        def renew_loop():
            while not stop.is_set():
                if not holder.renew(lease):
                    lost.append(True)
                    return
                time.sleep(0.03)

        t = threading.Thread(target=renew_loop)
        t.start()
        freed = []
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            freed += reaper.reap()
            time.sleep(0.02)
        stop.set()
        t.join()
        assert freed == [] and not lost
        assert lease.epoch > 5  # renewals really happened

    def test_dead_cross_host_holder_reaped_after_window(self, tmp_path):
        """A foreign holder that stops renewing is reclaimed — but only
        after its (token, epoch) sat unchanged for ttl + max_skew on
        the observer's own monotonic clock."""
        holder = LeaseManager(tmp_path / "l", ttl=0.2, host_id="hostA",
                              clock=_skewed(-120.0))
        reaper = LeaseManager(tmp_path / "l", ttl=0.2, host_id="hostB",
                              max_skew=0.2)
        holder.acquire("job", "hostA:1")  # hostA then "dies": no renews
        assert reaper.reap() == []        # opens the observation window
        time.sleep(0.6)                   # > ttl + max_skew, unchanged
        assert reaper.reap() == ["job"]

    def test_stale_commit_fenced_after_cross_host_reclaim(self, tmp_path):
        """A partitioned hostA worker whose job was reclaimed by hostB
        must have its late commit fenced, and the exactly-once audit
        must count a single completion."""
        qa = WorkQueue(tmp_path / "q", lease_ttl=0.2, backoff=FAST,
                       host_id="hostA", max_skew=0.2, clock=_skewed(7.0))
        qb = WorkQueue(tmp_path / "q", lease_ttl=0.2, backoff=FAST,
                       host_id="hostB", max_skew=0.2)
        qa.enqueue(Job(id="a", kind="sleep", max_attempts=5))
        job, stale = qa.claim("hostA:1")
        assert qb.reclaim_expired() == []   # window opens, nothing freed
        time.sleep(0.6)
        assert qb.reclaim_expired() == ["a"]
        job2, lease2 = qb.claim("hostB:1")
        # partition heals; the original holder tries to commit
        assert not qa.complete(job, stale, {"from": "hostA"})
        assert qb.complete(job2, lease2, {"from": "hostB"})
        assert qb.result("a")["result"] == {"from": "hostB"}
        fenced = [r for r in qb.read_journal() if r["event"] == "fenced"]
        assert {f["action"] for f in fenced} == {"complete"}
        audit = audit_exactly_once(qb)
        assert audit["ok"] and audit["jobs_completed"] == 1


# ----------------------------------------------------------------------
# journal rotation and compaction
# ----------------------------------------------------------------------


def _journal_segments(q):
    import re
    return sorted(n for n in os.listdir(q.dir)
                  if re.fullmatch(r"journal-.+\.\d{6}\.jsonl", n))


def _drain_serially(q, n):
    for i in range(n):
        q.enqueue(Job(id=f"s{i:02d}", kind="sleep"))
    while True:
        got = q.claim("w0")
        if got is None:
            break
        job, lease = got
        q.complete(job, lease, {"id": job.id})


class TestJournalRotation:
    def test_rotation_spills_segments_and_read_merges_all(self,
                                                          tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST, rotate_bytes=600)
        _drain_serially(q, 12)
        assert _journal_segments(q), \
            "rotation never triggered — shrink rotate_bytes"
        events = [r["event"] for r in q.read_journal()]
        assert events.count("enqueue") == 12
        assert events.count("complete") == 12

    def test_compaction_preserves_ledger_bench_and_audit(self,
                                                         tmp_path):
        q = WorkQueue(tmp_path / "q", backoff=FAST, rotate_bytes=600)
        _drain_serially(q, 12)
        before = build_ledger(q, wall_time=1.0, label="pre",
                              n_workers=1)
        bench_before = bench_from_journal(q, wall_time=1.0, n_workers=1)
        assert q.compact_journal() > 0
        assert _journal_segments(q) == []  # absorbed and unlinked
        after = build_ledger(q, wall_time=1.0, label="post",
                             n_workers=1)
        assert after["jobs"] == before["jobs"] == {"done": 12}
        assert after["attempts"] == before["attempts"] == 12
        assert after["events"]["complete"] == 12
        bench_after = bench_from_journal(q, wall_time=1.0, n_workers=1)
        assert bench_after["jobs_done"] == bench_before["jobs_done"]
        audit = audit_exactly_once(q)
        assert audit["ok"] and audit["jobs_completed"] == 12
        assert q.compact_journal() == 0  # idempotent: nothing left

    def test_audit_counts_completions_across_compaction(self, tmp_path):
        """The compact summary must preserve per-job completion counts,
        not just the last timestamp — otherwise a double completion
        hidden in an absorbed segment would pass the audit."""
        q = WorkQueue(tmp_path / "q", backoff=FAST, rotate_bytes=200)
        _drain_serially(q, 4)
        # forge a duplicate completion record, then rotate it into a
        # segment and compact that segment away
        n_segs = len(_journal_segments(q))
        q.journal("complete", job="s00", worker="w-evil")
        while len(_journal_segments(q)) == n_segs:
            q.journal("noise", filler="x" * 64)
        q.compact_journal()
        audit = audit_exactly_once(q)
        assert not audit["ok"]
        assert audit["double_completions"] == {"s00": 2}


# ----------------------------------------------------------------------
# dead-letter retry with a fresh budget
# ----------------------------------------------------------------------


class TestRetryDeadLetters:
    def test_retry_restores_budget_and_preserves_history(self,
                                                         tmp_path):
        q = WorkQueue(tmp_path / "q",
                      backoff=BackoffPolicy(max_attempts=1, base=0.0,
                                            jitter=0.0))
        q.enqueue(Job(id="a", kind="sleep", max_attempts=1))
        job, lease = q.claim("w0")
        assert q.fail(job, lease, "boom",
                      report={"error": "boom"}) == "dead"
        assert q.retry_dead_letters() == ["a"]
        st = q.state("a")
        assert st["status"] == "pending" and st["attempts"] == 0
        assert q.dead_letter("a") is None  # active record cleared...
        [hist] = q.dead_letter_history("a")  # ...but never lost
        assert hist["error"] == "boom"
        assert hist["report"] == {"error": "boom"}
        job, lease = q.claim("w1")
        assert q.complete(job, lease, {"ok": True})
        assert q.state("a")["status"] == "done"
        retries = [r for r in q.read_journal()
                   if r["event"] == "retry-dead-letter"]
        assert retries and retries[0]["prior_attempts"] == 1

    def test_retry_is_selective_and_skips_live_jobs(self, tmp_path):
        q = WorkQueue(tmp_path / "q",
                      backoff=BackoffPolicy(max_attempts=1, base=0.0,
                                            jitter=0.0))
        for jid in ("dead1", "dead2", "ok"):
            q.enqueue(Job(id=jid, kind="sleep", max_attempts=1))
        for jid in ("dead1", "dead2"):
            job, lease = q.claim("w0", now=time.time() + 60.0)
            q.fail(job, lease, f"{jid} boom")
        assert q.retry_dead_letters(["dead2", "ok"]) == ["dead2"]
        assert q.state("dead1")["status"] == "dead"  # not selected
        assert q.state("dead2")["status"] == "pending"
        assert q.state("ok")["status"] == "pending"  # untouched

    def test_jitter_unit_is_pure_and_job_seeded(self):
        """Satellite: backoff jitter is a pure hash of (job id,
        attempt) — identical on every host, no shared RNG state."""
        u = BackoffPolicy.jitter_u("case-01", 1)
        assert 0.0 <= u < 1.0
        # catlint: disable=CAT010 -- sha256-derived values are exact
        assert BackoffPolicy.jitter_u("case-01", 1) == u
        assert BackoffPolicy.jitter_u("case-02", 1) != u
        assert BackoffPolicy.jitter_u("case-01", 2) != u
        # two policy instances (two hosts, in real life) agree on the
        # whole delay schedule
        a = BackoffPolicy(max_attempts=5, jitter=0.5)
        b = BackoffPolicy(max_attempts=5, jitter=0.5)
        assert [a.delay("j", n) for n in (1, 2, 3)] \
            == [b.delay("j", n) for n in (1, 2, 3)]


# ----------------------------------------------------------------------
# two hosts, one queue
# ----------------------------------------------------------------------


class TestTwoHostCampaign:
    def test_two_skewed_hosts_drain_one_queue_exactly_once(
            self, tmp_path, silent):
        """Two supervisors with ±5 s clock skew drain one shared queue:
        every job completes exactly once and the per-host ledgers merge
        into one consistent campaign view."""
        import threading

        qdir = tmp_path / "q"
        seed = WorkQueue(qdir, backoff=FAST, host_id="hostA")
        for i in range(8):
            seed.enqueue(Job(id=f"s{i}", kind="sleep",
                             payload={"duration": 0.2}, max_attempts=5))
        ledgers = {}

        def serve(host, offset):
            pol = fast_policy(n_workers=1, lease_ttl=3.0, host_id=host,
                              max_skew=1.0, clock_offset=offset,
                              beacon_interval=0.2)
            farm = Farm(WorkQueue(qdir, lease_ttl=3.0, backoff=FAST,
                                  host_id=host, max_skew=1.0,
                                  clock=pol.clock()),
                        pol, label=host, stream=silent)
            ledgers[host] = farm.run()

        threads = [
            threading.Thread(target=serve, args=("hostA", 5.0)),
            threading.Thread(target=serve, args=("hostB", -5.0))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(90.0)
        assert not any(t.is_alive() for t in threads)
        q = WorkQueue(qdir, host_id="driver")
        assert q.all_terminal()
        assert all(q.state(j)["status"] == "done" for j in q.job_ids())
        audit = audit_exactly_once(q)
        assert audit["ok"], audit
        assert audit["jobs_completed"] == 8
        merged = merge_ledgers([ledgers["hostA"], ledgers["hostB"]])
        assert merged["ok"] and merged["jobs"] == {"done": 8}
        assert sum(h.get("complete", 0)
                   for h in merged["hosts"].values()) == 8
        # each host saw the other's beacon ~10 s ahead/behind itself
        assert ledgers["hostB"]["skew_estimates"]["hostA"] > 5.0
        assert ledgers["hostA"]["skew_estimates"]["hostB"] < -5.0

    def test_merge_ledgers_validates_and_labels(self, tmp_path, silent):
        with pytest.raises(InputError):
            merge_ledgers([])
        jobs = [Job(id="a", kind="sleep", payload={"duration": 0.01})]
        led = run_campaign(tmp_path / "q", jobs,
                           policy=fast_policy(n_workers=1),
                           stream=silent)
        merged = merge_ledgers([led])
        assert merged["jobs"] == led["jobs"]
        assert [m["host"] for m in merged["merged_from"]] \
            == [led["host"]]


# ----------------------------------------------------------------------
# rotation collision arbitration (satellite)
# ----------------------------------------------------------------------


class TestRotationCollision:
    """Two rotators of one host's journal (``serve`` plus a CLI reaper)
    can probe the same segment number; the loser must probe upward
    rather than abandon the rotation, and a collision with a segment
    that *is* the live inode means the racer already rotated — finish
    the unlink instead of double-linking the records."""

    def test_probe_skips_occupied_segment(self, tmp_path, monkeypatch):
        q = WorkQueue(tmp_path / "q", backoff=FAST, rotate_bytes=0)
        for i in range(8):
            q.journal("noise", idx=i, filler="x" * 64)
        # a racer committed segment 1 after our (stale) directory scan
        with open(q._segment_path(1), "w") as f:
            f.write(json.dumps({"t": 0.0, "host": q.host_id,
                                "event": "foreign"}) + "\n")
        monkeypatch.setattr(q, "_segment_indices", lambda: [])
        q.rotate_bytes = 1
        q._maybe_rotate()
        monkeypatch.undo()
        # the rotation landed on the next free number, not nowhere
        assert q._segment_indices() == [1, 2]
        assert not os.path.exists(q.journal_path)
        events = [r for r in q.read_journal() if r["event"] == "noise"]
        assert sorted(r["idx"] for r in events) == list(range(8))

    def test_samefile_collision_finishes_the_rotation(self, tmp_path,
                                                      monkeypatch):
        q = WorkQueue(tmp_path / "q", backoff=FAST, rotate_bytes=0)
        for i in range(8):
            q.journal("noise", idx=i, filler="x" * 64)
        # the racer hard-linked the live file to segment 1 and died
        # before its unlink step
        os.link(q.journal_path, q._segment_path(1))
        monkeypatch.setattr(q, "_segment_indices", lambda: [])
        q.rotate_bytes = 1
        q._maybe_rotate()
        monkeypatch.undo()
        # detected via samefile: no second segment holding the same
        # inode, live file unlinked, every record present exactly once
        assert q._segment_indices() == [1]
        assert not os.path.exists(q.journal_path)
        events = [r for r in q.read_journal() if r["event"] == "noise"]
        assert sorted(r["idx"] for r in events) == list(range(8))
        # appends keep working into a fresh live file afterwards
        q.journal("noise", idx=8)
        events = [r for r in q.read_journal() if r["event"] == "noise"]
        assert sorted(r["idx"] for r in events) == list(range(9))
