"""One-dimensional grid clustering (stretching) functions.

All functions map a uniform parameter eta in [0, 1] (n points) onto a
clustered distribution in [0, 1]; multiply by the physical extent to use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError

__all__ = ["tanh_cluster", "roberts_cluster", "geometric_stretch"]


def tanh_cluster(n: int, beta: float = 2.0, *, end: str = "min"):
    """Hyperbolic-tangent clustering.

    Parameters
    ----------
    n:
        Number of points.
    beta:
        Stretching strength (0 -> uniform, larger -> tighter clustering).
    end:
        "min" clusters toward 0, "max" toward 1, "both" toward both ends.
    """
    if n < 2:
        raise GridError("need at least 2 points")
    eta = np.linspace(0.0, 1.0, n)
    if beta <= 0:
        return eta
    if end == "min":
        s = 1.0 + np.tanh(beta * (eta - 1.0)) / np.tanh(beta)
    elif end == "max":
        s = np.tanh(beta * eta) / np.tanh(beta)
    elif end == "both":
        s = 0.5 * (1.0 + np.tanh(beta * (2.0 * eta - 1.0))
                   / np.tanh(beta))
    else:
        raise GridError(f"unknown end {end!r}")
    # enforce exact endpoints against roundoff
    s[0], s[-1] = 0.0, 1.0
    return s


def roberts_cluster(n: int, beta: float = 1.05):
    """Roberts' transformation clustering toward 0 (wall).

    ``beta`` slightly above 1 gives strong wall clustering; beta -> inf is
    uniform.
    """
    if n < 2:
        raise GridError("need at least 2 points")
    if beta <= 1.0:
        raise GridError("Roberts beta must exceed 1")
    eta = np.linspace(0.0, 1.0, n)
    bp = (beta + 1.0) / (beta - 1.0)  # catlint: disable=CAT003 -- beta > 1 validated above
    num = bp ** (1.0 - eta)
    s = ((beta + 1.0) - (beta - 1.0) * num) / (num + 1.0)
    s[0], s[-1] = 0.0, 1.0
    return s


def geometric_stretch(n: int, ratio: float = 1.1):
    """Geometric progression of spacings (ratio between adjacent cells)."""
    if n < 2:
        raise GridError("need at least 2 points")
    if abs(ratio - 1.0) < 1e-12:
        return np.linspace(0.0, 1.0, n)
    d = ratio ** np.arange(n - 1)
    s = np.concatenate(([0.0], np.cumsum(d)))
    return s / s[-1]
