"""Benchmark: async-job subsystem overhead.

Two perf trajectories for the jobs layer, both written to
``BENCH_jobs.json`` (the same record the CI ``jobs-smoke`` job uploads
from ``python -m repro chaos --jobs``):

* **submit latency** — ``submit()`` must return a durable job id
  without waiting for a worker, so its cost is one enqueue plus one
  journaled state transition; a burst of submits measures that floor;
* **async overhead** — wall-clock of a short solver march executed
  through submit -> farm -> result versus the same march called
  directly, bounding what the durability machinery (sandbox spawn,
  lease renewal, snapshot commits, heartbeats) costs a small job.
"""

import json
import os
import time

from repro.resilience.chaos import CASES
from repro.resilience.farm import Farm, FarmPolicy, write_bench_json
from repro.resilience.queue import BackoffPolicy
from repro.service.jobs import DONE, JobManager

BENCH_PATH = os.environ.get("BENCH_JOBS_JSON", "BENCH_jobs.json")


def _drain(queue_dir, **kw):
    kw.setdefault("n_workers", 1)
    kw.setdefault("poll_interval", 0.05)
    kw.setdefault("backoff", BackoffPolicy(max_attempts=3, base=0.01,
                                           max_delay=0.05))
    with open(os.devnull, "w") as null:
        Farm(queue_dir, FarmPolicy(**kw), label="bench",
             stream=null).run()


def _percentile(sorted_xs, q):
    return sorted_xs[min(len(sorted_xs) - 1,
                         int(q * len(sorted_xs)))]


def test_bench_submit_latency(once, tmp_path):
    """Durable-submit floor: enqueue + journaled pending transition."""
    mgr = JobManager(tmp_path / "q")

    def burst(n=32):
        return sorted(
            mgr.submit("sleep", {"duration": 0.01},
                       job_id=f"b{i:03d}")["submit_latency_s"]
            for i in range(n))

    lat = once(burst)
    rec = {"n": len(lat), "p50_s": _percentile(lat, 0.50),
           "p90_s": _percentile(lat, 0.90), "max_s": lat[-1]}
    print("\nsubmit latency (32 durable submits): "
          f"p50 {rec['p50_s'] * 1e3:6.2f} ms, "
          f"max {rec['max_s'] * 1e3:6.2f} ms")
    assert rec["p50_s"] < 0.5  # submit never waits on a worker

    record = {"bench": "jobs", "submit_latency": rec}
    write_bench_json(BENCH_PATH, record)


def test_bench_async_overhead(tmp_path):
    """submit -> farm -> result versus the same march run directly."""
    factory, run_kwargs, _, _ = CASES["euler1d"]
    t0 = time.monotonic()
    factory().run(**run_kwargs)
    direct_s = time.monotonic() - t0

    mgr = JobManager(tmp_path / "q")
    t0 = time.monotonic()
    mgr.submit("solver_case", {"case": "euler1d", "every_n_steps": 5},
               job_id="ovh")
    _drain(tmp_path / "q", snapshot_every=5)
    res = mgr.result("ovh")
    async_s = time.monotonic() - t0
    assert res["state"] == DONE and res["ready"]

    rec = {"direct_s": round(direct_s, 4),
           "async_s": round(async_s, 4),
           "overhead_s": round(async_s - direct_s, 4)}
    print(f"\nasync overhead (euler1d march): direct {direct_s:.3f} s, "
          f"through jobs {async_s:.3f} s "
          f"(+{async_s - direct_s:.3f} s fixed cost)")
    # the durability machinery costs seconds, not minutes, per job
    assert async_s - direct_s < 60.0

    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as f:
            record = json.load(f)
    else:
        record = {"bench": "jobs"}
    record["async_overhead"] = rec
    write_bench_json(BENCH_PATH, record)
