"""Run every figure experiment and print a combined report.

``python -m repro.experiments.runner [--full]``
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (fig1_flight_domain, fig2_titan_heating,
                               fig3_species_profiles, fig4_shock_shape,
                               fig5_orbiter_geometry,
                               fig6_windward_heating,
                               fig7_shock_relaxation, fig8_spectra,
                               fig9_n2_contours)

__all__ = ["run_all"]

_MODULES = [
    ("fig1", fig1_flight_domain),
    ("fig2", fig2_titan_heating),
    ("fig3", fig3_species_profiles),
    ("fig4", fig4_shock_shape),
    ("fig5", fig5_orbiter_geometry),
    ("fig6", fig6_windward_heating),
    ("fig7", fig7_shock_relaxation),
    ("fig8", fig8_spectra),
    ("fig9", fig9_n2_contours),
]


def run_all(quick: bool = True, *, stream=None) -> dict:
    """Run every experiment; returns {name: seconds}."""
    stream = stream or sys.stdout
    timings = {}
    for name, mod in _MODULES:
        t0 = time.perf_counter()
        print(f"\n{'=' * 78}\n{name}: {mod.__doc__.splitlines()[0]}"
              f"\n{'=' * 78}", file=stream)
        print(mod.main(quick=quick), file=stream)
        timings[name] = time.perf_counter() - t0
        print(f"[{name} completed in {timings[name]:.1f} s]", file=stream)
    return timings


if __name__ == "__main__":
    run_all(quick="--full" not in sys.argv)
