"""Run every figure experiment and print a combined report.

``python -m repro.experiments.runner [--full]``

The runner is resilient: a failing figure is caught, summarised (with
its :class:`~repro.resilience.FailureReport` when the resilience layer
attached one) and the suite continues — one bad flight condition must
not cost the other eight figures.
"""

from __future__ import annotations

import sys
import time
import traceback

from repro.experiments import (fig1_flight_domain, fig2_titan_heating,
                               fig3_species_profiles, fig4_shock_shape,
                               fig5_orbiter_geometry,
                               fig6_windward_heating,
                               fig7_shock_relaxation, fig8_spectra,
                               fig9_n2_contours)

__all__ = ["run_all"]

_MODULES = [
    ("fig1", fig1_flight_domain),
    ("fig2", fig2_titan_heating),
    ("fig3", fig3_species_profiles),
    ("fig4", fig4_shock_shape),
    ("fig5", fig5_orbiter_geometry),
    ("fig6", fig6_windward_heating),
    ("fig7", fig7_shock_relaxation),
    ("fig8", fig8_spectra),
    ("fig9", fig9_n2_contours),
]


def run_all(quick: bool = True, *, stream=None, keep_going: bool = True
            ) -> dict:
    """Run every experiment.

    Returns ``{"timings": {name: seconds}, "failures": {name: exc}}``.
    With ``keep_going`` (the default) a failing figure is reported —
    including its attached FailureReport, when present — and the rest of
    the suite still runs; ``keep_going=False`` restores fail-fast.
    """
    stream = stream or sys.stdout
    timings: dict[str, float] = {}
    failures: dict[str, Exception] = {}
    for name, mod in _MODULES:
        t0 = time.perf_counter()
        print(f"\n{'=' * 78}\n{name}: {mod.__doc__.splitlines()[0]}"
              f"\n{'=' * 78}", file=stream)
        try:
            print(mod.main(quick=quick), file=stream)
        except Exception as err:
            if not keep_going:
                raise
            failures[name] = err
            print(f"[{name} FAILED: {type(err).__name__}: {err}]",
                  file=stream)
            report = getattr(err, "report", None)
            if report is not None:
                print(report.summary(), file=stream)
            else:
                print("".join(traceback.format_exception(err)).rstrip(),
                      file=stream)
        finally:
            timings[name] = time.perf_counter() - t0
            print(f"[{name} completed in {timings[name]:.1f} s]",
                  file=stream)
    if failures:
        print(f"\n{len(failures)}/{len(_MODULES)} figure(s) failed: "
              f"{sorted(failures)}", file=stream)
    return {"timings": timings, "failures": failures}


if __name__ == "__main__":
    res = run_all(quick="--full" not in sys.argv)
    raise SystemExit(1 if res["failures"] else 0)
