"""Vectorized multi-column linear interpolation.

``np.interp`` handles one column at a time, which pushes callers into
per-species list comprehensions on hot paths (the PERF002 pattern the
performance linter flags)::

    np.stack([np.interp(xq, x, Y[:, j]) for j in range(ns)], axis=-1)

:func:`interp_columns` is the batched replacement: one
``np.searchsorted`` over the (shared) abscissa, one gather, one fused
lerp over the whole ``(nq, ns)`` block.  Matches ``np.interp``
semantics for each column — including clamping to the end values
outside the abscissa range — for strictly increasing ``x``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["interp_columns"]


def interp_columns(xq, x, Y):
    """Linearly interpolate every column of ``Y`` at points ``xq``.

    Parameters
    ----------
    xq : array_like, shape (nq,) or scalar
        Query points.
    x : array_like, shape (n,)
        Strictly increasing sample abscissa shared by all columns.
    Y : array_like, shape (n, ns)
        Sample values, one column per series (species, wavelength, ...).

    Returns
    -------
    ndarray, shape (nq, ns) — or (ns,) for scalar ``xq``; equal to
    ``np.stack([np.interp(xq, x, Y[:, j]) for j in range(ns)], -1)``.
    """
    x = np.asarray(x, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    xq = np.asarray(xq, dtype=np.float64)
    scalar = xq.ndim == 0
    xqf = np.atleast_1d(xq)
    if x.shape[0] != Y.shape[0]:
        raise ValueError(
            f"abscissa length {x.shape[0]} != rows of Y {Y.shape[0]}")
    if x.shape[0] == 1:
        out = np.broadcast_to(Y[0], (xqf.shape[0],) + Y.shape[1:]).copy()
        return out[0] if scalar else out
    idx = np.clip(np.searchsorted(x, xqf, side="left") - 1,
                  0, x.shape[0] - 2)
    x0 = x[idx]
    x1 = x[idx + 1]
    # clamped weight reproduces np.interp's end-value extrapolation
    # catlint: disable=CAT003 -- x is strictly increasing (documented
    # precondition), so consecutive samples never coincide
    w = np.clip((xqf - x0) / (x1 - x0), 0.0, 1.0)
    Y0 = Y[idx]
    out = Y0 + w.reshape(w.shape + (1,) * (Y.ndim - 1)) * (Y[idx + 1] - Y0)
    return out[0] if scalar else out
