"""Benchmark: regenerate Fig. 2 (Titan probe heating pulses)."""

import numpy as np

from repro.experiments import fig2_titan_heating


def test_bench_fig2_titan_heating(once):
    res = once(fig2_titan_heating.run, True)
    q_conv = res["q_conv_net"]
    q_rad = res["q_rad"]
    t = res["t"]
    # --- the paper's content --------------------------------------------
    # both pulses rise and fall within the window
    i_rad = int(np.argmax(q_rad))
    assert q_rad[i_rad] > 5.0 * min(q_rad[0], q_rad[-1]) + 1.0
    # the radiative pulse rivals/exceeds the net convective pulse at its
    # peak (the Titan/Galileo-class result of Ref. 15)
    assert q_rad[i_rad] > 0.5 * q_conv[i_rad]
    # heating peaks at hypervelocity conditions high in the atmosphere
    assert res["V"][i_rad] > 8000.0
    assert res["h"][i_rad] > 150e3
    print("\nFig. 2 series: t [s], q_conv_net, q_rad [W/cm^2]")
    for ti, qc, qr in zip(t, q_conv / 1e4, q_rad / 1e4):
        print(f"  {ti:7.1f}  {qc:8.1f}  {qr:8.1f}")
