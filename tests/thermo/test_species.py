"""Tests for the species database and SpeciesDB views."""

import numpy as np
import pytest

from repro.errors import SpeciesError
from repro.thermo.species import (AIR5, AIR9, AIR11, SPECIES, SpeciesDB,
                                  TITAN9, species_set)


class TestRegistry:
    def test_paper_nine_species_present(self):
        # the paper's dissociating/ionizing air set
        for name in ("N2", "O2", "N", "O", "NO", "O+", "N+", "NO+", "e-"):
            assert name in SPECIES

    def test_molar_masses_consistent_with_atoms(self):
        # molecule masses equal the sum of their atoms (neutral species)
        atoms = {"N": SPECIES["N"].molar_mass, "O": SPECIES["O"].molar_mass,
                 "C": SPECIES["C"].molar_mass, "H": SPECIES["H"].molar_mass}
        for name in ("N2", "O2", "NO", "CN", "C2"):
            sp = SPECIES[name]
            calc = sum(atoms[el] * n for el, n in sp.formula.items())
            assert sp.molar_mass == pytest.approx(calc, rel=1e-6)

    def test_ion_masses_lighter_than_neutrals(self):
        for neutral, ion in (("N2", "N2+"), ("O2", "O2+"), ("NO", "NO+"),
                             ("N", "N+"), ("O", "O+")):
            assert SPECIES[ion].molar_mass < SPECIES[neutral].molar_mass
            # by exactly one electron mass
            dm = SPECIES[neutral].molar_mass - SPECIES[ion].molar_mass
            assert dm == pytest.approx(SPECIES["e-"].molar_mass, rel=1e-9)

    def test_formation_enthalpy_ordering(self):
        # ionization costs energy: ions above their parents
        assert SPECIES["N+"].hf0 > SPECIES["N"].hf0
        assert SPECIES["O+"].hf0 > SPECIES["O"].hf0
        assert SPECIES["NO+"].hf0 > SPECIES["NO"].hf0
        # dissociation costs energy: atoms above elemental molecules
        assert SPECIES["N"].hf0 > 0 and SPECIES["O"].hf0 > 0
        # reference elements are zero
        # catlint: disable=CAT010 -- reference elements have hf0 defined as literal 0
        assert SPECIES["N2"].hf0 == 0.0 and SPECIES["O2"].hf0 == 0.0

    def test_dissociation_energy_matches_formation_enthalpies(self):
        # D0(N2) ~ 2*hf0(N)/R expressed in kelvin
        from repro.constants import R_UNIVERSAL
        d0_from_hf = 2 * SPECIES["N"].hf0 / R_UNIVERSAL
        assert SPECIES["N2"].d0 == pytest.approx(d0_from_hf, rel=0.01)
        d0_o2 = 2 * SPECIES["O"].hf0 / R_UNIVERSAL
        assert SPECIES["O2"].d0 == pytest.approx(d0_o2, rel=0.01)
        d0_no = ((SPECIES["N"].hf0 + SPECIES["O"].hf0 - SPECIES["NO"].hf0)
                 / R_UNIVERSAL)
        assert SPECIES["NO"].d0 == pytest.approx(d0_no, rel=0.01)

    def test_charge_bookkeeping(self):
        assert SPECIES["e-"].charge == -1
        assert SPECIES["NO+"].charge == +1
        assert SPECIES["N2"].charge == 0

    def test_geometry_flags(self):
        assert SPECIES["N"].geometry == "atom"
        assert not SPECIES["N"].is_molecule
        assert SPECIES["N2"].geometry == "linear"
        assert SPECIES["CH4"].geometry == "nonlinear"
        assert len(SPECIES["CH4"].theta_rot) == 3

    def test_vibrational_mode_degeneracies(self):
        # CH4 has 9 vibrational DOF: 1 + 2 + 3 + 3
        dof = sum(g for _, g in SPECIES["CH4"].vib_modes)
        assert dof == 9
        # HCN (linear triatomic): 4 = 1 + 2 + 1
        dof = sum(g for _, g in SPECIES["HCN"].vib_modes)
        assert dof == 4

    def test_theta_v_accessor(self):
        assert SPECIES["N2"].theta_v == pytest.approx(3393.5)
        with pytest.raises(SpeciesError):
            _ = SPECIES["N"].theta_v


class TestSpeciesDB:
    def test_named_sets(self):
        assert species_set("air5").names == AIR5
        assert species_set("air9").names == AIR9
        assert species_set("air11").names == AIR11
        assert species_set("titan9").names == TITAN9

    def test_unknown_set_raises(self):
        with pytest.raises(SpeciesError):
            species_set("venus99")

    def test_unknown_species_raises(self):
        with pytest.raises(SpeciesError):
            SpeciesDB(["N2", "unobtainium"])

    def test_duplicate_species_raises(self):
        with pytest.raises(SpeciesError):
            SpeciesDB(["N2", "N2"])

    def test_cache_returns_same_object(self):
        assert species_set("air11") is species_set("air11")

    def test_indexing(self, air11):
        assert air11["N2"].name == "N2"
        assert air11[0].name == "N2"
        assert "e-" in air11
        assert "CH4" not in air11
        with pytest.raises(SpeciesError):
            air11["CH4"]

    def test_comp_matrix_shape_and_constraints(self, air11, titan9):
        # air11: N, O elements + charge row
        assert air11.constraints == ("N", "O", "charge")
        assert air11.comp_matrix.shape == (3, 11)
        # titan9: no ions -> no charge row
        assert titan9.constraints == ("C", "H", "N")
        assert titan9.comp_matrix.shape == (3, 9)

    def test_comp_matrix_entries(self, air11):
        jN2 = air11.index["N2"]
        kN = air11.elements.index("N")
        assert air11.comp_matrix[kN, jN2] == 2
        je = air11.index["e-"]
        assert air11.comp_matrix[-1, je] == -1

    def test_mole_mass_roundtrip(self, air11, rng):
        x = rng.random((5, air11.n))
        x /= x.sum(axis=1, keepdims=True)
        y = air11.mole_to_mass(x)
        assert np.allclose(y.sum(axis=1), 1.0)
        x2 = air11.mass_to_mole(y)
        assert np.allclose(x, x2, atol=1e-12)

    def test_mean_molar_mass_of_pure_species(self, air11):
        y = np.zeros(air11.n)
        y[air11.index["O2"]] = 1.0
        assert air11.mean_molar_mass(y) == pytest.approx(31.9988e-3)

    def test_mean_molar_mass_air(self, air11):
        y = np.zeros(air11.n)
        y[air11.index["N2"]] = 0.767
        y[air11.index["O2"]] = 0.233
        assert air11.mean_molar_mass(y) == pytest.approx(28.85e-3, rel=1e-3)
