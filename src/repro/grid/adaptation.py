"""Solution-adaptive 1-D grid redistribution.

The paper lists "solution-adaptive techniques" among the memory-efficiency
challenges.  This implements the classical equidistribution principle: move
grid points so that the integral of a weight function (1 + sensor) is equal
between adjacent points.  The shock-relaxation and shock-capturing solvers
use it to pack points into gradient regions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError

__all__ = ["adapt_1d", "gradient_weight"]


def gradient_weight(x, f, *, alpha: float = 1.0, smooth_passes: int = 2):
    """Equidistribution weight 1 + alpha * |df/dx| / max|df/dx|.

    A few smoothing passes keep the adapted grid from kinking.
    """
    x = np.asarray(x, dtype=float)
    f = np.asarray(f, dtype=float)
    g = np.abs(np.gradient(f, x))
    gmax = np.max(g)
    if gmax > 0:
        g = g / gmax
    w = 1.0 + alpha * g
    for _ in range(smooth_passes):
        w[1:-1] = 0.25 * w[:-2] + 0.5 * w[1:-1] + 0.25 * w[2:]
    return w


def adapt_1d(x, weight, n_new: int | None = None):
    """Redistribute points by equidistributing ``weight``.

    Parameters
    ----------
    x:
        Current monotone grid.
    weight:
        Positive weight at the current points.
    n_new:
        Number of points in the adapted grid (defaults to len(x)).

    Returns
    -------
    New grid with the same endpoints, clustering where weight is large.
    """
    x = np.asarray(x, dtype=float)
    w = np.asarray(weight, dtype=float)
    if np.any(np.diff(x) <= 0):
        raise GridError("x must be strictly increasing")
    if np.any(w <= 0):
        raise GridError("weights must be positive")
    n_new = x.size if n_new is None else n_new
    # cumulative weight integral (trapezoid)
    W = np.concatenate(([0.0], np.cumsum(0.5 * (w[1:] + w[:-1])
                                         * np.diff(x))))
    targets = np.linspace(0.0, W[-1], n_new)
    x_new = np.interp(targets, W, x)
    x_new[0], x_new[-1] = x[0], x[-1]
    return x_new
