"""Chaos harness: random fault schedules under process isolation.

``python -m repro chaos --seed S --rounds N`` is the operational proof
of the resilience stack: every round samples a solver and a random
fault schedule (hangs, memory balloons, scripted crashes, snapshot
corruption, transient NaN/perturbation upsets), runs the march inside
an :class:`~repro.resilience.isolation.IsolatedRunner` sandbox with
tight budgets, and asserts the invariants production operation depends
on:

* **termination** — every round ends (kills + bounded restart budget:
  nothing can wedge the harness);
* **bitwise resume** — for schedules whose faults never corrupt the
  marching state (hang / balloon / crash / snapshot IO), the
  kill-and-resume result matches a crash-free in-process run bit for
  bit;
* **accounting** — every kill leaves a typed
  :class:`~repro.resilience.isolation.IsolationEvent`, an aborted round
  carries a :class:`~repro.resilience.report.FailureReport` embedding
  the exact (JSON round-trippable) fault schedule for deterministic
  replay, and a per-round report lands on disk;
* **no orphans** — after every round a process sweep finds no surviving
  child of the harness.

Sampling is fully deterministic in the seed: the same ``--seed`` yields
the same solvers, the same schedules and the same outcomes.

``--farm`` escalates the harness one supervision layer up: rounds
become jobs on the :mod:`~repro.resilience.farm` work queue, drained by
N workers, while the farm SIGKILLs the *workers themselves* on a
deterministic schedule — so the same campaign now also proves lease
reclaim, retry/backoff and worker replacement under fire.  Farm rounds
seed per-round rngs (``[seed, index]``) so they are order-independent
across workers; the serial and farm schedules for one seed therefore
differ, but each is individually deterministic.

``--farm --hosts N`` escalates once more, to the **distributed** farm:
N supervisor processes — each a separate "host" with its own
``host_id``, injected wall-clock skew and per-host journal — drain one
shared queue directory while the harness suspends a host mid-claim
(SIGSTOP: a network partition), freezes its clock beacon, delays its
queue I/O (stale NFS), heals it, and finally SIGKILLs a different host
outright.  The surviving host must finish every job exactly once
(journal audit) and the solver jobs' final states must be bitwise
identical to a single-host in-process reference.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import sys
import tempfile
import time

import numpy as np

from repro.errors import SolverError
from repro.resilience.faults import FaultInjector
from repro.resilience.isolation import (IsolatedRunner, IsolationPolicy,
                                        _read_rss_mb)

__all__ = ["CASES", "run_chaos", "run_chaos_farm", "run_chaos_hosts",
           "run_round", "sample_schedule"]


# ----------------------------------------------------------------------
# solver case matrix (small, fast, persist-protocol instances)
# ----------------------------------------------------------------------

def _make_euler1d():
    from repro.solvers.euler1d import Euler1DSolver
    s = Euler1DSolver(np.linspace(0.0, 1.0, 41))
    rho = np.where(s.xc < 0.5, 1.0, 0.125)
    p = np.where(s.xc < 0.5, 1.0, 0.1)
    return s.set_initial(rho, 0.0, p)


def _blunt(cls, **kw):
    from repro.core.gas import IdealGasEOS
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    grid = blunt_body_grid(Hemisphere(1.0), n_s=13, n_normal=17,
                           density_ratio=0.2, margin=2.5)
    s = cls(grid, IdealGasEOS(1.4), **kw)
    rho, T = 0.01, 220.0
    # catlint: disable=CAT002 -- T is the 220.0 literal above, gamma/R
    # positive constants
    s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                     rho * 287.0528 * T)
    return s


def _make_euler2d():
    from repro.solvers.euler2d import AxisymmetricEulerSolver
    return _blunt(AxisymmetricEulerSolver)


def _make_ns2d():
    from repro.solvers.ns2d import AxisymmetricNSSolver
    return _blunt(AxisymmetricNSSolver, T_wall=500.0)


def _make_reacting():
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set
    grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                           density_ratio=0.12, margin=2.5)
    db = species_set("air5")
    s = ReactingEulerSolver(grid, db)
    y = np.zeros(db.n)
    y[db.index["N2"]] = 0.767
    y[db.index["O2"]] = 0.233
    return s.set_freestream(1e-3, 5000.0, 250.0, y)


#: name -> (factory, run_kwargs, total marching steps, 2-D cell grid
#: bounds or None for a 1-D solver with 41 cells)
CASES = {
    "euler1d": (_make_euler1d, {"t_final": 0.1, "cfl": 0.4}, 20, None),
    "euler2d": (_make_euler2d, {"n_steps": 20, "cfl": 0.3}, 20, (13, 17)),
    "ns2d": (_make_ns2d, {"n_steps": 14, "cfl": 0.3}, 14, (13, 17)),
    "reacting_euler2d": (_make_reacting, {"n_steps": 10, "cfl": 0.3}, 10,
                         (9, 13)),
}

#: fault menu; the "resumable" kinds never mutate marching state, so a
#: killed-and-resumed run must land bitwise on the crash-free result
_MENU = ("hang", "memory_balloon", "crash", "io", "nan", "perturb")
_RESUMABLE = frozenset(("hang", "memory_balloon", "crash", "io"))


# ----------------------------------------------------------------------
# deterministic schedule sampling
# ----------------------------------------------------------------------

def sample_schedule(rng, case_name: str, *, balloon_mb: float = 500.0
                    ) -> tuple[FaultInjector, dict]:
    """Sample one fault schedule for ``case_name`` from ``rng``.

    Returns the armed injector and a JSON-able description
    ``{"case", "faults", "resumable"}``.  Everything the round does is
    a pure function of the generator state on entry.
    """
    _, _, n_steps, grid = CASES[case_name]
    n_faults = int(rng.integers(1, 3))
    kinds = [str(k) for k in rng.choice(_MENU, size=n_faults,
                                        replace=False)]
    fi = FaultInjector()
    for kind in kinds:
        step = int(rng.integers(2, max(3, n_steps - 1)))
        if kind == "hang":
            fi.inject_hang(step=step, duration=600.0)
        elif kind == "memory_balloon":
            fi.inject_memory_balloon(step=step, mb=balloon_mb,
                                     hold=600.0)
        elif kind == "crash":
            fi.inject_crash(step=step)
        elif kind == "io":
            io_kind = str(rng.choice(("truncate", "bitflip", "torn")))
            fi.inject_io_fault(kind=io_kind,
                               write=int(rng.integers(0, 3)))
        else:   # nan | perturb: one transient single-cell upset
            if grid is None:
                cell = int(rng.integers(1, 40))
            else:
                ni, nj = grid
                cell = (int(rng.integers(1, ni - 1)),
                        int(rng.integers(1, nj - 1)))
            if kind == "nan":
                fi.inject_nan(step=step, cell=cell, component=0)
            else:
                fi.inject_perturbation(step=step, cell=cell,
                                       component=0,
                                       factor=float(rng.choice(
                                           (1e-3, 1e3))))
    schedule = {"case": case_name, "faults": fi.to_json()["faults"],
                "resumable": all(k in _RESUMABLE for k in kinds)}
    return fi, schedule


def _orphan_sweep() -> list[str]:
    """Surviving multiprocessing children of this process (should be
    empty after every round — the kill path joins everything)."""
    orphans = []
    for p in mp.active_children():
        p.join(timeout=1.0)
        if p.is_alive():
            orphans.append(f"pid={p.pid} name={p.name}")
    return orphans


# ----------------------------------------------------------------------
# one round
# ----------------------------------------------------------------------

def run_round(index: int, rng, *, out_dir: str | None = None,
              deadline: float = 30.0, stall_timeout: float = 2.0,
              memory_margin_mb: float = 250.0, balloon_mb: float = 500.0,
              cases=None, stream=None) -> dict:
    """Run one chaos round; returns its (JSON-able) report dict.

    The round passes (``report["ok"]``) when it terminates with every
    invariant intact; the report records the schedule, every isolation
    event, the invariant checks and — on abort — the failure report
    with the embedded schedule.
    """
    stream = stream or sys.stdout
    names = sorted(cases or CASES)
    case_name = str(rng.choice(names))
    factory, run_kwargs, _n, _grid = CASES[case_name]
    faults, schedule = sample_schedule(rng, case_name,
                                       balloon_mb=balloon_mb)
    kinds = [f["kind"] for f in schedule["faults"]]
    print(f"round {index}: {case_name} with fault(s) "
          f"{'+'.join(kinds)}", file=stream)

    base_rss = _read_rss_mb()
    policy = IsolationPolicy(
        deadline=deadline,
        memory_mb=None if base_rss is None
        else base_rss + memory_margin_mb,
        stall_timeout=stall_timeout,
        max_restarts=3, poll_interval=0.05, term_grace=1.0,
        every_n_steps=3)
    runner = IsolatedRunner(policy, label=f"chaos[{case_name}]")

    report: dict = {"round": index, "case": case_name,
                    "schedule": schedule, "policy": {
                        "deadline": policy.deadline,
                        "memory_mb": policy.memory_mb,
                        "stall_timeout": policy.stall_timeout,
                        "max_restarts": policy.max_restarts}}
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix=f"chaos-{index}-") as workdir:
        try:
            solver = runner.run_solver(factory, run_kwargs,
                                       workdir=workdir, faults=faults,
                                       resilience=True, watchdog=True)
            report["outcome"] = "completed"
        except SolverError as err:
            solver = None
            report["outcome"] = "aborted"
            rep = getattr(err, "report", None)
            if rep is not None:
                rep.fault_schedule = faults.to_json()
                report["failure_report"] = rep.to_dict()
    report["elapsed"] = round(time.monotonic() - t0, 2)
    report["events"] = [e.to_dict() for e in runner.events]

    # -- invariants -----------------------------------------------------
    checks: dict = {"terminated": True}
    checks["every_kill_reported"] = all(
        e.kind in ("hang", "oom", "deadline", "crash")
        for e in runner.events)
    orphans = _orphan_sweep()
    checks["no_orphans"] = not orphans
    if orphans:
        report["orphans"] = orphans
    if schedule["resumable"]:
        # faults never touched the marching state: the sandboxed result
        # must match a crash-free in-process run bit for bit
        checks["completed"] = solver is not None
        if solver is not None:
            from repro.resilience.farm import state_fingerprint
            ref = factory()
            ref.run(**run_kwargs)
            checks["bitwise_match"] = (state_fingerprint(solver)
                                       == state_fingerprint(ref))
        else:
            checks["bitwise_match"] = False
    else:
        # state-corrupting transients: rollback-retry may legitimately
        # change the trajectory; the invariant is clean termination
        checks["completed"] = (solver is not None
                               or "failure_report" in report)
    if report["outcome"] == "aborted":
        checks["abort_has_report"] = "failure_report" in report
    report["checks"] = checks
    report["ok"] = all(checks.values())

    status = "ok" if report["ok"] else "FAILED"
    ev = "/".join(e.kind for e in runner.events) or "none"
    print(f"  -> {report['outcome']} in {report['elapsed']:.1f} s, "
          f"kills: {ev}, invariants: {status}", file=stream)
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"round-{index:03d}.json")
        with open(path, "w") as f:
            json.dump(report, f, indent=1, default=str)
    return report


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------

def run_chaos(*, rounds: int = 5, seed: int = 0, out: str | None =
              "chaos-reports", deadline: float = 30.0,
              stall_timeout: float = 2.0, memory_margin_mb: float = 250.0,
              balloon_mb: float = 500.0, cases=None, stream=None) -> int:
    """Run ``rounds`` chaos rounds; returns a process exit code
    (0 = every invariant held in every round, 1 otherwise).

    Per-round reports land in ``out`` (``round-NNN.json``) together
    with a ``chaos-ledger.json`` summarising the campaign.
    """
    stream = stream or sys.stdout
    rng = np.random.default_rng(seed)
    print(f"chaos: {rounds} round(s), seed {seed}, deadline "
          f"{deadline:.0f} s, stall {stall_timeout:.1f} s", file=stream)
    reports = []
    for i in range(rounds):
        reports.append(run_round(i, rng, out_dir=out, deadline=deadline,
                                 stall_timeout=stall_timeout,
                                 memory_margin_mb=memory_margin_mb,
                                 balloon_mb=balloon_mb, cases=cases,
                                 stream=stream))
    failed = [r["round"] for r in reports if not r["ok"]]
    ledger = {"rounds": len(reports), "seed": seed,
              "failed_rounds": failed,
              "kills": sum(len(r["events"]) for r in reports),
              "outcomes": {r["round"]: r["outcome"] for r in reports},
              "ok": not failed}
    if out is not None:
        os.makedirs(out, exist_ok=True)
        with open(os.path.join(out, "chaos-ledger.json"), "w") as f:
            json.dump(ledger, f, indent=1)
    if failed:
        print(f"chaos: {len(failed)}/{rounds} round(s) violated an "
              f"invariant: {failed}", file=stream)
        return 1
    print(f"chaos: all {rounds} round(s) green "
          f"({ledger['kills']} kill(s) performed and recovered)",
          file=stream)
    return 0


# ----------------------------------------------------------------------
# farm mode: rounds as queue jobs, chaos kills the workers too
# ----------------------------------------------------------------------

def run_chaos_farm(*, rounds: int = 5, seed: int = 0, out: str | None =
                   "chaos-reports", n_workers: int = 2,
                   kill_workers: int = 2, deadline: float = 30.0,
                   stall_timeout: float = 2.0,
                   memory_margin_mb: float = 250.0,
                   balloon_mb: float = 500.0, queue_dir: str | None =
                   None, stream=None) -> int:
    """Run the chaos campaign on the solve farm; returns an exit code.

    Every round is a ``chaos_round`` job; while workers drain them the
    farm delivers ``kill_workers`` scheduled SIGKILLs to its own
    workers.  A killed worker's round is reclaimed when its lease
    expires and retried elsewhere, so the campaign must still end with
    every round done (invariants checked as in serial mode) or
    dead-lettered with a failure report.
    """
    stream = stream or sys.stdout
    from repro.resilience.farm import (FarmPolicy, WorkerKillPlan,
                                       run_campaign)
    from repro.resilience.queue import BackoffPolicy, Job
    if queue_dir is None:
        queue_dir = (os.path.join(out, "farm-queue") if out is not None
                     else tempfile.mkdtemp(prefix="chaos-farm-"))
    print(f"chaos --farm: {rounds} round(s) on {n_workers} worker(s), "
          f"seed {seed}, {kill_workers} scheduled worker kill(s), "
          f"queue {queue_dir}", file=stream)
    # a round may burn several inner attempts (max_restarts=3) of
    # `deadline` each before it settles; budget the outer sandbox for
    # the worst case, and disable the outer stall detector — the outer
    # child blocks supervising the inner sandbox and never beats
    round_budget = deadline * 6.0 + 60.0
    jobs = [Job(id=f"round-{i:03d}", kind="chaos_round",
                payload={"index": i, "seed": [seed, i],
                         "deadline": deadline,
                         "stall_timeout": stall_timeout,
                         "memory_margin_mb": memory_margin_mb,
                         "balloon_mb": balloon_mb},
                deadline=round_budget, max_attempts=3)
            for i in range(rounds)]
    policy = FarmPolicy(
        n_workers=n_workers, lease_ttl=10.0, poll_interval=0.2,
        stall_timeout=None, deadline=round_budget,
        worker_restart_budget=2 * rounds + 4,
        backoff=BackoffPolicy(max_attempts=3, base=0.5, max_delay=5.0))
    plan = None
    if kill_workers > 0:
        plan = WorkerKillPlan(seed=seed + 1000, kills=kill_workers,
                              min_interval=2.0, max_interval=10.0)
    farm_ledger = run_campaign(queue_dir, jobs, policy=policy,
                               label="chaos-farm", stream=stream,
                               kill_plan=plan)

    from repro.resilience.queue import WorkQueue
    queue = WorkQueue(queue_dir)
    reports, failed, dead = [], [], []
    for i in range(rounds):
        job_id = f"round-{i:03d}"
        res = queue.result(job_id)
        if res is None:
            dead.append(i)
            continue
        report = res["result"]["report"]
        reports.append(report)
        if not report.get("ok"):
            failed.append(i)
        if out is not None:
            os.makedirs(out, exist_ok=True)
            with open(os.path.join(out, f"round-{i:03d}.json"),
                      "w") as f:
                json.dump(report, f, indent=1, default=str)
    dead_ok = all(
        (queue.dead_letter(f"round-{i:03d}") or {}).get("report")
        is not None for i in dead)
    ledger = {"rounds": rounds, "seed": seed, "mode": "farm",
              "failed_rounds": failed, "dead_rounds": dead,
              "kills": sum(len(r.get("events") or []) for r in reports),
              "worker_kills": farm_ledger["worker_kills"],
              "reclaims": farm_ledger["reclaims"],
              "requeues": farm_ledger["requeues"],
              "outcomes": {r["round"]: r["outcome"] for r in reports},
              "farm": {k: farm_ledger[k] for k in
                       ("wall_time", "n_workers", "attempts", "jobs",
                        "ok")},
              "ok": (not failed and farm_ledger["ok"]
                     and (not dead or dead_ok))}
    if out is not None:
        os.makedirs(out, exist_ok=True)
        with open(os.path.join(out, "chaos-ledger.json"), "w") as f:
            json.dump(ledger, f, indent=1, default=str)
    if not ledger["ok"]:
        print(f"chaos --farm: FAILED (rounds {failed} violated an "
              f"invariant; dead-lettered {dead}"
              f"{'' if dead_ok else ' without failure reports'})",
              file=stream)
        return 1
    print(f"chaos --farm: all {rounds} round(s) green under "
          f"{len(farm_ledger['worker_kills'])} worker kill(s) "
          f"({ledger['reclaims']} lease reclaim(s), "
          f"{ledger['requeues']} requeue(s))", file=stream)
    return 0


# ----------------------------------------------------------------------
# distributed mode: several supervisor "hosts", one shared queue
# ----------------------------------------------------------------------

def _chaos_host_main(queue_dir: str, host_id: str, cfg: dict) -> None:
    """One chaos "host": a farm supervisor serving the shared queue
    under its own identity, injected clock skew and chaos knobs."""
    try:
        os.setpgid(0, 0)
    except OSError:
        pass
    if cfg.get("io_delay"):
        # stale-NFS simulation: every queue I/O on this host sleeps
        os.environ["REPRO_QUEUE_IO_DELAY"] = str(cfg["io_delay"])
    from repro.resilience.farm import Farm, FarmPolicy
    from repro.resilience.queue import BackoffPolicy
    policy = FarmPolicy(
        n_workers=int(cfg["n_workers"]),
        lease_ttl=float(cfg["lease_ttl"]), poll_interval=0.1,
        worker_stall_timeout=60.0,
        worker_restart_budget=int(cfg.get("restart_budget", 4)),
        deadline=float(cfg["deadline"]), stall_timeout=None,
        backoff=BackoffPolicy(max_attempts=6, base=0.2, max_delay=2.0),
        drain_when_idle=False,   # serve mode: driver SIGTERMs us
        host_id=host_id, max_skew=float(cfg["max_skew"]),
        beacon_interval=0.2,
        clock_offset=float(cfg.get("clock_offset", 0.0)),
        freeze_beacon_after=cfg.get("freeze_beacon_after"))
    stream = sys.stdout if cfg.get("verbose") else open(os.devnull, "w")
    farm = Farm(queue_dir, policy, label=f"chaos-{host_id}",
                stream=stream)
    ledger = farm.run()
    if cfg.get("out"):
        path = os.path.join(cfg["out"], f"ledger-{host_id}.json")
        with open(path, "w") as f:
            json.dump(ledger, f, indent=1, default=str)


def _host_pids(queue, host_id: str, proc) -> list[int]:
    """The supervisor pid plus the worker pids its beacon advertises."""
    from repro.resilience.lease import read_beacons
    pids = [proc.pid]
    beacon = read_beacons(queue.hosts_dir).get(host_id) or {}
    pids.extend(int(p) for p in beacon.get("workers") or [])
    return pids


def run_chaos_hosts(*, hosts: int = 2, rounds: int = 2, seed: int = 0,
                    out: str | None = "chaos-hosts-reports",
                    n_workers: int = 1, skew: float = 0.0,
                    partition: bool = False, deadline: float = 240.0,
                    queue_dir: str | None = None, stream=None) -> int:
    """Distributed chaos campaign; returns a process exit code.

    ``hosts`` supervisor processes (each its own ``host_id`` and, with
    ``skew``, an alternating ±skew wall-clock offset) drain one shared
    queue of ``rounds`` bitwise-verifiable solver jobs plus sleep
    ballast.  With ``partition`` the campaign SIGSTOPs the surviving
    host mid-run (its beacon frozen, its queue I/O delayed after heal)
    long enough for its leases to be reaped, then resumes it; then host
    0 is SIGKILLed outright (supervisor, workers and sandbox children).
    The survivors must finish every job **exactly once** — the merged
    journal audit finds no double completion, every fenced stale commit
    is rejected, and each solver job's final state is bitwise identical
    to a single-host in-process reference march.
    """
    stream = stream or sys.stdout
    from repro.resilience.farm import (audit_exactly_once,
                                       merge_ledgers, state_fingerprint,
                                       sweep_orphans)
    from repro.resilience.isolation import kill_pid_tree
    from repro.resilience.queue import Job, WorkQueue
    if hosts < 2:
        raise SolverError("chaos --hosts: need at least 2 hosts")
    if queue_dir is None:
        queue_dir = (os.path.join(out, "farm-queue") if out is not None
                     else tempfile.mkdtemp(prefix="chaos-hosts-"))
    if out is not None:
        os.makedirs(out, exist_ok=True)
    lease_ttl, max_skew = 1.5, 1.0
    offsets = [0.0] * hosts
    if skew:
        # alternating ±skew: host clocks disagree by up to 2*skew
        offsets = [skew if i % 2 == 0 else -skew for i in range(hosts)]
    print(f"chaos --hosts: {hosts} host(s) x {n_workers} worker(s), "
          f"{rounds} solver round(s), skew {offsets}, "
          f"partition {partition}, queue {queue_dir}", file=stream)

    # bitwise reference: uninterrupted in-process marches
    case_names = [("euler1d" if i % 2 == 0 else "euler2d")
                  for i in range(rounds)]
    ref = {}
    for name in sorted(set(case_names)):
        factory, run_kwargs, _, _ = CASES[name]
        solver = factory()
        solver.run(**run_kwargs)
        ref[name] = state_fingerprint(solver)

    queue = WorkQueue(queue_dir, lease_ttl=lease_ttl,
                      host_id="chaos-driver", max_skew=max_skew)
    jobs = ([Job(id=f"case-{i:02d}", kind="solver_case", priority=-1,
                 payload={"case": case_names[i], "every_n_steps": 2},
                 max_attempts=8)
             for i in range(rounds)]
            + [Job(id=f"pad-{i:02d}", kind="sleep", max_attempts=8,
                   payload={"duration": 0.5})
               for i in range(2 * hosts * n_workers)])
    for job in jobs:
        queue.enqueue(job)

    survivor = hosts - 1    # last host outlives the campaign
    base_cfg = {"n_workers": n_workers, "lease_ttl": lease_ttl,
                "max_skew": max_skew, "deadline": deadline / 2.0,
                "out": out}
    ctx = mp.get_context("fork")
    procs = []
    for i in range(hosts):
        cfg = dict(base_cfg)
        cfg["clock_offset"] = offsets[i]
        if partition and i == survivor:
            # the partitioned host also loses its beacon (frozen) —
            # advisory beacons must not get its leases reaped early
            cfg["freeze_beacon_after"] = 0.5
        host_id = f"host{i}"
        proc = ctx.Process(target=_chaos_host_main,
                           args=(queue_dir, host_id, cfg),
                           daemon=False)
        proc.start()
        procs.append({"host": host_id, "proc": proc, "index": i})
        print(f"  host {host_id} up (pid {proc.pid}, "
              f"skew {offsets[i]:+.1f} s)", file=stream)

    t0 = time.monotonic()
    events: list[dict] = []

    def _elapsed():
        return time.monotonic() - t0

    def _wait(cond, budget):
        while not cond():
            if _elapsed() > budget:
                return False
            time.sleep(0.1)
        return True

    ok = True
    try:
        # let every host claim work before injecting anything
        _wait(lambda: any(r.get("event") == "claim"
                          for r in queue.read_journal()),
              deadline / 4.0)

        if partition:
            # -- partition the survivor: SIGSTOP its whole process
            # tree long enough for its leases to expire on the other
            # hosts' monotonic clocks, then heal it
            victim = procs[survivor]
            pids = _host_pids(queue, victim["host"], victim["proc"])
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGSTOP)
                except OSError:
                    pass
            hold = lease_ttl + max_skew + 1.0
            events.append({"t": round(_elapsed(), 2),
                           "event": "partition",
                           "host": victim["host"], "pids": pids,
                           "hold": hold})
            print(f"  t={_elapsed():.1f}s partition: SIGSTOP "
                  f"{victim['host']} ({len(pids)} pid(s)) for "
                  f"{hold:.1f} s", file=stream)
            time.sleep(hold)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGCONT)
                except OSError:
                    pass
            events.append({"t": round(_elapsed(), 2), "event": "heal",
                           "host": victim["host"]})
            print(f"  t={_elapsed():.1f}s heal: SIGCONT "
                  f"{victim['host']}", file=stream)

        # -- kill host 0 outright: supervisor, workers, sandboxes
        victim = procs[0]
        pids = _host_pids(queue, victim["host"], victim["proc"])
        for pid in pids:
            kill_pid_tree(pid)
        victim["proc"].join(10.0)
        swept = sweep_orphans(queue, host=victim["host"])
        events.append({"t": round(_elapsed(), 2), "event": "host-kill",
                       "host": victim["host"], "pids": pids,
                       "orphans_swept": len(swept)})
        print(f"  t={_elapsed():.1f}s host-kill: SIGKILL "
              f"{victim['host']} ({len(pids)} pid(s), {len(swept)} "
              f"orphan(s) swept)", file=stream)

        # -- the survivors must drain the queue
        ok = _wait(queue.all_terminal, deadline)
        if not ok:
            print(f"chaos --hosts: FAILED — queue not drained within "
                  f"{deadline:.0f} s: {queue.counts()}", file=stream)
    finally:
        # graceful stop for every live supervisor (writes its ledger)
        for rec in procs:
            if rec["proc"].is_alive():
                try:
                    os.kill(rec["proc"].pid, signal.SIGTERM)
                except OSError:
                    pass
        for rec in procs:
            rec["proc"].join(20.0)
            if rec["proc"].is_alive():
                kill_pid_tree(rec["proc"].pid)
                rec["proc"].join(5.0)

    # -- verdict: exactly-once + bitwise identity + dead letters ------
    audit = audit_exactly_once(queue)
    checks = {"drained": ok, "exactly_once": audit["ok"],
              "no_dead_letters":
                  not queue.counts().get("dead", 0)}
    mismatches = []
    for i in range(rounds):
        res = queue.result(f"case-{i:02d}")
        if res is None:
            mismatches.append({"job": f"case-{i:02d}",
                               "error": "no result"})
            continue
        got = res["result"]["state_sha256"]
        if got != ref[case_names[i]]:
            mismatches.append({"job": f"case-{i:02d}", "got": got,
                               "want": ref[case_names[i]]})
    checks["bitwise_match"] = not mismatches

    ledgers = []
    if out is not None:
        for rec in procs:
            path = os.path.join(out, f"ledger-{rec['host']}.json")
            try:
                with open(path) as f:
                    ledgers.append(json.load(f))
            except (OSError, ValueError):
                pass
    merged = merge_ledgers(ledgers) if ledgers else None
    fenced = sum(1 for r in queue.read_journal()
                 if r.get("event") == "fenced")
    ledger = {"mode": "hosts", "hosts": hosts, "rounds": rounds,
              "seed": seed, "skew": offsets, "partition": partition,
              "events": events, "checks": checks, "audit": audit,
              "fenced": fenced, "mismatches": mismatches,
              "jobs": queue.counts(), "merged_ledger": merged,
              "ok": all(checks.values())}
    if out is not None:
        with open(os.path.join(out, "chaos-ledger.json"), "w") as f:
            json.dump(ledger, f, indent=1, default=str)
    if not ledger["ok"]:
        failed = [k for k, v in checks.items() if not v]
        print(f"chaos --hosts: FAILED ({', '.join(failed)}); audit "
              f"{audit}", file=stream)
        return 1
    print(f"chaos --hosts: green — {queue.counts().get('done', 0)} "
          f"job(s) done exactly once across {hosts} host(s) "
          f"({fenced} stale commit(s) fenced, "
          f"{audit['jobs_completed']} completion(s) audited), "
          f"solver states bitwise-identical to the single-host "
          f"reference", file=stream)
    return 0
