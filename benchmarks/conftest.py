"""Benchmark-suite configuration.

Every figure benchmark runs its experiment once (rounds=1) — these are
solver-scale reproductions, not microsecond kernels — and prints the
series the paper's figure reports (visible with ``pytest -s`` and
recorded in bench_output.txt).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return _run
