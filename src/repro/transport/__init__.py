"""Transport properties: viscosity, conductivity, diffusion, turbulence.

Laminar transport follows the standard CAT recipe: per-species viscosities
from Blottner curve fits (air species) or Chapman–Enskog kinetic theory with
Lennard–Jones collision integrals (everything else), Eucken conductivities,
Wilke semi-empirical mixing, and constant-Lewis-number diffusion.  Small-
scale turbulent transport is modelled with an algebraic (Cebeci–Smith type)
eddy viscosity, as the paper prescribes ("eddy-viscosity and
eddy-conductivity approaches").
"""

from repro.transport.viscosity import (blottner_viscosity,
                                       kinetic_theory_viscosity,
                                       species_viscosities,
                                       sutherland_viscosity)
from repro.transport.conductivity import eucken_conductivity
from repro.transport.mixture_rules import wilke_mixture
from repro.transport.diffusion import (binary_diffusion_coefficient,
                                       lewis_diffusivity)
from repro.transport.turbulence import cebeci_smith_eddy_viscosity
from repro.transport.properties import TransportModel

__all__ = [
    "blottner_viscosity",
    "kinetic_theory_viscosity",
    "species_viscosities",
    "sutherland_viscosity",
    "eucken_conductivity",
    "wilke_mixture",
    "binary_diffusion_coefficient",
    "lewis_diffusivity",
    "cebeci_smith_eddy_viscosity",
    "TransportModel",
]
