"""Tests for species and mixture viscosities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpeciesError
from repro.thermo.species import SPECIES, species_set
from repro.transport.viscosity import (blottner_viscosity,
                                       kinetic_theory_viscosity,
                                       species_viscosities,
                                       sutherland_viscosity)


class TestSutherland:
    def test_reference_point(self):
        assert float(sutherland_viscosity(273.15)) == pytest.approx(
            1.716e-5, rel=1e-10)

    def test_room_temperature_air(self):
        assert float(sutherland_viscosity(300.0)) == pytest.approx(
            1.846e-5, rel=0.005)

    @given(T=st.floats(min_value=100.0, max_value=5000.0))
    @settings(max_examples=40, deadline=None)
    def test_monotonic(self, T):
        assert float(sutherland_viscosity(T * 1.01)) > float(
            sutherland_viscosity(T))


class TestBlottner:
    def test_n2_room_temperature(self):
        # should land near the Sutherland air value
        mu = float(blottner_viscosity("N2", 300.0))
        assert mu == pytest.approx(1.78e-5, rel=0.05)

    def test_matches_sutherland_moderate_T(self):
        for T in (300.0, 600.0, 1000.0):
            mu_b = float(blottner_viscosity("N2", T))
            mu_s = float(sutherland_viscosity(T))
            assert mu_b == pytest.approx(mu_s, rel=0.10)

    def test_unknown_species_raises(self):
        with pytest.raises(SpeciesError):
            blottner_viscosity("CH4", 300.0)

    def test_increases_with_temperature(self):
        T = np.linspace(200.0, 10000.0, 30)
        mu = blottner_viscosity("O2", T)
        assert np.all(np.diff(mu) > 0)


class TestKineticTheory:
    def test_n2_agrees_with_blottner(self):
        # two independent models should agree within ~10 %
        for T in (300.0, 1000.0, 3000.0):
            mu_kt = float(kinetic_theory_viscosity(
                "N2", T, SPECIES["N2"].molar_mass))
            mu_b = float(blottner_viscosity("N2", T))
            assert mu_kt == pytest.approx(mu_b, rel=0.12)

    def test_ch4_room_temperature(self):
        # CRC: mu(CH4, 300 K) ~ 1.11e-5 Pa s
        mu = float(kinetic_theory_viscosity("CH4", 300.0,
                                            SPECIES["CH4"].molar_mass))
        assert mu == pytest.approx(1.11e-5, rel=0.1)

    def test_h2_room_temperature(self):
        # CRC: mu(H2, 300 K) ~ 8.9e-6 Pa s
        mu = float(kinetic_theory_viscosity("H2", 300.0,
                                            SPECIES["H2"].molar_mass))
        assert mu == pytest.approx(8.9e-6, rel=0.1)

    def test_unknown_raises(self):
        with pytest.raises(SpeciesError):
            kinetic_theory_viscosity("X99", 300.0, 0.028)


class TestSpeciesVector:
    def test_shapes(self, air11):
        T = np.linspace(300, 8000, 5)
        mu = species_viscosities(air11, T)
        assert mu.shape == (5, 11)
        assert np.all(mu > 0)

    def test_electron_negligible(self, air11):
        mu = species_viscosities(air11, np.array([5000.0]))
        je = air11.index["e-"]
        assert mu[0, je] < 1e-3 * mu[0, air11.index["N2"]]

    def test_titan_species_covered(self, titan9):
        mu = species_viscosities(titan9, np.array([300.0, 5000.0]))
        assert np.all(np.isfinite(mu)) and np.all(mu > 0)
