"""Baseline persistence and diffing.

A baseline is a JSON snapshot of accepted findings.  Each finding is
keyed by ``(path, rule, stripped source line)`` — deliberately **not**
by line number, so unrelated edits above a grandfathered finding do
not resurrect it — with a multiplicity count for identical lines.

CI runs ``lint --baseline``: findings whose key-count exceeds the
baseline's count are *new* and fail the build; baseline entries whose
finding disappeared are reported as stale (informational) so the file
can be re-generated with ``--write-baseline``.
"""

from __future__ import annotations

import collections
import json
import os
from typing import Iterable

from repro.analysis.findings import Finding

#: Default baseline location, relative to the repo root / CWD.
DEFAULT_BASELINE_PATH = ".catlint-baseline.json"

#: Baseline for the PERF rule family (``repro.analysis perf``) — kept
#: separate from the catlint baseline: perf findings are a ranked
#: worklist to burn down, not correctness hazards, and the two files
#: regenerate on different cadences.
DEFAULT_PERF_BASELINE_PATH = ".perflint-baseline.json"

_FORMAT_VERSION = 1


def _counts(findings: Iterable[Finding]) -> collections.Counter:
    return collections.Counter(f.key() for f in findings)


def write_baseline(findings: Iterable[Finding], path: str) -> dict:
    findings = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    doc = {
        "format": _FORMAT_VERSION,
        "tool": "catlint",
        "entries": [
            {"key": f.key(), "rule": f.rule, "path": f.path,
             "source_line": f.source_line.strip(), "message": f.message}
            for f in findings
        ],
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def load_baseline(path: str) -> collections.Counter:
    """Key -> accepted multiplicity.  Missing file = empty baseline."""
    if not os.path.exists(path):
        return collections.Counter()
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "entries" in doc is None:
        raise ValueError(f"not a catlint baseline: {path}")
    return collections.Counter(e["key"] for e in doc.get("entries", []))


def diff_against_baseline(findings: list[Finding],
                          baseline: collections.Counter,
                          ) -> tuple[list[Finding], int]:
    """Return (new_findings, n_stale_entries).

    ``new_findings`` are findings beyond the baselined multiplicity of
    their key; ``n_stale_entries`` counts baseline entries whose
    finding no longer occurs (candidates for re-baselining).
    """
    remaining = collections.Counter(baseline)
    new: list[Finding] = []
    for f in sorted(findings, key=lambda x: (x.path, x.line, x.col, x.rule)):
        k = f.key()
        if remaining[k] > 0:
            remaining[k] -= 1
        else:
            new.append(f)
    stale = sum(c for c in remaining.values() if c > 0)
    return new, stale
