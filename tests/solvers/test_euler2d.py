"""Integration tests for the axisymmetric Euler solver."""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS
from repro.errors import InputError
from repro.geometry import Hemisphere, Sphere
from repro.grid import blunt_body_grid
from repro.solvers.euler2d import AxisymmetricEulerSolver
from repro.solvers.shock import normal_shock_ideal, pitot_pressure_ideal


@pytest.fixture(scope="module")
def m8_solution():
    """Converged Mach-8 hemisphere solution (module-shared)."""
    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=31, n_normal=41, density_ratio=0.2,
                           margin=2.5)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    rho, T = 0.01, 220.0
    a = np.sqrt(1.4 * 287.0528 * T)
    s.set_freestream(rho, 8.0 * a, rho * 287.0528 * T)
    s.run(n_steps=1500, cfl=0.4)
    return s


class TestM8Hemisphere:
    def test_standoff_against_billig(self, m8_solution):
        # Billig correlation for a sphere at M=8: delta/R ~ 0.13
        delta = m8_solution.stagnation_standoff()
        assert 0.09 < delta < 0.18

    def test_stagnation_pressure_rayleigh(self, m8_solution):
        p_inf = 0.01 * 287.0528 * 220.0
        p_pitot = float(pitot_pressure_ideal(8.0, p_inf))
        _, _, p_wall = m8_solution.surface_pressure()
        assert p_wall[0] == pytest.approx(p_pitot, rel=0.04)

    def test_max_temperature_near_total(self, m8_solution):
        f = m8_solution.fields()
        T0 = 220.0 * (1.0 + 0.2 * 64.0)
        assert f["T"].max() == pytest.approx(T0, rel=0.08)

    def test_freestream_ahead_of_shock(self, m8_solution):
        f = m8_solution.fields()
        # the outermost cells are undisturbed freestream
        assert np.allclose(f["rho"][:, -1], 0.01, rtol=1e-3)

    def test_density_jump_at_shock(self, m8_solution):
        f = m8_solution.fields()
        ns = normal_shock_ideal(8.0)
        # stagnation-ray max density ratio approaches the RH value
        ratio = f["rho"][0].max() / 0.01
        assert ratio == pytest.approx(float(ns["rho_ratio"]), rel=0.12)

    def test_surface_pressure_decreases_around_body(self, m8_solution):
        _, _, p_wall = m8_solution.surface_pressure()
        # monotone decay from stagnation toward the shoulder (Newtonian)
        assert p_wall[0] > 3.0 * p_wall[-1]

    def test_shock_wraps_body(self, m8_solution):
        xs, ys = m8_solution.shock_location()
        ok = np.isfinite(ys)
        assert np.count_nonzero(ok) > 10
        assert np.nanmax(ys) > 1.0  # beyond the body radius

    def test_shock_location_matches_per_ray_scan(self, m8_solution):
        # vectorized masked-argmax must reproduce the per-ray reference
        f = m8_solution.fields()
        mask = f["rho"] > 1.5 * 0.01
        xs, ys = m8_solution.shock_location(threshold=1.5)
        for i in range(mask.shape[0]):
            hits = np.flatnonzero(mask[i])
            if hits.size:
                j = hits[-1]   # outermost compressed cell on the ray
                assert xs[i] == f["x"][i, j] and ys[i] == f["y"][i, j]
            else:
                assert np.isnan(xs[i]) and np.isnan(ys[i])

    def test_shock_location_nan_where_no_shock(self):
        # undisturbed freestream: no ray crosses the threshold -> all NaN
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=9, n_normal=11)
        s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
        rho, T = 0.01, 220.0
        s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                         rho * 287.0528 * T)
        xs, ys = s.shock_location()
        assert np.all(np.isnan(xs)) and np.all(np.isnan(ys))


class TestRobustness:
    def test_run_without_init_raises(self):
        body = Sphere(1.0)
        grid = blunt_body_grid(body, n_s=11, n_normal=11)
        s = AxisymmetricEulerSolver(grid)
        with pytest.raises(InputError):
            s.run(n_steps=1)

    def test_residual_decreases(self, m8_solution):
        hist = m8_solution.residual_history
        assert hist[-1] < 0.05 * max(hist[:20])

    def test_first_order_runs(self):
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=21, n_normal=31)
        s = AxisymmetricEulerSolver(grid, order=1)
        rho, T = 0.01, 220.0
        s.set_freestream(rho, 6.0 * np.sqrt(1.4 * 287.0528 * T),
                         rho * 287.0528 * T)
        s.run(n_steps=300)
        f = s.fields()
        assert np.all(np.isfinite(f["p"]))
