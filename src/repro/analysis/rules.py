"""Concrete catlint rules.

Every rule is CAT-specific: the targets are the silent numerical
failure modes of an aerothermodynamics stack — NaNs born in ``log``/
``sqrt`` of a state that went slightly negative mid-Newton, float32
truncation of a 10-decade density range, ``except:`` clauses that
swallow the resilience layer's crash faults, and nondeterministic
reduction orders that break bitwise restart tests.

Rule codes group by family:

* ``CAT00x`` — guarded-math (log/sqrt/division)
* ``CAT01x`` — comparison / API hygiene (float ``==``, mutable
  defaults, overbroad except, float32, assert)
* ``CAT02x`` — array construction (``np.empty``, missing dtype)
* ``CAT03x`` — determinism
* ``CAT09x`` — pragma hygiene (emitted by the engine)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import (
    LintContext,
    Rule,
    call_name,
    const_value,
    dotted_name,
    is_guarded,
    register,
)
from repro.analysis.findings import Finding, Severity

_LOG_FUNCS = {"np.log", "np.log10", "np.log2", "numpy.log", "numpy.log10",
              "numpy.log2", "math.log", "math.log10", "math.log2"}
_SQRT_FUNCS = {"np.sqrt", "numpy.sqrt", "math.sqrt"}
_ARRAY_CTORS = {"np.zeros", "np.ones", "np.empty", "np.full",
                "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"}


def _scope_body(ctx: LintContext, node: ast.AST) -> list[ast.stmt]:
    fn = ctx.enclosing_function(node)
    return fn.body if fn is not None else ctx.tree.body


def _assignments_in(body: Iterable[ast.stmt]) -> dict[str, list[ast.AST]]:
    """name -> list of value expressions assigned to it in this scope."""
    out: dict[str, list[ast.AST]] = {}
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        out.setdefault(tgt.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    out.setdefault(node.target.id, []).append(node.value)
    return out


def _arg_guarded(ctx: LintContext, arg: ast.AST) -> bool:
    """Guardedness with name resolution in the enclosing scope.

    A name is positive when it is a known positive constant of the
    module (``repro.constants`` imports, positive module literals) or
    when every assignment to it in the scope is itself guarded.  The
    resolver is cycle-safe (``x = x + eps`` style self-references stop
    the recursion rather than looping).
    """
    assigns = _assignments_in(_scope_body(ctx, arg))
    resolving: set[str] = set()

    def resolve(name: str) -> bool:
        if name in ctx.positive_names:
            return True
        if name in resolving:
            return False
        vals = assigns.get(name)
        if not vals:
            return False
        resolving.add(name)
        try:
            return all(is_guarded(v, resolve) for v in vals)
        finally:
            resolving.discard(name)

    return is_guarded(arg, resolve)


class _GuardedCallRule(Rule):
    """Shared machinery for the log/sqrt rules.

    Guarded-math rules target library state math; tests feed known
    in-domain inputs, so they are exempt (float ``==`` and except
    hygiene still apply there).
    """

    funcs: set[str] = set()
    what = ""

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in self.funcs or not node.args:
                continue
            arg = node.args[0]
            if _arg_guarded(ctx, arg):
                continue
            yield ctx.finding(
                self, node,
                f"unguarded {call_name(node)}: {self.what} — clamp the "
                "argument (np.maximum(x, tiny), np.abs, or an added "
                "epsilon) or pragma with the invariant that keeps it "
                "in-domain")


@register
class UnguardedLogRule(_GuardedCallRule):
    code = "CAT001"
    name = "unguarded-log"
    severity = Severity.WARNING
    description = ("np.log/math.log on an expression with no positivity "
                   "guard: a state that went ≤ 0 mid-iteration produces "
                   "NaN/-inf that propagates silently.")
    funcs = _LOG_FUNCS
    what = "argument can be ≤ 0 for an off-manifold state"


@register
class UnguardedSqrtRule(_GuardedCallRule):
    code = "CAT002"
    name = "unguarded-sqrt"
    severity = Severity.WARNING
    description = ("np.sqrt/math.sqrt on an expression with no "
                   "non-negativity guard: a slightly negative energy or "
                   "pressure produces NaN, not an exception.")
    funcs = _SQRT_FUNCS
    what = "argument can be < 0 for an off-manifold state"


@register
class DivisionByDifferenceRule(Rule):
    code = "CAT003"
    name = "div-by-difference"
    severity = Severity.WARNING
    description = ("Division whose denominator is an unguarded "
                   "difference (a - b): catastrophic when the operands "
                   "cross; add an epsilon or clamp.")

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Div)):
                continue
            den = node.right
            if isinstance(den, ast.UnaryOp):
                den = den.operand
            if (isinstance(den, ast.BinOp) and isinstance(den.op, ast.Sub)
                    and not is_guarded(node.right)):
                yield ctx.finding(
                    self, node,
                    "division by an unguarded difference — denominator "
                    "vanishes when the operands cross; add an epsilon "
                    "(…- b + tiny) or clamp with np.maximum")


_EXP_FUNCS = {"np.exp", "numpy.exp", "np.exp2", "numpy.exp2", "math.exp"}
_EXP_BOUNDING_CALLS = {"np.clip", "numpy.clip", "np.minimum",
                       "numpy.minimum", "min", "safe_exp"}


def _exp_arg_guarded(ctx: LintContext, arg: ast.AST) -> bool:
    """Is this exp argument bounded above (no overflow possible)?

    True for constants, explicitly clipped/min-bounded expressions, and
    negated positives (``exp(-theta/T)`` with a clamped ``T`` is bounded
    by 1 — underflow to 0 is benign, unlike overflow to inf).
    """
    if const_value(arg) is not None:
        return True
    if isinstance(arg, ast.Call) and call_name(arg) in _EXP_BOUNDING_CALLS:
        return True
    if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
        return _arg_guarded(ctx, arg.operand)
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Mult):
        # (-c) * x with c a literal and x positive-guarded is <= 0
        lv, rv = const_value(arg.left), const_value(arg.right)
        if lv is not None and lv < 0:
            return _arg_guarded(ctx, arg.right)
        if rv is not None and rv < 0:
            return _arg_guarded(ctx, arg.left)
        return False
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Div):
        # -x / d parses as (-x) / d: nonpositive when x and d are
        # positive-guarded
        num = arg.left
        if isinstance(num, ast.UnaryOp) and isinstance(num.op, ast.USub):
            return (_arg_guarded(ctx, num.operand)
                    and _arg_guarded(ctx, arg.right))
        return False
    if isinstance(arg, ast.Name):
        # a name is bounded when every assignment to it in this scope
        # is itself a clipping call (x = np.clip(th / T, lo, hi))
        vals = _assignments_in(_scope_body(ctx, arg)).get(arg.id)
        return bool(vals) and all(
            isinstance(v, ast.Call) and call_name(v) in _EXP_BOUNDING_CALLS
            for v in vals)
    return False


@register
class UnguardedExpRule(Rule):
    code = "CAT004"
    name = "unguarded-exp"
    severity = Severity.WARNING
    description = ("np.exp/math.exp on an unbounded expression in a hot "
                   "path: an Arrhenius exponent or partition-function "
                   "argument that spikes past ~709 overflows to inf, and "
                   "inf - inf downstream is the classic silent NaN "
                   "source; clip the argument or use "
                   "repro.numerics.safety.safe_exp.")

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_hot_path

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _EXP_FUNCS or not node.args:
                continue
            if _exp_arg_guarded(ctx, node.args[0]):
                continue
            yield ctx.finding(
                self, node,
                f"unguarded {call_name(node)}: argument overflow past "
                "~709 produces inf and downstream NaN — clip the "
                "exponent (safe_exp / np.clip) or pragma with the bound "
                "that keeps it finite")


@register
class FloatEqualityRule(Rule):
    code = "CAT010"
    name = "float-equality"
    severity = Severity.ERROR
    description = ("== / != against a float literal: rounding makes the "
                   "comparison unstable; use a tolerance (np.isclose, "
                   "pytest.approx) or an integer/flag encoding.")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops,
                                      zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    v = const_value(side)
                    if isinstance(v, float):
                        yield ctx.finding(
                            self, node,
                            f"float equality against {v!r} — use a "
                            "tolerance (np.isclose / pytest.approx) or "
                            "pragma with why exactness is guaranteed")
                        break


_MUTABLE_CALLS = {"list", "dict", "set", "collections.defaultdict",
                  "defaultdict", "collections.OrderedDict", "OrderedDict",
                  "np.zeros", "np.ones", "np.empty", "np.array", "np.full",
                  "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.array",
                  "numpy.full"}


@register
class MutableDefaultRule(Rule):
    code = "CAT011"
    name = "mutable-default"
    severity = Severity.ERROR
    description = ("Mutable default argument ([], {}, set(), np.zeros(…)): "
                   "shared across calls, so one solve's mutation leaks "
                   "into the next.")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for d in defaults:
                bad = isinstance(d, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
                if isinstance(d, ast.Call) and call_name(d) in _MUTABLE_CALLS:
                    bad = True
                if bad:
                    yield ctx.finding(
                        self, d,
                        f"mutable default argument in {node.name}() is "
                        "evaluated once and shared across calls; default "
                        "to None and construct inside")


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for stmt in handler.body
               for n in ast.walk(stmt))


def _exception_names(type_node: ast.AST | None) -> list[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    return [dotted_name(n).rsplit(".", 1)[-1] for n in nodes]


@register
class OverbroadExceptRule(Rule):
    code = "CAT012"
    name = "overbroad-except"
    severity = Severity.ERROR
    description = ("bare except / except BaseException can swallow "
                   "SimulatedCrash (the resilience layer's crash fault, "
                   "a BaseException) and KeyboardInterrupt; except "
                   "Exception can swallow StabilityError/ConvergenceError. "
                   "Catch CatError or a concrete type, or re-raise.")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node.type)
            if node.type is None or "BaseException" in names:
                if _handler_reraises(node):
                    continue
                label = ("bare except:" if node.type is None
                         else "except BaseException")
                yield ctx.finding(
                    self, node,
                    f"{label} without re-raise swallows SimulatedCrash "
                    "crash faults and KeyboardInterrupt — catch a "
                    "concrete exception or re-raise")
            elif "Exception" in names:
                if _handler_reraises(node):
                    continue
                yield ctx.finding(
                    self, node,
                    "except Exception without re-raise can swallow "
                    "StabilityError/ConvergenceError diagnostics — "
                    "catch CatError or a concrete type",
                    severity=Severity.WARNING)


_F32_ATTRS = {"float32", "single", "half", "float16"}
_F32_STRINGS = {"float32", "f4", "<f4", ">f4", "float16", "f2"}


@register
class Float32DowncastRule(Rule):
    code = "CAT013"
    name = "float32-downcast"
    severity = Severity.WARNING
    description = ("float32/float16 dtype in library code: hypersonic "
                   "state spans ~10 decades (n_e, rho, p), so single "
                   "precision silently destroys equilibrium compositions "
                   "and residual norms.")

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in _F32_ATTRS
                    and dotted_name(node.value) in ("np", "numpy")):
                yield ctx.finding(
                    self, node,
                    f"np.{node.attr} downcast — the CAT state convention "
                    "is float64 end-to-end; pragma if truncation is "
                    "deliberate (e.g. a storage format)")
            elif (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value in _F32_STRINGS):
                parent = ctx.parents.get(node)
                in_dtype_kw = (isinstance(parent, ast.keyword)
                               and parent.arg == "dtype")
                in_astype = (isinstance(parent, ast.Call)
                             and isinstance(parent.func, ast.Attribute)
                             and parent.func.attr == "astype")
                if in_dtype_kw or in_astype:
                    yield ctx.finding(
                        self, node,
                        f"dtype {node.value!r} downcast — the CAT state "
                        "convention is float64 end-to-end")


@register
class AssertInLibraryRule(Rule):
    code = "CAT015"
    name = "assert-in-library"
    severity = Severity.WARNING
    description = ("assert used for runtime validation in library code: "
                   "stripped under `python -O`, so the check silently "
                   "disappears in optimized runs; raise "
                   "InputError/StabilityError instead.")

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    self, node,
                    "assert disappears under python -O — raise "
                    "InputError (bad input) or StabilityError "
                    "(bad state) instead")


@register
class EmptyUninitializedRule(Rule):
    code = "CAT020"
    name = "empty-uninitialized"
    severity = Severity.WARNING
    description = ("np.empty whose result is never element-assigned in "
                   "the enclosing scope: reads return whatever was in "
                   "the heap — plausible garbage, not an error.")

    def applies(self, ctx: LintContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and call_name(node) in ("np.empty", "numpy.empty",
                                            "np.empty_like",
                                            "numpy.empty_like")):
                continue
            parent = ctx.parents.get(node)
            target: str | None = None
            if isinstance(parent, ast.Assign):
                tgts = parent.targets
                if len(tgts) == 1 and isinstance(tgts[0], ast.Name):
                    target = tgts[0].id
                elif (len(tgts) == 1 and isinstance(tgts[0], ast.Attribute)
                        and isinstance(tgts[0].value, ast.Name)):
                    # self._A = np.empty(...) — track the attribute chain
                    target = dotted_name(tgts[0])
            if target is None:
                yield ctx.finding(
                    self, node,
                    "np.empty result used directly without a binding "
                    "that can be initialized — use np.zeros/np.full or "
                    "bind and fill it")
                continue
            if not self._stored_into(ctx, node, target):
                yield ctx.finding(
                    self, node,
                    f"np.empty assigned to {target!r} but no element "
                    "store into it found in this scope — uninitialized "
                    "reads return heap garbage; use np.zeros/np.full "
                    "or fill every element")

    @staticmethod
    def _stored_into(ctx: LintContext, node: ast.Call, target: str) -> bool:
        for stmt in _scope_body(ctx, node):
            for n in ast.walk(stmt):
                if isinstance(n, (ast.Assign, ast.AugAssign)):
                    tgts = (n.targets if isinstance(n, ast.Assign)
                            else [n.target])
                    flat: list[ast.AST] = []
                    for t in tgts:
                        if isinstance(t, (ast.Tuple, ast.List)):
                            flat.extend(t.elts)
                        else:
                            flat.append(t)
                    for t in flat:
                        if (isinstance(t, ast.Subscript)
                                and dotted_name(t.value) == target):
                            return True
                if isinstance(n, ast.keyword) and n.arg == "out":
                    if dotted_name(n.value) == target:
                        return True
        return False


@register
class MissingDtypeRule(Rule):
    code = "CAT021"
    name = "missing-dtype"
    severity = Severity.WARNING
    description = ("Array constructor without an explicit dtype on a "
                   "solver hot path: the default is platform-blessed "
                   "float64 today, but an integer shape-tuple fill value "
                   "(np.full) or a future numpy default change silently "
                   "alters state precision. Declare dtype=np.float64 or "
                   "document the intent.")

    def applies(self, ctx: LintContext) -> bool:
        return ctx.is_hot_path

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = call_name(node)
            if fn not in _ARRAY_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            n_positional_dtype = 3 if fn.endswith("full") else 2
            if len(node.args) >= n_positional_dtype:
                continue
            yield ctx.finding(
                self, node,
                f"{fn} without dtype on a hot path — state arrays are "
                "float64 by convention; write dtype=np.float64 (or "
                "pragma the intended dtype)")


_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if call_name(node) in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetOrderReductionRule(Rule):
    code = "CAT030"
    name = "set-order-reduction"
    severity = Severity.WARNING
    description = ("Iteration or reduction over a set: hash order varies "
                   "across processes/PYTHONHASHSEED, so floating-point "
                   "accumulation order (and therefore bitwise restart "
                   "checks) is nondeterministic; iterate sorted(…).")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if _is_set_expr(it):
                    yield ctx.finding(
                        self, it,
                        "iterating a set — order varies per process; "
                        "wrap in sorted(…) for reproducible traversal")
            elif (isinstance(node, ast.Call)
                    and call_name(node) in ("sum", "math.fsum", "fsum")
                    and node.args and _is_set_expr(node.args[0])):
                yield ctx.finding(
                    self, node,
                    "summing a set — float accumulation order varies "
                    "per process; sum(sorted(…)) instead")
