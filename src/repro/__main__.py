"""Command-line entry point.

``python -m repro``                 — overview and quick sanity numbers
``python -m repro figures``         — regenerate every paper figure
``python -m repro stagnation V H RN`` — stagnation environment at
                                        (V [m/s], h [m], R_n [m])
``python -m repro degrade-smoke``   — degradation-cascade smoke run
``python -m repro chaos``           — randomized fault campaign under
                                      process isolation

Exit codes: 0 success, 1 solver/invariant failure, 2 usage error.
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: python -m repro [command] [options]

commands:
  (none)                 overview and quick sanity numbers
  figures [--full] [--checkpoint-dir D] [--resume] [--isolate]
          [--deadline S] [--stall-timeout S] [--memory-mb M]
                         regenerate every paper figure
                           --full            full-resolution runs
                           --checkpoint-dir D
                                             durable suite: done markers +
                                             solver snapshots under D
                           --resume          replay completed figures and
                                             continue interrupted marches
                                             from their latest snapshot
                           --isolate         run each figure in a sandboxed
                                             child process (kill + retry on
                                             hang, memory balloon, crash)
                           --deadline S      per-figure wall-clock budget
                           --stall-timeout S declare a hang after S seconds
                                             without a heartbeat
                           --memory-mb M     per-figure RSS budget [MiB]
                                             (the three budget flags
                                             require --isolate)
  stagnation V H RN      stagnation environment at (V [m/s], h [m],
                         R_n [m])
  degrade-smoke [--out FILE]
                         fault-injected reacting march that must abort
                         without the degradation cascade and complete
                         with it; writes the degradation ledger JSON
                         to FILE (default degradation_ledger.json)
  chaos [--rounds N] [--seed S] [--out D] [--deadline S]
                         randomized fault campaign: every round runs a
                         solver with sampled faults (hangs, memory
                         balloons, crashes, snapshot corruption, NaN
                         upsets) under process isolation and asserts
                         termination, bitwise resume and kill
                         accounting; per-round reports land in D
                         (default chaos-reports)
  -h, --help             show this message

exit codes: 0 success, 1 solver/invariant failure, 2 usage error\
"""


class _UsageError(Exception):
    """Bad command line; message is printed and the process exits 2."""


def _usage_error(prefix: str, msg: str) -> None:
    """Route every usage problem through one door so each misuse prints
    a ``command: reason`` line plus the usage text and exits 2."""
    raise _UsageError(f"{prefix}: {msg}")


def _positive_float(prefix: str, flag: str, value: str | None) -> float:
    if value is None:
        _usage_error(prefix, f"{flag} needs a value")
    try:
        out = float(value)
    except ValueError:
        _usage_error(prefix, f"{flag} needs a number, got {value!r}")
    if out <= 0.0:
        _usage_error(prefix, f"{flag} must be positive, got {value}")
    return out


def _positive_int(prefix: str, flag: str, value: str | None) -> int:
    if value is None:
        _usage_error(prefix, f"{flag} needs a value")
    try:
        out = int(value)
    except ValueError:
        _usage_error(prefix, f"{flag} needs an integer, got {value!r}")
    if out <= 0:
        _usage_error(prefix, f"{flag} must be positive, got {value}")
    return out


def _overview() -> None:
    import numpy as np

    from repro.core import make_gas
    print(__doc__)
    gas = make_gas("equilibrium-air")
    y, _ = gas.composition_T_p(np.array(8000.0), np.array(101325.0))
    x = gas.db.mass_to_mole(np.atleast_2d(y))[0]
    print("sanity: equilibrium air at 8000 K, 1 atm -> "
          f"x_N = {x[gas.db.index['N']]:.3f}, "
          f"x_O = {x[gas.db.index['O']]:.3f} (mostly dissociated)")


def _parse_figures(args: list[str]) -> dict:
    """Parse ``figures`` flags into :func:`run_all` kwargs."""
    kwargs: dict = {"quick": True, "checkpoint_dir": None,
                    "resume": False}
    budgets: dict = {}
    isolate = False
    it = iter(args)
    for a in it:
        if a == "--full":
            kwargs["quick"] = False
        elif a == "--resume":
            kwargs["resume"] = True
        elif a == "--isolate":
            isolate = True
        elif a == "--checkpoint-dir":
            kwargs["checkpoint_dir"] = next(it, None)
            if kwargs["checkpoint_dir"] is None:
                _usage_error("figures",
                             "--checkpoint-dir needs a directory")
        elif a.startswith("--checkpoint-dir="):
            kwargs["checkpoint_dir"] = a.split("=", 1)[1]
        elif a in ("--deadline", "--stall-timeout", "--memory-mb"):
            key = {"--deadline": "deadline",
                   "--stall-timeout": "stall_timeout",
                   "--memory-mb": "memory_mb"}[a]
            budgets[key] = _positive_float("figures", a, next(it, None))
        elif (a.startswith("--deadline=")
              or a.startswith("--stall-timeout=")
              or a.startswith("--memory-mb=")):
            flag, value = a.split("=", 1)
            key = {"--deadline": "deadline",
                   "--stall-timeout": "stall_timeout",
                   "--memory-mb": "memory_mb"}[flag]
            budgets[key] = _positive_float("figures", flag, value)
        else:
            _usage_error("figures", f"unknown option {a!r}")
    if kwargs["resume"] and kwargs["checkpoint_dir"] is None:
        _usage_error("figures", "--resume requires --checkpoint-dir")
    if budgets and not isolate:
        flags = ", ".join("--" + k.replace("_", "-") for k in budgets)
        _usage_error("figures", f"{flags} require(s) --isolate")
    if isolate:
        from repro.resilience import IsolationPolicy
        kwargs["isolate"] = IsolationPolicy(**budgets)
    return kwargs


def _cmd_figures(args: list[str]) -> int:
    kwargs = _parse_figures(args)
    from repro.experiments.runner import run_all
    res = run_all(**kwargs)
    return 1 if res["failures"] else 0


def _cmd_stagnation(args: list[str]) -> int:
    if len(args) != 3:
        _usage_error("stagnation", "expects V[m/s] h[m] Rn[m]")
    try:
        V, h, rn = map(float, args)
    except ValueError:
        _usage_error("stagnation",
                     f"arguments must be numbers, got {args!r}")
    from repro.core import stagnation_environment
    env = stagnation_environment(V=V, h=h, nose_radius=rn)
    print(f"V = {V:.0f} m/s, h = {h / 1e3:.1f} km, R_n = {rn} m:")
    print(f"  q_conv   = {env['q_conv'] / 1e4:10.2f} W/cm^2")
    print(f"  q_rad    = {env['q_rad'] / 1e4:10.2f} W/cm^2")
    print(f"  standoff = {env['standoff'] * 100:10.2f} cm")
    print(f"  p_stag   = {env['p_stag'] / 1e3:10.2f} kPa")
    print(f"  T_edge   = {env['T_edge']:10.0f} K")
    return 0


def _cmd_chaos(args: list[str]) -> int:
    rounds, seed, out, deadline = 5, 0, "chaos-reports", 30.0
    it = iter(args)
    for a in it:
        if a == "--rounds":
            rounds = _positive_int("chaos", a, next(it, None))
        elif a.startswith("--rounds="):
            rounds = _positive_int("chaos", "--rounds",
                                   a.split("=", 1)[1])
        elif a == "--seed":
            value = next(it, None)
            if value is None:
                _usage_error("chaos", "--seed needs a value")
            try:
                seed = int(value)
            except ValueError:
                _usage_error("chaos",
                             f"--seed needs an integer, got {value!r}")
        elif a.startswith("--seed="):
            try:
                seed = int(a.split("=", 1)[1])
            except ValueError:
                _usage_error("chaos", f"--seed needs an integer, "
                             f"got {a.split('=', 1)[1]!r}")
        elif a == "--out":
            out = next(it, None)
            if out is None:
                _usage_error("chaos", "--out needs a directory")
        elif a.startswith("--out="):
            out = a.split("=", 1)[1]
        elif a == "--deadline":
            deadline = _positive_float("chaos", a, next(it, None))
        elif a.startswith("--deadline="):
            deadline = _positive_float("chaos", "--deadline",
                                       a.split("=", 1)[1])
        else:
            _usage_error("chaos", f"unknown option {a!r}")
    from repro.resilience.chaos import run_chaos
    return run_chaos(rounds=rounds, seed=seed, out=out,
                     deadline=deadline)


def _degrade_smoke(out: str) -> int:
    """Degradation-cascade smoke: a persistent density fault that kills
    the plain rollback ladder must complete once the cascade is armed.

    The scenario is the acceptance case for
    :mod:`repro.resilience.degradation`: a Mach-10 reacting blunt-body
    march with a persistent single-cell density corruption that
    second-order reconstruction cannot march through (the T(e) Newton
    dies) but a quarantined first-order zone can.
    """
    import json

    import numpy as np

    from repro.errors import CatError
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.resilience import (DegradationPolicy, FaultInjector,
                                  RetryPolicy)
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set

    def make_solver():
        grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                               density_ratio=0.12, margin=2.5)
        db = species_set("air5")
        s = ReactingEulerSolver(grid, db)
        y = np.zeros(db.n)
        y[db.index["N2"]] = 0.767
        y[db.index["O2"]] = 0.233
        return s.set_freestream(1e-3, 5000.0, 250.0, y)

    def make_faults():
        fi = FaultInjector()
        fi.inject_perturbation(step=10, cell=(4, 6), component=0,
                               factor=1e-4, persistent=True)
        return fi

    policy = RetryPolicy(max_retries=1, cfl_backoff=0.8, cfl_min=0.2)

    print("degrade-smoke: fault-injected march WITHOUT degradation "
          "(must abort) ...")
    try:
        make_solver().run(n_steps=40, cfl=0.4, resilience=policy,
                          faults=make_faults())
    except CatError as err:
        print(f"  aborted as expected: {type(err).__name__}")
    else:
        print("  ERROR: run completed without degradation — the fault "
              "no longer exercises the cascade", file=sys.stderr)
        return 1

    print("degrade-smoke: same march WITH degradation (must complete) "
          "...")
    s = make_solver()
    try:
        s.run(n_steps=40, cfl=0.4, resilience=policy,
              faults=make_faults(), watchdog=True,
              degradation=DegradationPolicy(promote_after=15))
    except CatError as err:
        print(f"  ERROR: degraded run still aborted: {err}",
              file=sys.stderr)
        return 1
    ledger = s.degradation_ledger.to_dict()
    n_q = (0 if s.quarantined_cells is None
           else int(s.quarantined_cells.sum()))
    print(f"  completed {s.steps} steps: "
          f"{ledger['n_demotions']} demotion(s), "
          f"{ledger['n_promotions']} re-promotion(s), "
          f"{n_q} cell(s) quarantined, "
          f"{len(s.watchdog_events)} watchdog event(s)")
    with open(out, "w") as f:
        json.dump({"ledger": ledger,
                   "quarantined_cells": n_q,
                   "n_watchdog_events": len(s.watchdog_events),
                   "steps": int(s.steps)}, f, indent=2)
    print(f"  ledger written to {out}")
    if not ledger["n_demotions"]:
        print("  ERROR: completed without any demotion — the fault no "
              "longer exercises the cascade", file=sys.stderr)
        return 1
    return 0


def _cmd_degrade_smoke(args: list[str]) -> int:
    out = "degradation_ledger.json"
    rest = list(args)
    if rest and rest[0] == "--out":
        if len(rest) < 2:
            _usage_error("degrade-smoke", "--out needs a path")
        out = rest[1]
        rest = rest[2:]
    elif rest and rest[0].startswith("--out="):
        out = rest[0].split("=", 1)[1]
        rest = rest[1:]
    if rest:
        _usage_error("degrade-smoke", f"unknown option {rest[0]!r}")
    return _degrade_smoke(out)


_COMMANDS = {
    "figures": _cmd_figures,
    "stagnation": _cmd_stagnation,
    "degrade-smoke": _cmd_degrade_smoke,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        _overview()
        return 0
    cmd = argv[0]
    if cmd in ("-h", "--help", "help"):
        print(_USAGE)
        return 0
    handler = _COMMANDS.get(cmd)
    try:
        if handler is None:
            _usage_error("repro", f"unknown command {cmd!r}")
        return handler(argv[1:])
    except _UsageError as err:
        print(err, file=sys.stderr)
        print(_USAGE, file=sys.stderr)
        return 2
    except Exception as err:
        from repro.errors import CatError
        if not isinstance(err, CatError):
            raise
        # typed solver failure: summarise (with the attached report
        # when present) and exit 1 instead of tracebacking
        print(f"{cmd}: {type(err).__name__}: {err}", file=sys.stderr)
        report = getattr(err, "report", None)
        if report is not None:
            print(report.summary(), file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
