"""Synthetic stand-ins for flight and shock-tube reference data.

The paper overlays proprietary/archival measurements we do not have:

* Fig. 6: STS-3 windward-centerline heating (Refs. 17, 20),
* Fig. 8: shock-tube emission spectra (Ref. 22).

Per the reproduction's substitution policy (DESIGN.md), the arrays below
are **synthetic digitizations**: hand-written values placed where the
paper's symbols sit relative to its computed curves.  They exist so the
comparison code paths (interpolation onto data abscissae, band agreement
metrics) are exercised; they are *not* measurements.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STS3_SYNTHETIC", "SHOCK_TUBE_SPECTRUM_SYNTHETIC"]

#: Synthetic STS-3 windward heating: (x/L, q [W/cm^2]).  The flight tiles
#: were partially catalytic, so the points sit below the fully catalytic
#: equilibrium curve and above the non-catalytic floor, decaying roughly
#: as x^-1/2 downstream of the nose region.
STS3_SYNTHETIC = {
    "x_over_L": np.array([0.025, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40,
                          0.50, 0.60]),
    "q_w_cm2": np.array([13.5, 9.8, 7.2, 5.9, 5.1, 4.1, 3.5, 3.1, 2.8]),
}

#: Synthetic shock-tube spectrum for the Fig. 8 comparison:
#: (wavelength [um], relative spectral radiance).  Features: N2+ first
#: negative + N2 second positive violet complex, CN-free air, NO bands in
#: the UV, N/O atomic lines in the near IR — the structure Park's
#: experiment shows at 10 km/s, 0.1 Torr.
SHOCK_TUBE_SPECTRUM_SYNTHETIC = {
    "wavelength_um": np.array([
        0.22, 0.24, 0.26, 0.28, 0.30, 0.32, 0.330, 0.337, 0.345,
        0.36, 0.38, 0.391, 0.400, 0.42, 0.45, 0.50, 0.55, 0.60,
        0.65, 0.70, 0.74, 0.747, 0.76, 0.777, 0.79, 0.82, 0.845,
        0.868, 0.90, 0.95, 1.00]),
    "radiance_rel": np.array([
        0.02, 0.04, 0.06, 0.08, 0.09, 0.12, 0.30, 0.55, 0.25,
        0.10, 0.35, 1.00, 0.45, 0.12, 0.06, 0.05, 0.05, 0.06,
        0.07, 0.09, 0.25, 0.55, 0.20, 0.90, 0.25, 0.45, 0.50,
        0.55, 0.15, 0.10, 0.08]),
}
