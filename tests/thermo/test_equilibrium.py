"""Tests for the element-potential chemical-equilibrium solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.thermo.equilibrium import (EquilibriumGas, EquilibriumSolver,
                                      air_reference_mass_fractions,
                                      element_moles,
                                      titan_reference_mass_fractions)
from repro.thermo.species import species_set


class TestElementMoles:
    def test_air_reference(self, air11):
        y = air_reference_mass_fractions(air11)
        b = element_moles(air11, y)
        # N: 2 * 0.767/0.0280134 mol/kg
        assert b[0] == pytest.approx(2 * 0.767 / 28.0134e-3, rel=1e-10)
        assert b[1] == pytest.approx(2 * 0.233 / 31.9988e-3, rel=1e-10)
        assert b[2] == pytest.approx(0.0, abs=1e-12)  # charge neutral

    def test_batched(self, air11, rng):
        y = rng.random((4, 5, air11.n))
        y /= y.sum(axis=-1, keepdims=True)
        b = element_moles(air11, y)
        assert b.shape == (4, 5, 3)


class TestSolveRhoT:
    def test_cold_air_is_frozen(self, air_gas, air11):
        y = air_gas.composition_rho_T(np.array([1.2]), np.array([300.0]))[0]
        assert y[air11.index["N2"]] == pytest.approx(0.767, abs=1e-6)
        assert y[air11.index["O2"]] == pytest.approx(0.233, abs=1e-6)

    def test_oxygen_dissociates_first(self, air_gas, air11):
        y = air_gas.composition_rho_T(np.array([0.01]),
                                      np.array([4000.0]))[0]
        # at 4000 K, low density: O2 mostly dissociated, N2 mostly intact
        assert y[air11.index["O"]] > 0.1
        assert y[air11.index["N2"]] > 0.7
        assert y[air11.index["O2"]] < 0.08

    def test_full_dissociation_hot(self, air_gas, air11):
        y = air_gas.composition_rho_T(np.array([1e-4]),
                                      np.array([12000.0]))[0]
        assert y[air11.index["N2"]] < 0.01
        assert y[air11.index["N"]] + y[air11.index["N+"]] > 0.7

    def test_ionization_at_high_T(self, air_gas, air11):
        y = air_gas.composition_rho_T(np.array([1e-4]),
                                      np.array([15000.0]))[0]
        assert y[air11.index["e-"]] > 1e-6
        assert y[air11.index["N+"]] > 0.01

    def test_no_peak_around_3500K(self, air_gas, air11):
        T = np.array([2000.0, 3500.0, 8000.0])
        rho = np.full(3, 0.1)
        y = air_gas.composition_rho_T(rho, T)
        jNO = air11.index["NO"]
        assert y[1, jNO] > y[0, jNO]
        assert y[1, jNO] > y[2, jNO]

    def test_mass_fractions_sum_to_one(self, air_gas, rng):
        rho = 10.0 ** rng.uniform(-6, 0.5, 30)
        T = rng.uniform(250.0, 15000.0, 30)
        y = air_gas.composition_rho_T(rho, T)
        assert np.allclose(y.sum(axis=-1), 1.0, atol=1e-12)
        assert np.all(y >= 0.0)

    def test_element_conservation(self, air_gas, air11, rng):
        rho = 10.0 ** rng.uniform(-5, 0, 20)
        T = rng.uniform(300.0, 14000.0, 20)
        y = air_gas.composition_rho_T(rho, T)
        b = element_moles(air11, y)
        # charge row is identically zero -> compare with an absolute
        # tolerance set by the solver's residual scale (max element ~55
        # mol/kg at rtol 1e-11)
        assert np.allclose(b, air_gas.b, rtol=1e-8, atol=1e-8)

    def test_charge_neutrality(self, air_gas, air11):
        y = air_gas.composition_rho_T(np.array([1e-3]),
                                      np.array([12000.0]))[0]
        n = y / air11.molar_mass
        net = float(np.sum(n * air11.charge))
        total_ion = float(np.sum(n * np.abs(air11.charge)))
        assert abs(net) < 1e-5 * max(total_ion, 1e-30)

    def test_shapes_broadcast(self, air_gas):
        y = air_gas.composition_rho_T(np.full((2, 3), 0.01),
                                      np.full((2, 3), 5000.0))
        assert y.shape == (2, 3, 11)

    def test_invalid_inputs_raise(self, air_gas):
        with pytest.raises(InputError):
            air_gas.composition_rho_T(np.array([-1.0]), np.array([300.0]))


class TestGibbsMinimality:
    """At fixed (rho, T) the converged composition minimises the mixture
    Helmholtz free energy (not Gibbs — volume, not pressure, is held)."""

    def test_perturbation_increases_helmholtz(self, air5_gas, air5, rng):
        rho, T = np.array([0.05]), np.array([5000.0])
        y0 = air5_gas.composition_rho_T(rho, T)[0]
        a0 = _mixture_helmholtz(air5_gas, y0, rho[0], T[0])
        # random element-conserving perturbations: move O between O2 and O
        for _ in range(10):
            y = y0.copy()
            d = rng.uniform(-0.2, 0.2) * min(y[air5.index["O2"]], 0.05)
            y[air5.index["O2"]] -= d
            y[air5.index["O"]] += d
            if np.any(y < 0):
                continue
            a = _mixture_helmholtz(air5_gas, y, rho[0], T[0])
            assert a >= a0 - abs(a0) * 1e-9

    def test_reaction_equilibrium_constant_satisfied(self, air5_gas, air5):
        # For O2 <-> 2O at equilibrium: mu_O2 = 2 mu_O
        rho, T = np.array([0.02]), np.array([4500.0])
        y = air5_gas.composition_rho_T(rho, T)[0]
        mu = _chemical_potentials(air5_gas, y, rho[0], T[0])
        assert mu[air5.index["O2"]] == pytest.approx(
            2 * mu[air5.index["O"]], rel=1e-6)
        # N2 <-> 2N
        assert mu[air5.index["N2"]] == pytest.approx(
            2 * mu[air5.index["N"]], rel=1e-6)
        # N2 + O2 <-> 2NO
        assert (mu[air5.index["N2"]] + mu[air5.index["O2"]]) == (
            pytest.approx(2 * mu[air5.index["NO"]], rel=1e-6))


def _chemical_potentials(gas, y, rho, T):
    """mu_j = g0_j + R T ln(c_j R T / p0) per mole."""
    from repro.constants import R_UNIVERSAL as R
    from repro.thermo.statmech import P_STANDARD
    db = gas.db
    c = np.maximum(y * rho / db.molar_mass, 1e-300)
    g0 = gas.solver.thermo.g0(np.asarray(T))
    return g0 + R * T * np.log(c * R * T / P_STANDARD)


def _mixture_helmholtz(gas, y, rho, T):
    """Specific Helmholtz energy a = sum n_j (mu_j - R T) [J/kg]."""
    from repro.constants import R_UNIVERSAL as R
    n = y / gas.db.molar_mass
    return float(np.sum(n * (_chemical_potentials(gas, y, rho, T) - R * T)))


class TestSolveTP:
    def test_density_matches_state(self, air_gas):
        y, rho = air_gas.composition_T_p(np.array([6000.0]),
                                         np.array([101325.0]))
        p_back = air_gas.mix.pressure(rho, np.array([6000.0]), y)
        assert p_back[0] == pytest.approx(101325.0, rel=1e-8)

    def test_dissociation_lowers_molar_mass(self, air_gas):
        y_cold, _ = air_gas.composition_T_p(np.array([300.0]),
                                            np.array([1e5]))
        y_hot, _ = air_gas.composition_T_p(np.array([8000.0]),
                                           np.array([1e5]))
        m_cold = air_gas.db.mean_molar_mass(y_cold[0])
        m_hot = air_gas.db.mean_molar_mass(y_hot[0])
        assert m_hot < 0.75 * m_cold

    def test_pressure_suppresses_dissociation(self, air_gas, air11):
        # Le Chatelier: higher p -> less dissociation at same T
        y_lo, _ = air_gas.composition_T_p(np.array([5000.0]),
                                          np.array([100.0]))
        y_hi, _ = air_gas.composition_T_p(np.array([5000.0]),
                                          np.array([1e6]))
        jO = air11.index["O"]
        assert y_lo[0, jO] > y_hi[0, jO]


class TestSolveRhoE:
    @given(T=st.floats(min_value=400.0, max_value=13000.0),
           lr=st.floats(min_value=-5.0, max_value=0.0))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, T, lr):
        gas = EquilibriumGas(species_set("air11"),
                             air_reference_mass_fractions(
                                 species_set("air11")))
        rho = np.array([10.0 ** lr])
        st_ = gas.state_rho_T(rho, np.array([T]))
        y, T_back = gas.solver.solve_rho_e(rho, st_["e"], gas.b)
        assert T_back[0] == pytest.approx(T, rel=1e-5)

    def test_warm_start_guess(self, air_gas):
        st_ = air_gas.state_rho_T(np.array([0.01]), np.array([7000.0]))
        y, T = air_gas.solver.solve_rho_e(np.array([0.01]), st_["e"],
                                          air_gas.b, T_guess=6900.0)
        assert T[0] == pytest.approx(7000.0, rel=1e-6)


class TestEquilibriumGasFacade:
    def test_state_dict_keys(self, air_gas):
        st_ = air_gas.state_rho_T(np.array([0.1]), np.array([3000.0]))
        for key in ("y", "p", "T", "rho", "e", "h", "a_frozen", "gamma_eff"):
            assert key in st_

    def test_gamma_eff_range(self, air_gas, rng):
        rho = 10.0 ** rng.uniform(-4, 0, 15)
        T = rng.uniform(300.0, 12000.0, 15)
        st_ = air_gas.state_rho_T(rho, T)
        assert np.all(st_["gamma_eff"] > 1.0)
        assert np.all(st_["gamma_eff"] < 1.7)

    def test_sound_speed_cold_limit(self, air_gas):
        a = air_gas.sound_speed_equilibrium(np.array([1.2]),
                                            np.array([300.0]))
        assert a[0] == pytest.approx(347.0, rel=0.01)

    def test_equilibrium_sound_speed_below_frozen_when_reacting(self,
                                                                air_gas):
        rho, T = np.array([0.01]), np.array([6000.0])
        a_eq = air_gas.sound_speed_equilibrium(rho, T)[0]
        a_fr = air_gas.state_rho_T(rho, T)["a_frozen"][0]
        assert a_eq < a_fr

    def test_bad_reference_raises(self, air11):
        with pytest.raises(InputError):
            EquilibriumGas(air11, {"N2": 0.5})  # doesn't sum to 1

    def test_reference_by_dict(self, air11):
        gas = EquilibriumGas(air11, {"N2": 0.767, "O2": 0.233})
        assert gas.y_ref[air11.index["N2"]] == pytest.approx(0.767)


class TestTitanEquilibrium:
    def test_cold_composition_frozen(self, titan_gas, titan9):
        y = titan_gas.composition_rho_T(np.array([1.0]),
                                        np.array([200.0]))[0]
        assert y[titan9.index["N2"]] == pytest.approx(0.9707, abs=1e-3)
        assert y[titan9.index["CH4"]] == pytest.approx(0.0293, abs=1e-3)

    def test_methane_pyrolysis_produces_hcn(self, titan_gas, titan9):
        y = titan_gas.composition_T_p(np.array([1500.0]),
                                      np.array([5000.0]))[0][0]
        assert y[titan9.index["HCN"]] > 1e-3
        assert y[titan9.index["CH4"]] < 1e-3

    def test_cn_exists_at_mid_temperatures(self, titan_gas, titan9):
        y = titan_gas.composition_T_p(np.array([3500.0]),
                                      np.array([5000.0]))[0][0]
        assert y[titan9.index["CN"]] > 1e-4

    def test_element_conservation_titan(self, titan_gas, titan9):
        y = titan_gas.composition_rho_T(np.array([0.01]),
                                        np.array([5500.0]))[0]
        b = element_moles(titan9, y)
        assert np.allclose(b, titan_gas.b, rtol=1e-8)
