"""Explicit time integration: CFL control and SSP Runge–Kutta steps.

The steady-state solvers march "in a time-like manner until a steady state
is asymptotically achieved" (the paper's words); these helpers provide the
stable step sizes and strong-stability-preserving update formulas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StabilityError

__all__ = ["cfl_timestep_1d", "ssp_rk2_step", "ssp_rk3_step",
           "check_state"]


def cfl_timestep_1d(dx, u, a, cfl=0.5):
    """Global explicit timestep dt = cfl * min(dx / (|u| + a))."""
    dx = np.asarray(dx, dtype=float)
    wave = np.abs(np.asarray(u, dtype=float)) + np.asarray(a, dtype=float)
    return float(cfl * np.min(dx / np.maximum(wave, 1e-12)))


def ssp_rk2_step(U, dt, residual):
    """Heun / SSP-RK2 update: U^{n+1} = (U + U1 + dt R(U1)) / 2."""
    U1 = U + dt * residual(U)
    return 0.5 * (U + U1 + dt * residual(U1))


def ssp_rk3_step(U, dt, residual):
    """Shu–Osher SSP-RK3 update."""
    U1 = U + dt * residual(U)
    U2 = 0.75 * U + 0.25 * (U1 + dt * residual(U1))
    return U / 3.0 + 2.0 / 3.0 * (U2 + dt * residual(U2))


def check_state(U, *, step: int | None = None, label: str = "solver",
                energy_index: int = -1, momentum_indices=None,
                e_min: float | None = 0.0):
    """Raise StabilityError on NaN or non-positive density/energy.

    Assumes the conventional conserved layout ``U[..., 0] = rho``,
    ``U[..., energy_index] = rho E`` and momenta in between (override
    ``momentum_indices`` for augmented state vectors such as the reacting
    solver's ``[rho, rho u, rho v, rho E, rho Y_s...]``).

    Checks, in order: every component finite; density positive; total
    energy positive; internal energy ``rho e = rho E - |rho u|^2/(2 rho)``
    above ``e_min`` (pass ``e_min=None`` to skip — e.g. states on a
    heat-of-formation energy basis where e can legitimately be negative).
    """
    U = np.asarray(U)
    if not np.all(np.isfinite(U)):
        raise StabilityError(f"{label}: non-finite state", step=step)
    if np.any(U[..., 0] <= 0.0):
        raise StabilityError(f"{label}: non-positive density", step=step)
    if np.any(U[..., energy_index] <= 0.0):
        raise StabilityError(f"{label}: non-positive total energy",
                             step=step)
    if e_min is not None:
        if momentum_indices is None:
            last = energy_index % U.shape[-1]
            momentum_indices = tuple(range(1, last))
        ke = sum(U[..., m] ** 2 for m in momentum_indices) \
            / (2.0 * U[..., 0])
        if np.any(U[..., energy_index] - ke <= e_min):
            raise StabilityError(f"{label}: non-positive internal energy",
                                 step=step)
