"""Lees' laminar heating distribution over blunt bodies.

Local-similarity result: the heat flux at arc position s relative to the
stagnation value is::

    q(s)/q0 = [ rho_e mu_e u_e r^2 / sqrt(2 I(s)) ] / lim_{s->0}(same)
    I(s)    = integral_0^s rho_e mu_e u_e r^2 ds'

The stagnation limit is finite (both numerator and sqrt-integral vanish
like s^2), handled analytically from the stagnation velocity gradient.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["lees_distribution"]


def lees_distribution(s, r, rho_e, mu_e, u_e, due_dx):
    """Normalised laminar heating q(s)/q(0) along an axisymmetric body.

    Parameters
    ----------
    s:
        Arc-length stations from the stagnation point (s[0] may be 0).
    r:
        Body radius at each station.
    rho_e, mu_e, u_e:
        Boundary-layer-edge state at each station (arrays over s).
    due_dx:
        Stagnation-point velocity gradient (sets the s->0 limit).

    Returns
    -------
    q/q0 array over the stations.
    """
    s = np.asarray(s, dtype=float)
    r = np.asarray(r, dtype=float)
    rho_e = np.asarray(rho_e, dtype=float)
    mu_e = np.asarray(mu_e, dtype=float)
    u_e = np.asarray(u_e, dtype=float)
    if s.ndim != 1 or np.any(np.diff(s) <= 0):
        raise InputError("s must be strictly increasing")
    G = rho_e * mu_e * u_e * r * r
    # G ~ c s^3 near the stagnation point, which a plain trapezoid rule
    # integrates poorly on the first panels (denting the distribution near
    # the nose).  Integrate H = G/s^3 against the weight s^3 instead:
    # exact for the cubic startup, trapezoid-accurate elsewhere.
    s_safe = np.maximum(s, 1e-30)
    H = G / s_safe**3
    # s -> 0 limit of H: with u_e ~ K s and r ~ s, H -> rho mu K; the raw
    # quotient 0/0 explodes when the first station carries clamped
    # near-zero values
    tiny = s < 1e-8 * max(s[-1], 1e-300)
    if np.any(tiny):
        H = np.where(tiny, rho_e * mu_e * due_dx, H)
    panels = 0.25 * 0.5 * (H[1:] + H[:-1]) * (s[1:] ** 4 - s[:-1] ** 4)
    I0 = G[0] * s[0] / 4.0 if s[0] > 0 else 0.0
    I = I0 + np.concatenate(([0.0], np.cumsum(panels)))
    with np.errstate(divide="ignore", invalid="ignore"):
        # catlint: disable=CAT002 -- I is a cumsum of non-negative
        # panels; the 0/0 station is filled with its limit below
        f = G / np.sqrt(2.0 * I)
    # stagnation limit: u_e ~ K s, r ~ s => G ~ rho mu K s^3,
    # I ~ rho mu K s^4/4, f -> rho mu K s^3 / sqrt(rho mu K s^4 / 2)
    #   = sqrt(2 rho_e mu_e K) s  ... which still vanishes; the *heating*
    # normalisation divides by the same structure, so form q/q0 as
    # f(s)/f0(s) with f0 the stagnation asymptote evaluated consistently:
    # catlint: disable=CAT002 -- physical edge state (rho, mu, K > 0);
    # any non-finite quotient is replaced by its limit just below
    f0 = np.sqrt(2.0 * rho_e * mu_e * due_dx) * s
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = f / f0
    # fill the s->0 singular quotient with its limit, 1
    small = s < 1e-6 * max(s[-1], 1e-12)
    ratio = np.where(small | ~np.isfinite(ratio), 1.0, ratio)
    return ratio
