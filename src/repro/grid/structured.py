"""Structured 2-D grids with finite-volume metrics.

A :class:`StructuredGrid2D` stores node coordinates ``x, y`` of shape
(ni+1, nj+1) defining ni x nj quadrilateral cells.  It precomputes the
metrics a cell-centred finite-volume solver needs:

* cell areas (shoelace),
* cell centroids,
* face normal vectors scaled by face length, for i-faces (between cells in
  the i direction) and j-faces,
* for axisymmetric solvers: centroid radii and radius-weighted face
  metrics.

The i index is conventionally the streamwise/marching direction; j is the
body-normal direction (j=0 at the wall for body-fitted grids).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError

__all__ = ["StructuredGrid2D"]


class StructuredGrid2D:
    """Quadrilateral structured grid with precomputed FV metrics."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape or x.ndim != 2:
            raise GridError("x, y must be equal-shape 2-D node arrays")
        if x.shape[0] < 2 or x.shape[1] < 2:
            raise GridError("need at least one cell in each direction")
        self.x = x
        self.y = y
        self.ni = x.shape[0] - 1
        self.nj = x.shape[1] - 1
        self._compute_metrics()
        if np.any(self.area <= 0.0):
            raise GridError("grid contains degenerate or inverted cells")

    def _compute_metrics(self):
        x, y = self.x, self.y
        # corner views: (ni, nj)
        xa, ya = x[:-1, :-1], y[:-1, :-1]   # (i, j)
        xb, yb = x[1:, :-1], y[1:, :-1]     # (i+1, j)
        xc, yc = x[1:, 1:], y[1:, 1:]       # (i+1, j+1)
        xd, yd = x[:-1, 1:], y[:-1, 1:]     # (i, j+1)
        #: cell areas by the shoelace formula (positive for CCW a-b-c-d)
        self.area = 0.5 * np.abs((xc - xa) * (yd - yb)
                                 - (xd - xb) * (yc - ya))
        #: cell centroids
        self.xc = 0.25 * (xa + xb + xc + xd)
        self.yc = 0.25 * (ya + yb + yc + yd)
        # i-faces: constant-i lines, (ni+1, nj) faces between i-neighbours.
        # normal = (dy, -dx) along the face from node (i, j) to (i, j+1),
        # which points in the +i direction for a right-handed grid.
        dx_i = x[:, 1:] - x[:, :-1]
        dy_i = y[:, 1:] - y[:, :-1]
        self.n_i = np.stack([dy_i, -dx_i], axis=-1)   # (ni+1, nj, 2)
        # j-faces: constant-j lines, (ni, nj+1) faces between j-neighbours.
        # normal = (-dy, dx) along the face from node (i, j) to (i+1, j),
        # pointing in +j.
        dx_j = x[1:, :] - x[:-1, :]
        dy_j = y[1:, :] - y[:-1, :]
        self.n_j = np.stack([-dy_j, dx_j], axis=-1)   # (ni, nj+1, 2)
        # face midpoints (for axisymmetric radius weighting)
        self.xm_i = 0.5 * (x[:, 1:] + x[:, :-1])
        self.ym_i = 0.5 * (y[:, 1:] + y[:, :-1])
        self.xm_j = 0.5 * (x[1:, :] + x[:-1, :])
        self.ym_j = 0.5 * (y[1:, :] + y[:-1, :])

    # -- derived quantities ----------------------------------------------------

    @property
    def face_length_i(self):
        return np.linalg.norm(self.n_i, axis=-1)

    @property
    def face_length_j(self):
        return np.linalg.norm(self.n_j, axis=-1)

    def min_cell_size(self):
        """Smallest inscribed length scale: area / longest face."""
        per = np.maximum(self.face_length_i[:-1, :],
                         self.face_length_i[1:, :])
        per = np.maximum(per, self.face_length_j[:, :-1])
        per = np.maximum(per, self.face_length_j[:, 1:])
        return self.area / np.maximum(per, 1e-300)

    def axisymmetric_volumes(self):
        """Cell volumes per radian about y=0 (y is the radial coordinate).

        V = area * r_centroid is second-order accurate for smooth grids.
        """
        if np.any(self.yc < -1e-12):
            raise GridError("axisymmetric grids must have y >= 0")
        return self.area * np.maximum(self.yc, 1e-300)

    def axisymmetric_face_metrics(self):
        """Radius-weighted face normals (per-radian FV surface vectors)."""
        ni = self.n_i * np.maximum(self.ym_i, 0.0)[..., None]
        nj = self.n_j * np.maximum(self.ym_j, 0.0)[..., None]
        return ni, nj

    def metric_identity_residual(self):
        """Closed-surface residual sum of face normals per cell.

        For a watertight cell the outward face normals sum to zero; the
        return value is the max |residual| / perimeter over cells (a grid
        quality / metric consistency diagnostic; ~1e-15 for exact metrics).
        """
        res = (self.n_i[1:, :, :] - self.n_i[:-1, :, :]
               + self.n_j[:, 1:, :] - self.n_j[:, :-1, :])
        per = (self.face_length_i[:-1, :] + self.face_length_i[1:, :]
               + self.face_length_j[:, :-1] + self.face_length_j[:, 1:])
        return float(np.max(np.linalg.norm(res, axis=-1) / per))
