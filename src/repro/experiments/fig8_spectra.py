"""Fig. 8 — Computed vs measured nonequilibrium emission spectra.

NEQAIR-lite evaluated over the Fig. 7 relaxation flowfield: line-of-sight
spectral radiance across the relaxing slug, 0.2-1.0 um, compared against
the synthetic shock-tube spectrum (see repro.experiments.data for the
substitution policy).  Agreement metric: correlation of the
peak-normalised spectra on the measurement abscissae.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import SHOCK_TUBE_SPECTRUM_SYNTHETIC
from repro.experiments.fig7_shock_relaxation import run as run_fig7
from repro.postprocess.ascii_plot import ascii_plot
from repro.radiation.neqair import NonequilibriumRadiator

__all__ = ["run", "main"]


def run(quick: bool = False, *, profile=None) -> dict:
    if profile is None:
        profile = run_fig7(quick)["profile"]
    rad = NonequilibriumRadiator(profile.db)
    lam = np.linspace(0.2e-6, 1.0e-6, 500 if quick else 1200)
    radiance = rad.from_relaxation_profile(profile, lam)
    # smear to a spectrometer-like resolution (~5 nm) for the comparison
    dlam = lam[1] - lam[0]
    n_k = max(int(5e-9 / dlam), 1)
    kernel = np.ones(n_k) / n_k
    smeared = np.convolve(radiance, kernel, mode="same")
    # normalise and sample at the synthetic measurement wavelengths
    meas = SHOCK_TUBE_SPECTRUM_SYNTHETIC
    lam_meas = meas["wavelength_um"] * 1e-6
    comp_at_meas = np.interp(lam_meas, lam, smeared)
    comp_rel = comp_at_meas / max(comp_at_meas.max(), 1e-300)
    meas_rel = meas["radiance_rel"] / meas["radiance_rel"].max()
    # agreement: correlation of log-spectra (features span decades)
    lc = np.log10(np.maximum(comp_rel, 1e-4))
    lm = np.log10(np.maximum(meas_rel, 1e-4))
    corr = float(np.corrcoef(lc, lm)[0, 1])
    return {"wavelength": lam, "radiance": radiance, "smeared": smeared,
            "lam_meas": lam_meas, "computed_rel": comp_rel,
            "measured_rel": meas_rel, "log_correlation": corr}


def main(quick: bool = True) -> str:
    res = run(quick)
    txt = ascii_plot(
        [(res["wavelength"] * 1e6,
          np.maximum(res["smeared"] / res["smeared"].max(), 1e-5),
          "computed"),
         (res["lam_meas"] * 1e6, np.maximum(res["measured_rel"], 1e-5),
          "measured (synthetic)")],
        logy=True, title="Fig. 8 - nonequilibrium air spectra "
                         "(peak-normalised)",
        xlabel="wavelength [um]", ylabel="relative radiance")
    txt += f"\nlog-spectrum correlation: {res['log_correlation']:.3f}"
    return txt


if __name__ == "__main__":
    print(main())
