"""The batch evaluation front door: ``evaluate_batch`` and friends.

Production failure semantics, end to end:

* every request is validated *up front* into a typed per-request
  :class:`~repro.errors.InputError` record — one malformed request
  never aborts the batch;
* admission control bounds queue depth and in-flight requests with a
  typed :class:`~repro.errors.OverloadError` (raised at the door for
  queue-depth rejection, recorded in the envelope for a slot timeout)
  — never a hang;
* per-request and whole-batch wall-clock deadlines are threaded into
  :class:`~repro.resilience.isolation.IsolatedRunner` for sandboxed
  (heavy/fault-carrying) requests, so a hung solve is killed and
  recorded, not waited on;
* circuit breakers per method rung and condition class trip after K
  consecutive failures and route requests straight down the model
  ladder during cooldown (see :mod:`repro.service.breaker`);
* idempotent request keys dedup identical requests within a batch and
  make farm-chunk retry safe across preemption.

Exactly one :class:`~repro.service.request.Envelope` comes back per
request; the only exception ``evaluate_batch`` ever raises (beyond
programming errors) is ``OverloadError`` at admission time, before any
work starts.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.errors import CatError, OverloadError, SolverError
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.request import Envelope, METHODS, validate_request

__all__ = ["BatchPolicy", "BatchResult", "AdmissionController",
           "evaluate_batch", "evaluate_batch_farm", "batch_jobs",
           "shard_requests", "batch_bench_record"]


# ----------------------------------------------------------------- policy

@dataclass(frozen=True)
class BatchPolicy:
    """Budgets and knobs of one batch evaluation.

    Attributes
    ----------
    deadline:
        Whole-batch wall-clock budget [s]; requests the budget expires
        before get ``failed/deadline`` envelopes instead of running.
    request_deadline:
        Per-request wall-clock budget [s], enforced preemptively (kill
        + FailureReport) for sandboxed requests and used to bound every
        sandbox attempt.  A request may carry its own ``deadline``
        field; the effective budget is the minimum of both and of the
        remaining batch budget.
    max_in_flight:
        Concurrent executing requests across every batch sharing the
        admission controller.
    admit_timeout:
        Seconds a request waits for an in-flight slot before failing
        with an ``overload`` envelope.
    max_queued:
        Queue-depth bound: admitting a batch that would push the
        controller's admitted-but-unfinished count past this raises
        :class:`~repro.errors.OverloadError` at the door.
    shed_above:
        Reject any single batch larger than this outright (load
        shedding), also via ``OverloadError``.
    isolate:
        ``"auto"`` (default) sandboxes heavy solver rungs and any
        fault-carrying request; ``"always"``/``"never"`` force it.
        Hang/crash faults are always sandboxed regardless.
    allow_faults:
        Honor chaos ``fault`` fields (tests/chaos only); otherwise a
        fault field is invalid input.
    dedup:
        Collapse requests with identical idempotency keys to one
        execution.
    breaker:
        :class:`~repro.service.breaker.BreakerPolicy` for the board.
    chunk_size:
        Requests per farm chunk job (``evaluate_batch_farm``).
    """

    deadline: float | None = None
    request_deadline: float | None = 10.0
    max_in_flight: int = 8
    admit_timeout: float = 5.0
    max_queued: int = 100_000
    shed_above: int | None = None
    isolate: str = "auto"
    allow_faults: bool = False
    dedup: bool = True
    memory_mb: float | None = None
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    chunk_size: int = 64

    def __post_init__(self):
        if self.isolate not in ("auto", "always", "never"):
            raise ValueError(f"isolate must be auto/always/never, got "
                             f"{self.isolate!r}")

    def to_dict(self) -> dict:
        return {"deadline": self.deadline,
                "request_deadline": self.request_deadline,
                "max_in_flight": self.max_in_flight,
                "admit_timeout": self.admit_timeout,
                "max_queued": self.max_queued,
                "shed_above": self.shed_above,
                "isolate": self.isolate,
                "allow_faults": self.allow_faults,
                "dedup": self.dedup, "memory_mb": self.memory_mb,
                "breaker": self.breaker.to_dict(),
                "chunk_size": self.chunk_size}

    @classmethod
    def from_dict(cls, d: dict | None) -> "BatchPolicy":
        d = dict(d or {})
        d["breaker"] = BreakerPolicy.from_dict(d.get("breaker"))
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


# ------------------------------------------------------------- admission

class AdmissionController:
    """Process-wide admission gauge: queue depth + in-flight slots.

    ``admit`` is the front door — it raises a typed
    :class:`~repro.errors.OverloadError` when accepting the batch would
    exceed the queue-depth bound (or the batch alone exceeds
    ``shed_above``).  ``slot`` bounds concurrency: it waits up to
    ``admit_timeout`` for an in-flight slot and raises ``OverloadError``
    on timeout — a saturated service rejects, it never hangs.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self.queued = 0
        self.in_flight = 0
        self.peak_queued = 0
        self.peak_in_flight = 0
        self.shed_batches = 0
        self.slot_timeouts = 0

    def admit(self, n: int, policy: BatchPolicy) -> None:
        with self._cond:
            if (policy.shed_above is not None
                    and n > policy.shed_above):
                self.shed_batches += 1
                raise OverloadError(
                    f"batch of {n} requests exceeds shed_above="
                    f"{policy.shed_above}; split it or raise the limit",
                    queued=self.queued, limit=policy.shed_above)
            if self.queued + n > policy.max_queued:
                self.shed_batches += 1
                raise OverloadError(
                    f"admitting {n} requests would push queue depth to "
                    f"{self.queued + n} > max_queued="
                    f"{policy.max_queued}",
                    queued=self.queued, limit=policy.max_queued,
                    retry_after=policy.request_deadline)
            self.queued += n
            self.peak_queued = max(self.peak_queued, self.queued)

    def release(self, n: int) -> None:
        with self._cond:
            self.queued -= n
            self._cond.notify_all()

    @contextmanager
    def slot(self, policy: BatchPolicy):
        with self._cond:
            got = self._cond.wait_for(
                lambda: self.in_flight < policy.max_in_flight,
                timeout=policy.admit_timeout)
            if not got:
                self.slot_timeouts += 1
                raise OverloadError(
                    f"no in-flight slot freed within "
                    f"{policy.admit_timeout}s "
                    f"(in_flight={self.in_flight}, "
                    f"max_in_flight={policy.max_in_flight})",
                    queued=self.queued, limit=policy.max_in_flight,
                    retry_after=policy.admit_timeout)
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight,
                                      self.in_flight)
        try:
            yield
        finally:
            with self._cond:
                self.in_flight -= 1
                self._cond.notify_all()

    def stats(self) -> dict:
        with self._cond:
            return {"queued": self.queued,
                    "in_flight": self.in_flight,
                    "peak_queued": self.peak_queued,
                    "peak_in_flight": self.peak_in_flight,
                    "shed_batches": self.shed_batches,
                    "slot_timeouts": self.slot_timeouts}


#: The process-wide controller every batch shares by default.
ADMISSION = AdmissionController()


# ------------------------------------------------------------- executors

def _atmosphere_key(gas: str) -> str:
    from repro.core.api import _GAS_ATMOSPHERE
    return _GAS_ATMOSPHERE.get(gas, "earth")


def _correlation_point(params: dict) -> dict:
    """Sutton-Graves + Tauber-Sutton at one freestream point."""
    from repro.atmosphere import EarthAtmosphere
    from repro.heating import sutton_graves_heating
    from repro.radiation.correlations import tauber_sutton_radiative
    key = _atmosphere_key(params.get("gas", "equilibrium-air"))
    rho = float(EarthAtmosphere().density(params["h"]))
    V, rn = params["V"], params["nose_radius"]
    q_conv = float(sutton_graves_heating(rho, V, rn, atmosphere=key))
    q_rad = (float(tauber_sutton_radiative(rho, V, rn))
             if key == "earth" and rho > 0.0 and V > 0.0 else 0.0)
    return {"q_conv": q_conv, "q_rad": q_rad,
            "q_total": q_conv + q_rad, "p_stag": rho * V * V,
            "rho": rho}


def _exec_stagnation_vsl(params: dict) -> dict:
    from repro.core.api import stagnation_environment
    r = stagnation_environment(V=params["V"], h=params["h"],
                               nose_radius=params["nose_radius"],
                               gas=params.get("gas", "equilibrium-air"),
                               T_wall=params.get("T_wall", 1500.0),
                               quick=True, on_failure="raise")
    return {"q_conv": float(r["q_conv"]), "q_rad": float(r["q_rad"]),
            "q_total": float(r["q_conv"]) + float(r["q_rad"]),
            "standoff": float(r["standoff"]),
            "p_stag": float(r["p_stag"]),
            "T_edge": float(r["T_edge"])}


def _exec_windward_pns(params: dict) -> dict:
    from repro.core.api import windward_heating
    r = windward_heating(V=params["V"], h=params["h"],
                         alpha_deg=params["alpha_deg"],
                         nose_radius=params.get("nose_radius", 1.3),
                         length=params.get("length", 32.77),
                         gas=params.get("gas", "equilibrium-air"),
                         on_failure="raise")
    q = r["q"]
    return {"q_stag": float(r["q_stag"]), "q_max": float(max(q)),
            "q_tail": float(q[-1])}


def _exec_windward_correlation(params: dict) -> dict:
    from repro.atmosphere import EarthAtmosphere
    from repro.heating import sutton_graves_heating
    rn = params.get("nose_radius", 1.3)
    length = params.get("length", 32.77)
    rho = float(EarthAtmosphere().density(params["h"]))
    q_stag = float(sutton_graves_heating(rho, params["V"], rn))
    q_tail = q_stag / math.sqrt(1.0 + length / rn)
    return {"q_stag": q_stag, "q_max": q_stag, "q_tail": q_tail}


def _exec_equilibrium_gibbs(params: dict) -> dict:
    from repro.core.api import make_gas
    gas = make_gas(params.get("gas", "equilibrium-air"))
    y, rho = gas.composition_T_p(params["T"], params["p"])
    comp = {name: float(y[i]) for i, name in enumerate(gas.db.names)
            if float(y[i]) > 1.0e-12}
    return {"rho": float(rho), "y": comp}


_EXECUTORS = {
    ("stagnation", "vsl"): _exec_stagnation_vsl,
    ("stagnation", "correlation"): _correlation_point,
    ("stagnation_correlation", "correlation"): _correlation_point,
    ("windward", "pns"): _exec_windward_pns,
    ("windward", "correlation"): _exec_windward_correlation,
    ("heat_point", "correlation"): _correlation_point,
    ("equilibrium_composition", "gibbs"): _exec_equilibrium_gibbs,
}


def _apply_fault(fault: dict | None) -> None:
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "hang":
        while True:          # killed by the sandbox deadline
            time.sleep(0.2)
    if kind == "crash":
        import os
        os._exit(77)         # hard child death, no cleanup
    if kind == "fail":
        raise SolverError("injected fault: fail")
    if kind == "slow":
        time.sleep(float(fault.get("seconds", 0.2)))


def _run_rung_child(method: str, rung: str, params: dict,
                    fault: dict | None) -> dict:
    """The unit of work — also the callable a sandbox child runs."""
    _apply_fault(fault)
    result = _EXECUTORS[(method, rung)](params)
    if fault and fault.get("kind") == "nan":
        result = {k: (float("nan") if isinstance(v, float) else v)
                  for k, v in result.items()}
    return result


# ------------------------------------------------------------ the engine

def _needs_sandbox(policy: BatchPolicy, heavy: bool,
                   fault: dict | None) -> bool:
    if fault and fault.get("kind") in ("hang", "crash"):
        return True          # only a child process can absorb these
    if policy.isolate == "always":
        return True
    if policy.isolate == "never":
        return False
    return heavy


def _effective_deadline(policy, req, remaining) -> float | None:
    budgets = [b for b in (policy.request_deadline, req.deadline,
                           remaining) if b is not None]
    return min(budgets) if budgets else None


def _error_kind(err: CatError) -> str:
    report = getattr(err, "report", None)
    events = getattr(report, "isolation", None) or []
    kinds = {e.get("kind") for e in events if isinstance(e, dict)}
    if kinds & {"deadline", "hang"}:
        return "hang"
    if "oom" in kinds:
        return "oom"
    if "crash" in kinds:
        return "crash"
    return "solver"


def _report_dict(err: CatError) -> dict | None:
    report = getattr(err, "report", None)
    if report is None:
        return None
    return report.to_dict() if hasattr(report, "to_dict") else report


def _failure_record(rung: str, err: CatError) -> dict:
    return {"rung": rung, "error_type": type(err).__name__,
            "kind": _error_kind(err), "message": str(err),
            "report": _report_dict(err)}


def _run_one(req, rung: str, fault: dict | None, *,
             policy: BatchPolicy, deadline: float | None) -> dict:
    sandbox = _needs_sandbox(policy, req.spec.heavy, fault)
    if sandbox:
        from repro.resilience.isolation import (IsolatedRunner,
                                                IsolationPolicy)
        pol = IsolationPolicy(deadline=deadline,
                              memory_mb=policy.memory_mb,
                              stall_timeout=None, max_restarts=0,
                              poll_interval=0.02, term_grace=0.5)
        label = f"batch[{req.index}]:{req.method}/{rung}"
        result = IsolatedRunner(pol, label=label).run_callable(
            _run_rung_child, args=(req.method, rung, req.params, fault))
    else:
        result = _run_rung_child(req.method, rung, req.params, fault)
    if not isinstance(result, dict):
        raise SolverError(f"rung {req.method}/{rung} returned "
                          f"{type(result).__name__}, expected dict")
    bad = [k for k, v in result.items()
           if isinstance(v, float) and not math.isfinite(v)]
    if bad:
        raise SolverError(f"non-finite result fields {bad} from "
                          f"{req.method}/{rung}")
    return result


def _execute_request(req, policy: BatchPolicy, board: BreakerBoard,
                     remaining: float | None) -> Envelope:
    """Walk the method's model ladder for one request.  Returns an
    envelope; never raises a CatError."""
    spec = req.spec
    captured: list = []
    routed = False
    for rung in spec.rungs:
        cell = board.cell(req.method, rung, req.condition_class)
        if not cell.allow(request_index=req.index):
            captured.append({"rung": rung, "skipped": "breaker-open",
                             "cell": cell.name})
            routed = True
            continue
        fault = req.fault
        if fault and fault.get("rung") not in (None, rung):
            fault = None
        deadline = _effective_deadline(policy, req, remaining)
        try:
            result = _run_one(req, rung, fault, policy=policy,
                              deadline=deadline)
        except CatError as err:
            cell.record_failure(request_index=req.index)
            captured.append(_failure_record(rung, err))
            continue
        cell.record_success(request_index=req.index)
        degraded = rung != spec.rungs[0]
        return Envelope(index=req.index, key=req.key,
                        method=req.method,
                        status="degraded" if degraded else "ok",
                        rung=rung, result=result,
                        degradation=captured,
                        routed_by_breaker=routed)
    last = next((c for c in reversed(captured) if "error_type" in c),
                None)
    if last is not None:
        error = {"error_type": last["error_type"],
                 "kind": last["kind"], "message": last["message"]}
        report = last.get("report")
    else:
        error = {"error_type": "SolverError", "kind": "breaker-open",
                 "message": "every rung skipped by an open circuit "
                            "breaker"}
        report = None
    return Envelope(index=req.index, key=req.key, method=req.method,
                    status="failed", error=error, report=report,
                    degradation=captured, routed_by_breaker=routed)


def _deadline_envelope(req, message: str) -> Envelope:
    return Envelope(index=req.index, key=req.key, method=req.method,
                    status="failed",
                    error={"error_type": "SolverError",
                           "kind": "deadline", "message": message})


def _overload_envelope(req, err: OverloadError) -> Envelope:
    return Envelope(index=req.index, key=req.key, method=req.method,
                    status="failed",
                    error={"error_type": "OverloadError",
                           "kind": "overload", "message": str(err),
                           "queued": err.queued, "limit": err.limit,
                           "retry_after": err.retry_after})


def _copy_for_duplicate(src: Envelope, req) -> Envelope:
    env = replace(src, index=req.index, key=req.key,
                  deduped_of=src.index, latency_s=0.0,
                  degradation=list(src.degradation))
    return env


def _percentile(sorted_xs: list, q: float) -> float:
    if not sorted_xs:
        return 0.0
    pos = (len(sorted_xs) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_xs) - 1)
    frac = pos - lo
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac


def _latency_summary(envelopes: list) -> dict | None:
    lat = sorted(e.latency_s for e in envelopes
                 if e is not None and e.deduped_of is None
                 and e.latency_s > 0.0)
    if not lat:
        return None
    return {"p50": _percentile(lat, 50.0),
            "p99": _percentile(lat, 99.0),
            "mean": sum(lat) / len(lat), "max": lat[-1],
            "n": len(lat)}


def _count(items) -> dict:
    out: dict = {}
    for x in items:
        out[x] = out.get(x, 0) + 1
    return out


def _build_batch_ledger(envelopes, board, *, wall, policy, deduped,
                        expired, admission) -> dict:
    n = len(envelopes)
    complete = all(e is not None for e in envelopes)
    counts = _count(e.status for e in envelopes if e is not None)
    kinds = _count((e.error or {}).get("kind", "?") for e in envelopes
                   if e is not None and e.status == "failed")
    return {"ok": complete,
            "n_requests": n,
            "counts": counts,
            "failed_kinds": kinds,
            "deduped": deduped,
            "deadline_expired": expired,
            "wall_s": round(wall, 4),
            "requests_per_s": (round(n / wall, 2) if wall > 0
                               else None),
            "latency_s": _latency_summary(envelopes),
            "methods": _count(e.method for e in envelopes
                              if e is not None and e.method),
            "breaker": board.snapshot(),
            "admission": admission.stats(),
            "policy": policy.to_dict()}


@dataclass
class BatchResult:
    """Envelopes (one per request, in request order) plus the batch
    ledger; ``columns()`` gives the columnar view."""

    envelopes: list
    ledger: dict

    @property
    def counts(self) -> dict:
        return dict(self.ledger.get("counts", {}))

    def columns(self, fields=None) -> dict:
        import numpy as np
        if fields is None:
            names: set = set()
            for e in self.envelopes:
                if e.result:
                    names.update(k for k, v in e.result.items()
                                 if isinstance(v, (int, float))
                                 and not isinstance(v, bool))
            fields = sorted(names)
        n = len(self.envelopes)
        cols = {"status": np.array([e.status for e in self.envelopes]),
                "ok": np.array([e.status == "ok"
                                for e in self.envelopes])}
        for name in fields:
            col = np.full(n, np.nan)
            for i, e in enumerate(self.envelopes):
                v = (e.result or {}).get(name)
                if isinstance(v, (int, float)) and not isinstance(
                        v, bool):
                    col[i] = float(v)
            cols[name] = col
        return cols

    def to_dict(self) -> dict:
        return {"envelopes": [e.to_dict() for e in self.envelopes],
                "ledger": self.ledger}


def evaluate_batch(requests, policy: BatchPolicy | None = None, *,
                   breakers: BreakerBoard | None = None,
                   admission: AdmissionController | None = None,
                   stream=None) -> BatchResult:
    """Evaluate a batch of requests with production failure semantics.

    Returns a :class:`BatchResult` with exactly one envelope per
    request, in request order.  Raises only
    :class:`~repro.errors.OverloadError`, at admission time, before any
    request runs; every later failure — invalid input, solver error,
    hang, crash, deadline, slot exhaustion — is recorded in the
    offending request's envelope.
    """
    policy = policy or BatchPolicy()
    requests = list(requests)
    n = len(requests)
    adm = admission if admission is not None else ADMISSION
    adm.admit(n, policy)
    t0 = time.monotonic()
    board = breakers if breakers is not None \
        else BreakerBoard(policy.breaker)
    envelopes: list = [None] * n
    deduped = expired = 0
    try:
        run_list = []
        primaries: dict = {}
        dupes = []
        for i, raw in enumerate(requests):
            req, env = validate_request(
                raw, index=i, allow_faults=policy.allow_faults)
            if env is not None:
                envelopes[i] = env
            elif policy.dedup and req.key in primaries:
                dupes.append((req, primaries[req.key]))
            else:
                primaries[req.key] = req.index
                run_list.append(req)
        for req in run_list:
            remaining = None
            if policy.deadline is not None:
                remaining = policy.deadline - (time.monotonic() - t0)
                if remaining <= 0.0:
                    envelopes[req.index] = _deadline_envelope(
                        req, "batch deadline exhausted before "
                             "execution")
                    expired += 1
                    continue
            t_req = time.monotonic()
            try:
                with adm.slot(policy):
                    env = _execute_request(req, policy, board,
                                           remaining)
            except OverloadError as err:
                env = _overload_envelope(req, err)
            env.latency_s = time.monotonic() - t_req
            envelopes[req.index] = env
            if stream is not None and env.status != "ok":
                print(f"[batch] #{req.index} {req.method}: "
                      f"{env.status}", file=stream)
        for req, primary_index in dupes:
            envelopes[req.index] = _copy_for_duplicate(
                envelopes[primary_index], req)
            deduped += 1
    finally:
        adm.release(n)
    wall = time.monotonic() - t0
    ledger = _build_batch_ledger(envelopes, board, wall=wall,
                                 policy=policy, deduped=deduped,
                                 expired=expired, admission=adm)
    return BatchResult(envelopes=envelopes, ledger=ledger)


# ------------------------------------------------------------- farm glue

def shard_requests(requests: list, chunk_size: int) -> list:
    """Split a batch into ``(offset, chunk)`` shards."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(start, requests[start:start + chunk_size])
            for start in range(0, len(requests), chunk_size)]


def _batch_key(requests: list) -> str:
    from repro.service.request import request_key
    blob = ",".join(request_key(r) if isinstance(r, dict) else repr(r)
                    for r in requests)
    return hashlib.sha256(blob.encode()).hexdigest()


def batch_jobs(requests: list, policy: BatchPolicy, *,
               chunk_size: int | None = None) -> list:
    """Chunk jobs for the ``batch`` farm job kind.  Job ids derive from
    the batch content key, so re-enqueueing after a crash or preemption
    is idempotent (the queue dedups on id) and results commit exactly
    once."""
    from repro.resilience.queue import Job
    chunk_size = chunk_size or policy.chunk_size
    key = _batch_key(requests)
    jobs = []
    for start, chunk in shard_requests(requests, chunk_size):
        chunk_deadline = None
        if policy.request_deadline is not None:
            chunk_deadline = (policy.request_deadline * len(chunk)
                              + 30.0)
        jobs.append(Job(id=f"batch-{key[:12]}-c{start:06d}",
                        kind="batch",
                        payload={"requests": chunk,
                                 "policy": policy.to_dict(),
                                 "offset": start},
                        deadline=chunk_deadline))
    return jobs


def _merge_chunk_breakers(chunk_ledgers: list) -> dict:
    """Merge per-chunk breaker snapshots deterministically.

    Chunk boards number their transitions per-process, so bare ``seq``
    values collide across chunks and concatenation order depends on
    worker scheduling.  Keying by ``(cell, origin, seq)`` — origin is
    the writing board's ``host:pid`` — and stable-sorting makes the
    merged ledger a pure function of the chunk set, whatever order the
    farm finished them in.
    """
    transitions = []
    states: dict = {}
    for led in chunk_ledgers:
        brk = (led or {}).get("breaker") or {}
        transitions.extend(brk.get("transitions") or [])
        states.update(brk.get("states") or {})
    transitions.sort(key=lambda tr: (str(tr.get("cell") or ""),
                                     str(tr.get("origin") or ""),
                                     int(tr.get("seq") or 0)))
    return {"states": dict(sorted(states.items())),
            "transitions": transitions}


def evaluate_batch_farm(requests, policy: BatchPolicy | None = None, *,
                        queue_dir, n_workers: int = 2,
                        chunk_size: int | None = None,
                        farm_policy=None, stream=None) -> BatchResult:
    """Shard a batch across the solve farm as ``batch`` chunk jobs.

    Each chunk runs :func:`evaluate_batch` inside a farm worker (its
    own sandboxed process, lease-protected, retried with backoff on
    preemption); chunk envelopes merge back in request order and the
    exactly-once audit is attached to the merged ledger.  A chunk that
    dead-letters still yields one ``failed`` envelope per request — the
    one-envelope-per-request invariant survives worker loss.
    """
    from repro.resilience.farm import (FarmPolicy, audit_exactly_once,
                                       run_campaign)
    from repro.resilience.queue import WorkQueue
    policy = policy or BatchPolicy()
    requests = list(requests)
    n = len(requests)
    # Admission applies at the front door of the farm path too.
    ADMISSION.admit(n, policy)
    try:
        t0 = time.monotonic()
        jobs = batch_jobs(requests, policy, chunk_size=chunk_size)
        fpolicy = farm_policy or FarmPolicy(
            n_workers=n_workers, max_wall_time=policy.deadline)
        farm_ledger = run_campaign(queue_dir, jobs, policy=fpolicy,
                                   label="batch", stream=stream)
        queue = WorkQueue(queue_dir)
        envelopes: list = [None] * n
        chunk_ledgers = []
        for job in jobs:
            offset = job.payload["offset"]
            chunk = job.payload["requests"]
            rec = queue.result(job.id)
            res = rec.get("result") if isinstance(rec, dict) else None
            if not isinstance(res, dict) or "envelopes" not in res:
                # catlint: disable=PERF001 -- per-chunk envelope-object synthesis, not array math
                for i in range(offset, offset + len(chunk)):
                    envelopes[i] = Envelope(
                        index=i, key=None, method=None,
                        status="failed",
                        error={"error_type": "SolverError",
                               "kind": "farm",
                               "message": f"chunk job {job.id} did "
                                          "not produce a result "
                                          "(dead-lettered or lost)"})
                continue
            for d in res["envelopes"]:
                env = Envelope.from_dict(d)
                env.index += offset
                if env.deduped_of is not None:
                    env.deduped_of += offset
                envelopes[env.index] = env
            chunk_ledgers.append(res.get("ledger"))
        wall = time.monotonic() - t0
        audit = audit_exactly_once(queue)
        counts = _count(e.status for e in envelopes if e is not None)
        kinds = _count((e.error or {}).get("kind", "?")
                       for e in envelopes
                       if e is not None and e.status == "failed")
        ledger = {"ok": (all(e is not None for e in envelopes)
                         and bool(audit.get("ok"))),
                  "n_requests": n,
                  "counts": counts,
                  "failed_kinds": kinds,
                  "deduped": sum((led or {}).get("deduped", 0)
                                 for led in chunk_ledgers),
                  "wall_s": round(wall, 4),
                  "requests_per_s": (round(n / wall, 2) if wall > 0
                                     else None),
                  "latency_s": _latency_summary(envelopes),
                  "methods": _count(e.method for e in envelopes
                                    if e is not None and e.method),
                  "breaker": _merge_chunk_breakers(chunk_ledgers),
                  "farm": {"label": farm_ledger.get("label"),
                           "wall_time": farm_ledger.get("wall_time"),
                           "jobs": len(jobs),
                           "n_workers": n_workers},
                  "audit": audit,
                  "policy": policy.to_dict()}
        return BatchResult(envelopes=envelopes, ledger=ledger)
    finally:
        ADMISSION.release(n)


def batch_bench_record(result: BatchResult, *, mode: str,
                       n_workers: int = 1) -> dict:
    """BENCH_batch.json record: requests/sec + latency percentiles."""
    led = result.ledger
    return {"bench": "batch", "mode": mode, "n_workers": n_workers,
            "n_requests": led.get("n_requests"),
            "counts": led.get("counts"),
            "wall_s": led.get("wall_s"),
            "requests_per_s": led.get("requests_per_s"),
            "latency_s": led.get("latency_s")}
