"""Fig. 1 — Flight domain and simulation capability.

Reynolds number (vehicle length scale) versus Mach number along integrated
entry/cruise trajectories for the three vehicle classes the paper's
introduction motivates (Shuttle Orbiter, AOTV aeropass, TAV cruise), with
the ground-facility simulation envelopes overlaid.
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.postprocess.ascii_plot import ascii_plot
from repro.trajectory import AOTV, SHUTTLE, TAV, integrate_entry

__all__ = ["run", "main", "FACILITY_ENVELOPES"]

#: Ground-facility envelopes as (M, Re) polygon vertices — representative
#: mid-1980s capability boxes (conventional tunnels, shock tunnels,
#: ballistic ranges).
FACILITY_ENVELOPES = {
    "wind tunnels": {"mach": (0.1, 10.0), "reynolds": (1e5, 1e8)},
    "shock tunnels": {"mach": (6.0, 25.0), "reynolds": (1e4, 5e6)},
    "ballistic ranges": {"mach": (2.0, 20.0), "reynolds": (1e5, 1e7)},
}


def run(quick: bool = False) -> dict:
    """Integrate the three trajectories and return (M, Re) loci."""
    atm = EarthAtmosphere()
    rtol = 1e-6 if quick else 1e-8
    out = {"facilities": FACILITY_ENVELOPES, "vehicles": {}}
    cases = {
        "shuttle": (SHUTTLE, dict(h0=120e3, V0=7800.0, gamma0_deg=-1.2)),
        "aotv": (AOTV, dict(h0=122e3, V0=9800.0, gamma0_deg=-4.7,
                            t_max=1200.0)),
        "tav": (TAV, dict(h0=80e3, V0=6500.0, gamma0_deg=-0.5,
                          t_max=1500.0, V_stop=800.0)),
    }
    for name, (veh, kw) in cases.items():
        tr = integrate_entry(veh, atm, rtol=rtol, **kw)
        # restrict to the aerothermodynamically relevant portion
        keep = (tr.h < 125e3) & (tr.mach > 0.5)
        out["vehicles"][name] = {
            "mach": tr.mach[keep],
            "reynolds": np.maximum(tr.reynolds[keep], 1.0),
            "altitude": tr.h[keep],
            "velocity": tr.V[keep],
        }
    return out


def main(quick: bool = False) -> str:
    res = run(quick)
    series = [(v["mach"], v["reynolds"], name)
              for name, v in res["vehicles"].items()]
    txt = ascii_plot(series, logy=True, title="Fig. 1 - flight domain",
                     xlabel="Mach number", ylabel="Reynolds number")
    lines = [txt, "", "facility envelopes:"]
    for name, env in res["facilities"].items():
        lines.append(f"  {name:18s} M {env['mach'][0]:>4g}-"
                     f"{env['mach'][1]:<4g}  Re {env['reynolds'][0]:.0e}-"
                     f"{env['reynolds'][1]:.0e}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
