"""ASCII rendering of line plots and contour fields.

The examples run in a plain terminal; these helpers produce readable
figures without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["ascii_plot", "ascii_contour"]

_MARKERS = "*o+x#@%&"


def ascii_plot(series, *, width=72, height=20, logx=False, logy=False,
               title="", xlabel="", ylabel=""):
    """Render one or more (x, y[, label]) series as an ASCII plot.

    Parameters
    ----------
    series:
        Iterable of (x, y) or (x, y, label) tuples.
    logx, logy:
        Logarithmic axes (non-positive data are dropped).

    Returns
    -------
    Multi-line string.
    """
    cleaned = []
    for item in series:
        x = np.asarray(item[0], dtype=float)
        y = np.asarray(item[1], dtype=float)
        label = item[2] if len(item) > 2 else ""
        ok = np.isfinite(x) & np.isfinite(y)
        if logx:
            ok &= x > 0
        if logy:
            ok &= y > 0
        if not np.any(ok):
            continue
        x, y = x[ok], y[ok]
        # catlint: disable=CAT001 -- ok mask enforces x > 0 / y > 0
        # on the log axes before indexing
        cleaned.append((np.log10(x) if logx else x,
                        np.log10(y) if logy else y, label))
    if not cleaned:
        raise InputError("nothing plottable")
    x_all = np.concatenate([c[0] for c in cleaned])
    y_all = np.concatenate([c[1] for c in cleaned])
    x0, x1 = float(x_all.min()), float(x_all.max())
    y0, y1 = float(y_all.min()), float(y_all.max())
    if x1 - x0 < 1e-300:
        x1 = x0 + 1.0
    if y1 - y0 < 1e-300:
        y1 = y0 + 1.0
    canvas = [[" "] * width for _ in range(height)]
    for k, (x, y, _label) in enumerate(cleaned):
        m = _MARKERS[k % len(_MARKERS)]
        # catlint: disable=CAT003 -- degenerate ranges widened to 1.0
        # a few lines above, so both denominators are bounded away
        # from zero
        ci = np.clip(((x - x0) / (x1 - x0) * (width - 1)).astype(int),
                     0, width - 1)
        # catlint: disable=CAT003 -- same range-widening guard
        ri = np.clip(((y1 - y) / (y1 - y0) * (height - 1)).astype(int),
                     0, height - 1)
        for r, c in zip(ri, ci):
            canvas[r][c] = m
    def fmt(v, is_log):  # noqa: E306
        return f"1e{v:.1f}" if is_log else f"{v:.3g}"
    lines = []
    if title:
        lines.append(title.center(width + 10))
    legend = "  ".join(f"{_MARKERS[k % len(_MARKERS)]}={c[2]}"
                       for k, c in enumerate(cleaned) if c[2])
    if legend:
        lines.append(legend)
    for r, row in enumerate(canvas):
        tag = ""
        if r == 0:
            tag = fmt(y1, logy)
        elif r == height - 1:
            tag = fmt(y0, logy)
        lines.append(f"{tag:>9s} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 10 + fmt(x0, logx)
                 + fmt(x1, logx).rjust(width - len(fmt(x0, logx))))
    if xlabel or ylabel:
        lines.append(f"{'x: ' + xlabel if xlabel else '':<40s}"
                     f"{'y: ' + ylabel if ylabel else ''}")
    return "\n".join(lines)


def ascii_contour(x, y, f, levels, *, width=70, height=26):
    """Render contour bands of a structured field as character cells.

    Each grid sample is binned onto a terminal cell and drawn with a digit
    giving the highest level index below its value.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    f = np.asarray(f, dtype=float).ravel()
    if not (x.size == y.size == f.size):
        raise InputError("x, y, f must have equal sizes")
    levels = np.asarray(levels, dtype=float)
    x0, x1 = x.min(), x.max()
    y0, y1 = y.min(), y.max()
    canvas = [[" "] * width for _ in range(height)]
    ci = np.clip(((x - x0) / max(x1 - x0, 1e-300)
                  * (width - 1)).astype(int), 0, width - 1)
    ri = np.clip(((y1 - y) / max(y1 - y0, 1e-300)
                  * (height - 1)).astype(int), 0, height - 1)
    idx = np.searchsorted(levels, f)
    chars = "." + "123456789abcdefgh"
    for r, c, k in zip(ri, ci, idx):
        canvas[r][c] = chars[min(k, len(chars) - 1)]
    lines = ["".join(row) for row in canvas]
    lines.append(f"levels: " + ", ".join(
        f"{chars[k + 1]}>{lv:g}" for k, lv in enumerate(levels)))
    return "\n".join(lines)
