"""Fig. 3 — Chemical species profiles on the Titan-probe stagnation line.

Equilibrium shock-layer composition (mole fraction vs y/delta) at the
peak-heating point of the Titan entry — the Ref. 15 RASLE plot: N2
dominant across the layer, H2/HCN/CN/C2 trace species varying by orders
of magnitude through the thermal boundary layer.
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere import TitanAtmosphere
from repro.postprocess.ascii_plot import ascii_plot
from repro.solvers.vsl import StagnationVSL
from repro.thermo.equilibrium import (EquilibriumGas,
                                      titan_reference_mass_fractions)
from repro.thermo.species import species_set
from repro.experiments.fig2_titan_heating import ENTRY

__all__ = ["run", "main"]

#: Peak-heating flight condition (from the fig. 2 trajectory; frozen here
#: so fig. 3 can run standalone).
PEAK_CONDITION = dict(h=287e3, V=10068.0)


def run(quick: bool = False) -> dict:
    atm = TitanAtmosphere()
    db = species_set("titan9")
    gas = EquilibriumGas(db, titan_reference_mass_fractions(db))
    vsl = StagnationVSL(gas, nose_radius=0.64)
    sol = vsl.solve(rho_inf=float(atm.density(PEAK_CONDITION["h"])),
                    T_inf=float(atm.temperature(PEAK_CONDITION["h"])),
                    V=PEAK_CONDITION["V"], T_wall=1800.0,
                    n_profile=40 if quick else 100,
                    n_lambda=120 if quick else 300)
    x = sol.mole_fractions(db)
    return {"y_over_delta": sol.y / sol.y[-1], "mole_fractions": x,
            "species": db.names, "T": sol.T, "delta": sol.y[-1],
            "solution": sol, "db": db}


def main(quick: bool = True) -> str:
    res = run(quick)
    yd = res["y_over_delta"]
    series = []
    for name in ("N2", "H2", "H", "N", "CN", "HCN", "C2"):
        j = res["species"].index(name)
        x = np.maximum(res["mole_fractions"][:, j], 1e-12)
        if x.max() > 1e-10:
            series.append((yd, x, name))
    txt = ascii_plot(series, logy=True,
                     title="Fig. 3 - species on the stagnation line "
                           f"(delta = {res['delta'] * 100:.2f} cm)",
                     xlabel="y/delta", ylabel="mole fraction")
    return txt


if __name__ == "__main__":
    print(main())
