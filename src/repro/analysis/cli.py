"""``python -m repro.analysis`` — lint and units front-end.

Exit codes: 0 clean (or no findings beyond the baseline), 1 findings,
2 usage error.  ``--format json`` emits a machine-readable report on
stdout (CI publishes it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import rules as _rules  # noqa: F401 - registers rules
from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import RULES, lint_paths
from repro.analysis.findings import Severity
from repro.analysis.units import check_units_paths

_UNIT_RULES = {
    "UNIT001": "incompatible dimensions in +/-/comparison",
    "UNIT002": "declared unit contradicted (parameter rebound / return)",
    "UNIT003": "call argument unit mismatch",
}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="CAT static analysis: catlint + units checker")
    sub = p.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="run the catlint rule set")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE_PATH,
                      default=None, metavar="FILE",
                      help="fail only on findings not in FILE "
                           f"(default {DEFAULT_BASELINE_PATH})")
    lint.add_argument("--write-baseline", nargs="?",
                      const=DEFAULT_BASELINE_PATH, default=None,
                      metavar="FILE",
                      help="accept all current findings into FILE")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule codes to run")
    lint.add_argument("--min-severity", choices=("info", "warning", "error"),
                      default="info", help="drop findings below this level")

    units = sub.add_parser("units", help="run the units/dimension checker")
    units.add_argument("paths", nargs="*", default=["src"])
    units.add_argument("--format", choices=("text", "json"), default="text")

    sub.add_parser("list-rules", help="print the rule catalog")
    return p


def _emit(findings, new, stale, fmt: str, baseline_path: str | None) -> None:
    if fmt == "json":
        doc = {
            "tool": "catlint",
            "baseline": baseline_path,
            "counts": {
                "total": len(findings),
                "new": len(new),
                "stale_baseline_entries": stale,
            },
            "findings": [dict(f.to_dict(), new=(f in set(new)))
                         for f in findings],
        }
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    for f in findings:
        marker = "" if baseline_path is None or f in set(new) else " (baseline)"
        print(f.render() + marker)
    if baseline_path is not None:
        print(f"{len(findings)} finding(s); {len(new)} new "
              f"vs baseline {baseline_path!r}; {stale} stale entr(y/ies)")
    else:
        print(f"{len(findings)} finding(s)")


def _cmd_lint(args) -> int:
    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    findings = lint_paths(args.paths, select=select)
    floor = Severity.rank(args.min_severity)
    findings = [f for f in findings if Severity.rank(f.severity) >= floor]
    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}",
              file=sys.stderr)
        return 0
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        new, stale = diff_against_baseline(findings, baseline)
        _emit(findings, new, stale, args.format, args.baseline)
        return 1 if new else 0
    _emit(findings, findings, 0, args.format, None)
    return 1 if findings else 0


def _cmd_units(args) -> int:
    findings = check_units_paths(args.paths)
    _emit(findings, findings, 0, args.format, None)
    return 1 if findings else 0


def _cmd_list_rules() -> int:
    for code in sorted(RULES):
        r = RULES[code]
        print(f"{code}  {r.name:<22} [{r.severity}]")
        print(f"       {r.description}")
    print("CAT090 pragma-missing-reason   [info]")
    print("       catlint pragma without a '-- reason' tail.")
    for code, desc in _UNIT_RULES.items():
        print(f"{code} units-checker          [error]")
        print(f"       {desc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "units":
        return _cmd_units(args)
    if args.command == "list-rules":
        return _cmd_list_rules()
    parser.print_help()
    return 2
