"""Tangent-slab (plane-parallel) radiative transfer.

The paper's VSL codes carry "detailed spectral radiation transport
(employing a plane-slab approximation)".  For a slab of layers with
spectral emission coefficient j_lambda and absorption coefficient
kappa_lambda (from Kirchhoff's law, kappa = j / B_lambda(T)), the
one-sided spectral flux arriving at the wall is::

    q_lambda = 2 pi  int  j_lambda(t) E_2(tau(t)) dt

with E_2 the second exponential integral and tau measured from the wall.
The optically thin limit (tau -> 0) reduces to 2 pi int j dy, i.e. half
the isotropic emission reaches the wall.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expn

from repro.constants import planck_lambda
from repro.errors import InputError

__all__ = ["tangent_slab_flux"]


def tangent_slab_flux(y, j_lambda, T, wavelengths, *,
                      optically_thin: bool = False):
    """Wall-directed radiative flux through a plane slab.

    Parameters
    ----------
    y:
        Layer positions [m], increasing from the wall (y[0] ~ 0), (ny,).
    j_lambda:
        Spectral emission coefficient [W/(m^3 sr m)], shape (ny, nw).
    T:
        Layer temperatures [K] (for the Kirchhoff absorption), (ny,).
    wavelengths:
        Wavelength grid [m], (nw,).
    optically_thin:
        Skip absorption entirely.

    Returns
    -------
    (q_total, q_lambda_wall):
        Integrated wall flux [W/m^2] and its spectral density [W/(m^2 m)].
    """
    y = np.asarray(y, dtype=float)
    j = np.asarray(j_lambda, dtype=float)
    T = np.asarray(T, dtype=float)
    lam = np.asarray(wavelengths, dtype=float)
    if j.shape != (y.size, lam.size):
        raise InputError("j_lambda must have shape (ny, nw)")
    if np.any(np.diff(y) <= 0):
        raise InputError("y must be strictly increasing from the wall")
    dy = np.diff(y)
    # layer-centred emission and absorption
    j_mid = 0.5 * (j[1:] + j[:-1])
    if optically_thin:
        q_lam = 2.0 * np.pi * np.sum(j_mid * dy[:, None], axis=0)
        return float(np.trapezoid(q_lam, lam)), q_lam
    T_mid = 0.5 * (T[1:] + T[:-1])
    B = planck_lambda(lam[None, :], T_mid[:, None])
    kappa = j_mid / np.maximum(B, 1e-300)
    # optical depth from the wall to each layer interface
    dtau = kappa * dy[:, None]
    tau_below = np.concatenate([np.zeros((1, lam.size)),
                                np.cumsum(dtau, axis=0)[:-1]], axis=0)
    tau_above = tau_below + dtau
    # per-layer analytic integration with a uniform source function
    # S = j/kappa: contribution 2 pi S [E3(tau_below) - E3(tau_above)].
    # This telescopes exactly to pi*B in the optically thick limit and
    # reduces to 2 pi j E2(tau) dy when the layer is thin — resolution-
    # robust at both extremes.
    S = np.where(kappa > 1e-300, j_mid / np.maximum(kappa, 1e-300), 0.0)
    e3_lo = expn(3, np.clip(tau_below, 0.0, 500.0))
    e3_hi = expn(3, np.clip(tau_above, 0.0, 500.0))
    q_lam = 2.0 * np.pi * np.sum(S * (e3_lo - e3_hi), axis=0)
    return float(np.trapezoid(q_lam, lam)), q_lam
