"""Tests for the planetary atmosphere models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atmosphere import (EarthAtmosphere, JupiterAtmosphere,
                              TitanAtmosphere)


@pytest.fixture(scope="module")
def earth():
    return EarthAtmosphere()


@pytest.fixture(scope="module")
def titan():
    return TitanAtmosphere()


def _geometric(hgp):
    """Geometric altitude for a geopotential table node (USSA76 tables are
    layered in geopotential altitude)."""
    from repro.constants import R_EARTH
    return R_EARTH * hgp / (R_EARTH - hgp)


class TestEarthUS76:
    """Checks against published USSA-1976 table values."""

    def test_sea_level(self, earth):
        assert float(earth.temperature(0.0)) == pytest.approx(288.15)
        assert float(earth.pressure(0.0)) == pytest.approx(101325.0)
        assert float(earth.density(0.0)) == pytest.approx(1.225, rel=1e-3)

    def test_tropopause(self, earth):
        h = _geometric(11000.0)
        assert float(earth.temperature(h)) == pytest.approx(216.65,
                                                            rel=1e-6)
        assert float(earth.pressure(h)) == pytest.approx(22632.0,
                                                         rel=0.002)

    def test_20km(self, earth):
        assert float(earth.pressure(_geometric(20000.0))) == pytest.approx(
            5474.9, rel=0.005)

    def test_stratopause_47km(self, earth):
        h = _geometric(47000.0)
        assert float(earth.temperature(h)) == pytest.approx(270.65,
                                                            rel=1e-6)
        assert float(earth.pressure(h)) == pytest.approx(110.9, rel=0.01)

    def test_71km(self, earth):
        h = _geometric(71000.0)
        assert float(earth.temperature(h)) == pytest.approx(214.65,
                                                            rel=1e-6)
        assert float(earth.density(h)) == pytest.approx(6.42e-5, rel=0.03)

    def test_density_65km(self, earth):
        # the Fig. 4 flight condition: h = 65.5 km
        rho = float(earth.density(65500.0))
        assert rho == pytest.approx(1.56e-4, rel=0.05)

    @given(h=st.floats(min_value=0.0, max_value=115000.0))
    @settings(max_examples=60, deadline=None)
    def test_pressure_monotone_decreasing(self, h):
        e = EarthAtmosphere()
        assert float(e.pressure(h + 200.0)) < float(e.pressure(h))

    def test_sound_speed_sea_level(self, earth):
        assert float(earth.sound_speed(0.0)) == pytest.approx(340.3,
                                                              rel=1e-3)

    def test_vectorised(self, earth):
        h = np.linspace(0, 100e3, 300)
        p = earth.pressure(h)
        assert p.shape == h.shape and np.all(np.diff(p) < 0)

    def test_gravity_decreases(self, earth):
        assert float(earth.gravity(100e3)) < float(earth.gravity(0.0))

    def test_mach_and_reynolds(self, earth):
        M = float(earth.mach_number(6740.0, 71300.0))
        assert M == pytest.approx(23.0, rel=0.05)  # STS-3 point is M~23
        Re = float(earth.reynolds_per_meter(6740.0, 71300.0)) * 32.8
        assert 1e5 < Re < 1e7  # Orbiter-length Re in the expected decade


class TestTitan:
    def test_surface(self, titan):
        assert float(titan.temperature(0.0)) == pytest.approx(94.0)
        assert float(titan.pressure(0.0)) == pytest.approx(1.5 * 101325.0)

    def test_surface_density(self, titan):
        # Titan surface density ~5.4 kg/m^3
        assert float(titan.density(0.0)) == pytest.approx(5.3, rel=0.1)

    def test_haze_layer_temperature(self, titan):
        # the paper's "organic haze layer": stratosphere ~170 K
        assert float(titan.temperature(250e3)) == pytest.approx(171.0,
                                                                rel=0.02)

    def test_monotone_pressure(self, titan):
        h = np.linspace(0, 1200e3, 500)
        assert np.all(np.diff(titan.pressure(h)) < 0)

    def test_entry_interface_density_scale(self, titan):
        # density scale height near 300 km should be tens of km
        h = 300e3
        rho1 = float(titan.density(h))
        rho2 = float(titan.density(h + 10e3))
        H = 10e3 / np.log(rho1 / rho2)
        assert 20e3 < H < 80e3

    def test_continuation_above_grid(self, titan):
        p = float(titan.pressure(2000e3))
        assert 0.0 < p < float(titan.pressure(1400e3))


class TestJupiter:
    def test_reference_level(self):
        j = JupiterAtmosphere()
        assert float(j.pressure(0.0)) == pytest.approx(1e5)

    def test_scale_height(self):
        j = JupiterAtmosphere()
        # H = R T / g ~ 24-27 km
        rho1 = float(j.density(0.0))
        rho2 = float(j.density(25e3))
        assert rho2 / rho1 == pytest.approx(np.exp(-1.0), rel=0.15)

    def test_light_gas_sound_speed(self):
        j = JupiterAtmosphere()
        # H2/He at 165 K: ~940 m/s, far above air's
        assert float(j.sound_speed(0.0)) == pytest.approx(940.0, rel=0.1)
