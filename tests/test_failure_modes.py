"""Failure-injection tests: the library must fail loudly and typed.

Every deliberate error path raises a :class:`repro.errors.CatError`
subclass with diagnostic payload — never a bare numpy warning or a
silent NaN field.
"""

import numpy as np
import pytest

from repro.errors import (CatError, ConvergenceError, InputError,
                          StabilityError)


class TestErrorHierarchy:
    def test_all_errors_are_cat_errors(self):
        for exc in (ConvergenceError("x"), InputError("x"),
                    StabilityError("x")):
            assert isinstance(exc, CatError)

    def test_convergence_error_payload(self):
        e = ConvergenceError("failed", iterations=42, residual=1e-3)
        assert e.iterations == 42
        assert e.residual == 1e-3

    def test_stability_error_payload(self):
        e = StabilityError("boom", step=7)
        assert e.step == 7

    def test_input_error_is_value_error(self):
        # so generic callers catching ValueError still work
        assert isinstance(InputError("x"), ValueError)


class TestSolverBlowupDetection:
    def test_euler2d_detects_nan_state(self):
        from repro.core.gas import IdealGasEOS
        from repro.geometry import Hemisphere
        from repro.grid import blunt_body_grid
        from repro.solvers.euler2d import AxisymmetricEulerSolver
        body = Hemisphere(1.0)
        grid = blunt_body_grid(body, n_s=11, n_normal=11)
        s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
        s.set_freestream(0.01, 2000.0, 700.0)
        s.U[3, 3, 0] = np.nan
        with pytest.raises(StabilityError):
            s.step(0.4)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_euler1d_detects_blowup_from_huge_cfl(self):
        # overflow warnings en route to the StabilityError are the point
        from repro.solvers.euler1d import Euler1DSolver
        x = np.linspace(0.0, 1.0, 51)
        xc = 0.5 * (x[1:] + x[:-1])
        s = Euler1DSolver(x)
        s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                      np.where(xc < 0.5, 1.0, 0.1))
        with pytest.raises(StabilityError):
            for _ in range(200):
                s.step(0.5)   # dt >> CFL limit for dx = 0.02

    def test_vsl_grid_rejects_negative_radius_cells(self):
        from repro.errors import GridError
        from repro.grid.structured import StructuredGrid2D
        x, y = np.meshgrid(np.linspace(0, 1, 4), np.linspace(-0.5, 0.5, 4),
                           indexing="ij")
        g = StructuredGrid2D(x, y)
        with pytest.raises(GridError):
            g.axisymmetric_volumes()


class TestEquilibriumSolverRobustness:
    def test_unreachable_energy_raises_convergence_error(self, air_gas):
        # requesting e far above the single-ionization model's reach
        with pytest.raises(ConvergenceError):
            air_gas.state_rho_e(np.array([10.0]), np.array([5e9]))

    def test_negative_density_raises_input_error(self, air_gas):
        with pytest.raises(InputError):
            air_gas.composition_rho_T(np.array([-0.1]), np.array([300.0]))

    def test_shock_below_sound_speed(self, air_gas):
        from repro.solvers.shock import equilibrium_normal_shock
        with pytest.raises(InputError):
            equilibrium_normal_shock(air_gas, 1.0, 300.0, 10.0)


class TestAdaptationOnPhysics:
    def test_adapt_concentrates_points_in_relaxation_front(self):
        """Solution-adaptive redistribution on a relaxation-zone-like
        temperature profile (the paper's grid-adaptation challenge)."""
        from repro.grid.adaptation import adapt_1d, gradient_weight
        x = np.linspace(0.0, 0.02, 200)
        # frozen-shock relaxation shape: sharp exponential decay near 0
        T = 9000.0 + 39000.0 * np.exp(-x / 5e-4)
        w = gradient_weight(x, T, alpha=4.0)
        x2 = adapt_1d(x, w)
        n_front_before = np.count_nonzero(x < 1e-3)
        n_front_after = np.count_nonzero(x2 < 1e-3)
        assert n_front_after > 2 * n_front_before
        assert np.all(np.diff(x2) > 0)


class TestVSLRadiativeCoolingAblation:
    @pytest.fixture(scope="class")
    def solutions(self, titan_gas):
        from repro.atmosphere import TitanAtmosphere
        from repro.solvers.vsl import StagnationVSL
        vsl = StagnationVSL(titan_gas, nose_radius=0.64)
        atm = TitanAtmosphere()
        h = 287e3
        kw = dict(rho_inf=float(atm.density(h)),
                  T_inf=float(atm.temperature(h)), V=10500.0,
                  T_wall=1800.0, n_profile=40, n_lambda=120)
        cooled = vsl.solve(radiative_cooling=True, **kw)
        uncooled = vsl.solve(radiative_cooling=False, **kw)
        return cooled, uncooled

    def test_cooling_reduces_radiative_flux(self, solutions):
        cooled, uncooled = solutions
        assert cooled.q_rad <= uncooled.q_rad

    def test_cooling_does_not_change_convection(self, solutions):
        cooled, uncooled = solutions
        assert cooled.q_conv == pytest.approx(uncooled.q_conv, rel=1e-12)


class TestMixtureEntropy:
    def test_entropy_increases_with_T(self, air_gas, air11):
        y = air_gas.y_ref
        s1 = float(air_gas.mix.s_mass(np.array(300.0), np.array(1e5), y))
        s2 = float(air_gas.mix.s_mass(np.array(1000.0), np.array(1e5), y))
        assert s2 > s1

    def test_entropy_decreases_with_p(self, air_gas):
        y = air_gas.y_ref
        s1 = float(air_gas.mix.s_mass(np.array(500.0), np.array(1e4), y))
        s2 = float(air_gas.mix.s_mass(np.array(500.0), np.array(1e6), y))
        assert s1 > s2
        # ideal-gas: ds = -R ln(p2/p1)
        from repro.constants import R_UNIVERSAL
        R_mix = float(air_gas.mix.gas_constant(y))
        assert s1 - s2 == pytest.approx(R_mix * np.log(100.0), rel=1e-6)

    def test_air_entropy_magnitude(self, air_gas):
        # standard air entropy at 298 K, 1 bar: ~6860 J/(kg K)
        s = float(air_gas.mix.s_mass(np.array(298.15), np.array(1e5),
                                     air_gas.y_ref))
        assert s == pytest.approx(6860.0, rel=0.02)

    def test_isentrope_consistency_with_pns_expansion(self, air_gas):
        # expanding isentropically and re-evaluating s returns the same s
        from repro.geometry import OrbiterWindwardProfile
        from repro.solvers.pns import WindwardHeatingPNS
        body = OrbiterWindwardProfile(40.0, 1.3)
        pns = WindwardHeatingPNS(body, gas=air_gas)
        s_target = 9000.0
        T = pns._T_of_s_p(s_target, 2000.0, 4000.0)
        y, _ = air_gas.composition_T_p(np.array(T), np.array(2000.0))
        s_back = float(air_gas.mix.s_mass(np.array(T), np.array(2000.0),
                                          y))
        assert s_back == pytest.approx(s_target, rel=1e-6)
