"""Algebraic grid generation for blunt-body flows.

Builds body-fitted grids between an axisymmetric body surface and an outer
boundary placed ahead of the expected bow shock, by transfinite
interpolation along body-normal rays:

* ``normal_ray_grid`` — rays leave the body along local surface normals,
  with wall clustering (the NS-solver grid).
* ``blunt_body_grid`` — convenience wrapper sizing the outer boundary from
  a shock-standoff correlation so the captured shock sits comfortably
  inside the domain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GridError
from repro.geometry.bodies import AxisymBody
from repro.grid.stretching import tanh_cluster
from repro.grid.structured import StructuredGrid2D

__all__ = ["normal_ray_grid", "blunt_body_grid", "standoff_estimate"]


def standoff_estimate(nose_radius: float, density_ratio: float) -> float:
    """Shock standoff estimate for a sphere (Lobb/serabian correlation).

    delta / R_n ~ 0.78 * rho_inf / rho_shock — the classical blast of the
    density-ratio scaling: equilibrium (real-gas) shocks hug the body,
    ideal-gas shocks stand further off (the Fig. 4 effect).

    Parameters
    ----------
    density_ratio:
        rho_inf / rho_post_shock (epsilon), < 1.
    """
    return 0.78 * nose_radius * density_ratio


def normal_ray_grid(body: AxisymBody, *, n_s: int, n_normal: int,
                    offset, s_end: float | None = None,
                    wall_cluster_beta: float = 2.0) -> StructuredGrid2D:
    """Grid of body-normal rays from the surface to an offset boundary.

    Parameters
    ----------
    body:
        Axisymmetric body; the generator arc provides the i direction.
    n_s, n_normal:
        Number of *nodes* along the surface and along each ray.
    offset:
        Ray length [m]: scalar or array of shape (n_s,) (the outer-boundary
        distance along each normal).
    wall_cluster_beta:
        tanh clustering strength toward the wall (0 = uniform).

    Returns
    -------
    StructuredGrid2D with i = surface direction, j = normal direction,
    j=0 at the wall.
    """
    if n_s < 2 or n_normal < 2:
        raise GridError("need at least 2 nodes per direction")
    s = body.arc_grid(n_s, s_end)
    x_b, r_b = body.point(s)
    theta = body.angle(s)
    # outward normal of the generator: rotate tangent (cos th along -x?) --
    # tangent = (cos theta_t, sin theta_t) with theta measured from the
    # axis; for a body opening in +x, the outward normal is
    # (-sin theta, cos theta) ... careful with the stagnation point where
    # theta = pi/2: normal must be (-1, 0) (upstream).
    nx = -np.sin(theta)
    nr = np.cos(theta)
    eta = tanh_cluster(n_normal, wall_cluster_beta, end="min")
    off = np.broadcast_to(np.asarray(offset, dtype=float), s.shape)
    x = x_b[:, None] + off[:, None] * eta[None, :] * nx[:, None]
    y = r_b[:, None] + off[:, None] * eta[None, :] * nr[:, None]
    # keep the stagnation ray exactly on the axis
    y[np.abs(r_b) < 1e-14, :][:, 0:1] *= 1.0
    y = np.maximum(y, 0.0)
    return StructuredGrid2D(x, y)


def blunt_body_grid(body: AxisymBody, *, n_s: int = 61, n_normal: int = 61,
                    density_ratio: float = 0.1, margin: float = 2.5,
                    s_end: float | None = None,
                    wall_cluster_beta: float = 1.5) -> StructuredGrid2D:
    """Blunt-body grid sized to contain the bow shock.

    The outer boundary sits at ``margin`` times the estimated standoff at
    the stagnation point, growing linearly with arc length downstream
    (shocks wrap outward around the shoulder).
    """
    delta0 = standoff_estimate(body.nose_radius, density_ratio)
    s = body.arc_grid(n_s, s_end)
    offset = margin * delta0 * (1.0 + 1.2 * s / max(body.nose_radius,
                                                    1e-12))
    # never smaller than a fraction of the nose radius
    offset = np.maximum(offset, 0.35 * body.nose_radius)
    return normal_ray_grid(body, n_s=n_s, n_normal=n_normal, offset=offset,
                           s_end=s_end, wall_cluster_beta=wall_cluster_beta)
