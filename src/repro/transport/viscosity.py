"""Species viscosities: Blottner fits, kinetic theory, Sutherland.

Blottner's curve fit (the standard for CAT air chemistry)::

    mu = 0.1 * exp[ (A ln T + B) ln T + C ]       [Pa s]

For species without published Blottner coefficients (the Titan set) we use
first-order Chapman–Enskog theory with Lennard–Jones (12-6) collision
integrals via the Neufeld correlation::

    mu = 2.6693e-6 * sqrt(M_gmol * T) / (sigma^2 * Omega22)   [Pa s]
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpeciesError
from repro.numerics.safety import safe_exp
from repro.thermo.species import SpeciesDB, species_set

__all__ = ["BLOTTNER_COEFFS", "LENNARD_JONES", "blottner_viscosity",
           "kinetic_theory_viscosity", "sutherland_viscosity",
           "species_viscosities"]

#: Blottner (A, B, C) coefficients for air species.
BLOTTNER_COEFFS: dict[str, tuple[float, float, float]] = {
    "N2": (0.0268142, 0.3177838, -11.3155513),
    "O2": (0.0449290, -0.0826158, -9.2019475),
    "NO": (0.0436378, -0.0335511, -9.5767430),
    "N": (0.0115572, 0.6031679, -12.4327495),
    "O": (0.0203144, 0.4294404, -11.6031403),
    # ions behave transport-wise like their neutral parents at the
    # Blottner level of fidelity
    "N2+": (0.0268142, 0.3177838, -11.3155513),
    "O2+": (0.0449290, -0.0826158, -9.2019475),
    "NO+": (0.0436378, -0.0335511, -9.5767430),
    "N+": (0.0115572, 0.6031679, -12.4327495),
    "O+": (0.0203144, 0.4294404, -11.6031403),
}

#: Lennard-Jones parameters (sigma [Angstrom], eps/k [K]).
LENNARD_JONES: dict[str, tuple[float, float]] = {
    "N2": (3.798, 71.4),
    "O2": (3.467, 106.7),
    "NO": (3.492, 116.7),
    "N": (3.298, 71.4),
    "O": (3.050, 106.7),
    "Ar": (3.542, 93.3),
    "H2": (2.827, 59.7),
    "H": (2.708, 37.0),
    "He": (2.551, 10.22),
    "C": (3.385, 30.6),
    "CH4": (3.758, 148.6),
    "CN": (3.856, 75.0),
    "C2": (3.913, 78.8),
    "HCN": (3.630, 569.1),
    # ions: parent values
    "N2+": (3.798, 71.4),
    "O2+": (3.467, 106.7),
    "NO+": (3.492, 116.7),
    "N+": (3.298, 71.4),
    "O+": (3.050, 106.7),
}


def blottner_viscosity(name: str, T):
    """Blottner curve-fit viscosity [Pa s] for an air species."""
    try:
        a, b, c = BLOTTNER_COEFFS[name]
    except KeyError:
        raise SpeciesError(f"no Blottner coefficients for {name!r}") \
            from None
    # catlint: disable=CAT001 -- correlation domain is physical T > 0
    lnT = np.log(np.asarray(T, dtype=float))
    # catlint: disable=UNIT002 -- empirical Blottner fit: the g/(cm s)
    # -> Pa s factor 0.1 and the curve-fit coefficients absorb all
    # units, so the [Pa s] result is invisible to the checker
    return 0.1 * safe_exp((a * lnT + b) * lnT + c)


def _omega22(t_star):
    """Neufeld correlation for the (2,2) reduced collision integral."""
    t = np.maximum(np.asarray(t_star, dtype=float), 1e-3)
    return (1.16145 * t**-0.14874 + 0.52487 * np.exp(-0.77320 * t)
            + 2.16178 * np.exp(-2.43787 * t))


def kinetic_theory_viscosity(name: str, T, molar_mass: float):
    """Chapman–Enskog LJ viscosity [Pa s].

    Parameters
    ----------
    name:
        Species name (keys :data:`LENNARD_JONES`).
    T:
        Temperature [K].
    molar_mass:
        Molar mass [kg/mol].
    """
    try:
        sigma, eps_k = LENNARD_JONES[name]
    except KeyError:
        raise SpeciesError(f"no Lennard-Jones parameters for {name!r}") \
            from None
    T = np.asarray(T, dtype=float)
    omega = _omega22(T / eps_k)
    m_gmol = molar_mass * 1.0e3
    # catlint: disable=CAT002 -- molar mass and physical T are positive
    return 2.6693e-6 * np.sqrt(m_gmol * T) / (sigma**2 * omega)


def sutherland_viscosity(T, *, mu_ref=1.716e-5, T_ref=273.15, S=110.4):
    """Sutherland's law for air [Pa s] — the ideal-gas-solver default."""
    T = np.asarray(T, dtype=float)
    return mu_ref * (T / T_ref) ** 1.5 * (T_ref + S) / (T + S)


#: Electron viscosity is negligible on heavy-particle scales.
_MU_ELECTRON = 1.0e-9


def species_viscosities(db: SpeciesDB | str, T):
    """Viscosity of every species in the set, shape (..., n) [Pa s].

    Uses Blottner where available, kinetic theory otherwise, and a
    negligible placeholder for free electrons.
    """
    db = db if isinstance(db, SpeciesDB) else species_set(db)
    T = np.asarray(T, dtype=float)
    out = np.empty(T.shape + (db.n,), dtype=np.float64)
    for j, sp in enumerate(db.species):
        if sp.name == "e-":
            out[..., j] = _MU_ELECTRON
        elif sp.name in BLOTTNER_COEFFS:
            out[..., j] = blottner_viscosity(sp.name, T)
        else:
            out[..., j] = kinetic_theory_viscosity(sp.name, T,
                                                   sp.molar_mass)
    return out
