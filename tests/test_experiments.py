"""Smoke/shape tests for the figure experiments (coarse settings).

The benchmarks run the full quick configurations; these tests exercise the
experiment plumbing at the cheapest possible settings so the unit suite
stays fast.
"""

import numpy as np
import pytest

from repro.experiments import (fig1_flight_domain, fig5_orbiter_geometry,
                               fig8_spectra)
from repro.experiments.data import (SHOCK_TUBE_SPECTRUM_SYNTHETIC,
                                    STS3_SYNTHETIC)


class TestSyntheticData:
    def test_sts3_monotone_decay(self):
        q = STS3_SYNTHETIC["q_w_cm2"]
        x = STS3_SYNTHETIC["x_over_L"]
        assert np.all(np.diff(q) < 0)
        assert np.all(np.diff(x) > 0)
        # roughly x^-1/2 decay on the ramp
        slope = np.polyfit(np.log(x[2:]), np.log(q[2:]), 1)[0]
        assert -0.8 < slope < -0.3

    def test_spectrum_has_expected_features(self):
        lam = SHOCK_TUBE_SPECTRUM_SYNTHETIC["wavelength_um"]
        I = SHOCK_TUBE_SPECTRUM_SYNTHETIC["radiance_rel"]
        # catlint: disable=CAT010 -- spectrum is normalised by its own max, so max is exactly 1
        assert I.max() == 1.0
        # N2+ 1- at 0.391, O 777 line present
        assert I[np.argmin(np.abs(lam - 0.391))] > 0.9
        assert I[np.argmin(np.abs(lam - 0.777))] > 0.8
        # visible trough
        assert I[np.argmin(np.abs(lam - 0.55))] < 0.1


class TestFig1:
    def test_quick_run_structure(self):
        res = fig1_flight_domain.run(quick=True)
        assert set(res["vehicles"]) == {"shuttle", "aotv", "tav"}
        for d in res["vehicles"].values():
            assert d["mach"].shape == d["reynolds"].shape
            assert np.all(d["reynolds"] > 0)

    def test_main_renders(self):
        out = fig1_flight_domain.main(quick=True)
        assert "flight domain" in out
        assert "shuttle" in out


class TestFig5:
    def test_run_and_render(self):
        res = fig5_orbiter_geometry.run(quick=True)
        assert res["length"] > 30.0
        out = fig5_orbiter_geometry.main(quick=True)
        assert "Orbiter" in out


class TestFig8Plumbing:
    def test_run_with_prebuilt_profile(self, air11):
        # a synthetic constant-state profile exercises the full fig8 path
        # without the expensive relaxation integration
        from repro.solvers.shock_relaxation import RelaxationProfile
        nx = 25
        y = np.zeros((nx, air11.n))
        y[:, air11.index["N2"]] = 0.5
        y[:, air11.index["N"]] = 0.3
        y[:, air11.index["O"]] = 0.2
        prof = RelaxationProfile(
            x=np.linspace(0, 0.02, nx), T=np.full(nx, 10000.0),
            Tv=np.full(nx, 10000.0), y=y, rho=np.full(nx, 5e-3),
            u=np.full(nx, 800.0), p=np.full(nx, 1e4), db=air11)
        res = fig8_spectra.run(quick=True, profile=prof)
        assert res["radiance"].shape == res["wavelength"].shape
        assert -1.0 <= res["log_correlation"] <= 1.0

    def test_main_renders(self, air11):
        from repro.solvers.shock_relaxation import RelaxationProfile
        nx = 10
        y = np.zeros((nx, air11.n))
        y[:, air11.index["N2"]] = 1.0
        prof = RelaxationProfile(
            x=np.linspace(0, 0.01, nx), T=np.full(nx, 9000.0),
            Tv=np.full(nx, 9000.0), y=y, rho=np.full(nx, 5e-3),
            u=np.full(nx, 800.0), p=np.full(nx, 1e4), db=air11)
        res = fig8_spectra.run(quick=True, profile=prof)
        assert res["computed_rel"].max() == pytest.approx(1.0)
