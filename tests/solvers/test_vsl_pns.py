"""Integration tests for the VSL and PNS solvers."""

import numpy as np
import pytest

from repro.atmosphere import EarthAtmosphere, TitanAtmosphere
from repro.errors import InputError
from repro.geometry import OrbiterWindwardProfile
from repro.solvers.pns import WindwardHeatingPNS
from repro.solvers.vsl import StagnationVSL


@pytest.fixture(scope="module")
def titan_vsl_solution(titan_gas):
    vsl = StagnationVSL(titan_gas, nose_radius=0.64)
    atm = TitanAtmosphere()
    h = 287e3
    return vsl.solve(rho_inf=float(atm.density(h)),
                     T_inf=float(atm.temperature(h)), V=10000.0,
                     T_wall=1800.0, n_profile=50, n_lambda=150)


class TestVSL:
    def test_heating_magnitudes(self, titan_vsl_solution):
        s = titan_vsl_solution
        # hundreds of W/cm^2 convective; nonzero radiative
        assert 5e5 < s.q_conv < 2e7
        assert s.q_rad > 1e4

    def test_standoff_centimetre_scale(self, titan_vsl_solution):
        assert 0.005 < titan_vsl_solution.standoff < 0.08

    def test_profile_monotonic_geometry(self, titan_vsl_solution):
        s = titan_vsl_solution
        # catlint: disable=CAT010 -- wall node is the concatenated 0.0 literal
        assert s.y[0] == 0.0
        assert np.all(np.diff(s.y) > 0)

    def test_wall_and_edge_temperatures(self, titan_vsl_solution):
        s = titan_vsl_solution
        assert s.T[0] == pytest.approx(1800.0, rel=0.1)
        assert s.T[-1] > 6000.0

    def test_composition_profile_spans_regimes(self, titan_vsl_solution,
                                               titan9):
        x = titan_vsl_solution.mole_fractions(titan9)
        # CN exists somewhere in the layer (the Titan radiator)
        assert x[:, titan9.index["CN"]].max() > 1e-6
        # compositions are normalised
        assert np.allclose(x.sum(axis=1), 1.0, atol=1e-8)

    def test_radiative_spectrum_attached(self, titan_vsl_solution):
        s = titan_vsl_solution
        assert s.q_rad_spectrum is not None
        assert s.q_rad_spectrum.shape == s.wavelengths.shape
        # CN violet feature in the wall flux spectrum
        i_violet = np.argmin(np.abs(s.wavelengths - 0.388e-6))
        assert s.q_rad_spectrum[i_violet] > 0

    def test_invalid_nose_radius(self, titan_gas):
        with pytest.raises(InputError):
            StagnationVSL(titan_gas, nose_radius=-1.0)


@pytest.fixture(scope="module")
def sts3_point():
    atm = EarthAtmosphere()
    return dict(rho_inf=float(atm.density(71300.0)),
                T_inf=float(atm.temperature(71300.0)), V=6740.0,
                T_wall=1100.0)


class TestPNS:
    def test_ideal_mode_stagnation_magnitude(self, sts3_point):
        body = OrbiterWindwardProfile(40.0, 1.3)
        res = WindwardHeatingPNS(body, gamma=1.2).solve(
            n_stations=25, **sts3_point)
        # tens of W/cm^2 at the STS-3 point
        assert 1e5 < res.q_stag < 1e6

    def test_equilibrium_mode(self, sts3_point, air_gas):
        body = OrbiterWindwardProfile(40.0, 1.3)
        res = WindwardHeatingPNS(body, gas=air_gas).solve(
            n_stations=25, **sts3_point)
        assert res.mode == "equilibrium"
        assert 1e5 < res.q_stag < 1e6
        # x/L spans the body
        assert res.x_over_L[0] == pytest.approx(0.0, abs=1e-6)
        assert res.x_over_L[-1] > 0.9

    def test_heating_decays_downstream(self, sts3_point, air_gas):
        body = OrbiterWindwardProfile(40.0, 1.3)
        res = WindwardHeatingPNS(body, gas=air_gas).solve(
            n_stations=25, **sts3_point)
        q1 = np.interp(0.1, res.x_over_L, res.q)
        q2 = np.interp(0.6, res.x_over_L, res.q)
        assert q1 > 1.5 * q2

    def test_catalysis_reduces_heating(self, sts3_point, air_gas):
        body = OrbiterWindwardProfile(40.0, 1.3)
        pns = WindwardHeatingPNS(body, gas=air_gas)
        full = pns.solve(n_stations=15, **sts3_point)
        part = pns.solve(n_stations=15, catalytic_phi=0.1, **sts3_point)
        assert np.all(part.q < full.q)
        assert part.q[0] < 0.7 * full.q[0]

    def test_edge_expansion_consistency(self, sts3_point, air_gas):
        body = OrbiterWindwardProfile(40.0, 1.3)
        res = WindwardHeatingPNS(body, gas=air_gas).solve(
            n_stations=25, **sts3_point)
        # edge velocity rises through the nose expansion and holds on the
        # constant-angle ramp (p_e constant there by modified Newtonian)
        assert res.u_e[-1] >= res.u_e[1]
        assert res.u_e[1] > res.u_e[0]
        assert res.p_e[-1] < res.p_e[0]
        # edge temperature below stagnation everywhere off the nose
        assert np.all(res.T_e[1:] < res.T_e[0] + 1.0)

    def test_invalid_velocity(self, air_gas):
        body = OrbiterWindwardProfile(40.0, 1.3)
        with pytest.raises(InputError):
            WindwardHeatingPNS(body, gas=air_gas).solve(
                rho_inf=1e-4, T_inf=220.0, V=-5.0)
