"""US Standard Atmosphere 1976.

Layered analytic implementation up to 86 km geometric altitude (converted
internally to geopotential), with an isothermal exponential extension above
(adequate for the flight-domain map of Fig. 1, which tops out near the
AOTV's ~120 km perigee-pass altitudes; USSA76's true thermosphere departs
from isothermal but the density magnitude there is already <1e-6 of sea
level and the figure is logarithmic).
"""

from __future__ import annotations

import numpy as np

from repro.constants import G0_EARTH, MU_EARTH, R_EARTH
from repro.atmosphere.base import Atmosphere

__all__ = ["EarthAtmosphere"]

# layer base geopotential altitude [m], lapse rate [K/m]
_H_BASE = np.array([0.0, 11000.0, 20000.0, 32000.0, 47000.0, 51000.0,
                    71000.0, 84852.0])
_LAPSE = np.array([-6.5e-3, 0.0, 1.0e-3, 2.8e-3, 0.0, -2.8e-3, -2.0e-3])

_R_AIR = 287.0528
_T0 = 288.15
_P0 = 101325.0


def _precompute():
    """Base temperature and pressure of each layer."""
    T = [_T0]
    p = [_P0]
    for i in range(len(_LAPSE)):
        dz = _H_BASE[i + 1] - _H_BASE[i]
        Tb, pb, L = T[-1], p[-1], _LAPSE[i]
        T_top = Tb + L * dz
        if abs(L) > 1e-12:
            p_top = pb * (T_top / Tb) ** (-G0_EARTH / (L * _R_AIR))
        else:
            p_top = pb * np.exp(-G0_EARTH * dz / (_R_AIR * Tb))
        T.append(T_top)
        p.append(p_top)
    return np.array(T), np.array(p)


_T_BASE, _P_BASE = _precompute()


class EarthAtmosphere(Atmosphere):
    """US Standard Atmosphere 1976 with exponential extension above 86 km."""

    gas_constant = _R_AIR
    gamma = 1.4
    planet_radius = R_EARTH
    mu_grav = MU_EARTH

    def _geopotential(self, h):
        h = np.asarray(h, dtype=float)
        return R_EARTH * h / (R_EARTH + h)

    def _layer_index(self, hgp):
        return np.clip(np.searchsorted(_H_BASE[1:], hgp, side="right"),
                       0, len(_LAPSE) - 1)

    def temperature(self, h):
        hgp = self._geopotential(h)
        i = self._layer_index(np.minimum(hgp, _H_BASE[-1]))
        T = _T_BASE[i] + _LAPSE[i] * (np.minimum(hgp, _H_BASE[-1])
                                      - _H_BASE[i])
        # isothermal above 86 km geometric (~84.852 km geopotential)
        return np.where(hgp > _H_BASE[-1], _T_BASE[-1], T)

    def pressure(self, h):
        hgp = self._geopotential(h)
        hc = np.minimum(hgp, _H_BASE[-1])
        i = self._layer_index(hc)
        Tb = _T_BASE[i]
        pb = _P_BASE[i]
        L = _LAPSE[i]
        dz = hc - _H_BASE[i]
        T = Tb + L * dz
        grad = np.where(np.abs(L) > 1e-12,
                        (np.maximum(T, 1.0) / Tb)
                        ** (-G0_EARTH / (np.where(np.abs(L) > 1e-12, L, 1.0)
                                         * _R_AIR)),
                        np.exp(-G0_EARTH * dz / (_R_AIR * Tb)))
        p = pb * grad
        # exponential tail above the table
        tail = np.exp(-G0_EARTH * (hgp - _H_BASE[-1])
                      / (_R_AIR * _T_BASE[-1]))
        return np.where(hgp > _H_BASE[-1], _P_BASE[-1] * tail, p)
