"""Regression: marching-solver state stays float64 end-to-end.

The CAT state convention is float64 everywhere — the hypersonic state
spans ~10 decades, so a silent float32 truncation (e.g. an array
constructor picking up an integer dtype, or caller-supplied float32
inputs leaking through) destroys equilibrium compositions.  These tests
pin the convention at the solver boundaries: whatever the caller feeds
in, every state array and every derived output is float64.
"""

import numpy as np
import pytest

from repro.constants import TORR
from repro.solvers.euler1d import Euler1DSolver
from repro.solvers.shock_relaxation import ShockRelaxationSolver


def _sod(n=60):
    x = np.linspace(0.0, 1.0, n + 1)
    xc = 0.5 * (x[1:] + x[:-1])
    s = Euler1DSolver(x)
    s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                  np.where(xc < 0.5, 1.0, 0.1))
    return s


class TestEuler1DDtype:
    def test_state_float64_after_init_and_march(self):
        s = _sod()
        assert s.U.dtype == np.float64
        s.run(0.05)
        assert s.U.dtype == np.float64
        for arr in s.primitives():
            assert np.asarray(arr).dtype == np.float64

    def test_float32_inputs_are_promoted(self):
        # caller-supplied single precision must not leak into the state
        x = np.linspace(0.0, 1.0, 41, dtype=np.float32)
        s = Euler1DSolver(x)
        s.set_initial(np.ones(40, dtype=np.float32),
                      np.zeros(40, dtype=np.float32),
                      np.ones(40, dtype=np.float32))
        assert s.x_nodes.dtype == np.float64
        assert s.U.dtype == np.float64
        s.run(0.01)
        assert s.U.dtype == np.float64

    def test_integer_inputs_are_promoted(self):
        x = np.arange(0, 21)  # int64 node coordinates
        s = Euler1DSolver(x)
        s.set_initial(1, 0, 1)  # python-int primitives
        assert s.x_nodes.dtype == np.float64
        assert s.U.dtype == np.float64

    def test_restorable_state_is_float64(self):
        s = _sod()
        s.run(0.02)
        state = s.get_state()
        assert state["U"].dtype == np.float64


class TestShockRelaxationDtype:
    @pytest.fixture(scope="class")
    def short_profile(self):
        solver = ShockRelaxationSolver("air5")
        return solver.solve(u1=8000.0, p1=0.1 * TORR, T1=300.0,
                            x_end=2e-4, n_out=8, rtol=1e-4)

    def test_profile_arrays_float64(self, short_profile):
        p = short_profile
        for name in ("x", "T", "Tv", "rho", "u", "p"):
            assert getattr(p, name).dtype == np.float64, name
        assert p.y.dtype == np.float64

    def test_integer_upstream_conditions(self):
        # python-int upstream speed/temperature must promote cleanly
        solver = ShockRelaxationSolver("air5")
        prof = solver.solve(u1=8000, p1=0.1 * TORR, T1=300,
                            x_end=2e-4, n_out=8, rtol=1e-4)
        assert prof.T.dtype == np.float64
        assert prof.y.dtype == np.float64
        assert prof.x.dtype == np.float64
