"""Static analysis for the CAT toolkit: ``catlint`` + units checker.

The analysis layer is intentionally **stdlib-only** (``ast``,
``tokenize``, ``json``) so it can run in CI before numpy/scipy are
even installed, and so a broken scientific stack can never mask a
lint regression.

Two engines live here:

``catlint`` (:mod:`repro.analysis.engine`, :mod:`repro.analysis.rules`)
    An AST-walking lint engine with CAT-specific numerical-safety
    rules — unguarded ``np.log``/``np.sqrt``, division by an
    unguarded difference, float ``==``, overbroad ``except`` clauses
    that can swallow :class:`~repro.errors.StabilityError` or
    ``SimulatedCrash``, ``np.empty`` without full initialization,
    missing ``dtype`` on hot-path array constructors, silent
    float32 downcasts, non-deterministic set-ordered reductions,
    mutable default arguments and ``assert``-as-validation.

units checker (:mod:`repro.analysis.units`)
    A lightweight dimensional analysis pass driven by the ``[J/kg]``
    style unit tags the codebase already carries in docstrings and
    ``constants.py`` ``#:`` comments, plus a curated registry for the
    thermo/transport/kinetics public API.  Flags dimensionally
    incompatible additions, inconsistent reassignments and call-site
    unit mismatches.

perf linter (:mod:`repro.analysis.callgraph`,
:mod:`repro.analysis.hotpath`, :mod:`repro.analysis.perf_rules`)
    A hot-path performance lint: a loop-depth-weighted call graph,
    anchored-reachability hot-path inference (solver entry points,
    numerics sweeps, thermo/transport/radiation kernels, benchmark
    callees), and the PERF001–PERF008 rule family that inventories
    scalar-per-cell Python patterns on hot paths into a ranked
    vectorization worklist (``python -m repro.analysis perf``).

All are exposed through ``python -m repro.analysis`` (see
:mod:`repro.analysis.cli`) with text/JSON output, per-rule pragmas
(``# catlint: disable=RULE -- reason``) and checked-in baselines so
CI fails only on *new* findings.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.engine import (
    RULES,
    LintContext,
    Rule,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_PERF_BASELINE_PATH,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.units import check_units_paths, check_units_source
from repro.analysis.dimensions import Dim, UnitParseError, parse_unit
from repro.analysis.callgraph import CallGraph
from repro.analysis.hotpath import HotPathIndex, build_index
from repro.analysis.perf_rules import (
    PerfFinding,
    perf_lint_paths,
    rank_worklist,
)

__all__ = [
    "Finding",
    "Severity",
    "RULES",
    "Rule",
    "LintContext",
    "register",
    "lint_paths",
    "lint_source",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_PERF_BASELINE_PATH",
    "CallGraph",
    "HotPathIndex",
    "build_index",
    "PerfFinding",
    "perf_lint_paths",
    "rank_worklist",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "check_units_paths",
    "check_units_source",
    "Dim",
    "parse_unit",
    "UnitParseError",
]
