"""Central unit declarations for the CAT public API.

Two sources:

* :func:`constants_units` scrapes ``src/repro/constants.py`` style
  modules — every ``#: ... [unit].`` comment annotates the assignment
  that follows, which is exactly how that module is written.
* :data:`API_SIGNATURES` is the curated registry for the thermo /
  transport / kinetics / heating public API.  Functions are matched
  **by call name** (the trailing attribute at a call site), so only
  names that are unambiguous across the codebase belong here —
  ``h_mass`` yes, ``h`` no.

A signature maps parameter names (in declaration order, ``self``
excluded) to unit strings, plus a return unit.  ``None`` means
"unconstrained" — the checker will not judge that slot.
"""

from __future__ import annotations

import io
import tokenize

from repro.analysis.dimensions import Dim, find_unit_tag


class Signature:
    """Declared units for one registered callable."""

    def __init__(self, params: list[tuple[str, str | None]],
                 returns: str | None) -> None:
        self.param_order = [name for name, _ in params]
        self.param_units: dict[str, Dim | None] = {}
        for name, unit in params:
            self.param_units[name] = (find_unit_tag(f"[{unit}]")
                                      if unit else None)
        self.returns: Dim | None = (find_unit_tag(f"[{returns}]")
                                    if returns else None)
        self.returns_raw = returns
        self.params_raw = dict(params)


#: call-site name -> Signature.  Units are tag strings ("J/kg" etc.).
API_SIGNATURES: dict[str, Signature] = {
    # thermo.mixture.MixtureThermo -----------------------------------
    "gas_constant": Signature([("y", "-")], "J/(kg K)"),
    "molar_mass": Signature([("y", "-")], "kg/mol"),
    "cp_mass": Signature([("T", "K")], "J/(kg K)"),
    "cv_mass": Signature([("T", "K")], "J/(kg K)"),
    "h_mass": Signature([("T", "K")], "J/kg"),
    "e_mass": Signature([("T", "K")], "J/kg"),
    "s_mass": Signature([("T", "K"), ("p", "Pa"), ("y", "-")], "J/(kg K)"),
    "sound_speed_frozen": Signature([("T", "K"), ("y", "-")], "m/s"),
    "gamma_frozen": Signature([("T", "K"), ("y", "-")], "-"),
    "T_from_e": Signature([("e", "J/kg"), ("y", "-")], "K"),
    "T_from_h": Signature([("h", "J/kg"), ("y", "-")], "K"),
    # thermo.statmech molar API --------------------------------------
    "g0": Signature([("T", "K")], "J/mol"),
    "g0_over_RT": Signature([("T", "K")], "-"),
    "gibbs": Signature([("T", "K"), ("p", "Pa")], "J/mol"),
    "e_vib_el": Signature([("Tv", "K")], "J/mol"),
    "cv_vib_el": Signature([("Tv", "K")], "J/(mol K)"),
    "e_vib_el_mass": Signature([("Tv", "K")], "J/kg"),
    "cv_vib_el_mass": Signature([("Tv", "K")], "J/(kg K)"),
    "h_tr_rot": Signature([("T", "K")], "J/mol"),
    "h_tr_rot_mass": Signature([("T", "K")], "J/kg"),
    # constants helpers ----------------------------------------------
    # ``ev`` is a dimensionless *count* of electron-volts (the body
    # multiplies by the elementary charge, which carries the units), so
    # the parameter slot is deliberately unconstrained.
    "ev_to_joule": Signature([("ev", None)], "J"),
    "wavenumber_to_joule": Signature([("cm1", "1/cm")], "J"),
    "wavenumber_to_kelvin": Signature([("cm1", "1/cm")], "K"),
    "planck_lambda": Signature([("wavelength_m", "m"),
                                ("temperature", "K")], "W/(m^2 sr m)"),
    "arrhenius_si": Signature([("a_cgs", None), ("order", "-")], None),
}


def constants_units(source: str) -> dict[str, Dim]:
    """Scrape ``#: … [unit].`` annotated module constants.

    Returns name -> Dim for every simple assignment whose immediately
    preceding ``#:`` comment carries a parseable unit tag.
    """
    pending: Dim | None = None
    pending_line = -10
    out: dict[str, Dim] = {}
    try:
        toks = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return out
    for i, tok in enumerate(toks):
        if tok.type == tokenize.COMMENT and tok.string.startswith("#:"):
            dim = find_unit_tag(tok.string)
            if dim is not None:
                pending = dim
                pending_line = tok.start[0]
        elif tok.type == tokenize.NAME and pending is not None:
            # the annotated assignment must start within 2 lines of
            # the comment: "NAME = ..." at column 0
            if (tok.start[1] == 0 and tok.start[0] <= pending_line + 2
                    and i + 1 < len(toks) and toks[i + 1].string == "="):
                out[tok.string] = pending
                pending = None
            elif tok.start[0] > pending_line + 2:
                pending = None
    return out
