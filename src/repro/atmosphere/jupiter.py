"""Engineering model of Jupiter's upper atmosphere (H2/He).

Used by the Galileo-probe-class checks (the paper's VSL heritage: HYVIS /
RASLE / COLTS sized the Galileo TPS).  A simple isothermal-stratosphere /
adiabatic-troposphere model about the 1-bar reference level; altitudes are
measured from the 1-bar level (positive up), as is conventional for the
gas giants.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MU_JUPITER, R_JUPITER
from repro.atmosphere.base import Atmosphere

__all__ = ["JupiterAtmosphere"]

_T_STRAT = 165.0       # K, near the 1-bar level
_P_REF = 1.0e5         # Pa at h = 0


class JupiterAtmosphere(Atmosphere):
    """Isothermal H2/He (0.89/0.11 by mole) model about the 1-bar level."""

    #: mean molar mass 0.89*2.016 + 0.11*4.003 = 2.234 g/mol
    gas_constant = 8.31446 / 2.234e-3
    gamma = 1.45
    planet_radius = R_JUPITER
    mu_grav = MU_JUPITER

    def temperature(self, h):
        return np.full_like(np.asarray(h, dtype=float), _T_STRAT)

    def pressure(self, h):
        h = np.asarray(h, dtype=float)
        g0 = self.mu_grav / self.planet_radius**2
        scale = self.gas_constant * _T_STRAT / g0
        return _P_REF * np.exp(-h / scale)
