"""Explicit time integration: CFL control and SSP Runge–Kutta steps.

The steady-state solvers march "in a time-like manner until a steady state
is asymptotically achieved" (the paper's words); these helpers provide the
stable step sizes and strong-stability-preserving update formulas.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StabilityError

__all__ = ["cfl_timestep_1d", "ssp_rk2_step", "ssp_rk3_step",
           "check_state", "component_name"]


def cfl_timestep_1d(dx, u, a, cfl=0.5):
    """Global explicit timestep dt = cfl * min(dx / (|u| + a))."""
    dx = np.asarray(dx, dtype=float)
    wave = np.abs(np.asarray(u, dtype=float)) + np.asarray(a, dtype=float)
    return float(cfl * np.min(dx / np.maximum(wave, 1e-12)))


def ssp_rk2_step(U, dt, residual):
    """Heun / SSP-RK2 update: U^{n+1} = (U + U1 + dt R(U1)) / 2."""
    U1 = U + dt * residual(U)
    return 0.5 * (U + U1 + dt * residual(U1))


def ssp_rk3_step(U, dt, residual):
    """Shu–Osher SSP-RK3 update."""
    U1 = U + dt * residual(U)
    U2 = 0.75 * U + 0.25 * (U1 + dt * residual(U1))
    return U / 3.0 + 2.0 / 3.0 * (U2 + dt * residual(U2))


def component_name(k: int, nv: int, *, energy_index: int = -1,
                   species_names=None) -> str:
    """Human name of conserved component ``k`` in an ``nv``-vector.

    Follows the conventional layout ``[rho, momenta..., rho E,
    (rho Y_s...)]``; ``species_names`` labels any trailing components
    beyond the energy slot (the reacting solver's species partials).
    """
    k = int(k) % nv
    e_idx = energy_index % nv
    if k == 0:
        return "density"
    if k == e_idx:
        return "energy"
    if k > e_idx:
        s = k - e_idx - 1
        if species_names is not None and s < len(species_names):
            return f"species[{species_names[s]}]"
        return f"species[{s}]"
    return f"momentum[{k - 1}]"


def _first_offender(mask, U, label, what, *, step, energy_index,
                    species_names):
    """Raise a localized StabilityError from a boolean offender mask."""
    idx = np.argwhere(mask)
    n_bad = int(idx.shape[0])
    first = tuple(int(i) for i in idx[0])
    comp = component_name(first[-1], U.shape[-1],
                          energy_index=energy_index,
                          species_names=species_names)
    value = float(U[first])
    cell = first[:-1]
    raise StabilityError(
        f"{label}: {what} at cell {cell}, component {comp} "
        f"(value {value:.6g}; {n_bad} offending entr"
        f"{'y' if n_bad == 1 else 'ies'})",
        step=step, cell=cell, component=comp, value=value)


def check_state(U, *, step: int | None = None, label: str = "solver",
                energy_index: int = -1, momentum_indices=None,
                e_min: float | None = 0.0, species_names=None):
    """Raise StabilityError on NaN or non-positive density/energy.

    Assumes the conventional conserved layout ``U[..., 0] = rho``,
    ``U[..., energy_index] = rho E`` and momenta in between (override
    ``momentum_indices`` for augmented state vectors such as the reacting
    solver's ``[rho, rho u, rho v, rho E, rho Y_s...]``).

    Checks, in order: every component finite; density positive; total
    energy positive; internal energy ``rho e = rho E - |rho u|^2/(2 rho)``
    above ``e_min`` (pass ``e_min=None`` to skip — e.g. states on a
    heat-of-formation energy basis where e can legitimately be negative).

    Failures are *localized*: the raised error names the first offending
    cell index, the offending component (``species_names`` labels the
    trailing species slots) and its value, both in the message and as
    structured ``cell``/``component``/``value`` attributes that the
    resilience layer's :class:`~repro.resilience.FailureReport` and
    watchdog surface.
    """
    U = np.asarray(U)
    loc = dict(step=step, energy_index=energy_index,
               species_names=species_names)
    bad = ~np.isfinite(U)
    if np.any(bad):
        _first_offender(bad, U, label, "non-finite state", **loc)
    if np.any(U[..., 0] <= 0.0):
        _first_offender((U <= 0.0) & (np.arange(U.shape[-1]) == 0),
                        U, label, "non-positive density", **loc)
    e_idx = energy_index % U.shape[-1]
    if np.any(U[..., e_idx] <= 0.0):
        _first_offender((U <= 0.0) & (np.arange(U.shape[-1]) == e_idx),
                        U, label, "non-positive total energy", **loc)
    if e_min is not None:
        if momentum_indices is None:
            momentum_indices = tuple(range(1, e_idx))
        ke = sum(U[..., m] ** 2 for m in momentum_indices) \
            / (2.0 * U[..., 0])
        e_int = U[..., e_idx] - ke
        if np.any(e_int <= e_min):
            idx = np.argwhere(e_int <= e_min)
            first = tuple(int(i) for i in idx[0])
            raise StabilityError(
                f"{label}: non-positive internal energy at cell {first} "
                f"(rho e = {float(e_int[first]):.6g}; "
                f"{int(idx.shape[0])} offending cell(s))",
                step=step, cell=first, component="internal_energy",
                value=float(e_int[first]))
