"""Documentation-consistency checks.

A downstream user navigates by README/DESIGN/EXPERIMENTS; these tests keep
the documents honest against the code: every module DESIGN.md names must
import, every figure benchmark must exist, every example must at least
compile.
"""

import ast
import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _doc(name):
    return (ROOT / name).read_text()


class TestDesignDocument:
    def test_referenced_modules_import(self):
        text = _doc("DESIGN.md")
        mods = set(re.findall(r"`(repro\.[a-z_0-9.*]+)`", text))
        assert len(mods) >= 20
        for mod in sorted(mods):
            # entries like repro.thermo.species are importable modules;
            # wildcard entries (repro.heating.*) check the package
            target = mod[:-2] if mod.endswith(".*") else mod
            importlib.import_module(target)

    def test_experiment_index_covers_all_figures(self):
        text = _doc("DESIGN.md")
        for i in range(1, 10):
            assert f"fig{i}" in text

    def test_substitutions_section_exists(self):
        assert "Substitutions" in _doc("DESIGN.md")


class TestExperimentsDocument:
    def test_every_figure_section_present(self):
        text = _doc("EXPERIMENTS.md")
        for i in range(1, 10):
            assert f"Fig. {i}" in text

    def test_benchmarks_referenced_exist(self):
        text = _doc("EXPERIMENTS.md")
        benches = set(re.findall(r"benchmarks/(test_bench_\w+\.py)",
                                 text))
        assert len(benches) >= 10
        for b in benches:
            assert (ROOT / "benchmarks" / b).exists(), b


class TestReadme:
    def test_quickstart_code_block_runs(self):
        text = _doc("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks
        # compile (not execute: the snippet runs a real shock solve) to
        # catch syntax/API drift at import level
        for block in blocks:
            ast.parse(block)

    def test_examples_listed_exist(self):
        text = _doc("README.md")
        for name in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / name).exists(), name


class TestExamplesCompile:
    @pytest.mark.parametrize("path", sorted(
        (ROOT / "examples").glob("*.py")), ids=lambda p: p.name)
    def test_compiles(self, path):
        ast.parse(path.read_text())
