"""Benchmark: the nonequilibrium (finite-rate) blunt-body solver.

Paper context: "one of the biggest challenges is understanding how to
couple nonequilibrium phenomena to three-dimensional flowfield codes."
The series: frozen / finite-rate / equilibrium stagnation temperatures
and standoff — finite rate must interpolate the limits.
"""

import numpy as np

from repro.core.gas import IdealGasEOS
from repro.geometry import Sphere
from repro.grid import blunt_body_grid
from repro.solvers.euler2d import AxisymmetricEulerSolver
from repro.solvers.reacting_euler2d import ReactingEulerSolver
from repro.solvers.shock import equilibrium_normal_shock
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set

RN, RHO, T_INF, V = 0.3, 1e-3, 240.0, 5000.0


def test_bench_nonequilibrium_blunt_body(once):
    def study():
        y0 = np.zeros(5)
        y0[0], y0[1] = 0.767, 0.233
        grid = blunt_body_grid(Sphere(RN), n_s=19, n_normal=29,
                               density_ratio=0.12, margin=2.8)
        ne = ReactingEulerSolver(grid, "air5")
        ne.set_freestream(RHO, V, T_INF, y0)
        ne.run(n_steps=500, cfl=0.3)
        grid2 = blunt_body_grid(Sphere(RN), n_s=19, n_normal=29,
                                density_ratio=0.17, margin=2.8)
        fr = AxisymmetricEulerSolver(grid2, IdealGasEOS(1.4))
        fr.set_freestream(RHO, V, RHO * 287.05 * T_INF)
        fr.run(n_steps=900, cfl=0.35)
        return ne, fr

    ne, fr = once(study)
    db = species_set("air5")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    eq = equilibrium_normal_shock(gas, RHO, T_INF, V)
    T_ne = ne.fields()["T"][0, 0]
    T_fr = fr.fields()["T"].max()
    # finite rate interpolates the frozen and equilibrium limits
    assert eq["T2"] * 0.85 < T_ne < T_fr
    d_ne = ne.stagnation_standoff()
    d_fr = fr.stagnation_standoff()
    assert d_ne < d_fr
    print(f"\nNonequilibrium series (V={V:.0f} m/s, rho={RHO} kg/m^3):")
    print(f"  frozen:       T_peak = {T_fr:7.0f} K, standoff/Rn = "
          f"{d_fr / RN:.3f}")
    print(f"  finite rate:  T_stag = {T_ne:7.0f} K, standoff/Rn = "
          f"{d_ne / RN:.3f}")
    print(f"  equilibrium:  T2     = {eq['T2']:7.0f} K, standoff/Rn ~ "
          f"{0.78 * eq['eps']:.3f}")
