"""Shuttle Orbiter windward heating through the entry (the E+BL / PNS
use case).

Marches the windward-heating PNS solver along three points of a gliding
Shuttle entry trajectory, compares equilibrium fully catalytic vs a
tile-like partially catalytic wall, and overlays the synthetic STS-3
data at the Fig. 6 point.

Run:  python examples/shuttle_reentry_heating.py
"""

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.experiments.data import STS3_SYNTHETIC
from repro.geometry import OrbiterWindwardProfile
from repro.postprocess.ascii_plot import ascii_plot
from repro.postprocess.tables import format_table
from repro.solvers.pns import WindwardHeatingPNS
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set


#: Three representative points of the entry (h [m], V [m/s], alpha [deg]).
TRAJECTORY_POINTS = [
    (75000.0, 7200.0, 40.0),
    (71300.0, 6740.0, 40.0),   # the STS-3 / Fig. 6 point
    (60000.0, 4500.0, 35.0),
]


def main():
    atm = EarthAtmosphere()
    db = species_set("air11")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    rows = []
    curves = []
    for h, V, alpha in TRAJECTORY_POINTS:
        body = OrbiterWindwardProfile(alpha_deg=alpha, nose_radius=1.3)
        pns = WindwardHeatingPNS(body, gas=gas)
        full = pns.solve(rho_inf=float(atm.density(h)),
                         T_inf=float(atm.temperature(h)), V=V,
                         T_wall=1100.0, n_stations=40)
        tile = pns.solve(rho_inf=float(atm.density(h)),
                         T_inf=float(atm.temperature(h)), V=V,
                         T_wall=1100.0, n_stations=40,
                         catalytic_phi=0.15)
        rows.append((h / 1e3, V, full.q_stag / 1e4,
                     tile.q[0] / 1e4,
                     float(np.interp(0.2, full.x_over_L, full.q)) / 1e4))
        curves.append((full.x_over_L, full.q / 1e4,
                       f"h={h / 1e3:.0f}km"))
    print("Shuttle windward-centerline heating "
          "(equivalent-axisymmetric PNS march)")
    print(ascii_plot(curves + [(STS3_SYNTHETIC["x_over_L"],
                                STS3_SYNTHETIC["q_w_cm2"],
                                "STS-3 @71km (synthetic)")],
                     logy=True, xlabel="x/L", ylabel="q [W/cm^2]"))
    print(format_table(
        ["h [km]", "V [m/s]", "q_stag FC [W/cm^2]",
         "q_stag tile [W/cm^2]", "q(x/L=0.2) [W/cm^2]"], rows))
    print("\nThe tile (phi=0.15) column is the paper's catalytic-"
          "efficiency story: finite surface catalysis cuts the heat flux "
          "roughly in half relative to the fully catalytic assumption.")


if __name__ == "__main__":
    main()
