"""Benchmark: regenerate Fig. 3 (Titan stagnation-line species)."""

import numpy as np

from repro.experiments import fig3_species_profiles


def test_bench_fig3_species_profiles(once):
    res = once(fig3_species_profiles.run, True)
    x = res["mole_fractions"]
    names = res["species"]
    yd = res["y_over_delta"]
    # --- the paper's content --------------------------------------------
    # shock-layer thickness of a few centimetres (paper: 2.24 cm)
    assert 0.005 < res["delta"] < 0.08
    # nitrogen species dominate everywhere (N2 and/or N)
    jN2, jN = names.index("N2"), names.index("N")
    assert np.all(x[:, jN2] + x[:, jN] > 0.5)
    # carbonaceous radiator (CN) present in the layer, orders of
    # magnitude below the major species
    jCN = names.index("CN")
    assert 1e-8 < x[:, jCN].max() < 0.1
    # strong composition gradients through the thermal layer: CN varies
    # by > 2 decades across y/delta
    cn = np.maximum(x[:, jCN], 1e-30)
    assert cn.max() / cn.min() > 1e2
    print("\nFig. 3 series: y/delta and mole fractions")
    for j, name in enumerate(names):
        if x[:, j].max() > 1e-8:
            print(f"  {name:4s} wall {x[0, j]:.2e}  "
                  f"mid {x[len(yd) // 2, j]:.2e}  edge {x[-1, j]:.2e}")
