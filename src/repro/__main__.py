"""Command-line entry point.

``python -m repro``                 — overview and quick sanity numbers
``python -m repro figures``         — regenerate every paper figure
``python -m repro stagnation V H RN`` — stagnation environment at
                                        (V [m/s], h [m], R_n [m])
``python -m repro degrade-smoke``   — degradation-cascade smoke run
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: python -m repro [command] [options]

commands:
  (none)                 overview and quick sanity numbers
  figures [--full] [--checkpoint-dir D] [--resume]
                         regenerate every paper figure
                           --full            full-resolution runs
                           --checkpoint-dir D
                                             durable suite: done markers +
                                             solver snapshots under D
                           --resume          replay completed figures and
                                             continue interrupted marches
                                             from their latest snapshot
  stagnation V H RN      stagnation environment at (V [m/s], h [m],
                         R_n [m])
  degrade-smoke [--out FILE]
                         fault-injected reacting march that must abort
                         without the degradation cascade and complete
                         with it; writes the degradation ledger JSON
                         to FILE (default degradation_ledger.json)
  -h, --help             show this message\
"""


def _overview() -> None:
    import numpy as np

    from repro.core import make_gas
    print(__doc__)
    gas = make_gas("equilibrium-air")
    y, _ = gas.composition_T_p(np.array(8000.0), np.array(101325.0))
    x = gas.db.mass_to_mole(np.atleast_2d(y))[0]
    print("sanity: equilibrium air at 8000 K, 1 atm -> "
          f"x_N = {x[gas.db.index['N']]:.3f}, "
          f"x_O = {x[gas.db.index['O']]:.3f} (mostly dissociated)")


def _parse_figures(args: list[str]):
    """Parse ``figures`` flags; returns kwargs or None on a bad flag."""
    kwargs = {"quick": True, "checkpoint_dir": None, "resume": False}
    it = iter(args)
    for a in it:
        if a == "--full":
            kwargs["quick"] = False
        elif a == "--resume":
            kwargs["resume"] = True
        elif a == "--checkpoint-dir":
            kwargs["checkpoint_dir"] = next(it, None)
            if kwargs["checkpoint_dir"] is None:
                print("figures: --checkpoint-dir needs a directory",
                      file=sys.stderr)
                return None
        elif a.startswith("--checkpoint-dir="):
            kwargs["checkpoint_dir"] = a.split("=", 1)[1]
        else:
            print(f"figures: unknown option {a!r}", file=sys.stderr)
            return None
    if kwargs["resume"] and kwargs["checkpoint_dir"] is None:
        print("figures: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return None
    return kwargs


def _degrade_smoke(out: str) -> int:
    """Degradation-cascade smoke: a persistent density fault that kills
    the plain rollback ladder must complete once the cascade is armed.

    The scenario is the acceptance case for
    :mod:`repro.resilience.degradation`: a Mach-10 reacting blunt-body
    march with a persistent single-cell density corruption that
    second-order reconstruction cannot march through (the T(e) Newton
    dies) but a quarantined first-order zone can.
    """
    import json

    import numpy as np

    from repro.errors import CatError
    from repro.geometry import Hemisphere
    from repro.grid import blunt_body_grid
    from repro.resilience import (DegradationPolicy, FaultInjector,
                                  RetryPolicy)
    from repro.solvers.reacting_euler2d import ReactingEulerSolver
    from repro.thermo.species import species_set

    def make_solver():
        grid = blunt_body_grid(Hemisphere(0.05), n_s=9, n_normal=13,
                               density_ratio=0.12, margin=2.5)
        db = species_set("air5")
        s = ReactingEulerSolver(grid, db)
        y = np.zeros(db.n)
        y[db.index["N2"]] = 0.767
        y[db.index["O2"]] = 0.233
        return s.set_freestream(1e-3, 5000.0, 250.0, y)

    def make_faults():
        fi = FaultInjector()
        fi.inject_perturbation(step=10, cell=(4, 6), component=0,
                               factor=1e-4, persistent=True)
        return fi

    policy = RetryPolicy(max_retries=1, cfl_backoff=0.8, cfl_min=0.2)

    print("degrade-smoke: fault-injected march WITHOUT degradation "
          "(must abort) ...")
    try:
        make_solver().run(n_steps=40, cfl=0.4, resilience=policy,
                          faults=make_faults())
    except CatError as err:
        print(f"  aborted as expected: {type(err).__name__}")
    else:
        print("  ERROR: run completed without degradation — the fault "
              "no longer exercises the cascade", file=sys.stderr)
        return 1

    print("degrade-smoke: same march WITH degradation (must complete) "
          "...")
    s = make_solver()
    try:
        s.run(n_steps=40, cfl=0.4, resilience=policy,
              faults=make_faults(), watchdog=True,
              degradation=DegradationPolicy(promote_after=15))
    except CatError as err:
        print(f"  ERROR: degraded run still aborted: {err}",
              file=sys.stderr)
        return 1
    ledger = s.degradation_ledger.to_dict()
    n_q = (0 if s.quarantined_cells is None
           else int(s.quarantined_cells.sum()))
    print(f"  completed {s.steps} steps: "
          f"{ledger['n_demotions']} demotion(s), "
          f"{ledger['n_promotions']} re-promotion(s), "
          f"{n_q} cell(s) quarantined, "
          f"{len(s.watchdog_events)} watchdog event(s)")
    with open(out, "w") as f:
        json.dump({"ledger": ledger,
                   "quarantined_cells": n_q,
                   "n_watchdog_events": len(s.watchdog_events),
                   "steps": int(s.steps)}, f, indent=2)
    print(f"  ledger written to {out}")
    if not ledger["n_demotions"]:
        print("  ERROR: completed without any demotion — the fault no "
              "longer exercises the cascade", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        _overview()
        return 0
    cmd = argv[0]
    if cmd in ("-h", "--help", "help"):
        print(_USAGE)
        return 0
    if cmd == "figures":
        kwargs = _parse_figures(argv[1:])
        if kwargs is None:
            print(_USAGE, file=sys.stderr)
            return 2
        from repro.experiments.runner import run_all
        res = run_all(**kwargs)
        return 1 if res["failures"] else 0
    if cmd == "stagnation":
        if len(argv) != 4:
            print("usage: python -m repro stagnation V[m/s] h[m] Rn[m]",
                  file=sys.stderr)
            return 2
        from repro.core import stagnation_environment
        V, h, rn = map(float, argv[1:4])
        env = stagnation_environment(V=V, h=h, nose_radius=rn)
        print(f"V = {V:.0f} m/s, h = {h / 1e3:.1f} km, R_n = {rn} m:")
        print(f"  q_conv   = {env['q_conv'] / 1e4:10.2f} W/cm^2")
        print(f"  q_rad    = {env['q_rad'] / 1e4:10.2f} W/cm^2")
        print(f"  standoff = {env['standoff'] * 100:10.2f} cm")
        print(f"  p_stag   = {env['p_stag'] / 1e3:10.2f} kPa")
        print(f"  T_edge   = {env['T_edge']:10.0f} K")
        return 0
    if cmd == "degrade-smoke":
        out = "degradation_ledger.json"
        rest = argv[1:]
        if rest and rest[0] == "--out":
            if len(rest) < 2:
                print("degrade-smoke: --out needs a path",
                      file=sys.stderr)
                return 2
            out = rest[1]
            rest = rest[2:]
        elif rest and rest[0].startswith("--out="):
            out = rest[0].split("=", 1)[1]
            rest = rest[1:]
        if rest:
            print(f"degrade-smoke: unknown option {rest[0]!r}",
                  file=sys.stderr)
            return 2
        return _degrade_smoke(out)
    print(f"unknown command {cmd!r}", file=sys.stderr)
    print(_USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
