"""Supervised time-marching: checkpoint / rollback / CFL-backoff retry.

The paper's solvers all "march in a time-like manner until a steady state
is asymptotically achieved" — and an unsupervised march dies on the first
transient NaN.  :class:`RunSupervisor` wraps any marching loop with

1. periodic :class:`~repro.resilience.checkpoint.Checkpoint` captures,
2. a per-step :func:`~repro.numerics.time_integration.check_state` guard,
3. automatic rollback to the last good checkpoint on
   :class:`~repro.errors.StabilityError`, with exponential CFL backoff
   through a bounded retry ladder,
4. a :class:`~repro.resilience.report.FailureReport` diagnostic bundle on
   exhaustion — either attached to the raised error or, with
   ``return_best=True``, delivered alongside the best-so-far state
   flagged ``converged=False``.

Between rollback-retry and abort sits the **degradation rung**: with a
:class:`~repro.resilience.degradation.DegradationController` attached
(``degradation=``), an exhausted CFL ladder first tries falling down the
fidelity ladder — local first-order reconstruction in a quarantine zone
around the flagged cells, then per-cell chemistry-model demotion — rolls
back, restores the original CFL and retries with a fresh ladder.  Only
when the cascade itself is exhausted does the march abort.  A
:class:`~repro.resilience.watchdog.ConservationWatchdog` (``watchdog=``)
audits every clean step (conservation budgets, species bounds, entropy)
and its events seed the quarantine zone and land in the report.

One-shot solves (PNS stations, VSL, the shock-relaxation BDF integration)
use :func:`supervised_call`, the same bounded-ladder idea expressed as a
sequence of parameter adjustments instead of CFL backoff.

With ``persist=PersistencePolicy(dir, every_n_steps)`` the supervisor
additionally commits **durable** snapshots to disk through a
:class:`~repro.resilience.persistence.SnapshotStore`, and — unless the
policy disables resume — first looks for a valid on-disk snapshot and
continues from it, so a SIGKILLed run picks up where it died (see
:func:`repro.resilience.persistence.resume_run`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import (CancelledError, CatError, ConvergenceError,
                          StabilityError)
from repro.numerics.time_integration import check_state
from repro.resilience.checkpoint import Checkpoint
from repro.resilience.degradation import as_degradation
from repro.resilience.report import FailureReport, solver_config
from repro.resilience.watchdog import as_watchdog

__all__ = ["RetryPolicy", "RunSupervisor", "supervised_call"]


@dataclass
class RetryPolicy:
    """Knobs of the rollback-retry ladder.

    Attributes
    ----------
    max_retries:
        Rollbacks allowed before the run is declared dead.
    cfl_backoff:
        Multiplier applied to the CFL number at each rollback.
    cfl_min:
        Ladder floor: a retry that would drop CFL below this gives up.
    checkpoint_interval:
        Steps between checkpoint captures.
    max_wall_time:
        Optional wall-clock budget [s]; on expiry the march stops and
        returns the current (best-so-far) state with ``converged=False``.
    return_best:
        On retry exhaustion, restore the last good checkpoint and return
        it flagged ``converged=False`` instead of raising.
    """

    max_retries: int = 4
    cfl_backoff: float = 0.5
    cfl_min: float = 1e-3
    checkpoint_interval: int = 25
    max_wall_time: float | None = None
    return_best: bool = False


class RunSupervisor:
    """Drives a solver's step function under a :class:`RetryPolicy`.

    Parameters
    ----------
    solver:
        Any object exposing ``U`` (conserved field), ``steps`` and —
        ideally — ``get_state``/``set_state`` (see
        :class:`~repro.resilience.checkpoint.Checkpoint`).
    policy:
        Retry ladder configuration (default :class:`RetryPolicy`).
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`; armed
        faults are applied after every successful step so that the guard
        and rollback paths are exercised deterministically.
    label:
        Name used in errors and reports.
    persist:
        Optional :class:`~repro.resilience.persistence.PersistencePolicy`
        (or a :class:`~repro.resilience.persistence.SnapshotStore`, or a
        bare directory path): durable, crash-safe snapshots on top of the
        in-memory rollback ladder.
    watchdog:
        ``True`` (defaults), a
        :class:`~repro.resilience.watchdog.WatchdogPolicy` or a
        :class:`~repro.resilience.watchdog.ConservationWatchdog`:
        per-step conservation/species/entropy auditing; events are
        surfaced on the solver (``watchdog_events``) and in any report.
    degradation:
        ``True`` (defaults), a
        :class:`~repro.resilience.degradation.DegradationPolicy` or a
        :class:`~repro.resilience.degradation.DegradationController`:
        the graceful-degradation rung between rollback-retry and abort;
        the ledger lands on the solver as ``degradation_ledger``.
    heartbeat:
        Optional :class:`~repro.resilience.isolation.Heartbeat` touched
        once per marching-loop iteration, so a supervising parent
        process can tell a slow march from a hung one.  Defaults to the
        process-global heartbeat installed by
        :class:`~repro.resilience.isolation.IsolatedRunner` children
        (None outside a sandbox).
    """

    def __init__(self, solver, policy: RetryPolicy | None = None, *,
                 faults=None, label: str | None = None, persist=None,
                 watchdog=None, degradation=None, heartbeat=None):
        from repro.resilience.isolation import current_process_heartbeat
        self.solver = solver
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults
        self.heartbeat = (heartbeat if heartbeat is not None
                          else current_process_heartbeat())
        self.label = label or type(solver).__name__
        self.attempts: list[dict] = []
        self.report: FailureReport | None = None
        self.watchdog = as_watchdog(watchdog)
        self.degradation = as_degradation(degradation)
        if self.degradation is not None \
                and self.degradation.ledger.label is None:
            self.degradation.ledger.label = self.label
        self.store = None
        if persist is not None:
            from repro.resilience.persistence import SnapshotStore
            self.store = (persist if isinstance(persist, SnapshotStore)
                          else SnapshotStore(persist, faults=faults))

    # ------------------------------------------------------------------

    def _guard(self):
        """Per-step state validation using the solver's declared layout."""
        layout = getattr(self.solver, "state_layout", None) or {}
        check_state(self.solver.U,
                    step=int(getattr(self.solver, "steps", 0) or 0),
                    label=self.label, **layout)

    def _build_report(self, err, ckpt, t0) -> FailureReport:
        hist = list(getattr(self.solver, "residual_history", []) or [])
        return FailureReport(
            label=self.label, error=str(err),
            step=getattr(err, "step", None)
            or int(getattr(self.solver, "steps", 0) or 0),
            cell=getattr(err, "cell", None),
            component=getattr(err, "component", None),
            value=getattr(err, "value", None),
            attempts=list(self.attempts),
            residual_history=hist[-200:],
            config=solver_config(self.solver),
            state=dict(ckpt.payload),
            wall_time=time.monotonic() - t0,
            watchdog_events=(None if self.watchdog is None
                             else self.watchdog.events_as_dicts()),
            degradation=(None if self.degradation is None
                         else self.degradation.ledger.to_dict()))

    def _expose(self):
        """Surface audit artefacts on the solver after any march end."""
        if self.watchdog is not None:
            self.solver.watchdog_events = self.watchdog.events
        if self.degradation is not None:
            self.solver.degradation_ledger = self.degradation.ledger

    def _progress_payload(self, k, n_steps, cfl_now, retries,
                          res) -> dict:
        """March progress published through the heartbeat channel so a
        supervising parent (``jobs status``/``watch``) sees step / time
        / residual without ever touching this process."""
        p = {"label": self.label, "step": int(k),
             "n_steps": int(n_steps), "cfl": float(cfl_now),
             "retries": int(retries)}
        if res is not None:
            p["residual"] = float(res)
        hook = getattr(self.solver, "progress", None)
        if callable(hook):
            p.update(hook() or {})
        return p

    # ------------------------------------------------------------------

    def march(self, step_fn, *, n_steps, cfl, tol=None, stop=None,
              run_kwargs=None) -> bool:
        """Advance ``step_fn(cfl) -> residual | None`` up to ``n_steps``
        successful steps with rollback-retry.

        ``stop()`` (optional) ends the march as converged (transient runs
        marching to a target time); ``tol`` ends it when the returned
        residual drops below it (steady runs).  Returns the converged
        flag, which is also set on ``solver.converged``; on exhaustion
        either raises :class:`StabilityError` carrying a
        :class:`FailureReport` or — with ``return_best=True`` — restores
        the last good checkpoint and returns False.

        With a durable store attached (``persist=``), the march first
        resumes from the newest valid on-disk snapshot (when the policy
        allows), commits a snapshot every ``every_n_steps`` successful
        steps, and commits a final one marked ``completed`` when the
        march ends for any reason other than the wall-clock budget —
        ``run_kwargs`` is embedded in each manifest so
        :func:`~repro.resilience.persistence.resume_run` can re-enter
        the same ``run(...)`` call.
        """
        from repro.resilience.isolation import current_process_cancel
        solver, pol, store = self.solver, self.policy, self.store
        cfl_now = float(cfl)
        retries = 0
        t0 = time.monotonic()
        k = ckpt_k = 0
        converged = False
        last_res = None

        def commit(*, completed, converged):
            store.save(solver, march={"k": k, "cfl": cfl_now,
                                      "retries": retries},
                       run=dict(run_kwargs or {}), completed=completed,
                       converged=converged, label=self.label)

        if store is not None and store.policy.resume:
            snap = store.load_latest(solver=solver)
            if snap is not None:
                if snap.completed:
                    solver.converged = bool(snap.converged)
                    return solver.converged
                k = ckpt_k = int(snap.march.get("k", 0))
                cfl_now = float(snap.march.get("cfl", cfl_now))
        ckpt = Checkpoint.capture(solver)
        if store is not None and not store.sequences():
            commit(completed=False, converged=False)
        while k < n_steps:
            if self.heartbeat is not None:
                self.heartbeat.beat(step=k,
                                    progress=self._progress_payload(
                                        k, n_steps, cfl_now, retries,
                                        last_res))
            cancel = current_process_cancel()
            if cancel is not None:
                reason = cancel()
                if reason:
                    # commit a durable snapshot first: a cancelled
                    # march stays resumable if the request is retracted
                    if store is not None:
                        commit(completed=False, converged=False)
                    solver.converged = False
                    self._expose()
                    raise CancelledError(
                        f"{self.label}: march cancelled at step {k}: "
                        f"{reason}", step=k)
            if stop is not None and stop():
                converged = True
                break
            if (pol.max_wall_time is not None
                    and time.monotonic() - t0 > pol.max_wall_time):
                # budget exhausted: best-so-far, converged=False; a
                # durable snapshot (not marked completed) lets a later
                # resume_run continue the march
                if store is not None:
                    commit(completed=False, converged=False)
                solver.converged = False
                self._expose()
                return False
            try:
                res = step_fn(cfl_now)
                last_res = res
                if self.faults is not None:
                    self.faults.apply(solver)
                self._guard()
                if self.watchdog is not None:
                    self.watchdog.audit(solver)
                if self.degradation is not None:
                    self.degradation.note_clean_step(
                        solver, step=int(getattr(solver, "steps", k)
                                         or k))
            except (StabilityError, ConvergenceError) as err:
                # ConvergenceError mid-march means an implicit sub-solve
                # (T(e) Newton, point-implicit chemistry) died on a
                # corrupted state — same pathology as a NaN, same cure:
                # roll back, back off, degrade
                retries += 1
                self.attempts.append(
                    {"retry": retries, "cfl": cfl_now,
                     "step": int(getattr(solver, "steps", k) or k),
                     "error": str(err)})
                if self.watchdog is not None:
                    self.watchdog.record_error(err, solver)
                if self.degradation is not None:
                    self.degradation.note_failure()
                next_cfl = cfl_now * pol.cfl_backoff
                if retries > pol.max_retries or next_cfl < pol.cfl_min:
                    # degradation rung: before aborting, try falling
                    # down the fidelity ladder and re-running the
                    # retry ladder from the original CFL
                    if self.degradation is not None:
                        cells = [getattr(err, "cell", None)]
                        if self.watchdog is not None:
                            cells += self.watchdog.event_cells(last_n=5)
                        if self.degradation.degrade(
                                solver,
                                step=int(getattr(err, "step", None)
                                         or k),
                                cells=[c for c in cells
                                       if c is not None],
                                reason=str(err)):
                            ckpt.restore(solver)
                            k = ckpt_k
                            retries = 0
                            cfl_now = float(cfl)
                            continue
                    self.report = self._build_report(err, ckpt, t0)
                    self._expose()
                    if pol.return_best:
                        ckpt.restore(solver)
                        solver.converged = False
                        return False
                    exhausted = StabilityError(
                        f"{self.label}: retry ladder exhausted after "
                        f"{retries} attempt(s): {err}",
                        step=getattr(err, "step", None),
                        cell=getattr(err, "cell", None),
                        component=getattr(err, "component", None),
                        value=getattr(err, "value", None),
                        report=self.report)
                    raise exhausted from err
                ckpt.restore(solver)
                k = ckpt_k
                cfl_now = next_cfl
                continue
            k += 1
            if tol is not None and res is not None and res < tol:
                converged = True
                break
            if store is not None and k % store.policy.every_n_steps == 0:
                commit(completed=False, converged=False)
            if k % pol.checkpoint_interval == 0:
                ckpt = Checkpoint.capture(solver)
                ckpt_k = k
        solver.converged = converged
        self._expose()
        if store is not None:
            commit(completed=True, converged=converged)
        return converged


def supervised_call(fn, *, label, ladder=(), config=None):
    """Run a one-shot solve through a bounded parameter-adjustment ladder.

    Calls ``fn()`` first as-given, then once per entry of ``ladder``
    (each entry a dict of keyword overrides for ``fn``) while it raises
    :class:`~repro.errors.CatError`.  On exhaustion the *original* error
    is re-raised with a :class:`FailureReport` (ladder trace + config)
    attached as ``err.report``.
    """
    from repro.resilience.isolation import current_process_heartbeat
    attempts: list[dict] = []
    last: CatError | None = None
    for i, overrides in enumerate([{}, *ladder]):
        hb = current_process_heartbeat()
        if hb is not None:   # sandboxed one-shot ladders beat per attempt
            hb.beat()
        try:
            return fn(**overrides)
        except CatError as err:
            last = err
            attempts.append({"attempt": i, **{k: repr(v) for k, v
                                              in overrides.items()},
                             "error": str(err)})
    report = FailureReport(label=label, error=str(last),
                           attempts=attempts, config=dict(config or {}))
    last.report = report
    raise last
