"""Tests for the high-level API facade and CLI."""

import numpy as np
import pytest

from repro.core import (heat_pulse, make_gas, stagnation_environment,
                        windward_heating)
from repro.errors import InputError


class TestMakeGas:
    def test_named_models(self):
        for name, major in (("equilibrium-air", "N2"), ("titan", "N2"),
                            ("jupiter", "H2")):
            gas = make_gas(name)
            assert gas.y_ref[gas.db.index[major]] > 0.5

    def test_unknown_raises(self):
        with pytest.raises(InputError):
            make_gas("venusian-sulfur")

    def test_unknown_error_lists_options(self):
        with pytest.raises(InputError, match="equilibrium-air"):
            make_gas("venusian-sulfur")

    def test_named_models_are_cached(self):
        from repro.core.api import clear_gas_cache
        clear_gas_cache()
        assert make_gas("titan") is make_gas("titan")
        assert make_gas("titan") is not make_gas("jupiter")

    def test_cached_false_builds_fresh(self):
        assert make_gas("titan", cached=False) is not make_gas("titan")

    def test_clear_cache_drops_instances(self):
        from repro.core.api import clear_gas_cache
        first = make_gas("equilibrium-air")
        clear_gas_cache()
        assert make_gas("equilibrium-air") is not first


class TestStagnationEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        return stagnation_environment(V=6700.0, h=65500.0,
                                      nose_radius=1.3)

    def test_cross_validates_with_sutton_graves(self, env):
        from repro.atmosphere import EarthAtmosphere
        from repro.heating import sutton_graves_heating
        atm = EarthAtmosphere()
        q_sg = float(sutton_graves_heating(atm.density(65500.0), 6700.0,
                                           1.3))
        # two independent routes to the same number: VSL similarity vs
        # the design correlation
        assert env["q_conv"] == pytest.approx(q_sg, rel=0.35)

    def test_standoff_consistent_with_euler_solver(self, env):
        # the Fig. 4 equilibrium standoff on the same body was ~6 cm
        assert 0.03 < env["standoff"] < 0.10

    def test_profiles_shape(self, env):
        p = env["profiles"]
        assert p["T"].shape == p["y"].shape
        assert p["composition"].shape[0] == p["y"].shape[0]

    def test_radiation_small_at_6p7kms(self, env):
        # air radiation is minor below ~9 km/s
        assert env["q_rad"] < 0.2 * env["q_conv"]

    def test_jupiter_entry_path(self):
        # Galileo-class: H2 dissociation buffers the shock-layer
        # temperature far below the frozen value even at 15 km/s
        from repro.atmosphere import JupiterAtmosphere
        env = stagnation_environment(V=15000.0, h=150e3,
                                     nose_radius=0.35, gas="jupiter",
                                     atmosphere=JupiterAtmosphere(),
                                     T_wall=2500.0)
        assert env["q_conv"] > 1e6
        assert env["T_edge"] < 8000.0   # vs ~30000 K frozen


class TestWindwardHeating:
    def test_ideal_gas_string_spec(self):
        res = windward_heating(V=6740.0, h=71300.0, alpha_deg=40.0,
                               gas="ideal:1.2", n_stations=15)
        assert res["q_stag"] > 1e5
        assert res["q"].shape == res["x_over_L"].shape

    def test_catalysis_parameter(self, air_gas):
        full = windward_heating(V=6740.0, h=71300.0, alpha_deg=40.0,
                                gas=air_gas, n_stations=12)
        part = windward_heating(V=6740.0, h=71300.0, alpha_deg=40.0,
                                gas=air_gas, n_stations=12,
                                catalytic_phi=0.2)
        assert part["q_stag"] == full["q_stag"]  # stag value pre-factor
        assert np.all(part["q"] < full["q"])


class TestHeatPulse:
    def test_aotv_pulse(self):
        from repro.atmosphere import EarthAtmosphere
        from repro.trajectory import AOTV, integrate_entry
        tr = integrate_entry(AOTV, EarthAtmosphere(), h0=122e3,
                             V0=9800.0, gamma0_deg=-4.7, t_max=1200.0)
        pulse = heat_pulse(tr, AOTV.nose_radius)
        assert pulse["heat_load"] > 0
        assert pulse["peak"]["q"] == pulse["q_total"].max()
        # peak heating near perigee
        assert abs(pulse["peak"]["h"] - tr.h.min()) < 20e3

    def test_titan_key_disables_air_radiation(self):
        from repro.atmosphere import TitanAtmosphere
        from repro.trajectory import TITAN_PROBE, integrate_entry
        tr = integrate_entry(TITAN_PROBE, TitanAtmosphere(), h0=800e3,
                             V0=12000.0, gamma0_deg=-40.0,
                             V_stop=1000.0)
        pulse = heat_pulse(tr, 0.64, atmosphere_key="titan")
        # catlint: disable=CAT010 -- q_rad is exactly zero below the radiative-heating velocity threshold
        assert np.all(pulse["q_rad"] == 0.0)
        assert pulse["q_conv"].max() > 1e5


class TestHeatPulseReportMode:
    """``on_failure="report"``: per-point failure records instead of an
    all-or-nothing InputError."""

    def _poisoned(self):
        import types
        t = np.linspace(0.0, 100.0, 21)
        V = np.full(21, 7000.0)
        h = np.full(21, 60e3)
        rho = np.full(21, 3.0e-4)
        V[3] = np.nan          # non-finite point
        rho[7] = -1.0e-4       # non-positive density
        V[11] = -50.0          # negative velocity
        return types.SimpleNamespace(t=t, V=V, h=h, rho=rho)

    def test_raise_mode_aborts_on_bad_point(self):
        with pytest.raises(InputError):
            heat_pulse(self._poisoned(), 1.0)

    def test_report_mode_records_each_bad_point(self):
        pulse = heat_pulse(self._poisoned(), 1.0, on_failure="report")
        assert pulse["n_failed"] == 3
        assert [f["index"] for f in pulse["failures"]] == [3, 7, 11]
        assert all(f["error_type"] == "InputError"
                   for f in pulse["failures"])
        reasons = " ".join(f["reason"] for f in pulse["failures"])
        assert "non-finite" in reasons
        assert "density" in reasons
        assert "velocity" in reasons

    def test_report_mode_masks_and_still_integrates(self):
        pulse = heat_pulse(self._poisoned(), 1.0, on_failure="report")
        assert np.isfinite(pulse["heat_load"])
        assert pulse["heat_load"] > 0.0
        assert np.isnan(pulse["q_total"][[3, 7, 11]]).all()
        good = np.delete(np.arange(21), [3, 7, 11])
        assert np.isfinite(pulse["q_total"][good]).all()
        assert np.isfinite(pulse["peak"]["q"])

    def test_report_mode_matches_raise_mode_when_clean(self):
        from repro.atmosphere import EarthAtmosphere
        from repro.trajectory import AOTV, integrate_entry
        tr = integrate_entry(AOTV, EarthAtmosphere(), h0=122e3,
                             V0=9800.0, gamma0_deg=-4.7, t_max=1200.0)
        a = heat_pulse(tr, AOTV.nose_radius)
        b = heat_pulse(tr, AOTV.nose_radius, on_failure="report")
        assert b["failures"] == []
        assert b["heat_load"] == a["heat_load"]
        assert np.array_equal(b["q_total"], a["q_total"])

    def test_all_points_bad_returns_nan_record(self):
        # a 0.0 heat load (or an abort) would hide total trajectory
        # corruption; report mode must say NaN and flag it explicitly
        bad = self._poisoned()
        bad.rho[:] = -1.0
        pulse = heat_pulse(bad, 1.0, on_failure="report")
        assert np.isnan(pulse["heat_load"])
        assert pulse["peak"] is None
        assert pulse["all_points_failed"] is True
        assert pulse["n_failed"] == 21
        assert np.isnan(pulse["q_total"]).all()

    def test_partial_failure_not_flagged_all_failed(self):
        pulse = heat_pulse(self._poisoned(), 1.0, on_failure="report")
        assert pulse["all_points_failed"] is False

    def test_bad_on_failure_value(self):
        with pytest.raises(InputError):
            heat_pulse(self._poisoned(), 1.0, on_failure="degrade")


class TestCLI:
    def test_overview(self, capsys):
        from repro.__main__ import main
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "sanity" in out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main
        assert main(["teleport"]) == 2

    def test_stagnation_usage(self, capsys):
        from repro.__main__ import main
        assert main(["stagnation", "1"]) == 2
