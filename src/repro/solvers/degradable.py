"""Shared degradation protocol for the marching solvers.

:class:`QuarantineMixin` gives a solver the numerics-ladder half of the
:mod:`repro.resilience.degradation` protocol: a boolean
``quarantined_cells`` mask (shaped like the cell grid) that the solver's
reconstruction passes to
:func:`repro.numerics.muscl.muscl_interface_states` as
``first_order_mask``.  The mask is *not* part of the resilience
``get_state``/``set_state`` protocol on purpose — a rollback restores
the flow field but keeps the quarantine, which is what makes the
degraded retry different from the ones that failed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuarantineMixin"]


class QuarantineMixin:
    """Numerics-ladder degradation: local first-order quarantine zone."""

    #: Boolean cell mask of the quarantine zone (None = none); masked
    #: cells reconstruct first order.
    quarantined_cells = None

    def quarantine(self, mask=None) -> int:
        """Flag cells for first-order reconstruction; ``None`` flags the
        whole domain.  Returns the number of *newly* flagged cells (0
        when the mask adds nothing — the degradation controller then
        falls through to the next rung)."""
        shape = np.asarray(self.U).shape[:-1]
        if mask is None:
            mask = np.ones(shape, dtype=bool)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != shape:
            raise ValueError(f"quarantine mask shape {mask.shape} != "
                             f"cell shape {shape}")
        if self.quarantined_cells is None:
            self.quarantined_cells = mask.copy()
            return int(mask.sum())
        new = mask & ~self.quarantined_cells
        self.quarantined_cells = self.quarantined_cells | mask
        return int(new.sum())

    def clear_quarantine(self):
        """Lift the quarantine entirely (full re-promotion)."""
        self.quarantined_cells = None
