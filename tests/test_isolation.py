"""Process-isolation tests.

The contract under test (see DESIGN.md "Process isolation" and
ISSUE acceptance criteria):

* a genuinely SIGSTOPped child (real OS stop, not a simulation) is
  declared hung via heartbeat silence, killed through the
  SIGCONT+SIGTERM→SIGKILL escalation and auto-resumed from the latest
  durable snapshot to a **bitwise-identical** final state,
* a child that actually balloons its RSS past the budget is killed with
  an ``oom`` event and likewise resumed bitwise,
* a wall-clock deadline expiring mid-march kills and resumes,
* restart-budget exhaustion raises a typed :class:`SolverError`
  carrying a :class:`FailureReport` with every isolation event and the
  exact fault schedule for replay,
* the chaos harness is deterministic (same seed → same schedules →
  same outcomes) and leaves no orphan processes,
* the CLI exits 0 on success, 1 on solver failure, 2 on usage errors.
"""

import io
import json
import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import SolverError
from repro.resilience import (FaultInjector, IsolatedRunner,
                              IsolationPolicy)
from repro.resilience.chaos import CASES, run_chaos, sample_schedule
from repro.resilience.isolation import _read_rss_mb, as_isolation


def _state_bytes(solver):
    out = {}
    for k, v in solver.get_state().items():
        out[k] = v.tobytes() if isinstance(v, np.ndarray) else v
    return out


def _no_orphans():
    for p in mp.active_children():
        p.join(timeout=2.0)
    return not any(p.is_alive() for p in mp.active_children())


# ----------------------------------------------------------------------
# real hang: SIGSTOP mid-march
# ----------------------------------------------------------------------


class TestSigstopHang:
    def test_stopped_child_killed_and_resumed_bitwise(self, tmp_path):
        """SIGSTOP a marching child once it has durable snapshots; the
        runner must see heartbeat silence, kill through the SIGCONT
        escalation, and resume to the uninterrupted answer."""
        factory, _, _, _ = CASES["euler2d"]
        run_kwargs = {"n_steps": 40, "cfl": 0.3}
        ref = factory()
        ref.run(**run_kwargs)

        hb_path = tmp_path / "heartbeat.json"
        stopped = []

        def stopper(pid, attempt):
            if attempt != 0:
                return

            def watch():
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    try:
                        with open(hb_path) as f:
                            beat = json.load(f)
                    except (OSError, ValueError):
                        beat = {}
                    if (beat.get("step") or 0) >= 8:
                        try:
                            os.kill(pid, signal.SIGSTOP)
                        except ProcessLookupError:
                            return
                        stopped.append(beat["step"])
                        return
                    time.sleep(0.005)

            threading.Thread(target=watch, daemon=True).start()

        policy = IsolationPolicy(stall_timeout=1.0, max_restarts=2,
                                 term_grace=1.0, every_n_steps=3,
                                 poll_interval=0.05)
        runner = IsolatedRunner(policy, label="sigstop")
        solver = runner.run_solver(factory, run_kwargs,
                                   workdir=tmp_path, on_spawn=stopper)

        assert stopped, "watcher never caught the march to SIGSTOP it"
        kinds = [e.kind for e in runner.events]
        assert kinds == ["hang"], kinds
        assert runner.events[0].attempt == 0
        assert _state_bytes(solver) == _state_bytes(ref)
        assert solver.isolation_events[0]["kind"] == "hang"
        assert _no_orphans()


# ----------------------------------------------------------------------
# real memory balloon
# ----------------------------------------------------------------------


class TestMemoryBalloon:
    def test_ballooning_child_killed_as_oom_and_resumed(self, tmp_path):
        factory, run_kwargs, _, _ = CASES["euler1d"]
        ref = factory()
        ref.run(**run_kwargs)

        base = _read_rss_mb()
        assert base is not None, "RSS introspection unavailable"
        # a fork child shares the parent's resident pages, so the budget
        # must sit above the parent's own RSS; the 500 MiB balloon blows
        # straight through the 250 MiB headroom
        faults = FaultInjector().inject_memory_balloon(step=9, mb=500.0,
                                                       hold=600.0)
        policy = IsolationPolicy(memory_mb=base + 250.0,
                                 stall_timeout=None, max_restarts=2,
                                 term_grace=1.0, every_n_steps=3)
        runner = IsolatedRunner(policy, label="balloon")
        solver = runner.run_solver(factory, run_kwargs,
                                   workdir=tmp_path, faults=faults)

        kinds = [e.kind for e in runner.events]
        assert kinds == ["oom"], kinds
        ev = runner.events[0]
        assert ev.rss_mb is not None and ev.rss_mb > policy.memory_mb
        assert _state_bytes(solver) == _state_bytes(ref)
        assert _no_orphans()


# ----------------------------------------------------------------------
# deadline expiry mid-march
# ----------------------------------------------------------------------


class TestDeadline:
    def test_deadline_expiry_kills_and_resumes(self, tmp_path):
        factory, run_kwargs, _, _ = CASES["euler1d"]
        ref = factory()
        ref.run(**run_kwargs)

        # the hang fault parks the march mid-way with SIGTERM ignored:
        # the deadline (stall detection off) is what must fire, and the
        # kill must escalate to SIGKILL past the ignored SIGTERM
        faults = FaultInjector().inject_hang(step=7, duration=600.0)
        policy = IsolationPolicy(deadline=2.0, stall_timeout=None,
                                 max_restarts=1, term_grace=0.5,
                                 every_n_steps=3)
        runner = IsolatedRunner(policy, label="deadline")
        t0 = time.monotonic()
        solver = runner.run_solver(factory, run_kwargs,
                                   workdir=tmp_path, faults=faults)
        elapsed = time.monotonic() - t0

        kinds = [e.kind for e in runner.events]
        assert kinds == ["deadline"], kinds
        assert _state_bytes(solver) == _state_bytes(ref)
        # deadline + grace + resume, not the fault's 600 s sleep
        assert elapsed < 30.0
        assert _no_orphans()


# ----------------------------------------------------------------------
# restart-budget exhaustion -> typed abort
# ----------------------------------------------------------------------


class TestRestartBudget:
    def test_exhaustion_raises_with_report_and_schedule(self, tmp_path):
        factory, run_kwargs, _, _ = CASES["euler1d"]
        faults = FaultInjector().inject_crash(step=99)  # never fires

        def stopper(pid, attempt):
            os.kill(pid, signal.SIGSTOP)   # every attempt wedges at birth

        policy = IsolationPolicy(stall_timeout=0.5, max_restarts=2,
                                 term_grace=0.5, every_n_steps=3)
        runner = IsolatedRunner(policy, label="wedged")
        with pytest.raises(SolverError) as exc:
            runner.run_solver(factory, run_kwargs, workdir=tmp_path,
                              faults=faults, on_spawn=stopper)
        err = exc.value
        assert "restart budget" in str(err)
        report = err.report
        assert report is not None
        assert len(report.isolation) == policy.max_restarts + 1
        assert all(e["kind"] == "hang" for e in report.isolation)
        assert report.fault_schedule == faults.to_json()
        # the embedded schedule re-arms for deterministic replay
        clone = FaultInjector.from_json(report.fault_schedule)
        assert clone.to_json() == faults.to_json()
        assert "isolation kills" in report.summary()
        assert _no_orphans()

    def test_callable_exhaustion(self):
        policy = IsolationPolicy(stall_timeout=0.5, max_restarts=1,
                                 term_grace=0.5)
        runner = IsolatedRunner(policy, label="sleeper")
        with pytest.raises(SolverError) as exc:
            runner.run_callable(time.sleep, (600.0,))
        assert len(exc.value.report.isolation) == 2
        assert _no_orphans()


# ----------------------------------------------------------------------
# sandboxed callables
# ----------------------------------------------------------------------


class TestRunCallable:
    def test_result_round_trip(self):
        runner = IsolatedRunner(IsolationPolicy(), label="plain")
        assert runner.run_callable(sum, ([1, 2, 3],)) == 6
        assert runner.events == []

    def test_idempotent_retry_after_deadline(self, tmp_path):
        marker = tmp_path / "first-attempt"

        def flaky():
            if marker.exists():
                return 42
            marker.write_text("x")
            time.sleep(600.0)

        policy = IsolationPolicy(deadline=1.0, max_restarts=1,
                                 term_grace=0.5)
        runner = IsolatedRunner(policy, label="flaky")
        assert runner.run_callable(flaky) == 42
        assert [e.kind for e in runner.events] == ["deadline"]
        assert _no_orphans()

    def test_child_exception_becomes_crash_event(self):
        def boom():
            raise RuntimeError("scripted failure")

        policy = IsolationPolicy(max_restarts=0)
        runner = IsolatedRunner(policy, label="boom")
        with pytest.raises(SolverError) as exc:
            runner.run_callable(boom)
        assert [e.kind for e in runner.events] == ["crash"]
        assert "scripted failure" in runner.events[0].message
        assert exc.value.report is not None

    def test_as_isolation_coercion(self):
        assert as_isolation(None) is None
        assert as_isolation(False) is None
        assert as_isolation(True) == IsolationPolicy()
        pol = IsolationPolicy(deadline=5.0)
        assert as_isolation(pol) is pol
        with pytest.raises(SolverError):
            as_isolation("tight")


# ----------------------------------------------------------------------
# chaos harness determinism and hygiene
# ----------------------------------------------------------------------


class TestChaosHarness:
    def test_same_seed_same_schedule(self):
        for case in sorted(CASES):
            f1, s1 = sample_schedule(np.random.default_rng(42), case)
            f2, s2 = sample_schedule(np.random.default_rng(42), case)
            assert s1 == s2
            assert f1.to_json() == f2.to_json()
            assert repr(f1) == repr(f2)

    def test_schedule_json_round_trip(self):
        rng = np.random.default_rng(3)
        for case in sorted(CASES):
            fi, _ = sample_schedule(rng, case)
            clone = FaultInjector.from_json(fi.to_json())
            assert clone.to_json() == fi.to_json()
            assert repr(clone) == repr(fi)

    def test_campaign_deterministic_and_leaves_no_orphans(self,
                                                          tmp_path):
        """Two euler1d-only campaigns with the same seed must sample the
        same schedules, reach the same outcomes, exit 0 and leave no
        children behind."""
        outs = [tmp_path / "a", tmp_path / "b"]
        for out in outs:
            rc = run_chaos(rounds=2, seed=11, out=str(out),
                           deadline=30.0, stall_timeout=1.0,
                           cases=["euler1d"], stream=io.StringIO())
            assert rc == 0
            assert _no_orphans()
        for i in range(2):
            reports = []
            for out in outs:
                with open(out / f"round-{i:03d}.json") as f:
                    reports.append(json.load(f))
            a, b = reports
            assert a["schedule"] == b["schedule"]
            assert a["outcome"] == b["outcome"]
            assert [e["kind"] for e in a["events"]] == \
                [e["kind"] for e in b["events"]]
            assert a["ok"] and b["ok"]
        ledgers = []
        for out in outs:
            with open(out / "chaos-ledger.json") as f:
                ledgers.append(json.load(f))
        assert ledgers[0] == ledgers[1]
        assert ledgers[0]["ok"]


# ----------------------------------------------------------------------
# CLI exit codes: 0 ok / 1 solver failure / 2 usage
# ----------------------------------------------------------------------


class TestCLIExitCodes:
    def test_usage_errors_exit_2(self, capsys):
        from repro.__main__ import main
        bad = [
            ["frobnicate"],
            ["figures", "--bogus"],
            ["figures", "--resume"],                  # needs --checkpoint-dir
            ["figures", "--deadline", "5"],           # needs --isolate
            ["figures", "--isolate", "--deadline", "abc"],
            ["figures", "--isolate", "--memory-mb", "-4"],
            ["stagnation", "1", "2"],
            ["stagnation", "a", "b", "c"],
            ["degrade-smoke", "--what"],
            ["chaos", "--rounds", "0"],
            ["chaos", "--rounds", "x"],
            ["chaos", "--seed"],
            ["chaos", "--deadline", "-1"],
        ]
        for argv in bad:
            assert main(argv) == 2, argv
            err = capsys.readouterr().err
            assert "usage:" in err, argv

    def test_help_exits_0(self, capsys):
        from repro.__main__ import main
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out and "--isolate" in out
