"""Fig. 9 — N2 mole-fraction contours, Mach-20 equilibrium flow over a
hemisphere (the Ref. 26 upwind NS result).

Condition: Mach 20 at 20 km altitude.  The bow shock is captured by the
upwind solver; behind it the equilibrium composition (recovered per cell
from the conserved (rho, e) state by the Gibbs solver) shows N2 depleting
from the freestream 0.78 mole fraction toward ~0.5 at the stagnation
region — the paper's contour levels run 0.50 to 0.75.
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.core.gas import TabulatedEOS
from repro.geometry import Hemisphere
from repro.grid import blunt_body_grid
from repro.postprocess.ascii_plot import ascii_contour
from repro.postprocess.contours import contour_lines
from repro.solvers.ns2d import AxisymmetricNSSolver
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set

__all__ = ["run", "main", "CONDITION", "CONTOUR_LEVELS"]

#: Fig. 9 flight condition.
CONDITION = dict(mach=20.0, h=20000.0, nose_radius=0.1, T_wall=1500.0)

#: The paper's plotted contour levels.
CONTOUR_LEVELS = (0.50, 0.55, 0.60, 0.65, 0.70, 0.75)


def run(quick: bool = False, persist_dir: str | None = None) -> dict:
    atm = EarthAtmosphere()
    h = CONDITION["h"]
    rho = float(atm.density(h))
    T = float(atm.temperature(h))
    V = CONDITION["mach"] * float(atm.sound_speed(h))
    p = rho * atm.gas_constant * T
    body = Hemisphere(CONDITION["nose_radius"])
    grid = blunt_body_grid(body,
                           n_s=31 if quick else 49,
                           n_normal=41 if quick else 61,
                           density_ratio=0.08, margin=3.0,
                           wall_cluster_beta=1.8)
    solver = AxisymmetricNSSolver(grid, TabulatedEOS(),
                                  T_wall=CONDITION["T_wall"])
    solver.set_freestream(rho, V, p)
    solver.run(n_steps=1200 if quick else 2600, cfl=0.3,
               persist=persist_dir)
    f = solver.fields()
    # equilibrium composition per cell from the conserved state
    db = species_set("air11")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    y_mass = gas.solver.solve_rho_e(f["rho"].ravel(), f["e"].ravel(),
                                    gas.b, T_guess=f["T"].ravel())[0]
    x_mole = db.mass_to_mole(y_mass).reshape(f["rho"].shape + (db.n,))
    n2 = x_mole[..., db.index["N2"]]
    segs = {lv: contour_lines(f["x"], f["y"], n2, lv)
            for lv in CONTOUR_LEVELS}
    # stagnation-line profile (i = 0 ray)
    return {"solver": solver, "x": f["x"], "y": f["y"], "N2": n2,
            "T": f["T"], "contours": segs,
            "stagnation_line": {"x": f["x"][0], "N2": n2[0],
                                "T": f["T"][0]},
            "condition": dict(CONDITION, V=V, rho=rho, T_inf=T),
            "n2_min": float(n2.min()),
            "standoff": solver.stagnation_standoff()}


def main(quick: bool = True, persist_dir: str | None = None) -> str:
    res = run(quick, persist_dir=persist_dir)
    txt = ascii_contour(res["x"], res["y"], res["N2"], CONTOUR_LEVELS)
    header = ("Fig. 9 - N2 mole fraction, Mach 20 hemisphere "
              f"(V = {res['condition']['V']:.0f} m/s, h = 20 km)\n")
    footer = (f"\nminimum N2 mole fraction {res['n2_min']:.3f}; "
              f"standoff {res['standoff'] * 1e3:.1f} mm; contour levels "
              f"present: "
              + ", ".join(f"{lv:g}" for lv in CONTOUR_LEVELS
                          if res['contours'][lv]))
    return header + txt + footer


if __name__ == "__main__":
    print(main())
