"""Radiative transport: spectral emission, tangent-slab transfer, NEQAIR-lite.

"Computation of the radiation, based on realistic spectral models, is one
of the most costly parts of the solution process" — this subpackage
provides the spectral model (molecular band systems + atomic lines over
0.2–1.2 um), the plane-slab (tangent-slab) transfer the paper's VSL codes
employ, a nonequilibrium emission mode driven by the vibrational-electronic
temperature (the NEQAIR role, Ref. 23), and the Tauber–Sutton correlation
baseline.
"""

from repro.radiation.spectra import (ATOMIC_LINES, BAND_SYSTEMS,
                                     BandSystem, EmissionModel)
from repro.radiation.tangent_slab import tangent_slab_flux
from repro.radiation.neqair import NonequilibriumRadiator
from repro.radiation.correlations import tauber_sutton_radiative

__all__ = ["BandSystem", "BAND_SYSTEMS", "ATOMIC_LINES", "EmissionModel",
           "tangent_slab_flux", "NonequilibriumRadiator",
           "tauber_sutton_radiative"]
