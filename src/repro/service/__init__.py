"""Batch evaluation service: the "millions of users" front door.

``evaluate_batch`` answers thousands of (vehicle, flight-condition,
method) requests per call with production failure semantics: up-front
validation into typed records, per-request outcome envelopes, admission
control, deadline budgets, circuit breakers per method rung and
idempotent request keys.  ``evaluate_batch_farm`` shards the same batch
across the solve farm's durable work queue.  See DESIGN.md §8.
"""

from repro.service.batch import (ADMISSION, AdmissionController,
                                 BatchPolicy, BatchResult, batch_jobs,
                                 batch_bench_record, evaluate_batch,
                                 evaluate_batch_farm, shard_requests)
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.request import (Envelope, METHODS, Request,
                                   canonical_request, request_key,
                                   validate_request)

__all__ = ["ADMISSION", "AdmissionController", "BatchPolicy",
           "BatchResult", "BreakerBoard", "BreakerPolicy", "Envelope",
           "METHODS", "Request", "batch_bench_record", "batch_jobs",
           "canonical_request", "evaluate_batch",
           "evaluate_batch_farm", "request_key", "shard_requests",
           "validate_request"]
