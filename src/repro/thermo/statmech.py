"""Statistical-mechanics thermodynamics for single species.

Everything is derived from the molecular constants in
:mod:`repro.thermo.species` with the rigid-rotor / harmonic-oscillator /
electronic-level (RRHO+E) model:

* translation — classical (Sackur–Tetrode entropy),
* rotation — classical limit (valid above a few θ_rot; only H2 at cryogenic
  temperatures falls outside the intended envelope),
* vibration — quantum harmonic oscillator per mode, energy measured from the
  zero-point level (the zero-point offset is folded into the 0 K formation
  enthalpy),
* electronic — explicit low-lying level sums.

Energies are referenced so that ``h(T=0) == hf0`` for every species, which
makes reaction enthalpies, equilibrium constants and kinetics backward rates
mutually consistent by construction.

All public methods are vectorised over temperature (scalar in → scalar-like
0-d array out; array in → array out) and return **molar** quantities
(J/mol/K, J/mol).  Per-mass helpers divide by the molar mass.
"""

from __future__ import annotations

import numpy as np

from repro.constants import H_PLANCK, K_BOLTZMANN, N_AVOGADRO, R_UNIVERSAL
from repro.thermo.species import Species, SpeciesDB

__all__ = ["P_STANDARD", "SpeciesThermo", "ThermoSet"]

#: Standard-state pressure for Gibbs functions and Kp [Pa].
P_STANDARD = 1.0e5

_R = R_UNIVERSAL


def _as_T(T):
    """Coerce temperature input to a positive float array."""
    t = np.asarray(T, dtype=float)
    return np.maximum(t, 1.0e-3)


class SpeciesThermo:
    """Thermodynamic property evaluator for one species."""

    def __init__(self, species: Species):
        self.sp = species
        self.M = species.molar_mass
        m_kg = self.M / N_AVOGADRO
        # ln of the translational partition-function prefactor:
        # q_tr/V = (2 pi m k T / h^2)^{3/2};  store ln[(2 pi m k / h^2)^{3/2}]
        # catlint: disable=CAT001 -- argument is a product of positive
        # physical constants and the species mass
        self._ln_qtr_pref = 1.5 * np.log(
            2.0 * np.pi * m_kg * K_BOLTZMANN / H_PLANCK**2)
        lv = species.elec_levels or ((1, 0.0),)
        self._g_el = np.array([g for g, _ in lv], dtype=float)
        self._th_el = np.array([t for _, t in lv], dtype=float)
        self._vib = tuple(species.vib_modes)
        geom = species.geometry
        # rotational degrees of freedom: an exact small integer (0, 2
        # or 3), kept as int so branches compare exactly (CAT010)
        if geom == "atom":
            self._rot_dof = 0
            self._ln_qrot_pref = None
        elif geom == "linear":
            self._rot_dof = 2
            th = species.theta_rot[0]
            # catlint: disable=CAT001 -- symmetry number and theta_rot
            # are positive species constants
            self._ln_qrot_pref = -np.log(species.sigma_sym * th)
        else:
            self._rot_dof = 3
            ta, tb, tc = species.theta_rot
            # catlint: disable=CAT001 -- positive species constants
            self._ln_qrot_pref = (0.5 * np.log(np.pi / (ta * tb * tc))
                                  - np.log(species.sigma_sym))

    # -- per-mode pieces -----------------------------------------------------

    def _vib_e(self, T):
        """Vibrational energy above the zero point [J/mol]."""
        T = _as_T(T)
        e = np.zeros_like(T)
        for th, g in self._vib:
            x = th / T
            e += g * _R * th / np.expm1(np.clip(x, 1e-12, 500.0))
        return e

    def _vib_cv(self, T):
        T = _as_T(T)
        cv = np.zeros_like(T)
        for th, g in self._vib:
            x = np.clip(th / T, 1e-12, 250.0)
            ex = np.exp(x)
            cv += g * _R * x * x * ex / (ex - 1.0) ** 2
        return cv

    def _vib_lnq(self, T):
        T = _as_T(T)
        lnq = np.zeros_like(T)
        for th, g in self._vib:
            x = np.clip(th / T, 1e-12, 500.0)
            # catlint: disable=CAT001 -- x in [1e-12, 500] so
            # -expm1(-x) lies in (0, 1)
            lnq += -g * np.log(-np.expm1(-x))
        return lnq

    def _elec_moments(self, T):
        """Return (q_el, <θ>, <θ²>) Boltzmann-weighted over levels."""
        T = _as_T(T)
        # shape: levels x T...
        x = self._th_el.reshape((-1,) + (1,) * T.ndim) / T
        w = self._g_el.reshape((-1,) + (1,) * T.ndim) * np.exp(
            -np.clip(x, 0.0, 500.0))
        q = np.sum(w, axis=0)
        th = self._th_el.reshape((-1,) + (1,) * T.ndim)
        m1 = np.sum(w * th, axis=0) / q
        m2 = np.sum(w * th * th, axis=0) / q
        return q, m1, m2

    # -- public API ------------------------------------------------------------

    def cp(self, T):
        """Molar heat capacity at constant pressure [J/(mol K)]."""
        T = _as_T(T)
        q, m1, m2 = self._elec_moments(T)
        cv_el = _R * (m2 - m1 * m1) / T**2
        return (2.5 * _R + 0.5 * self._rot_dof * _R + self._vib_cv(T)
                + cv_el)

    def cv(self, T):
        """Molar heat capacity at constant volume [J/(mol K)]."""
        return self.cp(T) - _R

    def h(self, T):
        """Molar enthalpy, including formation enthalpy [J/mol].

        Referenced so h(0 K) = hf0.
        """
        T = _as_T(T)
        q, m1, _ = self._elec_moments(T)
        e_el = _R * m1
        return (self.sp.hf0 + 2.5 * _R * T + 0.5 * self._rot_dof * _R * T
                + self._vib_e(T) + e_el)

    def e(self, T):
        """Molar internal energy [J/mol]."""
        return self.h(T) - _R * _as_T(T)

    def s(self, T, p=P_STANDARD):
        """Molar entropy at temperature T and pressure p [J/(mol K)]."""
        T = _as_T(T)
        p = np.maximum(np.asarray(p, dtype=float), 1.0e-300)
        ln_qtr = (self._ln_qtr_pref + 1.5 * np.log(T)
                  + np.log(K_BOLTZMANN * T / p))
        s_tr = _R * (ln_qtr + 2.5)
        if self._rot_dof == 0:
            s_rot = np.zeros_like(T)
        elif self._rot_dof == 2:
            s_rot = _R * (self._ln_qrot_pref + np.log(T) + 1.0)
        else:
            s_rot = _R * (self._ln_qrot_pref + 1.5 * np.log(T) + 1.5)
        s_vib = _R * self._vib_lnq(T) + self._vib_e(T) / T
        q, m1, _ = self._elec_moments(T)
        # catlint: disable=CAT001 -- q >= g_ground * exp(-500) > 0
        s_el = _R * np.log(q) + _R * m1 / T
        return s_tr + s_rot + s_vib + s_el

    def g0(self, T):
        """Standard-state molar Gibbs function g0 = h - T s(T, p0) [J/mol]."""
        T = _as_T(T)
        return self.h(T) - T * self.s(T, P_STANDARD)

    def gibbs(self, T, p):
        """Molar Gibbs function of the pure gas at (T, p) [J/mol]."""
        T = _as_T(T)
        return self.h(T) - T * self.s(T, p)

    # -- two-temperature split ---------------------------------------------

    def h_tr_rot(self, T):
        """Translational+rotational enthalpy (incl. formation) [J/mol].

        This is the heavy-particle-temperature part of the two-temperature
        split; vibration and electronic excitation live at Tv.
        """
        T = _as_T(T)
        return self.sp.hf0 + (2.5 + 0.5 * self._rot_dof) * _R * T

    def cp_tr_rot(self, T):
        T = _as_T(T)
        return np.full_like(T, (2.5 + 0.5 * self._rot_dof) * _R)

    def e_vib_el(self, Tv):
        """Vibrational-electronic molar energy at vibrational temp Tv."""
        Tv = _as_T(Tv)
        q, m1, _ = self._elec_moments(Tv)
        return self._vib_e(Tv) + _R * m1

    def cv_vib_el(self, Tv):
        """d e_vib_el / dTv [J/(mol K)]."""
        Tv = _as_T(Tv)
        q, m1, m2 = self._elec_moments(Tv)
        return self._vib_cv(Tv) + _R * (m2 - m1 * m1) / Tv**2

    # -- per-mass conveniences -----------------------------------------------

    def cp_mass(self, T):
        """Specific heat at constant pressure [J/(kg K)]."""
        return self.cp(T) / self.M

    def h_mass(self, T):
        """Specific enthalpy [J/kg]."""
        return self.h(T) / self.M

    def e_mass(self, T):
        """Specific internal energy [J/kg]."""
        return self.e(T) / self.M

    def e_vib_el_mass(self, Tv):
        """Specific vibrational-electronic energy [J/kg]."""
        return self.e_vib_el(Tv) / self.M

    def cv_vib_el_mass(self, Tv):
        return self.cv_vib_el(Tv) / self.M


class ThermoSet:
    """Batch evaluator over a whole :class:`~repro.thermo.species.SpeciesDB`.

    Methods return arrays with a trailing species axis: input T of shape
    ``S`` produces output of shape ``S + (n_species,)``.  This is the layout
    the equilibrium solver and kinetics use (cells × species, C-contiguous in
    species — the short, vectorised axis).
    """

    def __init__(self, db: SpeciesDB):
        self.db = db
        self.each = tuple(SpeciesThermo(sp) for sp in db.species)

    def _stack(self, fn_name: str, T):
        T = np.asarray(T, dtype=float)
        out = np.empty(T.shape + (self.db.n,), dtype=float)
        for j, st in enumerate(self.each):
            out[..., j] = getattr(st, fn_name)(T)
        return out

    def cp(self, T):
        """Molar cp per species, shape (..., n)."""
        return self._stack("cp", T)

    def h(self, T):
        """Molar enthalpy per species (incl. formation), shape (..., n)."""
        return self._stack("h", T)

    def e(self, T):
        return self._stack("e", T)

    def s0(self, T):
        """Standard-state entropy per species, shape (..., n)."""
        return self._stack("s", T)

    def g0(self, T):
        """Standard-state Gibbs per species, shape (..., n)."""
        return self._stack("g0", T)

    def g0_over_RT(self, T):
        """Dimensionless standard Gibbs g0/(R T), shape (..., n)."""
        T = np.asarray(T, dtype=float)
        return self.g0(T) / (_R * T[..., None])

    def h_mass(self, T):
        """Specific enthalpy per species [J/kg], shape (..., n)."""
        return self.h(T) / self.db.molar_mass

    def e_mass(self, T):
        return self.e(T) / self.db.molar_mass

    def cp_mass(self, T):
        return self.cp(T) / self.db.molar_mass

    def cv_mass(self, T):
        return (self.cp(T) - _R) / self.db.molar_mass

    def e_vib_el_mass(self, Tv):
        return self._stack("e_vib_el", Tv) / self.db.molar_mass

    def cv_vib_el_mass(self, Tv):
        return self._stack("cv_vib_el", Tv) / self.db.molar_mass

    def h_tr_rot_mass(self, T):
        return self._stack("h_tr_rot", T) / self.db.molar_mass
