"""Structured grid generation and metrics.

"Efficient grid-generation and solution-adaptive techniques will be
necessary to optimize the use of memory even on future supercomputers" —
this subpackage provides the algebraic blunt-body grid generator the 2-D
solvers run on, clustering (stretching) functions, finite-volume metrics,
and a 1-D solution-adaptive redistribution tool.
"""

from repro.grid.stretching import (geometric_stretch, roberts_cluster,
                                   tanh_cluster)
from repro.grid.structured import StructuredGrid2D
from repro.grid.algebraic import blunt_body_grid, normal_ray_grid
from repro.grid.adaptation import adapt_1d

__all__ = ["geometric_stretch", "roberts_cluster", "tanh_cluster",
           "StructuredGrid2D", "blunt_body_grid", "normal_ray_grid",
           "adapt_1d"]
