"""Benchmark-suite configuration.

Every figure benchmark runs its experiment once (rounds=1) — these are
solver-scale reproductions, not microsecond kernels — and prints the
series the paper's figure reports (visible with ``pytest -s`` and
recorded in bench_output.txt).

Per-kernel timings use the ``kernel_bench`` fixture instead of
pytest-benchmark: it needs no plugin (CI runs the bare scientific
stack), and everything it records is flushed to one JSON artifact at
session end — ``BENCH_kernels.json``, the ROADMAP item-2 perf
trajectory.  Enable the artifact with ``--bench-kernels-json PATH`` or
``BENCH_KERNELS_JSON=PATH``.
"""

import json
import os
import time

import pytest

#: kernel name -> timing record, accumulated across the session.
_KERNEL_RECORDS = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-kernels-json", default=None, metavar="PATH",
        help="write per-kernel timings (kernel_bench fixture) to PATH")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return _run


@pytest.fixture
def kernel_bench(request):
    """Time a kernel and record it for ``BENCH_kernels.json``.

    ``result = kernel_bench(fn, *args, label=..., meta=..., **kwargs)``
    warms the kernel up once, then runs it repeatedly until ~0.2 s of
    clock (at least 3, at most 200 rounds) and records min/median/mean
    seconds per call under ``label`` (default: the test name minus its
    ``test_bench_`` prefix).  ``meta`` merges extra keys (sizes,
    derived speedups) into the record.  Returns the kernel's last
    result so the test can assert on it.
    """

    def _run(fn, *args, label=None, meta=None, min_time=0.2,
             max_rounds=200, **kwargs):
        name = label or request.node.name.replace("test_bench_", "")
        result = fn(*args, **kwargs)          # warmup, untimed
        times = []
        deadline = time.perf_counter() + min_time
        while len(times) < max_rounds:
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            times.append(time.perf_counter() - t0)
            if len(times) >= 3 and time.perf_counter() >= deadline:
                break
        times.sort()
        record = {
            "min_s": times[0],
            "median_s": times[len(times) // 2],
            "mean_s": sum(times) / len(times),
            "rounds": len(times),
        }
        if meta:
            record.update(meta)
        _KERNEL_RECORDS[name] = record
        return result

    return _run


@pytest.fixture
def kernel_records():
    """Direct access to the session's accumulated kernel records."""
    return _KERNEL_RECORDS


def _kernels_json_path(config):
    return (config.getoption("--bench-kernels-json")
            or os.environ.get("BENCH_KERNELS_JSON"))


def pytest_sessionfinish(session, exitstatus):
    path = _kernels_json_path(session.config)
    if not path or not _KERNEL_RECORDS:
        return
    doc = {
        "schema": "bench-kernels/1",
        "unit": "seconds per call",
        "kernels": dict(sorted(_KERNEL_RECORDS.items())),
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
