"""Fig. 4 — Bow-shock shape: reacting versus ideal gas.

The Ref. 16 Orbiter result at V = 6.7 km/s, h = 65.5 km, alpha = 30 deg:
the equilibrium (reacting) shock hugs the body while the ideal-gas shock
stands well away — the density-ratio effect of real-gas chemistry.

We run the axisymmetric shock-capturing Euler solver on the equivalent
nose geometry in both gas modes and extract the captured shock loci.

With ``persist_dir`` each of the two marches checkpoints durably (one
subdirectory per gas mode) and resumes from its latest valid snapshot,
so a killed figure run continues mid-march instead of starting over.
"""

from __future__ import annotations

import os

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.core.gas import IdealGasEOS, TabulatedEOS
from repro.geometry import Sphere
from repro.grid import blunt_body_grid
from repro.postprocess.ascii_plot import ascii_plot
from repro.solvers.euler2d import AxisymmetricEulerSolver

__all__ = ["run", "main", "CONDITION"]

#: Fig. 4 flight condition.
CONDITION = dict(V=6700.0, h=65500.0, alpha_deg=30.0, nose_radius=1.3)


def _solve_one(eos, rho, V, p, *, density_ratio, quick, persist_dir=None):
    body = Sphere(CONDITION["nose_radius"])
    grid = blunt_body_grid(body,
                           n_s=31 if quick else 41,
                           n_normal=45 if quick else 61,
                           density_ratio=density_ratio, margin=2.8)
    s = AxisymmetricEulerSolver(grid, eos)
    s.set_freestream(rho, V, p)
    s.run(n_steps=1200 if quick else 2500, cfl=0.35,
          persist=persist_dir)
    xs, ys = s.shock_location()
    return s, xs, ys


def run(quick: bool = False, persist_dir: str | None = None) -> dict:
    atm = EarthAtmosphere()
    rho = float(atm.density(CONDITION["h"]))
    T = float(atm.temperature(CONDITION["h"]))
    p = rho * atm.gas_constant * T
    V = CONDITION["V"]
    sub = (lambda mode: None if persist_dir is None
           else os.path.join(persist_dir, mode))
    s_id, xs_id, ys_id = _solve_one(IdealGasEOS(1.4), rho, V, p,
                                    density_ratio=0.17, quick=quick,
                                    persist_dir=sub("ideal"))
    s_eq, xs_eq, ys_eq = _solve_one(TabulatedEOS(), rho, V, p,
                                    density_ratio=0.07, quick=quick,
                                    persist_dir=sub("equilibrium"))
    return {
        "ideal": {"x": xs_id, "y": ys_id,
                  "standoff": s_id.stagnation_standoff()},
        "equilibrium": {"x": xs_eq, "y": ys_eq,
                        "standoff": s_eq.stagnation_standoff()},
        "condition": CONDITION,
        "standoff_ratio": (s_id.stagnation_standoff()
                           / s_eq.stagnation_standoff()),
    }


def main(quick: bool = True, persist_dir: str | None = None) -> str:
    res = run(quick, persist_dir=persist_dir)
    series = []
    for name in ("ideal", "equilibrium"):
        d = res[name]
        ok = np.isfinite(d["x"])
        series.append((d["x"][ok], d["y"][ok], name))
    txt = ascii_plot(series,
                     title="Fig. 4 - bow shock loci (x vs r) [m]",
                     xlabel="x [m]", ylabel="r [m]")
    txt += (f"\nstandoff: ideal {res['ideal']['standoff']:.3f} m, "
            f"equilibrium {res['equilibrium']['standoff']:.3f} m "
            f"(ratio {res['standoff_ratio']:.2f}; the reacting shock "
            f"wraps the body)")
    return txt


if __name__ == "__main__":
    print(main())
