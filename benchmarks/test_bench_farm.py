"""Benchmark: solve-farm throughput and scheduling overhead.

Two perf trajectories for ROADMAP item 2, both written to
``BENCH_farm.json`` (the same record the CI ``farm-smoke`` job uploads
via ``python -m repro campaign --bench``):

* **scheduling throughput** — a burst of near-zero-work jobs measures
  the queue's requests/sec ceiling (claim + sandbox spawn + fenced
  commit per job) at several worker counts;
* **suite scaling** — a figure-shaped workload (the three fast figures,
  farm vs serial) quantifies what ``figures --farm -j N`` buys over the
  serial runner.

The full 9-figure -j 1 vs -j N wall-clock comparison runs in CI through
``campaign --figures --compare-serial`` (no pytest-benchmark there);
this module keeps the local, repeatable version of the same numbers.
"""

import json
import os

from repro.resilience.farm import (FarmPolicy, audit_exactly_once,
                                   bench_from_journal, build_ledger,
                                   run_campaign, write_bench_json)
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue

BENCH_PATH = os.environ.get("BENCH_FARM_JSON", "BENCH_farm.json")


def _burst(tmp_path, n_jobs, n_workers, tag):
    jobs = [Job(id=f"j{i}", kind="sleep", payload={"duration": 0.01})
            for i in range(n_jobs)]
    queue_dir = tmp_path / f"q-{tag}"
    policy = FarmPolicy(n_workers=n_workers, poll_interval=0.05,
                        backoff=BackoffPolicy(max_attempts=2))
    ledger = run_campaign(queue_dir, jobs, policy=policy,
                          label=f"bench-{tag}")
    assert ledger["ok"], ledger
    return bench_from_journal(WorkQueue(queue_dir),
                              wall_time=ledger["wall_time"],
                              n_workers=n_workers)


def test_bench_farm_throughput(once, tmp_path):
    """Requests/sec of the scheduling path itself at -j 1/2/4."""
    results = once(lambda: {j: _burst(tmp_path, 24, j, f"t{j}")
                            for j in (1, 2, 4)})
    print("\nfarm scheduling throughput (24 near-empty jobs):")
    for j, rec in results.items():
        print(f"  -j {j}: {rec['requests_per_s']:8.2f} req/s, "
              f"per-job latency mean "
              f"{rec['per_job_latency_s']['mean'] * 1e3:7.1f} ms, "
              f"p50 {rec['per_job_latency_s']['p50'] * 1e3:7.1f} ms")
        assert rec["jobs_done"] == 24
        assert rec["requests_per_s"] > 0.5  # sandbox spawn dominates

    record = {"bench": "farm",
              "throughput_by_workers": {
                  str(j): rec for j, rec in results.items()}}
    write_bench_json(BENCH_PATH, record)
    print(f"  -> {BENCH_PATH}")
    assert json.load(open(BENCH_PATH))["throughput_by_workers"]["4"]


def test_bench_farm_figures_vs_serial(once, tmp_path):
    """Wall-clock of a figure workload, farm -j 2 vs serial in-process.

    Uses the three cheapest figures so the benchmark stays minutes-free
    locally; CI measures the full nine via ``--compare-serial``.
    """
    import io
    import time

    from repro.experiments import (fig1_flight_domain,
                                   fig4_shock_shape,
                                   fig5_orbiter_geometry)

    mods = [fig1_flight_domain, fig4_shock_shape, fig5_orbiter_geometry]

    def serial():
        t0 = time.monotonic()
        for mod in mods:
            mod.main(quick=True)
        return time.monotonic() - t0

    def farm():
        jobs = [Job(id=f"f{i}", kind="figure",
                    payload={"module": m.__name__.rsplit(".", 1)[1],
                             "quick": True})
                for i, m in enumerate(mods)]
        t0 = time.monotonic()
        ledger = run_campaign(tmp_path / "q-fig", jobs,
                              policy=FarmPolicy(n_workers=2),
                              label="bench-figures",
                              stream=io.StringIO())
        assert ledger["ok"] and ledger["jobs"] == {"done": 3}, ledger
        return time.monotonic() - t0

    t_serial, t_farm = once(lambda: (serial(), farm()))
    print(f"\n3-figure workload: serial {t_serial:.2f} s, "
          f"farm -j 2 {t_farm:.2f} s "
          f"(ratio {t_serial / t_farm:.2f}x)")
    # the farm must stay within sandbox-spawn overhead of serial even
    # on a single-core container; real speedup shows up with cores
    assert t_farm < 10 * t_serial + 30.0


def test_bench_journal_rotation_compaction(once, tmp_path):
    """Journal read cost before vs after size-triggered compaction.

    A long multi-host campaign accumulates rotated segments; ledger
    rebuilds and the exactly-once audit re-read the whole stream, so
    compaction's payoff is measured here as read_journal wall time.
    """
    import time

    def run():
        q = WorkQueue(tmp_path / "q-rot", backoff=BackoffPolicy(),
                      rotate_bytes=4096, fsync=False)
        for i in range(150):
            q.enqueue(Job(id=f"j{i:03d}", kind="sleep"))
        while True:
            got = q.claim("bench:0")
            if got is None:
                break
            job, lease = got
            q.complete(job, lease, {"ok": True})
        t0 = time.perf_counter()
        n_before = len(q.read_journal())
        t_read_before = time.perf_counter() - t0
        ledger_before = build_ledger(q, wall_time=1.0, label="rot",
                                     n_workers=1)
        t0 = time.perf_counter()
        absorbed = q.compact_journal()
        t_compact = time.perf_counter() - t0
        t0 = time.perf_counter()
        n_after = len(q.read_journal())
        t_read_after = time.perf_counter() - t0
        ledger_after = build_ledger(q, wall_time=1.0, label="rot",
                                    n_workers=1)
        audit = audit_exactly_once(q)
        return {"absorbed": absorbed, "n_before": n_before,
                "n_after": n_after, "read_before_ms": t_read_before * 1e3,
                "read_after_ms": t_read_after * 1e3,
                "compact_ms": t_compact * 1e3,
                "jobs_before": ledger_before["jobs"],
                "jobs_after": ledger_after["jobs"], "audit": audit}

    rec = once(run)
    print(f"\njournal compaction (150 jobs, 4 KiB segments): "
          f"{rec['absorbed']} segment(s) absorbed in "
          f"{rec['compact_ms']:.1f} ms; read_journal "
          f"{rec['n_before']} rec / {rec['read_before_ms']:.1f} ms -> "
          f"{rec['n_after']} rec / {rec['read_after_ms']:.1f} ms")
    assert rec["absorbed"] > 0
    assert rec["jobs_before"] == rec["jobs_after"] == {"done": 150}
    assert rec["audit"]["ok"] and rec["audit"]["jobs_completed"] == 150
