"""Deterministic fault injection for resilience testing.

Recovery code that is never exercised is recovery code that does not
work.  A :class:`FaultInjector` arms a scripted set of faults — NaNs or
multiplicative perturbations in the conserved field at chosen steps and
cells, or corrupted Newton initial guesses in the equilibrium solver at
chosen calls and batch indices — and the supervised marching loops apply
them at exactly the scripted moment.  Every fault is deterministic and
logged, so a test can assert both that the fault fired and that the
recovery path survived it.

By default a fault fires **once** (a transient upset: the model for a
cosmic-ray bitflip or a one-off bad thermodynamic state); a rollback
therefore retries a clean trajectory.  ``persistent=True`` faults re-fire
on every matching step and model a reproducible defect that retries
cannot clear — the path that must end in a :class:`FailureReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Fault", "FaultInjector"]


@dataclass
class Fault:
    """One scripted fault."""

    kind: str                     #: "nan" | "perturb" | "newton"
    step: int | None = None       #: marching step to fire at (nan/perturb)
    cell: tuple | int | None = None
    component: int = 0
    factor: float = 10.0          #: multiplier for "perturb"
    call: int = 0                 #: Newton call index to fire at ("newton")
    cells: tuple = ()             #: batch indices to poison ("newton")
    value: float = 120.0          #: poisoned element potential ("newton")
    persistent: bool = False
    fired: int = 0


class FaultInjector:
    """Deterministic, scripted fault source shared by the supervised
    loops (flow-state faults) and the equilibrium solver (Newton
    faults)."""

    def __init__(self):
        self.faults: list[Fault] = []
        self.log: list[dict] = []
        self._newton_calls = 0

    # -- arming ---------------------------------------------------------

    def inject_nan(self, *, step, cell, component=0, persistent=False):
        """Poison one state component of one cell with NaN after the
        given marching step completes."""
        self.faults.append(Fault(kind="nan", step=int(step), cell=cell,
                                 component=int(component),
                                 persistent=persistent))
        return self

    def inject_perturbation(self, *, step, cell, component=0, factor=10.0,
                            persistent=False):
        """Scale one state component of one cell by ``factor`` after the
        given marching step completes."""
        self.faults.append(Fault(kind="perturb", step=int(step), cell=cell,
                                 component=int(component),
                                 factor=float(factor),
                                 persistent=persistent))
        return self

    def inject_newton_failure(self, *, call=0, cells=(), value=120.0,
                              persistent=False):
        """Corrupt the equilibrium Newton initial guess (element
        potentials) for the given batch indices at the given solver call
        (0 = the next top-level ``solve_rho_T``)."""
        self.faults.append(Fault(kind="newton", call=int(call),
                                 cells=tuple(int(c) for c in cells),
                                 value=float(value),
                                 persistent=persistent))
        return self

    # -- firing ---------------------------------------------------------

    @staticmethod
    def _index(cell, component):
        idx = cell if isinstance(cell, tuple) else (int(cell),)
        return idx + (int(component),)

    def apply(self, solver) -> bool:
        """Fire any armed flow-state faults matching ``solver.steps``.

        Mutates ``solver.U`` in place; returns True when something fired.
        """
        fired = False
        step = int(getattr(solver, "steps", 0) or 0)
        for f in self.faults:
            if f.kind not in ("nan", "perturb") or f.step != step:
                continue
            if f.fired and not f.persistent:
                continue
            idx = self._index(f.cell, f.component)
            if f.kind == "nan":
                solver.U[idx] = np.nan
            else:
                solver.U[idx] = solver.U[idx] * f.factor
            f.fired += 1
            fired = True
            self.log.append({"kind": f.kind, "step": step,
                             "cell": f.cell, "component": f.component})
        return fired

    def corrupt_lambda(self, lam: np.ndarray) -> np.ndarray:
        """Fire armed Newton faults against a batch of initial element
        potentials (called once per top-level equilibrium solve)."""
        call = self._newton_calls
        self._newton_calls += 1
        out = lam
        for f in self.faults:
            if f.kind != "newton" or f.call != call:
                continue
            if f.fired and not f.persistent:
                continue
            out = np.array(out, dtype=float)
            cells = [c for c in f.cells if c < out.shape[0]]
            out[cells] = f.value
            f.fired += 1
            self.log.append({"kind": "newton", "call": call,
                             "cells": tuple(cells)})
        return out

    # -- bookkeeping ----------------------------------------------------

    @property
    def n_fired(self) -> int:
        return len(self.log)

    def reset(self):
        """Re-arm every fault and clear the log."""
        for f in self.faults:
            f.fired = 0
        self.log.clear()
        self._newton_calls = 0
        return self
