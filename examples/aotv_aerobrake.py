"""AOTV aerobraking-pass analysis (the paper's motivating vehicle).

Simulates an aeroassisted orbital transfer vehicle's atmospheric pass:
integrates the shallow aerobraking trajectory, evaluates the aerothermal
environment along it (convective heating by Fay–Riddell-class similarity,
radiative heating by Tauber–Sutton), and reports the conditions a TPS
designer needs: peak heating, total heat load, peak dynamic pressure, and
the altitude/velocity corridor — the "extended periods of hypervelocity
flight at high altitudes" regime the paper calls the hardest to simulate
in ground facilities.

Run:  python examples/aotv_aerobrake.py
"""

import numpy as np

from repro.atmosphere import EarthAtmosphere
from repro.heating import sutton_graves_heating
from repro.postprocess.ascii_plot import ascii_plot
from repro.postprocess.tables import format_table
from repro.radiation import tauber_sutton_radiative
from repro.trajectory import AOTV, integrate_entry


def main():
    atm = EarthAtmosphere()
    tr = integrate_entry(AOTV, atm, h0=122e3, V0=9800.0,
                         gamma0_deg=-4.7, t_max=1500.0)
    tr = tr.resample(400)
    q_conv = sutton_graves_heating(tr.rho, tr.V, AOTV.nose_radius)
    q_rad = tauber_sutton_radiative(tr.rho, tr.V, AOTV.nose_radius)
    q_total = q_conv + q_rad
    i_pk = int(np.argmax(q_total))
    heat_load = float(np.trapezoid(q_total, tr.t))

    print("AOTV aerobraking pass (entry 9.8 km/s at 122 km, "
          "gamma = -4.7 deg)")
    print(ascii_plot([(tr.t, tr.h / 1e3, "altitude [km]")],
                     xlabel="time [s]", ylabel="h [km]", height=12))
    print(ascii_plot(
        [(tr.t, q_conv / 1e4, "convective"),
         (tr.t, np.maximum(q_rad, 1.0) / 1e4, "radiative")],
        xlabel="time [s]", ylabel="q [W/cm^2]", height=14))
    rows = [
        ("perigee altitude [km]", float(tr.h.min() / 1e3)),
        ("exit velocity [m/s]", float(tr.V[-1])),
        ("velocity depletion [m/s]", float(tr.V[0] - tr.V[-1])),
        ("peak convective q [W/cm^2]", float(q_conv.max() / 1e4)),
        ("peak radiative q [W/cm^2]", float(q_rad.max() / 1e4)),
        ("peak total q [W/cm^2]", float(q_total[i_pk] / 1e4)),
        ("time of peak heating [s]", float(tr.t[i_pk])),
        ("integrated heat load [J/cm^2]", heat_load / 1e4),
        ("peak dynamic pressure [kPa]",
         float(tr.dynamic_pressure.max() / 1e3)),
        ("peak Mach number", float(tr.mach.max())),
    ]
    print(format_table(["quantity", "value"], rows, floatfmt=".4g"))
    if tr.h[-1] > tr.h[0]:
        print("\nPass outcome: vehicle exited the atmosphere "
              "(aerobraking succeeded).")
    else:
        print("\nPass outcome: vehicle was captured (descent continued).")


if __name__ == "__main__":
    main()
