"""Typed batch requests, canonical idempotency keys, outcome envelopes.

A batch request is a plain JSON-able dict::

    {"method": "heat_point", "V": 7200.0, "h": 55e3, "nose_radius": 1.3}

``method`` selects an entry in :data:`METHODS`; every other field is
validated against the method's spec *up front*, before any physics
runs, so one malformed request can never abort the batch.  Validation
failures become typed per-request :class:`~repro.errors.InputError`
records inside a ``failed`` :class:`Envelope` — never exceptions.

Idempotency: :func:`request_key` is the sha256 of the canonicalized
request (client-side tags dropped, keys sorted, numbers normalized).
Two requests asking the same physical question share a key, which the
batch engine uses to dedup within a batch and the farm uses for safe
retry across preemption.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.core.api import GAS_MODELS
from repro.errors import InputError

__all__ = ["METHODS", "MethodSpec", "Request", "Envelope",
           "canonical_request", "request_key", "validate_request",
           "FAULT_KINDS"]

#: Fault kinds a chaos/test request may carry (``allow_faults`` only).
#: "hang" and "crash" are only honored inside a sandboxed child.
FAULT_KINDS = ("hang", "crash", "fail", "nan", "slow")

#: Fields that never affect the physical answer and are dropped from
#: the canonical form (client-side correlation tags).
_VOLATILE_FIELDS = ("id", "tag")


@dataclass(frozen=True)
class MethodSpec:
    """What the front door knows about one evaluation method.

    Attributes
    ----------
    rungs:
        Model ladder, best first.  The batch engine walks it downward
        on failure (and skips rungs whose circuit breaker is open).
    heavy:
        True when the top rung is a full solver (VSL / PNS) that can
        hang — under ``isolate="auto"`` such requests run sandboxed
        with a preemptive per-request deadline.
    fields:
        ``name -> (required, lo, hi)`` numeric-field spec.  Bounds are
        inclusive; ``None`` means unbounded on that side.
    has_gas:
        Whether the request may carry a ``gas`` name (validated against
        :data:`repro.core.api.GAS_MODELS`).
    """

    rungs: tuple
    heavy: bool
    fields: dict
    has_gas: bool = True


METHODS = {
    "stagnation": MethodSpec(
        rungs=("vsl", "correlation"), heavy=True,
        fields={"V": (True, 1.0, 2.0e4), "h": (True, -500.0, 2.0e5),
                "nose_radius": (True, 1.0e-3, 50.0),
                "T_wall": (False, 100.0, 5000.0)}),
    "stagnation_correlation": MethodSpec(
        rungs=("correlation",), heavy=False,
        fields={"V": (True, 1.0, 2.0e4), "h": (True, -500.0, 2.0e5),
                "nose_radius": (True, 1.0e-3, 50.0)}),
    "windward": MethodSpec(
        rungs=("pns", "correlation"), heavy=True,
        fields={"V": (True, 1.0, 2.0e4), "h": (True, -500.0, 2.0e5),
                "alpha_deg": (True, -60.0, 60.0),
                "nose_radius": (False, 1.0e-3, 50.0),
                "length": (False, 0.1, 200.0)}),
    "heat_point": MethodSpec(
        rungs=("correlation",), heavy=False,
        fields={"V": (True, 0.0, 2.0e4), "h": (True, -500.0, 2.0e5),
                "nose_radius": (True, 1.0e-3, 50.0)}),
    "equilibrium_composition": MethodSpec(
        rungs=("gibbs",), heavy=False,
        fields={"T": (True, 200.0, 3.0e4), "p": (True, 1.0e-2, 1.0e9)}),
}


@dataclass
class Request:
    """A validated request, ready for execution."""

    index: int
    key: str
    method: str
    params: dict
    fault: dict | None = None
    deadline: float | None = None

    @property
    def spec(self) -> MethodSpec:
        return METHODS[self.method]

    @property
    def condition_class(self) -> str:
        """Breaker scoping: requests of one method and gas share a
        breaker cell (a sick solver is sick for the whole class)."""
        return str(self.params.get("gas", "-"))


@dataclass
class Envelope:
    """Per-request outcome record — exactly one per request, always.

    ``status`` is ``"ok"`` (top rung answered), ``"degraded"`` (a lower
    rung answered; ``degradation`` wraps the captured failures and
    ``rung`` names the rung that produced ``result``) or ``"failed"``
    (``error`` carries the typed record, ``report`` the FailureReport
    dict when the resilience layer produced one).
    """

    index: int
    key: str | None
    method: str | None
    status: str
    rung: str | None = None
    result: dict | None = None
    error: dict | None = None
    report: dict | None = None
    degradation: list = field(default_factory=list)
    routed_by_breaker: bool = False
    deduped_of: int | None = None
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {"index": self.index, "key": self.key,
                "method": self.method, "status": self.status,
                "rung": self.rung, "result": self.result,
                "error": self.error, "report": self.report,
                "degradation": self.degradation,
                "routed_by_breaker": self.routed_by_breaker,
                "deduped_of": self.deduped_of,
                "latency_s": self.latency_s}

    @classmethod
    def from_dict(cls, d: dict) -> "Envelope":
        return cls(**{k: d.get(k) for k in
                      ("index", "key", "method", "status", "rung",
                       "result", "error", "report", "deduped_of")},
                   degradation=d.get("degradation") or [],
                   routed_by_breaker=bool(d.get("routed_by_breaker")),
                   latency_s=float(d.get("latency_s") or 0.0))


def _canonical_value(v):
    if isinstance(v, bool):
        return v
    if isinstance(v, float):
        return float(v)
    if isinstance(v, int):
        return int(v)
    if isinstance(v, dict):
        return {str(k): _canonical_value(v[k]) for k in sorted(v)}
    if isinstance(v, (list, tuple)):
        return [_canonical_value(x) for x in v]
    return v


def canonical_request(raw: dict) -> dict:
    """Canonical form of a request: volatile client tags dropped, keys
    sorted, numbers normalized.  The ``fault`` field (chaos only) stays
    in the key — an injected fault changes the answer."""
    return {str(k): _canonical_value(v) for k, v in sorted(raw.items())
            if k not in _VOLATILE_FIELDS}


def request_key(raw: dict) -> str:
    """sha256 hex digest of the canonicalized request."""
    blob = json.dumps(canonical_request(raw), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _invalid(index: int, raw, problems: list) -> Envelope:
    """Typed InputError record inside a failed envelope — the only
    shape a validation failure ever takes."""
    method = raw.get("method") if isinstance(raw, dict) else None
    key = request_key(raw) if isinstance(raw, dict) else None
    err = InputError("; ".join(problems))
    return Envelope(index=index, key=key,
                    method=method if isinstance(method, str) else None,
                    status="failed",
                    error={"error_type": type(err).__name__,
                           "kind": "invalid", "message": str(err),
                           "problems": list(problems)})


def validate_request(raw, *, index: int,
                     allow_faults: bool = False):
    """Validate one raw request.

    Returns ``(Request, None)`` on success or ``(None, Envelope)`` with
    a typed failed envelope on any problem.  Never raises: every
    malformed input — wrong container type, unknown method, missing or
    out-of-range fields, unexpected fault — becomes a record.
    """
    if not isinstance(raw, dict):
        return None, _invalid(index, raw,
                              [f"request must be an object, got "
                               f"{type(raw).__name__}"])
    problems = []
    method = raw.get("method")
    spec = METHODS.get(method) if isinstance(method, str) else None
    if spec is None:
        problems.append(f"unknown method {method!r}; options: "
                        f"{', '.join(sorted(METHODS))}")
        return None, _invalid(index, raw, problems)

    params = {}
    for name, (required, lo, hi) in spec.fields.items():
        if name not in raw:
            if required:
                problems.append(f"missing required field {name!r}")
            continue
        v = raw[name]
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            problems.append(f"field {name!r} must be a number, got "
                            f"{type(v).__name__}")
            continue
        v = float(v)
        # catlint: disable=PERF003 -- per-field scalar validation of one request dict
        if not math.isfinite(v):
            problems.append(f"field {name!r} must be finite, got {v!r}")
            continue
        if lo is not None and v < lo:
            problems.append(f"field {name!r}={v:g} below {lo:g}")
            continue
        if hi is not None and v > hi:
            problems.append(f"field {name!r}={v:g} above {hi:g}")
            continue
        params[name] = v

    if spec.has_gas:
        gas = raw.get("gas", "equilibrium-air")
        if not isinstance(gas, str) or gas not in GAS_MODELS:
            problems.append(f"unknown gas model {gas!r}; options: "
                            f"{', '.join(sorted(GAS_MODELS))}")
        else:
            params["gas"] = gas

    known = set(spec.fields) | {"method", "gas", "fault", "deadline",
                                *_VOLATILE_FIELDS}
    for name in raw:
        if name not in known:
            problems.append(f"unexpected field {name!r}")

    deadline = raw.get("deadline")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)) or not math.isfinite(
                float(deadline)) or float(deadline) <= 0.0:
            problems.append(f"field 'deadline' must be a positive "
                            f"number, got {deadline!r}")
            deadline = None
        else:
            deadline = float(deadline)

    fault = raw.get("fault")
    if fault is not None:
        if not allow_faults:
            problems.append("'fault' field present but fault injection "
                            "is not enabled for this batch")
        elif (not isinstance(fault, dict)
              or fault.get("kind") not in FAULT_KINDS):
            problems.append(f"bad fault spec {fault!r}; kinds: "
                            f"{', '.join(FAULT_KINDS)}")
        elif fault.get("rung") is not None \
                and fault["rung"] not in spec.rungs:
            problems.append(f"fault rung {fault['rung']!r} not in "
                            f"{method!r} ladder {spec.rungs}")

    if problems:
        return None, _invalid(index, raw, problems)
    return Request(index=index, key=request_key(raw), method=method,
                   params=params, fault=fault, deadline=deadline), None
