"""Tests for the two-temperature gas model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermo.kinetics import park_air_mechanism
from repro.thermo.two_temperature import TwoTemperatureGas


@pytest.fixture(scope="module")
def tt():
    return TwoTemperatureGas("air11", park_air_mechanism("air11"))


def frozen_air(db):
    y = np.zeros((1, db.n))
    y[0, db.index["N2"]] = 0.767
    y[0, db.index["O2"]] = 0.233
    return y


class TestEnergies:
    def test_total_energy_split(self, tt, air11):
        y = frozen_air(air11)
        T = np.array([5000.0])
        # equal temperatures: e_total == equilibrium-thermo e
        from repro.thermo.mixture import MixtureThermo
        mix = MixtureThermo(air11)
        e_ref = mix.e_mass(T, y)
        e_tt = tt.e_total(T, T, y)
        assert np.allclose(e_tt, e_ref, rtol=1e-12)

    def test_ev_zero_at_low_Tv(self, tt, air11):
        y = frozen_air(air11)
        assert float(tt.e_vib_el(np.array([50.0]), y)[0]) < 1.0

    def test_cv_vib_el_positive(self, tt, air11, rng):
        y = frozen_air(air11)
        Tv = rng.uniform(300, 12000, 5)
        assert np.all(tt.cv_vib_el(Tv, np.repeat(y, 5, axis=0)) > 0)


class TestInversions:
    @given(T=st.floats(min_value=300.0, max_value=14000.0),
           Tv=st.floats(min_value=300.0, max_value=14000.0))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, T, Tv):
        tt = TwoTemperatureGas("air11")
        y = frozen_air(tt.db)
        e = tt.e_total(np.array([T]), np.array([Tv]), y)
        ev = tt.e_vib_el(np.array([Tv]), y)
        T2, Tv2 = tt.T_from_e_ev(e, ev, y)
        assert T2[0] == pytest.approx(T, rel=1e-6)
        assert Tv2[0] == pytest.approx(Tv, rel=1e-5)

    def test_Tv_from_ev_batched(self, tt, air11, rng):
        y = np.repeat(frozen_air(air11), 10, axis=0)
        Tv = rng.uniform(500, 10000, 10)
        ev = tt.e_vib_el(Tv, y)
        Tv2 = tt.Tv_from_ev(ev, y)
        assert np.allclose(Tv2, Tv, rtol=1e-5)


class TestLandauTeller:
    def test_sign_convention(self, tt, air11):
        y = frozen_air(air11)
        rho = np.array([0.01])
        hot_T = tt.landau_teller_source(rho, np.array([9000.0]),
                                        np.array([2000.0]), y)
        assert hot_T[0] > 0  # translation heats vibration
        hot_Tv = tt.landau_teller_source(rho, np.array([2000.0]),
                                         np.array([9000.0]), y)
        assert hot_Tv[0] < 0

    def test_zero_at_equilibrium(self, tt, air11):
        y = frozen_air(air11)
        q = tt.landau_teller_source(np.array([0.01]), np.array([6000.0]),
                                    np.array([6000.0]), y)
        assert abs(q[0]) < 1e-6

    def test_scales_with_density(self, tt, air11):
        y = frozen_air(air11)
        q1 = tt.landau_teller_source(np.array([0.001]), np.array([8000.0]),
                                     np.array([3000.0]), y)
        q2 = tt.landau_teller_source(np.array([0.01]), np.array([8000.0]),
                                     np.array([3000.0]), y)
        # tau ~ 1/p so source ~ rho^2 (up to Park correction)
        assert q2[0] > 10 * q1[0]


class TestChemistryCoupling:
    def test_dissociation_removes_vibrational_energy(self, tt, air11):
        # hot frozen air: O2 dissociating, so the pool loses the energy
        # carried by destroyed molecules (negative source at modest Tv
        # once weighted by creation of atoms with no pool energy)
        y = frozen_air(air11)
        q = tt.chemistry_vibration_source(np.array([0.01]),
                                          np.array([8000.0]),
                                          np.array([4000.0]), y)
        assert q[0] < 0

    def test_total_source_composition(self, tt, air11):
        y = frozen_air(air11)
        rho = np.array([0.01])
        T, Tv = np.array([8000.0]), np.array([4000.0])
        total = tt.vibrational_energy_source(rho, T, Tv, y)
        lt = tt.landau_teller_source(rho, T, Tv, y)
        chem = tt.chemistry_vibration_source(rho, T, Tv, y)
        assert total[0] == pytest.approx(lt[0] + chem[0], rel=1e-12)
