"""Chemical-equilibrium composition solver (element-potential method).

The paper's "equilibrium real gas" model assumes reactions are fast enough
that the local thermochemical state is a function of two state variables
only.  This module computes that state for arbitrary mixtures by minimising
Gibbs free energy subject to element (and charge) conservation — the
element-potential / STANJAN formulation, solved with a damped Newton
iteration that is **batched** over many thermodynamic states at once (the
solvers hand in whole grids of cells).

Formulation
-----------
At fixed density and temperature, the equilibrium molar concentration of
species ``j`` is::

    c_j = (p0 / R T) * exp(-g0_j/(R T) + sum_k a_kj lam_k)

where ``a_kj`` is the element-composition matrix (charge appended as an
extra row) and ``lam_k`` are the element potentials — the Newton unknowns.
The constraints are ``sum_j a_kj c_j = rho * b_k`` with ``b_k`` the moles of
element ``k`` per kilogram of mixture.

Fixed-(T, p) states append ``ln rho`` as one extra unknown with the ideal-
mixture pressure equation as the extra constraint; fixed-(rho, e) states run
an outer temperature iteration around the (rho, T) kernel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import R_UNIVERSAL
from repro.errors import ConvergenceError, InputError
from repro.thermo.mixture import MixtureThermo
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import P_STANDARD, ThermoSet

__all__ = ["element_moles", "EquilibriumSolver", "EquilibriumGas"]

_R = R_UNIVERSAL

#: Exponent clip applied to ln(c RT/p0): keeps every intermediate finite in
#: float64 even from a terrible starting guess.
_EXP_CLIP = 500.0

#: Reference homonuclear/reference molecule used to build the "cold" part of
#: the initial element-potential guess.
_REF_MOLECULE = {"N": "N2", "O": "O2", "H": "H2", "C": "C2"}


def element_moles(db: SpeciesDB, y) -> np.ndarray:
    """Moles of each conservation constraint per kg of mixture.

    Parameters
    ----------
    db:
        Species set defining the constraint rows (elements, then charge when
        ions are present).
    y:
        Mass fractions, shape (..., n_species).

    Returns
    -------
    b:
        Shape (..., n_constraints).  The charge row is the net charge in
        mol/kg (zero for any physically sensible input).
    """
    y = np.asarray(y, dtype=float)
    n_moles = y / db.molar_mass  # mol of species per kg
    return n_moles @ db.comp_matrix.T


#: A state counts as converged once its scaled residual is below this.
_CONV_TOL = 1e-6


class EquilibriumSolver:
    """Batched Gibbs-minimisation solver over a fixed species set.

    Failed states do not fail the grid: non-converged cells go through a
    per-cell recovery ladder (cold restart, re-seed from the nearest
    converged neighbour, temperature continuation) before the batch is
    declared failed — and a failure raises a :class:`ConvergenceError`
    enriched with the worst-cell indices and residual trajectories.

    Parameters
    ----------
    db:
        Species set (name or :class:`SpeciesDB`).
    faults:
        Optional :class:`repro.resilience.FaultInjector`; armed Newton
        faults corrupt initial element potentials deterministically so
        tests can exercise the recovery ladder.
    """

    def __init__(self, db: SpeciesDB | str, *, faults=None):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.faults = faults
        self.thermo = ThermoSet(self.db)
        self.mix = MixtureThermo(self.db)
        self._A = self.db.comp_matrix          # (K, n)
        self.K = self._A.shape[0]
        # index of the atomic / reference-molecule species used for guesses
        self._atom_idx: dict[int, int] = {}
        self._mol_idx: dict[int, tuple[int, int]] = {}
        for k, el in enumerate(self.db.elements):
            for j, sp in enumerate(self.db.species):
                if (sp.charge == 0 and sp.formula.get(el) == 1
                        and sp.n_atoms == 1):
                    self._atom_idx[k] = j
            ref = _REF_MOLECULE.get(el)
            if ref is not None and ref in self.db:
                j = self.db.index[ref]
                self._mol_idx[k] = (j, self.db[j].formula[el])

    # ------------------------------------------------------------------
    # core (rho, T) kernel
    # ------------------------------------------------------------------

    def _guess_lambda(self, rho, T, b, gt):
        """Initial element potentials: elementwise min of an "all atoms" and
        an "all reference molecules" estimate (the equilibrium potential can
        exceed neither)."""
        B = rho.shape[0]
        lam = np.zeros((B, self.K), dtype=np.float64)
        # catlint: disable=CAT001 -- T > 0 on the solver bracket and
        # _R/P_STANDARD are positive constants
        ln_rtp0 = np.log(_R * T / P_STANDARD)
        for k in range(self.K - (1 if self.db.has_ions else 0)):
            bk = np.maximum(b[:, k], 1e-30)
            cand = np.full(B, np.inf, dtype=np.float64)
            ja = self._atom_idx.get(k)
            if ja is not None:
                # catlint: disable=CAT001 -- rho > 0 and bk clamped >= 1e-30
                cand = gt[:, ja] + np.log(0.5 * rho * bk) + ln_rtp0
            jm = self._mol_idx.get(k)
            if jm is not None:
                j, nu = jm
                # catlint: disable=CAT001 -- rho > 0, bk clamped, nu >= 1
                lam_mol = (gt[:, j]
                           + np.log(0.5 * rho * bk / nu) + ln_rtp0) / nu
                cand = np.minimum(cand, lam_mol)
            lam[:, k] = np.where(np.isfinite(cand), cand, 0.0)
            # absent elements: drive their species to zero
            lam[:, k] = np.where(b[:, k] > 1e-30, lam[:, k], -200.0)
        # second pass: any neutral molecule bounds the potentials of all its
        # elements given the current estimates of the others (this is what
        # captures CH4/HCN-dominated cold states).
        n_el = self.K - (1 if self.db.has_ions else 0)
        for _pass in range(2):
            for j, sp in enumerate(self.db.species):
                if sp.charge != 0 or sp.n_atoms < 2:
                    continue
                for k in range(n_el):
                    a_kj = self._A[k, j]
                    if a_kj == 0:
                        continue
                    bk = np.maximum(b[:, k], 1e-30)
                    others = sum(self._A[m, j] * lam[:, m]
                                 for m in range(n_el) if m != k)
                    # catlint: disable=CAT001 -- rho > 0, bk clamped,
                    # a_kj is a positive stoichiometric count
                    cand = (gt[:, j] + np.log(0.5 * rho * bk / a_kj)
                            + ln_rtp0 - others) / a_kj
                    good = b[:, k] > 1e-30
                    lam[:, k] = np.where(good,
                                         np.minimum(lam[:, k], cand),
                                         lam[:, k])
        return lam

    def _newton(self, lam, gt, c_ref, target, scale, tol, max_iter,
                record=None):
        """Damped-Newton kernel on the element potentials.

        Returns ``(c, lam, fnorm)`` where ``fnorm`` is the per-state
        scaled residual norm; states above ``tol`` simply did not
        converge (no raise — per-cell triage is the caller's job).  With
        ``record`` (a list), the per-iteration ``fnorm`` vectors are
        appended — the residual trajectories the failure diagnostics
        ship.
        """
        A = self._A
        B = lam.shape[0]

        def concentrations(lam):
            expo = -gt + lam @ A                   # (B, n)
            return c_ref[:, None] * np.exp(np.clip(expo, -_EXP_CLIP,
                                                   _EXP_CLIP))

        def residual(c):
            return c @ A.T - target                # (B, K)

        c = concentrations(lam)
        F = residual(c)
        fnorm = np.max(np.abs(F) / scale, axis=1)
        if record is not None:
            record.append(fnorm.copy())
        active = fnorm > tol
        for _ in range(max_iter):
            if not np.any(active):
                break
            # Jacobian J_km = sum_j a_kj a_mj c_j  (symmetric PSD)
            Jc = c[:, None, :] * A[None, :, :]       # (B, K, n)
            J = Jc @ A.T                             # (B, K, K)
            # Tikhonov regularisation keeps rows for absent/frozen elements
            # from making the system numerically singular.
            trace = np.einsum("bkk->b", J)
            mu = 1e-14 * np.maximum(trace, 1e-30)
            J = J + mu[:, None, None] * np.eye(self.K)
            try:
                dlam = np.linalg.solve(J, -F[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError:
                dlam = np.stack([np.linalg.lstsq(J[i], -F[i], rcond=None)[0]
                                 for i in range(B)])
            # trust region on the potentials
            mx = np.max(np.abs(dlam), axis=1, keepdims=True)
            dlam *= np.minimum(1.0, 4.0 / np.maximum(mx, 1e-30))
            dlam[~active] = 0.0
            # backtracking line search (vectorised)
            step = np.ones((B, 1), dtype=np.float64)
            for _ls in range(8):
                c_new = concentrations(lam + step * dlam)
                f_new = np.max(np.abs(residual(c_new)) / scale, axis=1)
                worse = active & (f_new > fnorm * (1.0 - 1e-4 * step[:, 0]))
                if not np.any(worse):
                    break
                step[worse] *= 0.5
            lam = lam + step * dlam
            c = concentrations(lam)
            F = residual(c)
            fnorm = np.max(np.abs(F) / scale, axis=1)
            if record is not None:
                record.append(fnorm.copy())
            active = fnorm > tol
        return c, lam, fnorm

    def _recover_cells(self, idx, rho_f, T_f, b_f, gt, c_ref, target,
                       scale, tol, max_iter, c, lam, fnorm):
        """Per-cell failure isolation: rescue non-converged states.

        The ladder (each stage runs only on the still-failing subset and
        writes the rescued states back into ``c``/``lam``/``fnorm``):

        1. cold restart from the analytic initial guess (heals corrupted
           or stale warm starts),
        2. re-seed from the nearest converged state in the batch — the
           solvers hand in flattened grids, so batch neighbours are grid
           neighbours,
        3. temperature continuation: solve the hotter (more dissociated,
           better conditioned) problem first and walk T down to the
           target, warm-starting each rung from the last.

        Returns the indices that still failed after all stages.
        """

        def attempt(sub, lam_seed):
            c_s, lam_s, f_s = self._newton(lam_seed, gt[sub], c_ref[sub],
                                           target[sub], scale[sub], tol,
                                           max_iter)
            ok = f_s <= _CONV_TOL
            upd = sub[ok]
            c[upd], lam[upd], fnorm[upd] = c_s[ok], lam_s[ok], f_s[ok]
            return sub[~ok]

        # stage 1: cold restart
        idx = attempt(idx, self._guess_lambda(rho_f[idx], T_f[idx],
                                              b_f[idx], gt[idx]))
        # stage 2: neighbour re-seed
        if idx.size:
            good = np.nonzero(fnorm <= _CONV_TOL)[0]
            if good.size:
                pos = np.searchsorted(good, idx)
                lo = good[np.clip(pos - 1, 0, good.size - 1)]
                hi = good[np.clip(pos, 0, good.size - 1)]
                nearest = np.where(np.abs(idx - lo) <= np.abs(hi - idx),
                                   lo, hi)
                idx = attempt(idx, lam[nearest].copy())
        # stage 3: temperature continuation
        if idx.size:
            rho_s, T_s, b_s = rho_f[idx], T_f[idx], b_f[idx]
            lam_c, f_k, c_k = None, None, None
            for fac in (4.0, 2.0, 1.4, 1.0):
                T_k = fac * T_s
                gt_k = self.thermo.g0_over_RT(T_k)
                c_ref_k = P_STANDARD / (_R * T_k)
                if lam_c is None:
                    lam_c = self._guess_lambda(rho_s, T_k, b_s, gt_k)
                c_k, lam_c, f_k = self._newton(lam_c, gt_k, c_ref_k,
                                               target[idx], scale[idx],
                                               tol, max_iter)
            ok = f_k <= _CONV_TOL
            upd = idx[ok]
            c[upd], lam[upd], fnorm[upd] = c_k[ok], lam_c[ok], f_k[ok]
            idx = idx[~ok]
        return idx

    def solve_rho_T(self, rho, T, b, *, tol=1.0e-11, max_iter=250,
                    lam0=None, return_lambda=False):
        """Equilibrium composition at fixed density and temperature.

        Parameters
        ----------
        rho, T:
            Density [kg/m^3] and temperature [K]; any broadcast-compatible
            shapes S.
        b:
            Constraint moles per kg, shape S + (K,) or (K,) (broadcast).
        lam0:
            Optional warm-start element potentials from a previous solve.

        Returns
        -------
        y:
            Mass fractions, shape S + (n_species,).  With
            ``return_lambda=True``, also the converged potentials.

        Non-converged states go through the per-cell recovery ladder of
        :meth:`_recover_cells`; if any state survives it, the raised
        :class:`ConvergenceError` carries ``bad_indices``, the worst-cell
        ``residual_trajectory`` and a ``worst`` summary.
        """
        rho_in = np.asarray(rho, dtype=float)
        T_in = np.asarray(T, dtype=float)
        shape = np.broadcast_shapes(rho_in.shape, T_in.shape)
        rho_f = np.broadcast_to(rho_in, shape).reshape(-1)
        T_f = np.broadcast_to(T_in, shape).reshape(-1)
        b_in = np.asarray(b, dtype=float)
        b_f = np.broadcast_to(b_in, shape + (self.K,)).reshape(-1, self.K)
        if np.any(rho_f <= 0.0) or np.any(T_f <= 0.0):
            raise InputError("rho and T must be positive")

        B = rho_f.size
        gt = self.thermo.g0_over_RT(T_f)          # (B, n)
        c_ref = P_STANDARD / (_R * T_f)           # (B,)
        lam = (self._guess_lambda(rho_f, T_f, b_f, gt) if lam0 is None
               else np.array(np.broadcast_to(lam0, (B, self.K)), dtype=float))
        if self.faults is not None:
            lam = self.faults.corrupt_lambda(lam)
        lam_start = lam.copy()                    # for failure forensics
        target = rho_f[:, None] * b_f             # (B, K)
        scale = np.maximum(np.max(np.abs(target), axis=1, keepdims=True),
                           1e-30)

        c, lam, fnorm = self._newton(lam, gt, c_ref, target, scale, tol,
                                     max_iter)
        bad = fnorm > _CONV_TOL
        if np.any(bad):
            self._recover_cells(np.nonzero(bad)[0], rho_f, T_f, b_f, gt,
                                c_ref, target, scale, tol, max_iter,
                                c, lam, fnorm)
            bad = fnorm > _CONV_TOL
        if np.any(bad):
            idx = np.nonzero(bad)[0]
            worst = idx[np.argsort(fnorm[idx])[::-1]][:4]
            # replay the worst cells from their original seeds to capture
            # their residual trajectories (cheap: <= 4 states)
            rec: list[np.ndarray] = []
            self._newton(lam_start[worst], gt[worst], c_ref[worst],
                         target[worst], scale[worst], tol, max_iter,
                         record=rec)
            raise ConvergenceError(
                f"equilibrium solve failed for "
                f"{int(np.count_nonzero(bad))}/{B} state(s) "
                f"after per-cell recovery",
                iterations=max_iter, residual=float(np.max(fnorm)),
                bad_indices=idx,
                residual_trajectory=np.stack(rec) if rec else None,
                worst={"indices": worst.tolist(),
                       "residuals": fnorm[worst].tolist(),
                       "rho": rho_f[worst].tolist(),
                       "T": T_f[worst].tolist()})
        y = c * self.db.molar_mass / rho_f[:, None]
        # element conservation guarantees sum(y)=1 up to atomic-mass
        # consistency of the database; renormalise the leftover ppm.
        y /= np.sum(y, axis=1, keepdims=True)
        y = y.reshape(shape + (self.db.n,))
        if return_lambda:
            return y, lam.reshape(shape + (self.K,))
        return y

    # ------------------------------------------------------------------
    # (T, p) states — outer iteration on density
    # ------------------------------------------------------------------

    def solve_T_p(self, T, p, b, *, tol=1.0e-10, max_iter=60):
        """Equilibrium composition and density at fixed (T, p).

        Returns ``(y, rho)``.
        """
        T_in = np.asarray(T, dtype=float)
        p_in = np.asarray(p, dtype=float)
        shape = np.broadcast_shapes(T_in.shape, p_in.shape)
        T_f = np.broadcast_to(T_in, shape).astype(float)
        p_f = np.broadcast_to(p_in, shape).astype(float)
        b_arr = np.asarray(b, dtype=float)
        # initial density from a cold-composition molar mass estimate
        mbar = 0.02  # kg/mol ballpark; corrected by the iteration
        rho = p_f * mbar / (_R * T_f)
        lam = None
        for it in range(max_iter):
            y, lam = self.solve_rho_T(rho, T_f, b_arr, lam0=lam,
                                      return_lambda=True)
            R_mix = self.mix.gas_constant(y)
            p_calc = rho * R_mix * T_f
            ratio = p_f / p_calc
            if np.all(np.abs(ratio - 1.0) < tol):
                return y, rho
            # p is (weakly) super-linear in rho at fixed T; a damped
            # fixed-point on log rho converges in a handful of iterations.
            rho = rho * ratio
        raise ConvergenceError("solve_T_p density iteration failed",
                               iterations=max_iter,
                               residual=float(np.max(np.abs(ratio - 1.0))))

    # ------------------------------------------------------------------
    # (rho, e) states — outer iteration on temperature
    # ------------------------------------------------------------------

    def solve_rho_e(self, rho, e, b, *, T_guess=None, tol=1.0e-9,
                    max_iter=80):
        """Equilibrium state at fixed density and specific internal energy.

        Returns ``(y, T)``.  ``e`` includes chemical formation energy on the
        database 0 K basis.
        """
        rho_in = np.asarray(rho, dtype=float)
        e_in = np.asarray(e, dtype=float)
        shape = np.broadcast_shapes(rho_in.shape, e_in.shape)
        rho_f = np.broadcast_to(rho_in, shape).astype(float)
        e_f = np.broadcast_to(e_in, shape).astype(float)
        b_arr = np.asarray(b, dtype=float)
        T = (np.full(shape, 4000.0, dtype=np.float64) if T_guess is None
             else np.array(np.broadcast_to(T_guess, shape), dtype=float))
        scale = np.maximum(np.abs(e_f), 1e4)
        # e_eq(T) at fixed rho is strictly increasing, so a bracketed Newton
        # on the *equilibrium* slope (frozen cv underestimates it by up to
        # ~5x through dissociation ridges and would oscillate) is globally
        # convergent.
        T_lo = np.full(shape, 50.0, dtype=np.float64)
        T_hi = np.full(shape, 1.0e5, dtype=np.float64)
        lam = None

        def e_of(Tx, lam0):
            y, lam1 = self.solve_rho_T(rho_f, Tx, b_arr, lam0=lam0,
                                       return_lambda=True)
            return self.mix.e_mass(Tx, y), y, lam1

        for it in range(max_iter):
            e_cur, y, lam = e_of(T, lam)
            f = e_cur - e_f
            if np.all(np.abs(f) < tol * scale):
                return y, T
            np.copyto(T_hi, T, where=f > 0)
            np.copyto(T_lo, T, where=f <= 0)
            dTfd = 0.01 * T
            e_pert, _, _ = e_of(T + dTfd, lam)
            cv_eq = np.maximum((e_pert - e_cur) / dTfd, 10.0)
            T_new = T - f / cv_eq
            outside = (T_new <= T_lo) | (T_new >= T_hi)
            T = np.where(outside, 0.5 * (T_lo + T_hi), T_new)
        f = np.abs(self.mix.e_mass(T, y) - e_f)
        bad = f > 1e-5 * scale
        if np.any(bad):
            idx = np.nonzero(bad.reshape(-1))[0]
            worst = idx[np.argsort(f.reshape(-1)[idx])[::-1]][:4]
            raise ConvergenceError(
                "solve_rho_e temperature iteration failed for "
                f"{idx.size} state(s)",
                iterations=max_iter, residual=float(np.max(f / scale)),
                bad_indices=idx,
                worst={"indices": worst.tolist(),
                       "rho": rho_f.reshape(-1)[worst].tolist(),
                       "e": e_f.reshape(-1)[worst].tolist(),
                       "T": T.reshape(-1)[worst].tolist()})
        return y, T


class EquilibriumGas:
    """Equilibrium real-gas model with fixed elemental composition.

    This is the "equilibrium air" (or Titan gas, ...) object the solvers
    consume: local thermochemical state fully determined by two variables.

    Parameters
    ----------
    db:
        Species set (name or :class:`SpeciesDB`).
    y_reference:
        Reference (e.g. freestream) mass fractions that fix the elemental
        composition, either a dict of name->Y or an array over the set.
    faults:
        Optional fault injector forwarded to the
        :class:`EquilibriumSolver` (resilience testing).
    """

    def __init__(self, db: SpeciesDB | str, y_reference, *, faults=None):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        if isinstance(y_reference, dict):
            y = np.zeros(self.db.n, dtype=np.float64)
            for name, val in y_reference.items():
                y[self.db.index[name]] = val
        else:
            y = np.asarray(y_reference, dtype=float)
            if y.shape != (self.db.n,):
                raise InputError(
                    f"y_reference must have shape ({self.db.n},)")
        if abs(float(np.sum(y)) - 1.0) > 1e-6:
            raise InputError("reference mass fractions must sum to 1")
        self.y_ref = y / np.sum(y)
        self.b = element_moles(self.db, self.y_ref)
        self.solver = EquilibriumSolver(self.db, faults=faults)
        self.mix = self.solver.mix

    # -- state evaluations ----------------------------------------------------

    def composition_rho_T(self, rho, T):
        """Equilibrium mass fractions at (rho, T)."""
        return self.solver.solve_rho_T(rho, T, self.b)

    def composition_T_p(self, T, p):
        """Equilibrium mass fractions and density at (T, p)."""
        return self.solver.solve_T_p(T, p, self.b)

    def state_rho_T(self, rho, T):
        """Full state dict at (rho, T): y, p, e, h, a_frozen, gamma_eff."""
        y = self.composition_rho_T(rho, T)
        p = self.mix.pressure(rho, T, y)
        e = self.mix.e_mass(T, y)
        h = self.mix.h_mass(T, y)
        return {"y": y, "p": p, "e": e, "h": h, "T": np.asarray(T, float),
                "rho": np.asarray(rho, float),
                "a_frozen": self.mix.sound_speed_frozen(T, y),
                "gamma_eff": 1.0 + p / (np.asarray(rho, float)
                                        * np.maximum(e, 1.0))}

    def state_rho_e(self, rho, e, *, T_guess=None):
        """Full state dict at (rho, e) — the NS-solver entry point."""
        y, T = self.solver.solve_rho_e(rho, e, self.b, T_guess=T_guess)
        p = self.mix.pressure(rho, T, y)
        return {"y": y, "p": p, "T": T, "e": np.asarray(e, float),
                "rho": np.asarray(rho, float),
                "h": self.mix.h_mass(T, y),
                "a_frozen": self.mix.sound_speed_frozen(T, y),
                "gamma_eff": 1.0 + p / (np.asarray(rho, float)
                                        * np.maximum(np.asarray(e, float),
                                                     1.0))}

    def state_T_p(self, T, p):
        """Full state dict at (T, p)."""
        y, rho = self.composition_T_p(T, p)
        e = self.mix.e_mass(T, y)
        return {"y": y, "p": np.asarray(p, float), "T": np.asarray(T, float),
                "rho": rho, "e": e, "h": self.mix.h_mass(T, y),
                "a_frozen": self.mix.sound_speed_frozen(T, y),
                "gamma_eff": 1.0 + np.asarray(p, float)
                / (rho * np.maximum(e, 1.0))}

    def sound_speed_equilibrium(self, rho, T, *, rel=1.0e-4):
        """Equilibrium speed of sound a_e = sqrt((dp/drho)_s) [m/s].

        Evaluated from centered finite differences of the equilibrium
        surface: a^2 = (dp/drho)_e + (p/rho^2)(dp/de)_rho.
        """
        rho = np.asarray(rho, dtype=float)
        T = np.asarray(T, dtype=float)
        st = self.state_rho_T(rho, T)
        e0, p0 = st["e"], st["p"]
        drho = rho * rel
        de = np.maximum(np.abs(e0), 1e4) * rel
        # dp/drho at constant e and dp/de at constant rho via rho_e states
        sp1 = self.state_rho_e(rho + drho, e0, T_guess=T)
        sm1 = self.state_rho_e(rho - drho, e0, T_guess=T)
        dpdr = (sp1["p"] - sm1["p"]) / (2.0 * drho)
        se1 = self.state_rho_e(rho, e0 + de, T_guess=T)
        se0 = self.state_rho_e(rho, e0 - de, T_guess=T)
        dpde = (se1["p"] - se0["p"]) / (2.0 * de)
        a2 = dpdr + p0 / rho**2 * dpde
        return np.sqrt(np.maximum(a2, 1.0))


def air_reference_mass_fractions(db: SpeciesDB, *, with_argon=None):
    """Standard-air reference mass fractions over ``db``.

    Uses Y(N2)=0.767, Y(O2)=0.233 (the usual CAT convention) or, when the
    set contains Ar, Y = (0.7553, 0.2314, 0.0129) for (N2, O2, Ar).
    """
    y = np.zeros(db.n, dtype=np.float64)
    has_ar = "Ar" in db if with_argon is None else with_argon
    if has_ar and "Ar" in db:
        y[db.index["N2"]] = 0.7553
        y[db.index["O2"]] = 0.2314
        y[db.index["Ar"]] = 0.0129
    else:
        y[db.index["N2"]] = 0.767
        y[db.index["O2"]] = 0.233
    return y


def titan_reference_mass_fractions(db: SpeciesDB, ch4_mole_fraction=0.05):
    """Titan-atmosphere reference composition (N2 with a few % CH4)."""
    x = np.zeros(db.n, dtype=np.float64)
    x[db.index["N2"]] = 1.0 - ch4_mole_fraction
    x[db.index["CH4"]] = ch4_mole_fraction
    return db.mole_to_mass(x)
