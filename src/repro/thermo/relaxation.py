"""Vibrational relaxation times (Millikan–White + Park correction).

The Landau–Teller relaxation source term in the two-temperature model needs
a characteristic time for each vibrating species.  The standard model is the
Millikan–White correlation per collision pair::

    p_atm * tau_MW = exp[ A_sr (T^{-1/3} - 0.015 mu^{1/4}) - 18.42 ]   [atm s]
    A_sr = 1.16e-3 * mu^{1/2} * theta_v^{4/3}

with ``mu`` the reduced molar mass of the pair in g/mol.  At the very high
temperatures of the paper's flows, Millikan–White under-predicts the time;
Park's limiting-cross-section correction adds::

    tau_park = 1 / (sigma_v * c_bar * n)
    sigma_v  = 3e-21 * (50000/T)^2  [m^2]

and ``tau = tau_MW + tau_park``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import K_BOLTZMANN, N_AVOGADRO, P_ATM
from repro.thermo.species import SpeciesDB, species_set

__all__ = ["millikan_white_time", "park_correction_time",
           "VibrationalRelaxation"]


def millikan_white_time(T, p, theta_v: float, mu_gmol):
    """Millikan–White relaxation time [s] for one collision pair.

    Parameters
    ----------
    T:
        Translational temperature [K].
    p:
        Pressure [Pa].
    theta_v:
        Characteristic vibrational temperature of the relaxing molecule [K].
    mu_gmol:
        Reduced molar mass of the collision pair [g/mol].
    """
    T = np.asarray(T, dtype=float)
    p_atm = np.asarray(p, dtype=float) / P_ATM
    # catlint: disable=CAT002 -- reduced molar mass is positive
    a = 1.16e-3 * np.sqrt(mu_gmol) * theta_v ** (4.0 / 3.0)
    expo = a * (T ** (-1.0 / 3.0) - 0.015 * mu_gmol ** 0.25) - 18.42
    # catlint: disable=UNIT002 -- empirical Millikan-White correlation:
    # the 1.16e-3 constant absorbs the (g/mol)^1/2 K^-4/3 units, so the
    # [s] result is invisible to dimensional bookkeeping
    return np.exp(np.clip(expo, -300.0, 300.0)) / np.maximum(p_atm, 1e-300)


def park_correction_time(T, n_density, molar_mass):
    """Park high-temperature correction time [s].

    Parameters
    ----------
    T:
        Translational temperature [K].
    n_density:
        Mixture number density [1/m^3].
    molar_mass:
        Molar mass of the relaxing molecule [kg/mol].
    """
    T = np.asarray(T, dtype=float)
    m = molar_mass / N_AVOGADRO
    # catlint: disable=CAT002 -- physical T and particle mass are positive
    c_bar = np.sqrt(8.0 * K_BOLTZMANN * T / (np.pi * m))
    sigma_v = 3.0e-21 * (50000.0 / np.maximum(T, 1.0)) ** 2
    return 1.0 / (sigma_v * c_bar * np.maximum(n_density, 1e-300))


class VibrationalRelaxation:
    """Mixture-averaged relaxation times over a species set.

    For each vibrating species ``s`` the pairwise Millikan–White times
    against every heavy collider ``r`` are combined with the mole-fraction
    average 1/tau_s = sum_r x_r / tau_sr / sum_r x_r, and Park's correction
    is added.
    """

    def __init__(self, db: SpeciesDB | str):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        #: Indices of species with vibrational modes.
        self.vib_idx = np.array([j for j, sp in enumerate(self.db.species)
                                 if sp.vib_modes], dtype=int)
        #: Heavy (non-electron) colliders.
        self.heavy_idx = np.array([j for j, sp in enumerate(self.db.species)
                                   if sp.name != "e-"], dtype=int)
        m_g = self.db.molar_mass * 1e3  # g/mol
        # reduced molar masses mu[s, r] for vibrating s against collider r
        ms = m_g[self.vib_idx][:, None]
        mr = m_g[self.heavy_idx][None, :]
        self._mu = ms * mr / (ms + mr)
        self._theta = np.array([self.db.species[j].theta_v
                                for j in self.vib_idx])
        # catlint: disable=CAT002 -- reduced molar masses are positive
        self._a_sr = (1.16e-3 * np.sqrt(self._mu)
                      * self._theta[:, None] ** (4.0 / 3.0))
        self._b_sr = 0.015 * self._mu ** 0.25

    def times(self, rho, T, y, *, park=True):
        """Relaxation time for each vibrating species, shape (..., n_vib).

        Parameters
        ----------
        rho, T:
            Density [kg/m^3] and translational temperature [K].
        y:
            Mass fractions (..., n_species).
        park:
            Include Park's limiting-cross-section correction.
        """
        rho = np.asarray(rho, dtype=float)
        T = np.asarray(T, dtype=float)
        y = np.asarray(y, dtype=float)
        x = self.db.mass_to_mole(np.maximum(y, 1e-30))
        n_total = rho * np.sum(y / self.db.molar_mass, axis=-1) * N_AVOGADRO
        p = n_total * K_BOLTZMANN * T
        p_atm = np.maximum(p / P_ATM, 1e-300)
        # pairwise MW times: shape (..., n_vib, n_heavy)
        t13 = T[..., None, None] ** (-1.0 / 3.0)
        expo = self._a_sr * (t13 - 0.015 * self._mu ** 0.25) - 18.42
        tau_sr = np.exp(np.clip(expo, -300.0, 300.0)) / p_atm[..., None,
                                                              None]
        x_r = x[..., self.heavy_idx]
        x_sum = np.maximum(np.sum(x_r, axis=-1, keepdims=True), 1e-30)
        inv_tau = np.sum(x_r[..., None, :] / tau_sr, axis=-1) / x_sum
        tau = 1.0 / np.maximum(inv_tau, 1e-300)
        if park:
            n_d = n_total[..., None]
            tau = tau + park_correction_time(
                T[..., None], n_d, self.db.molar_mass[self.vib_idx])
        return tau
