"""Graceful physics degradation: fall down the fidelity ladder, not over.

The paper organises computational aerothermodynamics as a fidelity ladder
— full NS → PNS → Euler+BL → VSL on the flow side, two-temperature →
finite-rate → frozen on the physics side.  Production codes exploit the
same structure at *runtime*: when high-fidelity physics goes off-manifold
in a few cells, they degrade locally and keep marching instead of
aborting the run.  This module is that rung, slotted by
:class:`~repro.resilience.supervisor.RunSupervisor` **between**
rollback-retry and abort:

* **numerics ladder** — MUSCL reconstruction drops to first order inside
  a *quarantine zone* (flagged cells plus a halo), via the solvers'
  ``quarantine`` protocol feeding
  :func:`repro.numerics.muscl.muscl_interface_states`'s
  ``first_order_mask``;
* **physics ladder** — per-cell chemistry model demotion
  (two-temperature → single-T finite-rate → frozen) via the reacting
  solver's ``degrade_physics`` protocol.

Every action lands in a :class:`DegradationLedger` (what, where, when,
why), and after ``promote_after`` consecutive clean steps the most
recent action is undone — automatic re-promotion, most-recent-first, so
a transient upset leaves no permanent fidelity loss.

Degradation state deliberately lives *outside* the solvers'
``get_state``/``set_state`` protocol: a rollback restores the flow field
but keeps the quarantine, which is the whole point of degrading before
the retry that follows.

Solver protocol (duck-typed, all optional):

* ``quarantine(mask=None) -> int`` — flag cells (boolean cell-mask, or
  ``None`` for the whole domain) for first-order reconstruction; returns
  the number of *newly* flagged cells; the current mask is readable (and
  restorable) as ``quarantined_cells``;
* ``degrade_physics(mask=None) -> str | None`` — demote the chemistry
  model one rung in the masked cells; returns the rung name demoted to,
  or ``None`` when every masked cell is already at the bottom; per-cell
  rungs are readable (and restorable) as ``chem_rung``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DegradationPolicy", "DegradationLedger",
           "DegradationController", "as_degradation", "drain_ledgers"]


@dataclass
class DegradationPolicy:
    """Knobs of the degradation cascade.

    Attributes
    ----------
    quarantine_halo:
        Cells around each flagged cell included in the quarantine zone
        (and in per-cell physics demotion).
    promote_after:
        Consecutive clean steps before the most recent degradation is
        undone.
    max_actions:
        Total demotions allowed before the cascade declares itself
        exhausted (the supervisor then aborts with a report).
    numerics_first:
        Try the numerics rung (local first-order) before the physics
        rung — cheaper, and reconstruction overshoots are the most
        common instability source.
    allow_numerics, allow_physics:
        Disable a ladder entirely.
    """

    quarantine_halo: int = 3
    promote_after: int = 25
    max_actions: int = 20
    numerics_first: bool = True
    allow_numerics: bool = True
    allow_physics: bool = True


class DegradationLedger:
    """Ordered record of every degradation action taken during a run."""

    def __init__(self, label: str | None = None):
        self.label = label
        self.entries: list[dict] = []

    def record(self, *, action: str, ladder: str, rung, step: int,
               cells=None, n_cells: int | None = None,
               reason: str = "") -> dict:
        entry = {"action": action, "ladder": ladder, "rung": rung,
                 "step": int(step),
                 "cells": (None if cells is None
                           else [list(c) for c in cells]),
                 "n_cells": n_cells, "reason": reason}
        self.entries.append(entry)
        return entry

    def demotions(self) -> list[dict]:
        return [e for e in self.entries if e["action"] == "demote"]

    def promotions(self) -> list[dict]:
        return [e for e in self.entries if e["action"] == "promote"]

    @property
    def fully_promoted(self) -> bool:
        """True when every demotion has been undone (or none happened)."""
        return len(self.promotions()) >= len(self.demotions())

    def to_dict(self) -> dict:
        return {"label": self.label,
                "n_demotions": len(self.demotions()),
                "n_promotions": len(self.promotions()),
                "fully_promoted": self.fully_promoted,
                "entries": [dict(e) for e in self.entries]}

    def summary(self) -> str:
        head = f"DegradationLedger[{self.label or '-'}]: " \
               f"{len(self.demotions())} demotion(s), " \
               f"{len(self.promotions())} re-promotion(s)"
        lines = [head]
        for e in self.entries:
            where = (f"{e['n_cells']} cell(s)" if e["n_cells"] is not None
                     else "whole domain")
            lines.append(f"  step {e['step']:>6}: {e['action']} "
                         f"{e['ladder']}/{e['rung']} [{where}]"
                         + (f" — {e['reason']}" if e["reason"] else ""))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.summary()


#: Ledgers of every controller created since the last drain — the figure
#: runner collects these per figure without threading a handle through
#: every solver call.
_LEDGER_REGISTRY: list[DegradationLedger] = []


def drain_ledgers() -> list[DegradationLedger]:
    """Return and clear the ledgers registered since the last drain."""
    out = list(_LEDGER_REGISTRY)
    _LEDGER_REGISTRY.clear()
    return out


def _patch_mask(shape, cells, halo: int):
    """Boolean cell mask covering ``cells`` plus an inclusive halo."""
    mask = np.zeros(shape, dtype=bool)
    for cell in cells:
        cell = tuple(int(c) for c in cell)[:len(shape)]
        if len(cell) < len(shape):
            continue
        sl = tuple(slice(max(0, c - halo), c + halo + 1) for c in cell)
        mask[sl] = True
    return mask


class DegradationController:
    """Applies and (after clean steps) reverts degradation actions.

    One controller supervises one run; its :class:`DegradationLedger` is
    the run's auditable fidelity record.  Created standalone or
    normalised from a ``degradation=`` argument by
    :func:`as_degradation`.
    """

    def __init__(self, policy: DegradationPolicy | None = None, *,
                 label: str | None = None):
        self.policy = policy if policy is not None else DegradationPolicy()
        self.ledger = DegradationLedger(label)
        self.clean_steps = 0
        self._stack: list[dict] = []
        _LEDGER_REGISTRY.append(self.ledger)

    # ------------------------------------------------------------------

    @property
    def active(self) -> int:
        """Number of degradation actions currently in force."""
        return len(self._stack)

    def _cell_shape(self, solver):
        U = getattr(solver, "U", None)
        return None if U is None else np.asarray(U).shape[:-1]

    def _mask_for(self, solver, cells):
        shape = self._cell_shape(solver)
        if shape is None or not cells:
            return None          # None = whole domain
        return _patch_mask(shape, cells, self.policy.quarantine_halo)

    # ------------------------------------------------------------------

    def degrade(self, solver, *, step: int, cells=(),
                reason: str = "") -> bool:
        """Apply the next rung of the cascade; True when something
        changed (the supervisor should roll back and retry), False when
        the cascade is exhausted (the supervisor should abort)."""
        if len(self.ledger.demotions()) >= self.policy.max_actions:
            return False
        cells = [tuple(int(i) for i in c) for c in cells
                 if c is not None]
        mask = self._mask_for(solver, cells)
        pol = self.policy
        ladders = []
        if pol.allow_numerics:
            ladders.append("numerics")
        if pol.allow_physics:
            ladders.append("physics")
        if not pol.numerics_first:
            ladders.reverse()
        for ladder in ladders:
            if ladder == "numerics":
                fn = getattr(solver, "quarantine", None)
                if fn is None:
                    continue
                prev = getattr(solver, "quarantined_cells", None)
                prev = None if prev is None else prev.copy()
                n_new = int(fn(mask))
                if n_new <= 0:
                    continue
                self._stack.append({"ladder": "numerics", "prev": prev,
                                    "rung": "first_order"})
                self.ledger.record(
                    action="demote", ladder="numerics",
                    rung="first_order", step=step,
                    cells=cells or None,
                    n_cells=(None if mask is None else n_new),
                    reason=reason)
                self.clean_steps = 0
                return True
            fn = getattr(solver, "degrade_physics", None)
            if fn is None:
                continue
            prev = getattr(solver, "chem_rung", None)
            prev = None if prev is None else np.array(prev, copy=True)
            rung = fn(mask)
            if rung is None:
                continue
            self._stack.append({"ladder": "physics", "prev": prev,
                                "rung": rung})
            self.ledger.record(
                action="demote", ladder="physics", rung=rung, step=step,
                cells=cells or None,
                n_cells=(None if mask is None else int(mask.sum())),
                reason=reason)
            self.clean_steps = 0
            return True
        return False

    # ------------------------------------------------------------------

    def note_failure(self):
        """A step failed: restart the clean-step counter."""
        self.clean_steps = 0

    def note_clean_step(self, solver, *, step: int):
        """A step succeeded; after ``promote_after`` consecutive clean
        steps, undo the most recent degradation (LIFO)."""
        if not self._stack:
            return
        self.clean_steps += 1
        if self.clean_steps < self.policy.promote_after:
            return
        entry = self._stack.pop()
        if entry["ladder"] == "numerics":
            solver.quarantined_cells = entry["prev"]
        else:
            solver.chem_rung = entry["prev"]
        self.ledger.record(action="promote", ladder=entry["ladder"],
                           rung=entry["rung"], step=step,
                           reason=f"{self.clean_steps} clean steps")
        self.clean_steps = 0


def as_degradation(spec) -> DegradationController | None:
    """Normalise a ``degradation=`` argument: ``None`` | ``True``
    (defaults) | :class:`DegradationPolicy` |
    :class:`DegradationController`."""
    if spec is None or isinstance(spec, DegradationController):
        return spec
    if spec is True:
        return DegradationController()
    if isinstance(spec, DegradationPolicy):
        return DegradationController(spec)
    raise TypeError(f"degradation must be None, True, a DegradationPolicy "
                    f"or a DegradationController, not "
                    f"{type(spec).__name__}")
