"""Benchmark: regenerate Fig. 8 (nonequilibrium spectra comparison)."""

import numpy as np

from repro.experiments import fig8_spectra


def test_bench_fig8_spectra(once):
    res = once(fig8_spectra.run, True)
    lam = res["wavelength"]
    I = res["smeared"]
    # --- the paper's content --------------------------------------------
    # violet band complex (N2+ 1- at 391 nm / N2 2+ at 337 nm) is a major
    # feature
    violet = (lam > 0.32e-6) & (lam < 0.40e-6)
    assert I[violet].max() > 0.15 * I.max()
    # near-IR atomic lines present (N/O multiplets, 0.74-0.87 um)
    nir = (lam > 0.73e-6) & (lam < 0.88e-6)
    assert I[nir].max() > 0.1 * I.max()
    # mid-visible trough between the two complexes
    mid = (lam > 0.55e-6) & (lam < 0.63e-6)
    assert I[mid].mean() < 0.2 * I.max()
    # computed and (synthetic) measured spectra correlate on log scale
    assert res["log_correlation"] > 0.5
    print(f"\nFig. 8: log-spectrum correlation = "
          f"{res['log_correlation']:.3f}")
    print("  lambda [um], computed_rel, measured_rel:")
    for lm, cr, mr in zip(res["lam_meas"] * 1e6, res["computed_rel"],
                          res["measured_rel"]):
        print(f"  {lm:6.3f}  {cr:7.3f}  {mr:7.3f}")
