"""Strong-scaling measurement harness.

Runs a registered kernel at fixed global problem size across worker
counts and reports times, speedups and parallel efficiencies — the table
a Cray-era applications paper would show.  On a single-core container the
curve measures synchronisation/copy overhead (and cache effects) rather
than true speedup; the harness reports ``cpu_count`` alongside so results
are interpretable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.executor import SharedMemoryStencilPool

__all__ = ["ScalingResult", "run_strong_scaling"]


@dataclass
class ScalingResult:
    """Strong-scaling study output."""

    kernel: str
    grid_shape: tuple
    n_steps: int
    workers: list[int]
    times: list[float]
    serial_time: float
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)

    @property
    def speedups(self) -> list[float]:
        return [self.serial_time / t for t in self.times]

    @property
    def efficiencies(self) -> list[float]:
        return [s / p for s, p in zip(self.speedups, self.workers)]

    def rows(self):
        """(workers, time, speedup, efficiency) tuples for tabulation."""
        return list(zip(self.workers, self.times, self.speedups,
                        self.efficiencies))


def run_strong_scaling(kernel: str = "heat5", *, shape=(1024, 1024),
                       n_steps: int = 20, workers=(1, 2, 4),
                       params: dict | None = None,
                       seed: int = 0) -> ScalingResult:
    """Measure strong scaling of a kernel at fixed problem size."""
    rng = np.random.default_rng(seed)
    U0 = rng.random(shape)
    params = dict(params or {})
    if kernel == "heat5":
        params.setdefault("r", 0.2)
    _, t_serial = SharedMemoryStencilPool(kernel, n_workers=1).run_serial(
        U0, n_steps, params)
    times = []
    for p in workers:
        pool = SharedMemoryStencilPool(kernel, n_workers=p)
        _, t = pool.run(U0, n_steps, params)
        times.append(t)
    return ScalingResult(kernel=kernel, grid_shape=tuple(shape),
                         n_steps=n_steps, workers=list(workers),
                         times=times, serial_time=t_serial)
