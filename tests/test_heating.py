"""Tests for the engineering heating correlations and catalysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.heating import (catalytic_factor, fay_riddell_heating,
                           flat_plate_heating, lees_distribution,
                           sutton_graves_heating)
from repro.heating.catalysis import CatalyticWall
from repro.heating.fay_riddell import newtonian_velocity_gradient


class TestFayRiddell:
    def test_agrees_with_sutton_graves(self):
        # both correlations should land within ~25 % at a typical entry
        # point (they were fit to the same physics)
        rho_inf, V, rn = 3e-4, 7000.0, 1.0
        q_sg = float(sutton_graves_heating(rho_inf, V, rn))
        # crude stagnation state for FR inputs
        p_stag = rho_inf * V**2
        T0 = 6500.0
        rho_e = p_stag / (320.0 * T0)
        from repro.transport.viscosity import sutherland_viscosity
        mu_e = sutherland_viscosity(T0)
        K = newtonian_velocity_gradient(rn, p_stag, 10.0, rho_e)
        q_fr = float(fay_riddell_heating(
            rho_e=rho_e, mu_e=mu_e, rho_w=p_stag / (287.0 * 1000.0),
            mu_w=sutherland_viscosity(1000.0), due_dx=K,
            h0e=0.5 * V**2, hw=1e6, lewis=1.0))
        assert q_fr == pytest.approx(q_sg, rel=0.35)

    def test_lewis_term_increases_catalytic_heating(self):
        kw = dict(rho_e=1e-2, mu_e=1e-4, rho_w=0.1, mu_w=4e-5,
                  due_dx=2000.0, h0e=2e7, hw=1e6, lewis=1.4,
                  h_dissociation=8e6)
        q_cat = float(fay_riddell_heating(catalytic=True, **kw))
        q_nc = float(fay_riddell_heating(catalytic=False, **kw))
        q_none = float(fay_riddell_heating(**{**kw, "h_dissociation": 0.0}))
        assert q_cat > q_none > q_nc

    def test_velocity_gradient_scaling(self):
        k1 = newtonian_velocity_gradient(1.0, 1e4, 0.0, 0.01)
        k2 = newtonian_velocity_gradient(2.0, 1e4, 0.0, 0.01)
        assert k1 / k2 == pytest.approx(2.0)
        with pytest.raises(InputError):
            newtonian_velocity_gradient(-1.0, 1e4, 0.0, 0.01)


class TestSuttonGraves:
    def test_shuttle_entry_magnitude(self):
        # V = 6.7 km/s at 65.5 km: tens of W/cm^2 on a meter-class nose
        from repro.atmosphere import EarthAtmosphere
        atm = EarthAtmosphere()
        q = float(sutton_graves_heating(atm.density(65500.0), 6700.0,
                                        1.3))
        assert 2e5 < q < 2e6  # 20-200 W/cm^2

    @given(V=st.floats(min_value=1000.0, max_value=15000.0))
    @settings(max_examples=30, deadline=None)
    def test_cubic_velocity_scaling(self, V):
        q1 = float(sutton_graves_heating(1e-4, V, 1.0))
        q2 = float(sutton_graves_heating(1e-4, 2 * V, 1.0))
        assert q2 / q1 == pytest.approx(8.0, rel=1e-9)

    def test_nose_radius_scaling(self):
        q1 = float(sutton_graves_heating(1e-4, 7000.0, 1.0))
        q4 = float(sutton_graves_heating(1e-4, 7000.0, 4.0))
        assert q1 / q4 == pytest.approx(2.0, rel=1e-9)

    def test_jupiter_constant_smaller(self):
        q_e = float(sutton_graves_heating(1e-4, 7000.0, 1.0,
                                          atmosphere="earth"))
        q_j = float(sutton_graves_heating(1e-4, 7000.0, 1.0,
                                          atmosphere="jupiter"))
        assert q_j < 0.5 * q_e


class TestLees:
    def test_stagnation_limit_is_one(self):
        from repro.geometry import Sphere
        body = Sphere(1.0)
        s = np.linspace(1e-6, body.s_max * 0.99, 200)
        _, r = body.point(s)
        theta = body.angle(s)
        # Newtonian edge: ue ~ V sin(angle from stagnation)
        ue = 2000.0 * np.cos(theta)
        rho_e = np.full_like(s, 0.01)
        mu_e = np.full_like(s, 1e-4)
        K = 2000.0 / 1.0
        q = lees_distribution(s, r, rho_e, mu_e, ue, K)
        assert q[0] == pytest.approx(1.0, abs=0.05)

    def test_sphere_distribution_decreases(self):
        from repro.geometry import Sphere
        body = Sphere(1.0)
        s = np.linspace(1e-6, body.s_max * 0.95, 100)
        _, r = body.point(s)
        theta = body.angle(s)
        ue = 2000.0 * np.cos(theta)
        q = lees_distribution(s, r, np.full_like(s, 0.01),
                              np.full_like(s, 1e-4), ue, 2000.0)
        # Lees on a sphere: ~0.7-0.85 at 45 deg, monotonically decreasing
        assert np.all(np.diff(q[5:]) < 1e-3)
        i45 = np.argmin(np.abs(s - np.pi / 4))
        assert 0.55 < q[i45] < 0.95

    def test_invalid_s(self):
        with pytest.raises(InputError):
            lees_distribution(np.array([0.0, 0.0, 1.0]), np.ones(3),
                              np.ones(3), np.ones(3), np.ones(3), 1.0)


class TestReferenceEnthalpy:
    def test_x_power_law(self):
        from repro.transport.viscosity import sutherland_viscosity
        mu_of_h = lambda h: sutherland_viscosity(h / 1004.5)  # noqa: E731
        x = np.array([0.5, 2.0])
        q = flat_plate_heating(x, rho_e=0.01, u_e=3000.0, h_e=5e5,
                               h_w=8e5, mu_of_h=mu_of_h, h0e=5e6)
        assert q[0] / q[1] == pytest.approx(2.0, rel=1e-9)  # x^-1/2

    def test_positive_for_cold_wall(self):
        from repro.transport.viscosity import sutherland_viscosity
        mu_of_h = lambda h: sutherland_viscosity(h / 1004.5)  # noqa: E731
        q = flat_plate_heating(1.0, rho_e=0.01, u_e=3000.0, h_e=5e5,
                               h_w=3e5, mu_of_h=mu_of_h, h0e=5e6)
        assert float(q) > 0

    def test_x_zero_invalid(self):
        with pytest.raises(InputError):
            flat_plate_heating(0.0, rho_e=1.0, u_e=1.0, h_e=1.0, h_w=1.0,
                               mu_of_h=lambda h: 1e-5, h0e=2.0)


class TestCatalysis:
    def test_limits(self):
        # catlint: disable=CAT010 -- fully-catalytic limit returns exactly 1
        assert float(catalytic_factor(8e6, 2e7, 1.0)) == 1.0
        assert float(catalytic_factor(8e6, 2e7, 0.0)) == pytest.approx(
            1.0 - 0.4)

    def test_monotone_in_phi(self):
        phis = np.linspace(0, 1, 11)
        f = catalytic_factor(8e6, 2e7, phis)
        assert np.all(np.diff(f) > 0)

    def test_invalid_phi(self):
        with pytest.raises(InputError):
            catalytic_factor(1e6, 1e7, 1.5)

    def test_wall_effectiveness_limits(self):
        wall = CatalyticWall(k_w=1.0)
        # tiny diffusion conductance -> surface-limited -> phi ~ 1
        assert wall.effectiveness(1e-8, 1.0) == pytest.approx(1.0,
                                                              abs=1e-4)
        # huge conductance -> diffusion-fed -> phi small
        assert wall.effectiveness(1.0, 1e-4) < 1e-3
        # catlint: disable=CAT010 -- k_w = inf limit short-circuits to exactly 1
        assert CatalyticWall(k_w=np.inf).effectiveness(1.0, 1e-4) == 1.0

    def test_rcg_tile_vs_metal(self):
        # the Fig. 6 "catalytic efficiency" story: tiles (k_w ~ 1) see
        # much less heating than a fully catalytic surface
        D, delta = 1e-2, 1e-2
        tile = CatalyticWall(k_w=1.0).heating_ratio(1e7, 2.3e7, D, delta)
        metal = CatalyticWall(k_w=100.0).heating_ratio(1e7, 2.3e7, D,
                                                       delta)
        assert tile < metal <= 1.0
