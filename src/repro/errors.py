"""Exception hierarchy for the CAT toolkit.

Every error the library raises deliberately derives from :class:`CatError`
so callers can catch toolkit failures without catching programming errors.
"""

from __future__ import annotations


class CatError(Exception):
    """Base class for all errors raised by the `repro` toolkit.

    Attributes
    ----------
    report:
        Optional :class:`repro.resilience.report.FailureReport` attached
        by the resilience layer when a recovery ladder is exhausted —
        the diagnostic bundle (state snapshot, residual history, retry
        trace, solver config) that replaces a bare traceback.
    """

    report = None


class ConvergenceError(CatError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual (solver-defined norm), if known.
    bad_indices:
        Flat batch indices of the non-converged states (batched solves).
    residual_trajectory:
        Per-iteration residual norms of the failing solve, if recorded.
    worst:
        Small dict describing the worst offending state(s) — indices,
        final residuals and the local thermodynamic inputs.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None, bad_indices=None,
                 residual_trajectory=None, worst: dict | None = None,
                 report=None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.bad_indices = bad_indices
        self.residual_trajectory = residual_trajectory
        self.worst = worst
        self.report = report


class InputError(CatError, ValueError):
    """User-supplied input is out of the physically meaningful range."""


class SpeciesError(CatError, KeyError):
    """Unknown chemical species or inconsistent species set."""


class GridError(CatError):
    """Grid construction or metric evaluation failed."""


class StabilityError(CatError):
    """A time-marching solution became non-physical (NaN, negative
    density or energy).

    Attributes
    ----------
    step:
        Marching step at which the bad state was detected, if known.
    cell:
        Grid index tuple of the *first* offending cell, if localized.
    component:
        Name of the offending state component (``"density"``,
        ``"energy"``, ``"species[N2]"``, ...), if localized.
    value:
        The offending value at ``(cell, component)``, if localized.
    """

    def __init__(self, message: str, *, step: int | None = None,
                 cell: tuple | None = None, component: str | None = None,
                 value: float | None = None, report=None) -> None:
        super().__init__(message)
        self.step = step
        self.cell = cell
        self.component = component
        self.value = value
        self.report = report


class SolverError(CatError, RuntimeError):
    """A solver subsystem failed structurally (dead worker process,
    broken parallel pool, unusable execution environment).

    Attributes
    ----------
    worker:
        Index of the offending worker process, if known.
    step:
        Marching step at which the failure was detected, if known.
    exitcode:
        Exit code of the dead worker, if known.
    """

    def __init__(self, message: str, *, worker: int | None = None,
                 step: int | None = None,
                 exitcode: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.step = step
        self.exitcode = exitcode


class OverloadError(CatError):
    """The batch service refused work at admission time.

    Raised by the admission controller when accepting a batch would
    exceed the configured queue depth, or recorded in a per-request
    envelope when no in-flight slot frees up within the admission
    timeout.  Carries enough context for the caller to implement
    client-side backoff instead of a blind retry loop.

    Attributes
    ----------
    queued:
        Requests already admitted and waiting when the rejection fired.
    limit:
        The configured bound that was exceeded.
    retry_after:
        Suggested wait [s] before retrying, if the service can estimate
        one.
    """

    def __init__(self, message: str, *, queued: int | None = None,
                 limit: int | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.queued = queued
        self.limit = limit
        self.retry_after = retry_after


class CheckpointError(CatError):
    """A durable snapshot could not be written, read or verified.

    Attributes
    ----------
    path:
        Checkpoint directory or file involved, if known.
    recovery_log:
        List of per-generation rejection records accumulated while
        searching for a loadable snapshot (newest first).
    """

    def __init__(self, message: str, *, path=None,
                 recovery_log: list | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.recovery_log = list(recovery_log or [])


class CancelledError(CatError):
    """A supervised run was cancelled cooperatively.

    Raised by :class:`~repro.resilience.supervisor.RunSupervisor` when
    the process-global cancel hook (see
    :func:`repro.resilience.isolation.set_process_cancel`) reports a
    cancellation — after committing a durable snapshot, so the march
    could still resume if the cancellation is ever retracted.  The
    async-job executor converts it into a terminal ``cancelled`` job
    state rather than a failure.

    Attributes
    ----------
    step:
        March step at which the cancellation was observed, if known.
    """

    def __init__(self, message: str, *, step: int | None = None) -> None:
        super().__init__(message)
        self.step = step


class TableRangeError(CatError):
    """A tabulated property lookup fell outside the table's domain."""

    def __init__(self, message: str, *, value: float | None = None,
                 lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(message)
        self.value = value
        self.lo = lo
        self.hi = hi
