"""Common interface for planetary atmosphere models."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Atmosphere"]


class Atmosphere(abc.ABC):
    """Altitude -> ambient state.  All methods are vectorised over h [m]."""

    #: Specific gas constant of the (frozen) ambient mixture [J/(kg K)].
    gas_constant: float
    #: Frozen ratio of specific heats of the ambient mixture.
    gamma: float
    #: Planet radius [m] (for trajectory gravity).
    planet_radius: float
    #: Gravitational parameter GM [m^3/s^2].
    mu_grav: float

    @abc.abstractmethod
    def temperature(self, h):
        """Ambient temperature [K]."""

    @abc.abstractmethod
    def pressure(self, h):
        """Ambient pressure [Pa]."""

    def density(self, h):
        """Ambient density [kg/m^3] from the ideal-gas law."""
        return self.pressure(h) / (self.gas_constant * self.temperature(h))

    def sound_speed(self, h):
        """Frozen ambient speed of sound [m/s]."""
        # catlint: disable=CAT002 -- gamma/R are positive model
        # constants; every atmosphere T profile is bounded above 0 K
        return np.sqrt(self.gamma * self.gas_constant
                       * self.temperature(h))

    def viscosity(self, h):
        """Ambient viscosity [Pa s] (Sutherland with model constants)."""
        from repro.transport.viscosity import sutherland_viscosity
        return sutherland_viscosity(self.temperature(h))

    def gravity(self, h):
        """Local gravitational acceleration [m/s^2]."""
        r = self.planet_radius + np.asarray(h, dtype=float)
        return self.mu_grav / r**2

    def mach_number(self, V, h):
        """Flight Mach number."""
        return np.asarray(V, dtype=float) / self.sound_speed(h)

    def reynolds_per_meter(self, V, h):
        """Unit Reynolds number rho V / mu [1/m]."""
        return (self.density(h) * np.asarray(V, dtype=float)
                / self.viscosity(h))
