"""Nonequilibrium blunt-body flow: frozen vs finite-rate vs equilibrium.

The paper's "biggest challenge" demonstrated end to end: the same Mach-15
sphere computed with (a) frozen chemistry (ideal gas), (b) finite-rate
Park kinetics coupled to the flow solver, and (c) the equilibrium
limit — showing the shock standoff and stagnation temperature migrate
from the frozen values toward equilibrium as chemistry is turned on.

Run:  python examples/nonequilibrium_blunt_body.py
"""

import numpy as np

from repro.core.gas import IdealGasEOS
from repro.geometry import Sphere
from repro.grid import blunt_body_grid
from repro.postprocess.tables import format_table
from repro.solvers.euler2d import AxisymmetricEulerSolver
from repro.solvers.reacting_euler2d import ReactingEulerSolver
from repro.solvers.shock import equilibrium_normal_shock
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set

RN = 0.3
RHO, T_INF, V = 1e-3, 240.0, 5000.0


def main():
    y0 = np.zeros(5)
    y0[0], y0[1] = 0.767, 0.233

    # (a) frozen: ideal-gas Euler
    grid = blunt_body_grid(Sphere(RN), n_s=21, n_normal=31,
                           density_ratio=0.17, margin=2.8)
    frozen = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    frozen.set_freestream(RHO, V, RHO * 287.05 * T_INF)
    frozen.run(n_steps=900, cfl=0.35)

    # (b) finite rate
    grid2 = blunt_body_grid(Sphere(RN), n_s=21, n_normal=31,
                            density_ratio=0.12, margin=2.8)
    noneq = ReactingEulerSolver(grid2, "air5")
    noneq.set_freestream(RHO, V, T_INF, y0)
    noneq.run(n_steps=700, cfl=0.3)

    # (c) equilibrium limit (shock relations)
    db = species_set("air5")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    eq = equilibrium_normal_shock(gas, RHO, T_INF, V)

    f_fr = frozen.fields()
    f_ne = noneq.fields()
    rows = [
        ("frozen (ideal gas)", f_fr["T"].max(),
         frozen.stagnation_standoff() / RN, "-"),
        ("finite-rate Park air5", f_ne["T"].max(),
         noneq.stagnation_standoff() / RN,
         f"{f_ne['y'][0, 0, db.index['N']]:.3f}"),
        ("equilibrium limit", eq["T2"],
         0.78 * eq["eps"], "(shock relations)"),
    ]
    print(f"Mach-15-class sphere (V = {V:.0f} m/s, rho = {RHO} kg/m^3, "
          f"R_n = {RN} m)")
    print(format_table(
        ["model", "peak/post-shock T [K]", "standoff / R_n",
         "stagnation y_N"], rows))
    print("\nThe finite-rate solution sits between the frozen and "
          "equilibrium limits — the nonequilibrium shock layer the "
          "paper's NS codes were built to capture. O2 is consumed "
          f"(y_O2 = {f_ne['y'][0, 0, db.index['O2']]:.4f} at the "
          "stagnation point) while N2 is only partially dissociated.")


if __name__ == "__main__":
    main()
