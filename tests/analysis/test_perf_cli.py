"""CLI, baseline and self-check tests for ``repro.analysis perf``."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import DEFAULT_PERF_BASELINE_PATH
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

HOT_VIOLATION = """
import numpy as np


def solve(xq, x, Y):
    return np.stack([np.interp(xq, x, Y[:, j])
                     for j in range(Y.shape[1])], axis=-1)
"""

CLEAN = """
import numpy as np


def solve(xq, x, Y):
    return Y[np.searchsorted(x, xq)]
"""


@pytest.fixture
def hot_tree(tmp_path):
    """A mini package with a solver on a hot path."""
    d = tmp_path / "src" / "repro" / "solvers"
    d.mkdir(parents=True)
    (d / "example.py").write_text(textwrap.dedent(HOT_VIOLATION))
    return tmp_path / "src"


@pytest.fixture
def clean_tree(tmp_path):
    d = tmp_path / "src" / "repro" / "solvers"
    d.mkdir(parents=True)
    (d / "example.py").write_text(textwrap.dedent(CLEAN))
    return tmp_path / "src"


class TestExitCodes:
    def test_findings_exit_1(self, hot_tree, capsys):
        assert main(["perf", str(hot_tree)]) == 1
        assert "PERF002" in capsys.readouterr().out

    def test_clean_exit_0(self, clean_tree, capsys):
        assert main(["perf", str(clean_tree)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_usage_error_exit_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["perf", "--format", "nope"])
        assert exc.value.code == 2

    def test_no_command_exit_2(self):
        assert main([]) == 2


class TestJsonOutput:
    def test_doc_shape(self, hot_tree, capsys):
        main(["perf", "--json", str(hot_tree)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "perflint"
        assert doc["counts"]["total"] == len(doc["worklist"]) >= 1
        entry = doc["worklist"][0]
        assert entry["rank"] == 1
        assert entry["rule"].startswith("PERF")
        for field in ("score", "function", "hot_via", "trip_estimate",
                      "multiplicity", "key", "new"):
            assert field in entry

    def test_ranks_descend_by_score(self, hot_tree, capsys):
        main(["perf", "--json", str(hot_tree)])
        doc = json.loads(capsys.readouterr().out)
        scores = [e["score"] for e in doc["worklist"]]
        assert scores == sorted(scores, reverse=True)

    def test_worklist_file(self, hot_tree, tmp_path, capsys):
        out = tmp_path / "perf-worklist.json"
        main(["perf", "--json", "--worklist", str(out), str(hot_tree)])
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(capsys.readouterr().out)

    def test_select_restricts_rules(self, hot_tree, capsys):
        # no PERF001 pattern in the fixture: selecting it comes up clean
        assert main(["perf", "--select", "PERF001", str(hot_tree)]) == 0
        capsys.readouterr()
        assert main(["perf", "--select", "PERF002", "--json",
                     str(hot_tree)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert {e["rule"] for e in doc["worklist"]} == {"PERF002"}


class TestBaseline:
    def test_round_trip(self, hot_tree, tmp_path, capsys):
        bl = tmp_path / "perf-baseline.json"
        assert main(["perf", "--write-baseline", str(bl),
                     str(hot_tree)]) == 0
        # everything grandfathered: diff is clean
        assert main(["perf", "--baseline", str(bl),
                     str(hot_tree)]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_new_finding_fails(self, hot_tree, tmp_path, capsys):
        bl = tmp_path / "perf-baseline.json"
        main(["perf", "--write-baseline", str(bl), str(hot_tree)])
        extra = (Path(str(hot_tree)) / "repro" / "solvers"
                 / "another.py")
        extra.write_text(textwrap.dedent(HOT_VIOLATION))
        assert main(["perf", "--baseline", str(bl),
                     str(hot_tree)]) == 1
        doc_out = capsys.readouterr().out
        assert "NEW" in doc_out

    def test_stale_entries_reported(self, hot_tree, tmp_path, capsys):
        bl = tmp_path / "perf-baseline.json"
        main(["perf", "--write-baseline", str(bl), str(hot_tree)])
        target = Path(str(hot_tree)) / "repro" / "solvers" / "example.py"
        target.write_text(textwrap.dedent(CLEAN))
        assert main(["perf", "--baseline", str(bl),
                     str(hot_tree)]) == 0
        assert "stale" in capsys.readouterr().out

    def test_default_baseline_name(self):
        assert DEFAULT_PERF_BASELINE_PATH == ".perflint-baseline.json"


class TestSelfCheck:
    """The repo itself must match its checked-in perf state."""

    def test_src_matches_perf_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["perf", "--baseline", "--format", "json"]) == 0

    def test_worklist_names_real_hot_loops(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        main(["perf", "--json"])
        doc = json.loads(capsys.readouterr().out)
        paths = [e["path"] for e in doc["worklist"]]
        assert any("thermo/equilibrium.py" in p for p in paths)
        assert any("solvers/shock_relaxation.py" in p for p in paths)
        # vsl's own PERF002 was vectorized away: it must survive as a
        # hot-path *via* (its solve chain makes downstream loops hot)
        vias = [v for e in doc["worklist"] for v in e["hot_via"]]
        assert any("solvers/vsl.py" in v for v in vias)

    def test_vectorized_sites_no_longer_fire(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        main(["perf", "--json", "src/repro/solvers"])
        doc = json.loads(capsys.readouterr().out)
        perf002 = [e for e in doc["worklist"] if e["rule"] == "PERF002"]
        assert not any("vsl.py" in e["path"] for e in perf002)
        assert not any("shock_relaxation.py" in e["path"]
                       and e["line"] < 100 for e in perf002)

    def test_benchmarks_catlint_clean(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "benchmarks", "--baseline"]) == 0

    def test_default_lint_paths_include_benchmarks(self, monkeypatch,
                                                   capsys):
        from repro.analysis.cli import DEFAULT_LINT_PATHS
        assert "benchmarks" in DEFAULT_LINT_PATHS
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--baseline"]) == 0
