"""Benchmark: regenerate Fig. 6 (windward heating comparison)."""

import numpy as np

from repro.experiments import fig6_windward_heating


def test_bench_fig6_windward_heating(once):
    res = once(fig6_windward_heating.run, True)
    c = res["comparison"]
    eq = res["equilibrium"]
    # --- the paper's content --------------------------------------------
    # heating decays downstream roughly as x^-1/2 on the windward ramp
    q1 = np.interp(0.15, eq.x_over_L, eq.q)
    q2 = np.interp(0.6, eq.x_over_L, eq.q)
    assert 1.4 < q1 / q2 < 3.5   # (0.6/0.15)^0.5 = 2
    # the fully catalytic equilibrium curve and the partially catalytic
    # curve bracket the flight data over the ramp stations
    ramp = c["x_over_L"] >= 0.1
    assert np.all(c["equilibrium"][ramp] >= c["flight"][ramp] * 0.8)
    assert np.all(c["partial_catalytic"][ramp]
                  <= c["flight"][ramp] * 1.2)
    # both computed gas models land within a factor ~2 of the data
    for key in ("equilibrium", "ideal_g12"):
        ratio = c[key][ramp] / c["flight"][ramp]
        assert np.all((ratio > 0.4) & (ratio < 2.5))
    print("\nFig. 6 series: x/L, flight*, equilibrium, ideal g=1.2, "
          "phi=0.15  [W/cm^2]")
    for i, x in enumerate(c["x_over_L"]):
        print(f"  {x:5.3f}  {c['flight'][i]:6.1f}  "
              f"{c['equilibrium'][i]:6.1f}  {c['ideal_g12'][i]:6.1f}  "
              f"{c['partial_catalytic'][i]:6.1f}")
