"""``python -m repro.analysis`` — lint and units front-end.

Exit codes: 0 clean (or no findings beyond the baseline), 1 findings,
2 usage error.  ``--format json`` emits a machine-readable report on
stdout (CI publishes it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import rules as _rules  # noqa: F401 - registers rules
from repro.analysis import perf_rules as _perf  # noqa: F401 - registers rules
from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_PERF_BASELINE_PATH,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import RULES, lint_paths
from repro.analysis.findings import Severity
from repro.analysis.perf_rules import perf_lint_paths, rank_worklist
from repro.analysis.units import check_units_paths

#: Default sweep set: the package, its tests, and the benchmark suite
#: (benchmarks are hot-path definitions — they must stay lint-clean).
DEFAULT_LINT_PATHS = ["src", "tests", "benchmarks"]

#: Default perf sweep: package + benchmarks (benchmarks anchor the hot
#: region; PERF findings themselves only fire on non-test sources).
DEFAULT_PERF_PATHS = ["src", "benchmarks"]

_UNIT_RULES = {
    "UNIT001": "incompatible dimensions in +/-/comparison",
    "UNIT002": "declared unit contradicted (parameter rebound / return)",
    "UNIT003": "call argument unit mismatch",
}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="CAT static analysis: catlint + units checker")
    sub = p.add_subparsers(dest="command")

    lint = sub.add_parser("lint", help="run the catlint rule set")
    lint.add_argument("paths", nargs="*", default=DEFAULT_LINT_PATHS,
                      help="files or directories "
                           f"(default: {' '.join(DEFAULT_LINT_PATHS)})")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE_PATH,
                      default=None, metavar="FILE",
                      help="fail only on findings not in FILE "
                           f"(default {DEFAULT_BASELINE_PATH})")
    lint.add_argument("--write-baseline", nargs="?",
                      const=DEFAULT_BASELINE_PATH, default=None,
                      metavar="FILE",
                      help="accept all current findings into FILE")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule codes to run")
    lint.add_argument("--min-severity", choices=("info", "warning", "error"),
                      default="info", help="drop findings below this level")

    units = sub.add_parser("units", help="run the units/dimension checker")
    units.add_argument("paths", nargs="*", default=["src"])
    units.add_argument("--format", choices=("text", "json"), default="text")

    perf = sub.add_parser(
        "perf", help="hot-path performance lint (ranked worklist)")
    perf.add_argument("paths", nargs="*", default=DEFAULT_PERF_PATHS,
                      help="files or directories "
                           f"(default: {' '.join(DEFAULT_PERF_PATHS)})")
    perf.add_argument("--format", choices=("text", "json"), default="text")
    perf.add_argument("--json", action="store_const", const="json",
                      dest="format", help="shorthand for --format json")
    perf.add_argument("--baseline", nargs="?",
                      const=DEFAULT_PERF_BASELINE_PATH,
                      default=None, metavar="FILE",
                      help="fail only on findings not in FILE "
                           f"(default {DEFAULT_PERF_BASELINE_PATH})")
    perf.add_argument("--write-baseline", nargs="?",
                      const=DEFAULT_PERF_BASELINE_PATH, default=None,
                      metavar="FILE",
                      help="accept all current findings into FILE")
    perf.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated PERF rule codes to run")
    perf.add_argument("--worklist", default=None, metavar="FILE",
                      help="also write the ranked worklist JSON to FILE")
    perf.add_argument("--top", type=int, default=15, metavar="N",
                      help="ranked entries to show in text mode "
                           "(default 15; 0 = all)")

    sub.add_parser("list-rules", help="print the rule catalog")
    return p


def _emit(findings, new, stale, fmt: str, baseline_path: str | None) -> None:
    if fmt == "json":
        doc = {
            "tool": "catlint",
            "baseline": baseline_path,
            "counts": {
                "total": len(findings),
                "new": len(new),
                "stale_baseline_entries": stale,
            },
            "findings": [dict(f.to_dict(), new=(f in set(new)))
                         for f in findings],
        }
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    for f in findings:
        marker = "" if baseline_path is None or f in set(new) else " (baseline)"
        print(f.render() + marker)
    if baseline_path is not None:
        print(f"{len(findings)} finding(s); {len(new)} new "
              f"vs baseline {baseline_path!r}; {stale} stale entr(y/ies)")
    else:
        print(f"{len(findings)} finding(s)")


def _cmd_lint(args) -> int:
    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    findings = lint_paths(args.paths, select=select)
    floor = Severity.rank(args.min_severity)
    findings = [f for f in findings if Severity.rank(f.severity) >= floor]
    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}",
              file=sys.stderr)
        return 0
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        new, stale = diff_against_baseline(findings, baseline)
        _emit(findings, new, stale, args.format, args.baseline)
        return 1 if new else 0
    _emit(findings, findings, 0, args.format, None)
    return 1 if findings else 0


def _perf_doc(ranked, new_keys, stale, baseline_path):
    return {
        "tool": "perflint",
        "baseline": baseline_path,
        "scoring": "score = (hot_depth + local_depth) * trip_estimate"
                   " * multiplicity  (/100 on rescue paths)",
        "counts": {
            "total": len(ranked),
            "new": len(new_keys),
            "stale_baseline_entries": stale,
        },
        "worklist": [
            dict(pf.to_dict(), rank=i + 1,
                 new=(id(pf.finding) in new_keys))
            for i, pf in enumerate(ranked)
        ],
    }


def _emit_perf(ranked, new_keys, stale, args, baseline_path) -> None:
    doc = _perf_doc(ranked, new_keys, stale, baseline_path)
    if args.worklist:
        with open(args.worklist, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    shown = ranked if args.top == 0 else ranked[:args.top]
    for i, pf in enumerate(shown):
        f = pf.finding
        tag = ""
        if baseline_path is not None:
            tag = " NEW" if id(f) in new_keys else " (baseline)"
        print(f"#{i + 1:<3} score={pf.score:<10g} {f.rule} "
              f"{f.path}:{f.line} [{pf.function}]{tag}")
        print(f"     {f.message}")
        print(f"     depth={pf.hot_depth}+{pf.local_depth} "
              f"trips~{pf.trips} ({pf.trip_basis}) "
              f"x{pf.multiplicity} site(s)"
              + (" [rescue path]" if pf.rescue_path else ""))
        if pf.via:
            print(f"     via {' -> '.join(pf.via)}")
    if len(ranked) > len(shown):
        print(f"... {len(ranked) - len(shown)} more "
              "(--top 0 for the full list)")
    if baseline_path is not None:
        print(f"{len(ranked)} finding(s); {len(new_keys)} new vs "
              f"baseline {baseline_path!r}; {stale} stale entr(y/ies)")
    else:
        print(f"{len(ranked)} finding(s)")


def _cmd_perf(args) -> int:
    select = ([s.strip() for s in args.select.split(",") if s.strip()]
              if args.select else None)
    findings = perf_lint_paths(args.paths, select=select)
    ranked = rank_worklist(findings)
    plain = [pf.finding for pf in ranked]
    if args.write_baseline is not None:
        write_baseline(plain, args.write_baseline)
        print(f"wrote {len(plain)} finding(s) to {args.write_baseline}",
              file=sys.stderr)
        return 0
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        new, stale = diff_against_baseline(plain, baseline)
        new_keys = {id(f) for f in new}
        _emit_perf(ranked, new_keys, stale, args, args.baseline)
        return 1 if new else 0
    _emit_perf(ranked, {id(f) for f in plain}, 0, args, None)
    return 1 if ranked else 0


def _cmd_units(args) -> int:
    findings = check_units_paths(args.paths)
    _emit(findings, findings, 0, args.format, None)
    return 1 if findings else 0


def _cmd_list_rules() -> int:
    for code in sorted(RULES):
        r = RULES[code]
        print(f"{code}  {r.name:<22} [{r.severity}]")
        print(f"       {r.description}")
    print("CAT090 pragma-missing-reason   [info]")
    print("       catlint pragma without a '-- reason' tail.")
    for code, desc in _UNIT_RULES.items():
        print(f"{code} units-checker          [error]")
        print(f"       {desc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "units":
        return _cmd_units(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "list-rules":
        return _cmd_list_rules()
    parser.print_help()
    return 2
