"""Tests for the spectral emission model and tangent-slab transfer."""

import numpy as np
import pytest

from repro.constants import SIGMA_SB, planck_lambda
from repro.errors import InputError, SpeciesError
from repro.radiation import (EmissionModel, NonequilibriumRadiator,
                             tangent_slab_flux, tauber_sutton_radiative)
from repro.thermo.species import species_set


@pytest.fixture(scope="module")
def air_em(air11_mod):
    return EmissionModel(air11_mod)


@pytest.fixture(scope="module")
def air11_mod():
    return species_set("air11")


class TestEmissionModel:
    def test_radiators_filtered_by_set(self, air11_mod, titan9):
        em_air = EmissionModel(air11_mod)
        names = {b.species for b in em_air.systems}
        assert "CN" not in names and "N2+" in names
        em_titan = EmissionModel(species_set("titan9"))
        names_t = {b.species for b in em_titan.systems}
        assert "CN" in names_t and "N2+" not in names_t

    def test_no_radiators_raises(self):
        with pytest.raises(SpeciesError):
            EmissionModel(species_set("jupiter2"), include_lines=False)

    def test_emission_grows_steeply_with_temperature(self, air_em,
                                                     air11_mod):
        y = np.zeros(air11_mod.n)
        y[air11_mod.index["N2"]] = 1.0
        j1 = air_em.total_emission(np.array(1e-2), y, np.array(6000.0))
        j2 = air_em.total_emission(np.array(1e-2), y, np.array(9000.0))
        assert j2 > 30 * j1  # Boltzmann factor of a ~10^5 K level

    def test_spectral_feature_positions(self, air_em, air11_mod):
        # shocked-air violet region: the spectrum peaks at the N2+ first
        # negative (391 nm) or N2 second positive (337 nm) system
        lam = np.linspace(0.2e-6, 1.0e-6, 1500)
        y = np.zeros(air11_mod.n)
        y[air11_mod.index["N2+"]] = 0.05
        y[air11_mod.index["N2"]] = 0.95
        n = air_em.number_densities(np.array(1e-2), y)
        j = air_em.emission_coefficient(lam, n, np.array(10000.0))
        peak_lam = lam[np.argmax(j)]
        assert peak_lam == pytest.approx(0.3914e-6, abs=0.01e-6)
        # and the N2 2+ system is present as a secondary feature
        i337 = np.argmin(np.abs(lam - 0.3371e-6))
        assert j[i337] > 0.05 * j.max()

    def test_linear_in_density(self, air_em, air11_mod):
        y = np.zeros(air11_mod.n)
        y[air11_mod.index["N"]] = 1.0
        j1 = air_em.total_emission(np.array(1e-3), y, np.array(9000.0))
        j2 = air_em.total_emission(np.array(2e-3), y, np.array(9000.0))
        assert j2 / j1 == pytest.approx(2.0, rel=1e-9)

    def test_dict_and_array_inputs_agree(self, air_em, air11_mod):
        lam = np.linspace(0.3e-6, 0.5e-6, 50)
        y = np.zeros(air11_mod.n)
        y[air11_mod.index["N2"]] = 1.0
        n_arr = air_em.number_densities(np.array(1e-2), y)
        j_arr = air_em.emission_coefficient(lam, n_arr, np.array(8000.0))
        n_dict = {"N2": float(n_arr[air11_mod.index["N2"]])}
        j_dict = air_em.emission_coefficient(lam, n_dict,
                                             np.array(8000.0))
        assert np.allclose(j_arr, j_dict, rtol=1e-12)


class TestTangentSlab:
    def test_optically_thin_limit(self):
        # uniform thin slab: q = 2 pi j L per wavelength
        ny, nw = 20, 5
        y = np.linspace(0.0, 0.01, ny)
        lam = np.linspace(0.4e-6, 0.6e-6, nw)
        j = np.full((ny, nw), 1e3)
        T = np.full(ny, 8000.0)
        q, q_lam = tangent_slab_flux(y, j, T, lam, optically_thin=True)
        assert np.allclose(q_lam, 2 * np.pi * 1e3 * 0.01, rtol=1e-12)

    def test_absorption_reduces_flux(self):
        ny, nw = 40, 3
        y = np.linspace(0.0, 0.05, ny)
        lam = np.linspace(0.4e-6, 0.6e-6, nw)
        T = np.full(ny, 10000.0)
        j = np.full((ny, nw), 1e9)  # strongly emitting -> optically thick
        q_thick, _ = tangent_slab_flux(y, j, T, lam)
        q_thin, _ = tangent_slab_flux(y, j, T, lam, optically_thin=True)
        assert q_thick < q_thin

    def test_blackbody_limit(self):
        # an extremely thick isothermal slab radiates like a black wall:
        # q_lambda -> pi B_lambda(T)
        ny = 400
        y = np.linspace(0.0, 1.0, ny)
        lam = np.array([0.5e-6])
        T_val = 8000.0
        T = np.full(ny, T_val)
        B = float(planck_lambda(lam[0], T_val))
        j = np.full((ny, 1), B * 5e3)  # kappa = 5e3 1/m -> tau ~ 5000
        q, q_lam = tangent_slab_flux(y, j, T, lam)
        assert q_lam[0] == pytest.approx(np.pi * B, rel=0.01)

    def test_shape_validation(self):
        with pytest.raises(InputError):
            tangent_slab_flux(np.linspace(0, 1, 5), np.ones((4, 3)),
                              np.ones(5), np.ones(3))
        with pytest.raises(InputError):
            tangent_slab_flux(np.zeros(5), np.ones((5, 3)), np.ones(5),
                              np.ones(3))


class TestNonequilibriumRadiator:
    def test_radiance_from_relaxation_profile_shape(self, air11_mod):
        # synthetic relaxing profile: hot Tv slab
        from repro.solvers.shock_relaxation import RelaxationProfile
        nx = 30
        x = np.linspace(0, 0.02, nx)
        y = np.zeros((nx, air11_mod.n))
        y[:, air11_mod.index["N2"]] = 0.6
        y[:, air11_mod.index["N"]] = 0.4
        prof = RelaxationProfile(
            x=x, T=np.full(nx, 9000.0), Tv=np.full(nx, 9000.0), y=y,
            rho=np.full(nx, 1e-2), u=np.full(nx, 500.0),
            p=np.full(nx, 1e4), db=air11_mod)
        rad = NonequilibriumRadiator(air11_mod)
        lam = np.linspace(0.2e-6, 1.0e-6, 300)
        I = rad.from_relaxation_profile(prof, lam)
        assert I.shape == lam.shape
        assert np.all(I >= 0) and I.max() > 0

    def test_nonequilibrium_exceeds_equilibrium_when_Tv_hot(self,
                                                            air11_mod):
        rad = NonequilibriumRadiator(air11_mod)
        nx = 10
        x = np.linspace(0, 0.01, nx)
        y = np.zeros((nx, air11_mod.n))
        y[:, air11_mod.index["N2"]] = 1.0
        lam = np.linspace(0.3e-6, 0.45e-6, 100)
        I_hot = rad.spectral_radiance(x, np.full(nx, 1e-2), y,
                                      np.full(nx, 12000.0), lam)
        I_cold = rad.spectral_radiance(x, np.full(nx, 1e-2), y,
                                       np.full(nx, 6000.0), lam)
        assert I_hot.max() > 100 * I_cold.max()


class TestTauberSutton:
    def test_magnitude_at_12kms(self):
        # Earth entry at 12 km/s, rho ~ 2e-4, Rn = 2.3 m (AOTV class):
        # hundreds of W/cm^2
        q = float(tauber_sutton_radiative(2e-4, 12000.0, 2.3))
        assert 1e5 < q < 1e8

    def test_negligible_below_9kms(self):
        q = float(tauber_sutton_radiative(2e-4, 7000.0, 2.3))
        # catlint: disable=CAT010 -- correlation returns exact 0 below the velocity floor
        assert q == 0.0

    def test_density_scaling(self):
        q1 = float(tauber_sutton_radiative(1e-4, 12000.0, 1.0))
        q2 = float(tauber_sutton_radiative(2e-4, 12000.0, 1.0))
        assert q2 / q1 == pytest.approx(2.0**1.22, rel=1e-9)

    def test_invalid_density(self):
        with pytest.raises(InputError):
            tauber_sutton_radiative(-1.0, 12000.0, 1.0)
