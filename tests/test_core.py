"""Tests for the core facade: EOS models and state containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlightCondition, FreeStream, IdealGasEOS
from repro.core.gas import TabulatedEOS
from repro.errors import InputError


class TestIdealGasEOS:
    def test_consistency(self):
        eos = IdealGasEOS(1.4)
        rho, e = 1.2, 2.1e5
        p = float(eos.pressure(rho, e))
        assert p == pytest.approx(0.4 * rho * e)
        assert float(eos.e_from_p_rho(p, rho)) == pytest.approx(e)

    def test_sound_speed_room_air(self):
        eos = IdealGasEOS(1.4, 287.0528)
        e = eos.e_from_T(300.0)
        assert float(eos.sound_speed(1.2, e)) == pytest.approx(347.2,
                                                               rel=1e-3)

    def test_temperature_roundtrip(self):
        eos = IdealGasEOS(1.3, 250.0)
        e = eos.e_from_T(1234.0)
        assert float(eos.temperature(1.0, e)) == pytest.approx(1234.0)

    def test_invalid_gamma(self):
        with pytest.raises(InputError):
            IdealGasEOS(0.9)

    @given(g=st.floats(min_value=1.05, max_value=1.67),
           T=st.floats(min_value=50.0, max_value=5000.0))
    @settings(max_examples=30, deadline=None)
    def test_gamma_eff_constant(self, g, T):
        eos = IdealGasEOS(g)
        e = eos.e_from_T(T)
        assert float(eos.gamma_eff(1.0, e)) == pytest.approx(g)


class TestTabulatedEOS:
    @pytest.fixture(scope="class")
    def eos(self):
        from repro.thermo.eos_table import build_air_table
        return TabulatedEOS(build_air_table(n_rho=24, n_e=32))

    def test_cold_limit_matches_ideal(self, eos):
        # cold air: effective gamma ~ 1.4
        rho = 1.0
        e = 2.15e5   # ~300 K
        g = float(eos.gamma_eff(rho, e))
        assert g == pytest.approx(1.40, abs=0.01)

    def test_hot_gamma_drops(self, eos):
        g_cold = float(eos.gamma_eff(0.01, 3e5))
        g_hot = float(eos.gamma_eff(0.01, 3e7))
        assert g_hot < g_cold

    def test_e_from_p_rho_roundtrip(self, eos):
        rho, e = 0.01, 5e6
        p = float(eos.pressure(rho, e))
        e_back = float(eos.e_from_p_rho(p, rho))
        assert e_back == pytest.approx(e, rel=1e-6)

    def test_default_table_builds(self):
        # uses the cached standard table
        eos = TabulatedEOS()
        assert float(eos.pressure(0.1, 1e6)) > 0


class TestFreeStream:
    def test_derived_quantities(self):
        fs = FreeStream(rho=1.225, T=288.15, V=680.6)
        assert fs.a == pytest.approx(340.3, rel=1e-3)
        assert fs.mach == pytest.approx(2.0, rel=1e-3)
        assert fs.p == pytest.approx(1.225 * 287.0528 * 288.15, rel=1e-9)
        assert fs.dynamic_pressure == pytest.approx(
            0.5 * 1.225 * 680.6**2)

    def test_total_enthalpy(self):
        fs = FreeStream(rho=1.0, T=300.0, V=1000.0)
        h0 = fs.gamma * fs.e_internal + 0.5e6
        assert fs.total_enthalpy == pytest.approx(h0)

    def test_invalid(self):
        with pytest.raises(InputError):
            FreeStream(rho=-1.0, T=300.0, V=100.0)


class TestFlightCondition:
    def test_freestream_from_atmosphere(self):
        fc = FlightCondition(V=6740.0, h=71300.0)
        fs = fc.freestream()
        assert fs.T == pytest.approx(216.0, rel=0.05)
        assert fc.mach == pytest.approx(23.0, rel=0.05)

    def test_custom_atmosphere(self):
        from repro.atmosphere import TitanAtmosphere
        fc = FlightCondition(V=5000.0, h=200e3,
                             atmosphere=TitanAtmosphere())
        fs = fc.freestream()
        assert 100.0 < fs.T < 200.0
