"""Tests for NASA-7 polynomial evaluation and fitting."""

import numpy as np
import pytest

from repro.errors import InputError, TableRangeError
from repro.thermo.nasa7 import Nasa7Poly, fit_nasa7
from repro.thermo.species import SPECIES
from repro.thermo.statmech import SpeciesThermo


@pytest.fixture(scope="module")
def n2_fit():
    return fit_nasa7(SpeciesThermo(SPECIES["N2"]))


class TestEvaluation:
    def test_invalid_construction(self):
        with pytest.raises(InputError):
            Nasa7Poly("x", 1000.0, 500.0, 6000.0, (0,) * 7, (0,) * 7)
        with pytest.raises(InputError):
            Nasa7Poly("x", 200.0, 1000.0, 6000.0, (0,) * 6, (0,) * 7)

    def test_out_of_range_raises(self, n2_fit):
        with pytest.raises(TableRangeError):
            n2_fit.cp(50.0)
        with pytest.raises(TableRangeError):
            n2_fit.cp(1e6)

    def test_constant_cp_poly(self):
        # a1 = 3.5, everything else zero: cp = 3.5 R exactly
        from repro.constants import R_UNIVERSAL as R
        a = (3.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        poly = Nasa7Poly("const", 200.0, 1000.0, 6000.0, a, a)
        assert float(poly.cp(437.0)) == pytest.approx(3.5 * R)
        assert float(poly.h(1000.0)) == pytest.approx(3.5 * R * 1000.0)


class TestFitQuality:
    @pytest.mark.parametrize("name", ["N2", "O2", "NO", "N", "O", "e-"])
    def test_cp_standard_range(self, name):
        # standard NASA upper limit (6000 K): sub-percent quality
        src = SpeciesThermo(SPECIES[name])
        poly = fit_nasa7(src)
        T = np.linspace(250.0, 5900.0, 300)
        rel = np.abs(poly.cp(T) / src.cp(T) - 1.0)
        assert np.max(rel) < 0.01

    @pytest.mark.parametrize("name", ["N2", "N"])
    def test_cp_wide_range(self, name):
        # a single quartic stretched to 2e4 K degrades to the few-percent
        # level (why production fits use three ranges); document the bound
        src = SpeciesThermo(SPECIES[name])
        poly = fit_nasa7(src, T_high=20000.0)
        T = np.linspace(250.0, 19000.0, 300)
        rel = np.abs(poly.cp(T) / src.cp(T) - 1.0)
        assert np.max(rel) < 0.05

    def test_h_continuous_at_break(self, n2_fit):
        eps = 1e-6
        below = float(n2_fit.h(n2_fit.T_mid - eps))
        above = float(n2_fit.h(n2_fit.T_mid + eps))
        assert below == pytest.approx(above, rel=1e-6)

    def test_s_continuous_at_break(self, n2_fit):
        eps = 1e-6
        below = float(n2_fit.s(n2_fit.T_mid - eps))
        above = float(n2_fit.s(n2_fit.T_mid + eps))
        assert below == pytest.approx(above, rel=1e-6)

    def test_h_matches_statmech(self, n2_fit):
        src = SpeciesThermo(SPECIES["N2"])
        T = np.linspace(300.0, 5900.0, 50)
        rel = np.abs(n2_fit.h(T) / src.h(T) - 1.0)
        assert np.max(rel) < 0.01

    def test_g0_matches_statmech(self, n2_fit):
        # Gibbs functions feed equilibrium constants: demand good agreement
        src = SpeciesThermo(SPECIES["N2"])
        T = np.linspace(500.0, 5900.0, 40)
        diff = np.abs(n2_fit.g0(T) - src.g0(T))
        # absolute error in g/(RT) below ~0.05 keeps Kp within ~5%
        from repro.constants import R_UNIVERSAL as R
        assert np.max(diff / (R * T)) < 0.05

    def test_fit_range_honored(self):
        src = SpeciesThermo(SPECIES["O"])
        poly = fit_nasa7(src, T_low=300.0, T_mid=2000.0, T_high=10000.0)
        # catlint: disable=CAT010 -- fit ranges are stored attributes, not computed
        assert poly.T_low == 300.0 and poly.T_high == 10000.0
        _ = poly.cp(9999.0)
