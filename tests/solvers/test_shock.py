"""Tests for shock and isentropic relations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.solvers.shock import (equilibrium_normal_shock,
                                 frozen_post_shock_state, isentropic_ratios,
                                 normal_shock_ideal, oblique_shock_beta,
                                 pitot_pressure_ideal)


class TestNormalShockIdeal:
    def test_textbook_mach2(self):
        ns = normal_shock_ideal(2.0)
        assert ns["p_ratio"] == pytest.approx(4.5)
        assert ns["rho_ratio"] == pytest.approx(8.0 / 3.0)
        assert ns["M2"] == pytest.approx(0.5774, rel=1e-4)
        assert ns["p0_ratio"] == pytest.approx(0.7209, rel=1e-4)

    def test_subsonic_rejected(self):
        with pytest.raises(InputError):
            normal_shock_ideal(0.9)

    @given(M=st.floats(min_value=1.01, max_value=30.0))
    @settings(max_examples=50, deadline=None)
    def test_entropy_and_compression(self, M):
        ns = normal_shock_ideal(M)
        assert ns["p_ratio"] > 1.0
        assert ns["rho_ratio"] > 1.0
        assert ns["T_ratio"] > 1.0
        assert ns["M2"] < 1.0              # subsonic downstream
        assert ns["p0_ratio"] <= 1.0       # total-pressure loss

    def test_strong_shock_density_limit(self):
        ns = normal_shock_ideal(100.0)
        assert ns["rho_ratio"] == pytest.approx(6.0, rel=1e-3)  # (g+1)/(g-1)

    @given(M=st.floats(min_value=1.01, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_rankine_hugoniot_closure(self, M):
        # jump ratios must satisfy mass/momentum/energy identically
        g = 1.4
        ns = normal_shock_ideal(M, g)
        r = ns["rho_ratio"]
        u2_u1 = 1.0 / r
        # momentum: p2/p1 = 1 + g M^2 (1 - u2/u1)
        assert ns["p_ratio"] == pytest.approx(
            1.0 + g * M * M * (1.0 - u2_u1), rel=1e-12)


class TestIsentropic:
    def test_sonic_values(self):
        r = isentropic_ratios(1.0)
        assert r["p0_p"] == pytest.approx(1.893, rel=1e-3)
        assert r["T0_T"] == pytest.approx(1.2)

    def test_pitot_mach5(self):
        # Rayleigh pitot at M=5: p02/p1 = 32.65
        p = pitot_pressure_ideal(5.0, 1.0)
        assert float(p) == pytest.approx(32.65, rel=1e-3)


class TestObliqueShock:
    def test_known_point(self):
        # M=3, theta=20 deg -> beta ~ 37.76 deg (weak)
        beta = oblique_shock_beta(3.0, np.deg2rad(20.0))
        assert np.rad2deg(beta) == pytest.approx(37.76, abs=0.1)

    def test_strong_branch_larger(self):
        b_w = oblique_shock_beta(3.0, np.deg2rad(20.0), weak=True)
        b_s = oblique_shock_beta(3.0, np.deg2rad(20.0), weak=False)
        assert b_s > b_w

    def test_mach_wave_limit(self):
        beta = oblique_shock_beta(2.0, 0.0)
        assert beta == pytest.approx(np.arcsin(0.5), rel=1e-9)

    def test_detachment_raises(self):
        with pytest.raises(InputError):
            oblique_shock_beta(2.0, np.deg2rad(35.0))  # max ~23 deg at M=2

    def test_subsonic_raises(self):
        with pytest.raises(InputError):
            oblique_shock_beta(0.8, 0.1)


class TestEquilibriumShock:
    def test_density_ratio_exceeds_ideal(self, air_gas):
        # the Fig. 4 physics: equilibrium shocks are much denser
        rho1, T1, u1 = 1.56e-4, 233.0, 6700.0
        res = equilibrium_normal_shock(air_gas, rho1, T1, u1)
        assert 1.0 / res["eps"] > 10.0     # ideal limit is 6

    def test_temperature_far_below_frozen(self, air_gas):
        rho1, T1, u1 = 1.56e-4, 233.0, 6700.0
        res = equilibrium_normal_shock(air_gas, rho1, T1, u1)
        frozen = frozen_post_shock_state(rho1, T1, u1)
        assert res["T2"] < 0.4 * frozen["T2"]

    def test_rankine_hugoniot_conservation(self, air_gas):
        rho1, T1, u1 = 1e-3, 250.0, 5000.0
        res = equilibrium_normal_shock(air_gas, rho1, T1, u1)
        # mass
        m1 = rho1 * u1
        m2 = res["rho2"] * res["u2"]
        assert m2 == pytest.approx(m1, rel=1e-8)
        # momentum
        mom1 = res["p1"] + rho1 * u1**2
        mom2 = res["p2"] + res["rho2"] * res["u2"] ** 2
        assert mom2 == pytest.approx(mom1, rel=1e-8)
        # energy
        h2 = float(air_gas.mix.h_mass(np.array(res["T2"]), res["y2"]))
        assert h2 + 0.5 * res["u2"] ** 2 == pytest.approx(
            res["h1"] + 0.5 * u1**2, rel=1e-6)

    def test_downstream_composition_is_equilibrium(self, air_gas):
        res = equilibrium_normal_shock(air_gas, 1e-3, 250.0, 6000.0)
        y_eq = air_gas.composition_rho_T(np.array(res["rho2"]),
                                         np.array(res["T2"]))
        assert np.allclose(res["y2"], y_eq, atol=1e-8)

    def test_subsonic_rejected(self, air_gas):
        with pytest.raises(InputError):
            equilibrium_normal_shock(air_gas, 1.0, 300.0, 100.0)
