"""Batch evaluation service: the "millions of users" front door.

``evaluate_batch`` answers thousands of (vehicle, flight-condition,
method) requests per call with production failure semantics: up-front
validation into typed records, per-request outcome envelopes, admission
control, deadline budgets, circuit breakers per method rung and
idempotent request keys.  ``evaluate_batch_farm`` shards the same batch
across the solve farm's durable work queue.  See DESIGN.md §8.

:mod:`repro.service.jobs` is the *asynchronous* front door: a
:class:`JobManager` whose ``submit`` returns a durable job id
immediately, with a crash-safe per-job state machine, live progress,
cancellation with escalation and TTL-based GC.  See DESIGN.md §9.
"""

from repro.service.batch import (ADMISSION, AdmissionController,
                                 BatchPolicy, BatchResult, batch_jobs,
                                 batch_bench_record, evaluate_batch,
                                 evaluate_batch_farm, shard_requests)
from repro.service.breaker import BreakerBoard, BreakerPolicy
from repro.service.jobs import (AsyncJob, JOB_STATES, JOB_TERMINAL,
                                JOB_TRANSITIONS, JobManager,
                                audit_job_transitions,
                                run_async_attempt)
from repro.service.request import (Envelope, METHODS, Request,
                                   canonical_request, request_key,
                                   validate_request)

__all__ = ["ADMISSION", "AdmissionController", "AsyncJob",
           "BatchPolicy", "BatchResult", "BreakerBoard",
           "BreakerPolicy", "Envelope", "JOB_STATES", "JOB_TERMINAL",
           "JOB_TRANSITIONS", "JobManager", "METHODS", "Request",
           "audit_job_transitions", "batch_bench_record", "batch_jobs",
           "canonical_request", "evaluate_batch",
           "evaluate_batch_farm", "request_key", "run_async_attempt",
           "shard_requests", "validate_request"]
