"""Lease-based job ownership and heartbeat-age liveness.

A distributed farm needs one answer to one question: *who owns this
job, and are they still alive?*  This module gives both halves a single
implementation:

* :class:`LeaseManager` — filesystem leases.  A worker claims a job by
  exclusively creating ``lease-<job>.json`` (``O_CREAT | O_EXCL`` — the
  kernel arbitrates, so exactly one claimant wins no matter how many
  race), embeds a random fencing ``token`` plus an expiry clock, and
  renews by atomically rewriting the file.  A worker that dies simply
  stops renewing; any process may then :meth:`~LeaseManager.reap` the
  expired lease and the job returns to the pending pool.  The token
  fences late writers: a worker that lost its lease (reaped while
  stalled) discovers the token mismatch before committing a result and
  abandons it instead of double-completing.

* :func:`heartbeat_ages` / :func:`stalest_index` /
  :func:`expired_indices` — the one liveness-by-silence code path
  shared by the farm supervisor (worker heartbeat files), the stencil
  pool (:mod:`repro.parallel.executor` names its stalest worker with
  these) and lease expiry itself.  "Dead" always means the same thing:
  silent longer than the timeout, aged against the observer's own
  clock.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import dataclass

from repro.errors import InputError

__all__ = ["Lease", "LeaseManager", "expired_indices", "format_ages",
           "heartbeat_ages", "stalest_index"]


# ----------------------------------------------------------------------
# liveness by silence (shared helpers)
# ----------------------------------------------------------------------

def heartbeat_ages(last_beats, now: float | None = None) -> list[float]:
    """Age of each heartbeat against ``now`` (monotonic seconds).

    A beat of 0.0 (or negative) means "never beat" and ages to
    ``inf`` — a member that never reported is always the prime suspect.
    """
    if now is None:
        now = time.monotonic()
    return [(now - b) if b > 0.0 else float("inf") for b in last_beats]


def stalest_index(ages: list[float]) -> int:
    """Index of the member silent the longest."""
    if not ages:
        raise InputError("stalest_index needs at least one member")
    return max(range(len(ages)), key=ages.__getitem__)


def expired_indices(ages: list[float], timeout: float) -> list[int]:
    """Members silent past ``timeout`` — the declared-dead set."""
    if timeout <= 0.0:
        raise InputError("liveness timeout must be positive")
    return [i for i, a in enumerate(ages) if a > timeout]


def format_ages(ages: list[float]) -> str:
    """``w0=1.2s, w1=never`` summary used in diagnostics."""
    return ", ".join(
        f"w{i}={'never' if a == float('inf') else f'{a:.1f}s'}"
        for i, a in enumerate(ages))


# ----------------------------------------------------------------------
# filesystem leases
# ----------------------------------------------------------------------

@dataclass
class Lease:
    """One granted job lease.

    ``token`` is the fencing credential: every mutation the holder
    commits is validated against the token on disk, so a holder whose
    lease was reaped (and possibly re-granted) cannot clobber the new
    owner's work.
    """

    job_id: str
    owner: str
    token: str
    ttl: float
    renewed: float   # wall clock of the last successful renewal

    @property
    def expires_at(self) -> float:
        return self.renewed + self.ttl

    def to_payload(self) -> dict:
        return {"job_id": self.job_id, "owner": self.owner,
                "token": self.token, "ttl": self.ttl,
                "renewed": self.renewed}


class LeaseManager:
    """Grant, renew, verify and reap filesystem leases in one directory.

    All clocks are wall-clock (``time.time``) because expiry must be
    comparable across processes; the ttl should therefore be generous
    relative to clock skew on one host (seconds, not milliseconds).
    """

    def __init__(self, dir, *, ttl: float = 15.0):
        if ttl <= 0.0:
            raise InputError("lease ttl must be positive")
        self.dir = os.fspath(dir)
        self.ttl = float(ttl)
        os.makedirs(self.dir, exist_ok=True)

    def _path(self, job_id: str) -> str:
        return os.path.join(self.dir, f"lease-{job_id}.json")

    def _read(self, job_id: str) -> dict | None:
        try:
            with open(self._path(job_id)) as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    # -- grant / renew / release ---------------------------------------

    def acquire(self, job_id: str, owner: str) -> Lease | None:
        """Exclusively claim ``job_id``; None when someone else holds it.

        The ``O_CREAT | O_EXCL`` create is the arbitration point: of N
        racing workers exactly one syscall succeeds.
        """
        lease = Lease(job_id=job_id, owner=owner,
                      token=secrets.token_hex(8), ttl=self.ttl,
                      renewed=time.time())
        try:
            fd = os.open(self._path(job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(lease.to_payload(), f)
        except OSError:
            return None
        return lease

    def renew(self, lease: Lease) -> bool:
        """Push the expiry forward; False when the lease was lost
        (reaped, re-granted, or the file vanished) — the holder must
        then abandon the job."""
        held = self._read(lease.job_id)
        if held is None or held.get("token") != lease.token:
            return False
        lease.renewed = time.time()
        tmp = f"{self._path(lease.job_id)}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(lease.to_payload(), f)
            os.replace(tmp, self._path(lease.job_id))
        except OSError:
            return False
        return True

    def verify(self, lease: Lease) -> bool:
        """Does the on-disk lease still carry the holder's token?"""
        held = self._read(lease.job_id)
        return held is not None and held.get("token") == lease.token

    def release(self, lease: Lease) -> None:
        """Drop the lease (only when still held — never unlink a
        successor's grant)."""
        if self.verify(lease):
            try:
                os.remove(self._path(lease.job_id))
            except OSError:
                pass

    # -- expiry ---------------------------------------------------------

    def holder(self, job_id: str) -> dict | None:
        """Current on-disk lease payload, if any."""
        return self._read(job_id)

    def is_expired(self, job_id: str, now: float | None = None) -> bool:
        held = self._read(job_id)
        if held is None:
            return False
        if now is None:
            now = time.time()
        age = now - float(held.get("renewed", 0.0))
        return bool(expired_indices([age], float(held.get("ttl",
                                                          self.ttl))))

    def reap(self, now: float | None = None) -> list[str]:
        """Remove every expired lease; returns the freed job ids.

        Any process may reap — the farm supervisor does it each poll,
        so a SIGKILLed worker's jobs return to the pool within one ttl.
        """
        if now is None:
            now = time.time()
        freed: list[str] = []
        try:
            names = os.listdir(self.dir)
        except FileNotFoundError:
            return freed
        for name in names:
            if not (name.startswith("lease-") and name.endswith(".json")):
                continue
            job_id = name[len("lease-"):-len(".json")]
            if self.is_expired(job_id, now):
                try:
                    os.remove(os.path.join(self.dir, name))
                except OSError:
                    continue
                freed.append(job_id)
        return freed
