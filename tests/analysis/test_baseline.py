"""Baseline round-trip and regression diffing."""

from repro.analysis.baseline import (
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding


def mk(rule="CAT010", path="src/repro/x.py", line=10,
       source_line="return x == 0.5", message="float equality"):
    return Finding(rule=rule, severity="error", path=path, line=line,
                   col=4, message=message, source_line=source_line)


class TestKeying:
    def test_key_ignores_line_number(self):
        # unrelated edits above a grandfathered finding must not revive it
        assert mk(line=10).key() == mk(line=99).key()

    def test_key_distinguishes_rule_path_and_text(self):
        base = mk()
        assert base.key() != mk(rule="CAT001").key()
        assert base.key() != mk(path="src/repro/y.py").key()
        assert base.key() != mk(source_line="return x == 1.5").key()


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        p = tmp_path / "baseline.json"
        findings = [mk(), mk(rule="CAT001", source_line="np.log(x)")]
        write_baseline(findings, str(p))
        counts = load_baseline(str(p))
        assert sum(counts.values()) == 2
        assert counts[mk().key()] == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == {}

    def test_multiplicity_preserved(self, tmp_path):
        p = tmp_path / "baseline.json"
        write_baseline([mk(line=10), mk(line=20)], str(p))
        assert load_baseline(str(p))[mk().key()] == 2


class TestDiff:
    def test_baselined_finding_is_not_new(self, tmp_path):
        p = tmp_path / "b.json"
        write_baseline([mk()], str(p))
        new, stale = diff_against_baseline([mk(line=42)],
                                           load_baseline(str(p)))
        assert new == [] and stale == 0

    def test_fresh_finding_is_new(self, tmp_path):
        p = tmp_path / "b.json"
        write_baseline([mk()], str(p))
        fresh = mk(rule="CAT012", source_line="except:")
        new, stale = diff_against_baseline([mk(), fresh],
                                           load_baseline(str(p)))
        assert new == [fresh] and stale == 0

    def test_multiplicity_beyond_baseline_is_new(self, tmp_path):
        # one occurrence accepted, a second identical line is a regression
        p = tmp_path / "b.json"
        write_baseline([mk(line=10)], str(p))
        new, _ = diff_against_baseline([mk(line=10), mk(line=50)],
                                       load_baseline(str(p)))
        assert len(new) == 1

    def test_stale_entries_counted(self, tmp_path):
        p = tmp_path / "b.json"
        write_baseline([mk(), mk(rule="CAT001", source_line="np.log(x)")],
                       str(p))
        new, stale = diff_against_baseline([], load_baseline(str(p)))
        assert new == [] and stale == 2

    def test_empty_baseline_everything_new(self):
        new, stale = diff_against_baseline([mk()], load_baseline("/nope"))
        assert len(new) == 1 and stale == 0
