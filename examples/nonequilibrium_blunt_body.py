"""Nonequilibrium blunt-body flow: frozen vs finite-rate vs equilibrium.

The paper's "biggest challenge" demonstrated end to end: the same Mach-15
sphere computed with (a) frozen chemistry (ideal gas), (b) finite-rate
Park kinetics coupled to the flow solver, and (c) the equilibrium
limit — showing the shock standoff and stagnation temperature migrate
from the frozen values toward equilibrium as chemistry is turned on.

Run:  python examples/nonequilibrium_blunt_body.py
"""

import numpy as np

from repro.core.gas import IdealGasEOS
from repro.geometry import Sphere
from repro.grid import blunt_body_grid
from repro.postprocess.tables import format_table
from repro.solvers.euler2d import AxisymmetricEulerSolver
from repro.solvers.reacting_euler2d import ReactingEulerSolver
from repro.solvers.shock import equilibrium_normal_shock
from repro.thermo.equilibrium import (EquilibriumGas,
                                      air_reference_mass_fractions)
from repro.thermo.species import species_set

RN = 0.3
RHO, T_INF, V = 1e-3, 240.0, 5000.0


def main():
    y0 = np.zeros(5)
    y0[0], y0[1] = 0.767, 0.233

    # (a) frozen: ideal-gas Euler
    grid = blunt_body_grid(Sphere(RN), n_s=21, n_normal=31,
                           density_ratio=0.17, margin=2.8)
    frozen = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4))
    frozen.set_freestream(RHO, V, RHO * 287.05 * T_INF)
    frozen.run(n_steps=900, cfl=0.35)

    # (b) finite rate
    grid2 = blunt_body_grid(Sphere(RN), n_s=21, n_normal=31,
                            density_ratio=0.12, margin=2.8)
    noneq = ReactingEulerSolver(grid2, "air5")
    noneq.set_freestream(RHO, V, T_INF, y0)
    noneq.run(n_steps=700, cfl=0.3)

    # (c) equilibrium limit (shock relations)
    db = species_set("air5")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    eq = equilibrium_normal_shock(gas, RHO, T_INF, V)

    f_fr = frozen.fields()
    f_ne = noneq.fields()
    rows = [
        ("frozen (ideal gas)", f_fr["T"].max(),
         frozen.stagnation_standoff() / RN, "-"),
        ("finite-rate Park air5", f_ne["T"].max(),
         noneq.stagnation_standoff() / RN,
         f"{f_ne['y'][0, 0, db.index['N']]:.3f}"),
        ("equilibrium limit", eq["T2"],
         0.78 * eq["eps"], "(shock relations)"),
    ]
    print(f"Mach-15-class sphere (V = {V:.0f} m/s, rho = {RHO} kg/m^3, "
          f"R_n = {RN} m)")
    print(format_table(
        ["model", "peak/post-shock T [K]", "standoff / R_n",
         "stagnation y_N"], rows))
    print("\nThe finite-rate solution sits between the frozen and "
          "equilibrium limits — the nonequilibrium shock layer the "
          "paper's NS codes were built to capture. O2 is consumed "
          f"(y_O2 = {f_ne['y'][0, 0, db.index['O2']]:.4f} at the "
          "stagnation point) while N2 is only partially dissociated.")

    degrade_demo()


def degrade_demo():
    """Graceful degradation, both layers of it.

    Solver layer: a fault-injected reacting march that the plain
    rollback ladder cannot survive completes once the degradation
    cascade is armed (quarantined first-order zone, chemistry demotion,
    automatic re-promotion — all recorded in the ledger).

    API layer: ``on_failure="degrade"`` drops a failing stagnation
    solve one model rung down to the correlation-level answer instead
    of raising.
    """
    from repro.core.api import stagnation_environment
    from repro.resilience import (DegradationPolicy, FaultInjector,
                                  RetryPolicy)

    print("\n--- graceful degradation demo ---")
    grid = blunt_body_grid(Sphere(0.05), n_s=9, n_normal=13,
                           density_ratio=0.12, margin=2.5)
    s = ReactingEulerSolver(grid, "air5")
    y0 = np.zeros(5)
    y0[0], y0[1] = 0.767, 0.233
    s.set_freestream(1e-3, 5000.0, 250.0, y0)
    faults = FaultInjector().inject_perturbation(
        step=10, cell=(4, 6), component=0, factor=1e-4, persistent=True)
    s.run(n_steps=40, cfl=0.4,
          resilience=RetryPolicy(max_retries=1, cfl_backoff=0.8,
                                 cfl_min=0.2),
          faults=faults, watchdog=True,
          degradation=DegradationPolicy(promote_after=15))
    print(f"fault-injected march completed {s.steps} steps; ledger:")
    print(s.degradation_ledger.summary())

    # a subsonic "entry" fails the shock solve; the degrade mode answers
    # with Sutton-Graves / Tauber-Sutton correlations instead of raising
    env = stagnation_environment(V=10.0, h=60e3, nose_radius=1.0,
                                 on_failure="degrade")
    print(f"\nAPI model-ladder fallback: degraded={env['degraded']} "
          f"(rung: {env['degradation']['rung']}), "
          f"q_conv = {env['q_conv']:.3g} W/m^2")


if __name__ == "__main__":
    main()
