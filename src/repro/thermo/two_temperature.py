"""Two-temperature (T, Tv) thermochemical-nonequilibrium gas model.

Implements the Park-style split the paper describes ("additional energy
equations to describe the energy exchange between the various energy
modes"): heavy-particle translation and rotation live at ``T``; vibration,
electronic excitation and free electrons live at ``Tv``.

The model supplies

* the vibrational-electronic energy pool ``e_v(Tv, y)`` and its inversion,
* the total energy ``e(T, Tv, y)`` and the (T, Tv) recovery from
  conservative variables,
* the Landau–Teller translational-vibrational energy-exchange source term,
* the chemistry-vibration coupling source (molecules created/destroyed
  carry the vibrational energy of the pool).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.thermo.kinetics import ReactionMechanism
from repro.thermo.relaxation import VibrationalRelaxation
from repro.thermo.species import SpeciesDB, species_set
from repro.thermo.statmech import ThermoSet

__all__ = ["TwoTemperatureGas"]


class TwoTemperatureGas:
    """Two-temperature gas: energies, inversions and exchange sources."""

    def __init__(self, db: SpeciesDB | str,
                 mechanism: ReactionMechanism | None = None):
        self.db = db if isinstance(db, SpeciesDB) else species_set(db)
        self.thermo = ThermoSet(self.db)
        self.relax = VibrationalRelaxation(self.db)
        self.mechanism = mechanism

    # ------------------------------------------------------------------
    # energies
    # ------------------------------------------------------------------

    def e_vib_el(self, Tv, y):
        """Mixture vibrational-electronic energy [J/kg]."""
        y = np.asarray(y, dtype=float)
        return np.sum(y * self.thermo.e_vib_el_mass(Tv), axis=-1)

    def cv_vib_el(self, Tv, y):
        """d e_v / d Tv [J/(kg K)]."""
        y = np.asarray(y, dtype=float)
        return np.sum(y * self.thermo.cv_vib_el_mass(Tv), axis=-1)

    def e_tr_rot(self, T, y):
        """Translational-rotational + formation energy [J/kg].

        (h_tr_rot includes formation enthalpy; subtract RT to get energy.)
        """
        y = np.asarray(y, dtype=float)
        from repro.constants import R_UNIVERSAL
        h_tr = np.sum(y * self.thermo.h_tr_rot_mass(T), axis=-1)
        R_mix = R_UNIVERSAL * np.sum(y / self.db.molar_mass, axis=-1)
        return h_tr - R_mix * np.asarray(T, dtype=float)

    def cv_tr_rot(self, T, y):
        """Translational-rotational specific heat at constant volume."""
        y = np.asarray(y, dtype=float)
        from repro.constants import R_UNIVERSAL
        cp_tr = np.sum(y * self.thermo._stack("cp_tr_rot", np.asarray(
            T, dtype=float)) / self.db.molar_mass, axis=-1)
        R_mix = R_UNIVERSAL * np.sum(y / self.db.molar_mass, axis=-1)
        return cp_tr - R_mix

    def e_total(self, T, Tv, y):
        """Total internal energy e = e_tr_rot(T) + e_v(Tv) [J/kg]."""
        return self.e_tr_rot(T, y) + self.e_vib_el(Tv, y)

    # ------------------------------------------------------------------
    # inversions
    # ------------------------------------------------------------------

    def Tv_from_ev(self, ev, y, *, Tv_guess=None, tol=1e-9, max_iter=80):
        """Invert the vibrational-electronic pool for Tv (batched Newton)."""
        ev = np.asarray(ev, dtype=float)
        y = np.asarray(y, dtype=float)
        Tv = (np.full(ev.shape, 2000.0, dtype=np.float64) if Tv_guess is None
              else np.array(np.broadcast_to(Tv_guess, ev.shape),
                            dtype=float))
        scale = np.maximum(np.abs(ev), 1e2)
        for _ in range(max_iter):
            f = self.e_vib_el(Tv, y) - ev
            if np.all(np.abs(f) <= tol * scale):
                return Tv
            cv = np.maximum(self.cv_vib_el(Tv, y), 1e-3)
            dTv = np.clip(-f / cv, -0.5 * Tv, 2.0 * Tv)
            Tv = np.clip(Tv + dTv, 10.0, 1.0e5)
        f = np.abs(self.e_vib_el(Tv, y) - ev)
        if np.any(f > 1e-4 * scale):
            raise ConvergenceError("Tv_from_ev failed", iterations=max_iter,
                                   residual=float(np.max(f / scale)))
        return Tv

    def T_from_e_ev(self, e, ev, y, *, T_guess=None, tol=1e-9, max_iter=80):
        """Recover (T, Tv) from total and vibrational energies.

        ``e`` is total internal energy (incl. formation); ``ev`` the
        vibrational-electronic pool.  Returns ``(T, Tv)``.
        """
        Tv = self.Tv_from_ev(ev, y)
        e_tr = np.asarray(e, dtype=float) - np.asarray(ev, dtype=float)
        y = np.asarray(y, dtype=float)
        T = (np.full(e_tr.shape, 1000.0, dtype=np.float64) if T_guess is None
             else np.array(np.broadcast_to(T_guess, e_tr.shape),
                           dtype=float))
        scale = np.maximum(np.abs(e_tr), 1e3)
        for _ in range(max_iter):
            f = self.e_tr_rot(T, y) - e_tr
            if np.all(np.abs(f) <= tol * scale):
                return T, Tv
            cv = np.maximum(self.cv_tr_rot(T, y), 10.0)
            dT = np.clip(-f / cv, -0.5 * T, 2.0 * T)
            T = np.clip(T + dT, 10.0, 1.0e5)
        raise ConvergenceError("T_from_e_ev failed", iterations=max_iter)

    # ------------------------------------------------------------------
    # exchange source terms
    # ------------------------------------------------------------------

    def landau_teller_source(self, rho, T, Tv, y, *, park=True):
        """Translational->vibrational-electronic energy transfer [W/m^3].

        Q_TV = sum_s rho y_s (e_v_s(T) - e_v_s(Tv)) / tau_s — positive when
        translation is hotter than the pool.  Vibrating molecules use the
        Millikan–White(+Park) time; atomic/ionic species with low-lying
        electronic levels use the Park collision-limited time as an
        effective electronic-translational channel (without it the pool
        could never equilibrate in fully dissociated gas).
        """
        rho = np.asarray(rho, dtype=float)
        y = np.asarray(y, dtype=float)
        ev_T = self.thermo.e_vib_el_mass(T)
        ev_Tv = self.thermo.e_vib_el_mass(Tv)
        idx = self.relax.vib_idx
        tau = self.relax.times(rho, T, y, park=park)
        q = np.sum(rho[..., None] * y[..., idx]
                   * (ev_T[..., idx] - ev_Tv[..., idx]) / tau, axis=-1)
        # electronic relaxation of non-vibrating species
        from repro.constants import K_BOLTZMANN, N_AVOGADRO
        from repro.thermo.relaxation import park_correction_time
        el_idx = np.array([j for j, sp in enumerate(self.db.species)
                           if not sp.vib_modes
                           and len(sp.elec_levels) > 1], dtype=int)
        if el_idx.size:
            n_total = (rho * np.sum(y / self.db.molar_mass, axis=-1)
                       * N_AVOGADRO)
            tau_el = park_correction_time(
                np.asarray(T, float)[..., None], n_total[..., None],
                self.db.molar_mass[el_idx])
            q = q + np.sum(rho[..., None] * y[..., el_idx]
                           * (ev_T[..., el_idx] - ev_Tv[..., el_idx])
                           / tau_el, axis=-1)
        return q

    def chemistry_vibration_source(self, rho, T, Tv, y):
        """Vibrational energy carried by created/destroyed species [W/m^3].

        Non-preferential model: each species produced (destroyed) adds
        (removes) its pool energy evaluated at Tv.
        """
        if self.mechanism is None:
            raise ConvergenceError("no mechanism attached")
        wdot = self.mechanism.wdot(rho, T, y, Tv)
        ev_s = self.thermo.e_vib_el_mass(Tv)
        return np.sum(wdot * ev_s, axis=-1)

    def vibrational_energy_source(self, rho, T, Tv, y, *, park=True):
        """Total d(rho e_v)/dt source: Landau-Teller + chemistry coupling."""
        q = self.landau_teller_source(rho, T, Tv, y, park=park)
        if self.mechanism is not None:
            q = q + self.chemistry_vibration_source(rho, T, Tv, y)
        return q
