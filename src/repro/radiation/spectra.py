"""Spectral emission model: molecular band systems and atomic lines.

Each radiator is a smeared-band (or Gaussian-line) feature::

    j_lambda = n_u * A_eff * (h c / lambda) * phi(lambda) / (4 pi)

with the upper-state number density from a Boltzmann distribution at the
electronic excitation temperature (T for equilibrium flows, Tv for the
two-temperature nonequilibrium mode — the NEQAIR-style choice)::

    n_u = n_s * g_u exp(-theta_u / T_ex) / Q_el(T_ex)

The effective transition probabilities A_eff are band-system-integrated
values of the right order of magnitude for the era's smeared-band models
(Patch/Nicolet class); the *shape* of the spectrum — which features
dominate where — is what the Fig. 8 reproduction tests, not absolute
radiance calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import C_LIGHT, H_PLANCK, N_AVOGADRO
from repro.errors import SpeciesError
from repro.thermo.species import SpeciesDB
from repro.thermo.statmech import SpeciesThermo

__all__ = ["BandSystem", "BAND_SYSTEMS", "ATOMIC_LINES", "EmissionModel"]


@dataclass(frozen=True)
class BandSystem:
    """One radiating band system (or atomic multiplet)."""

    name: str
    species: str
    #: Band-centre wavelength [m].
    lambda0: float
    #: Gaussian smearing width (1-sigma) [m].
    width: float
    #: Effective transition probability [1/s].
    a_eff: float
    #: Upper electronic level energy [K].
    theta_u: float
    #: Upper level degeneracy.
    g_u: int


#: Molecular band systems of high-temperature air and Titan gas.
BAND_SYSTEMS: tuple[BandSystem, ...] = (
    # air radiators
    BandSystem("N2+ first negative", "N2+", 0.3914e-6, 0.018e-6,
               1.4e7, 36633.0, 2),
    BandSystem("N2 second positive", "N2", 0.3371e-6, 0.020e-6,
               1.2e7, 95351.0, 6),
    BandSystem("N2 first positive", "N2", 0.775e-6, 0.10e-6,
               8.0e4, 85787.0, 6),
    BandSystem("NO gamma", "NO", 0.247e-6, 0.025e-6,
               4.0e6, 63257.0, 2),
    BandSystem("NO beta", "NO", 0.320e-6, 0.040e-6,
               4.6e5, 66770.0, 4),
    BandSystem("O2 Schumann-Runge", "O2", 0.280e-6, 0.045e-6,
               8.0e3, 71641.0, 6),
    # Titan / carbonaceous radiators
    BandSystem("CN violet", "CN", 0.3883e-6, 0.015e-6,
               1.5e7, 37052.0, 2),
    BandSystem("CN red", "CN", 0.92e-6, 0.12e-6,
               3.0e5, 13302.0, 4),
    BandSystem("C2 Swan", "C2", 0.5165e-6, 0.030e-6,
               7.0e6, 27881.0, 6),
)

#: Atomic line groups (effective multiplets).
ATOMIC_LINES: tuple[BandSystem, ...] = (
    BandSystem("N 746nm triplet", "N", 0.7468e-6, 0.004e-6,
               4.0e7, 137000.0, 12),
    BandSystem("N 821nm", "N", 0.8216e-6, 0.004e-6,
               2.3e7, 121000.0, 12),
    BandSystem("N 868nm", "N", 0.8680e-6, 0.004e-6,
               2.7e7, 120000.0, 20),
    BandSystem("O 777nm triplet", "O", 0.7774e-6, 0.003e-6,
               3.7e7, 125000.0, 15),
    BandSystem("O 845nm", "O", 0.8446e-6, 0.003e-6,
               3.2e7, 127000.0, 9),
    BandSystem("H alpha", "H", 0.6563e-6, 0.004e-6,
               4.4e7, 140270.0, 18),
)


class EmissionModel:
    """Volumetric spectral emission for a species set.

    Parameters
    ----------
    db:
        Species set; only radiators present in the set are active.
    include_lines:
        Include the atomic line groups.
    """

    def __init__(self, db: SpeciesDB, *, include_lines: bool = True):
        self.db = db
        systems = [b for b in BAND_SYSTEMS if b.species in db]
        if include_lines:
            systems += [b for b in ATOMIC_LINES if b.species in db]
        if not systems:
            raise SpeciesError("no radiators present in the species set")
        self.systems = tuple(systems)
        # electronic partition data per radiating species
        self._thermo = {name: SpeciesThermo(db[name])
                        for name in sorted({b.species
                                            for b in self.systems})}

    def upper_state_density(self, system: BandSystem, n_s, T_ex):
        """Upper-level number density [1/m^3]."""
        st = self._thermo[system.species]
        T_ex = np.asarray(T_ex, dtype=float)
        q_el, _, _ = st._elec_moments(T_ex)
        boltz = system.g_u * np.exp(
            -np.clip(system.theta_u / np.maximum(T_ex, 1.0), 0.0, 400.0))
        return np.asarray(n_s, dtype=float) * boltz / q_el

    def emission_coefficient(self, wavelengths, n_species, T_ex):
        """Spectral emission coefficient j_lambda [W/(m^3 sr m)].

        Parameters
        ----------
        wavelengths:
            Wavelength grid [m], shape (nw,).
        n_species:
            Number densities by species name -> value [1/m^3]
            (dict, or array over db with shape (..., ns)).
        T_ex:
            Electronic excitation temperature [K] (scalar or batch).

        Returns
        -------
        j_lambda of shape broadcast(batch) + (nw,).
        """
        lam = np.asarray(wavelengths, dtype=float)
        T_ex = np.asarray(T_ex, dtype=float)
        if isinstance(n_species, dict):
            def n_of(name):
                return np.asarray(n_species.get(name, 0.0), dtype=float)
        else:
            arr = np.asarray(n_species, dtype=float)

            def n_of(name):
                return arr[..., self.db.index[name]]

        out = np.zeros(np.broadcast_shapes(T_ex.shape) + lam.shape)
        for b in self.systems:
            n_u = self.upper_state_density(b, n_of(b.species), T_ex)
            photon = H_PLANCK * C_LIGHT / b.lambda0
            total = n_u * b.a_eff * photon / (4.0 * np.pi)
            shape = (np.exp(-0.5 * ((lam - b.lambda0) / b.width) ** 2)
                     / (b.width * np.sqrt(2.0 * np.pi)))
            out += total[..., None] * shape
        return out

    def number_densities(self, rho, y):
        """Species number densities [1/m^3] from (rho, mass fractions)."""
        rho = np.asarray(rho, dtype=float)
        y = np.asarray(y, dtype=float)
        return rho[..., None] * y / self.db.molar_mass * N_AVOGADRO

    def total_emission(self, rho, y, T_ex, *, lambda_range=(0.2e-6,
                                                            1.2e-6),
                       n_lambda=600):
        """Wavelength-integrated isotropic emission 4*pi*int j [W/m^3]."""
        lam = np.linspace(*lambda_range, n_lambda)
        n = self.number_densities(rho, y)
        j = self.emission_coefficient(lam, n, T_ex)
        return 4.0 * np.pi * np.trapezoid(j, lam, axis=-1)
