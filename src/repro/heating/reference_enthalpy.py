"""Reference-enthalpy (Eckert) flat-plate heating.

Downstream windward heating on slender/lifting bodies (the Fig. 6 decay
region) follows laminar flat-plate similarity evaluated at Eckert's
reference enthalpy::

    h* = h_e + 0.5 (h_w - h_e) + 0.22 (h_aw - h_e)
    St* = 0.332 Pr^{-2/3} / sqrt(Re_x*)
    q   = St* rho* u_e (h_aw - h_w)
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["flat_plate_heating", "eckert_reference_enthalpy",
           "turbulent_flat_plate_heating"]


def eckert_reference_enthalpy(h_e, h_w, h_aw):
    """Eckert's reference enthalpy [J/kg]."""
    return h_e + 0.5 * (h_w - h_e) + 0.22 * (h_aw - h_e)


def flat_plate_heating(x, *, rho_e, u_e, h_e, h_w, mu_of_h, h0e,
                       prandtl=0.71, recovery=None):
    """Laminar flat-plate heat flux at distance x from the leading edge.

    Parameters
    ----------
    x:
        Running length [m] (array ok; x > 0).
    rho_e, u_e, h_e:
        Edge density, velocity, static enthalpy.
    h_w:
        Wall enthalpy.
    mu_of_h:
        Callable mu(h) used to evaluate viscosity at the reference
        enthalpy (pass a Sutherland-on-T wrapper for the ideal gas).
    h0e:
        Edge total enthalpy (sets the adiabatic wall enthalpy).
    recovery:
        Recovery factor; defaults to sqrt(Pr) (laminar).

    Returns
    -------
    q(x) [W/m^2].
    """
    x = np.asarray(x, dtype=float)
    if np.any(x <= 0.0):
        raise InputError("x must be positive")
    if prandtl <= 0.0:
        raise InputError("Prandtl number must be positive")
    # catlint: disable=CAT002 -- prandtl validated positive above
    r = np.sqrt(prandtl) if recovery is None else recovery
    h_aw = h_e + r * (h0e - h_e)
    h_star = eckert_reference_enthalpy(h_e, h_w, h_aw)
    mu_star = mu_of_h(h_star)
    # rho* at the edge pressure: rho*/rho_e = h_e/h* (ideal-gas-like)
    rho_star = rho_e * h_e / np.maximum(h_star, 1.0)
    re_x = rho_star * u_e * x / mu_star
    st = 0.332 * prandtl ** (-2.0 / 3.0) / np.sqrt(np.maximum(re_x, 1e-12))
    return st * rho_star * u_e * (h_aw - h_w)


def turbulent_flat_plate_heating(x, *, rho_e, u_e, h_e, h_w, mu_of_h, h0e,
                                 prandtl=0.71, recovery=None):
    """Turbulent flat-plate heating at reference-enthalpy conditions.

    St* = 0.0287 Re_x*^{-1/5} Pr^{-2/5} (the 1/7th-power-law closure),
    with the turbulent recovery factor Pr^{1/3} by default — the paper's
    "hypersonic ... turbulence models for high Reynolds-number flow
    regimes" challenge at its engineering-correlation level.
    """
    x = np.asarray(x, dtype=float)
    if np.any(x <= 0.0):
        raise InputError("x must be positive")
    r = prandtl ** (1.0 / 3.0) if recovery is None else recovery
    h_aw = h_e + r * (h0e - h_e)
    h_star = eckert_reference_enthalpy(h_e, h_w, h_aw)
    mu_star = mu_of_h(h_star)
    rho_star = rho_e * h_e / np.maximum(h_star, 1.0)
    re_x = rho_star * u_e * x / mu_star
    st = 0.0287 * np.maximum(re_x, 1e-12) ** (-0.2) \
        * prandtl ** (-0.4)
    return st * rho_star * u_e * (h_aw - h_w)
