"""Tabulated equilibrium equation of state ("effective gamma" tables).

The PNS/NS production codes of the paper's era (e.g. the variable-effective-
gamma code of Ref. 19, and the Tannehill curve fits used by Ref. 20) did not
solve equilibrium chemistry in every cell; they interpolated precomputed
curve fits p = p(rho, e), T = T(rho, e).  This module reproduces that
pattern: a :class:`EquilibriumEOSTable` is built once from the
:class:`~repro.thermo.equilibrium.EquilibriumGas` Gibbs solver on a uniform
grid in (log rho, log e) and then evaluated with bilinear interpolation —
orders of magnitude faster inside a time-marching loop, at the cost of a
small interpolation error (quantified in the test suite and in the
bench_eos ablation benchmark).

The stored quantity is the effective gamma  ``gamma(rho, e) = 1 + p/(rho e)``
(smooth and bounded on [1, 5/3]), plus temperature.  The equilibrium sound
speed is reconstructed from the table's own gradients::

    p = (gamma - 1) rho e
    a^2 = (dp/drho)_e + (p/rho^2)(dp/de)_rho
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.errors import InputError, TableRangeError
from repro.thermo.equilibrium import EquilibriumGas

__all__ = ["EquilibriumEOSTable", "build_air_table"]


class EquilibriumEOSTable:
    """Bilinear (log rho, log e) lookup table for an equilibrium gas."""

    def __init__(self, log_rho: np.ndarray, log_e: np.ndarray,
                 gamma: np.ndarray, T: np.ndarray, *, clamp: bool = True):
        if gamma.shape != (log_rho.size, log_e.size):
            raise InputError("table shape mismatch")
        self.log_rho = np.asarray(log_rho, dtype=float)
        self.log_e = np.asarray(log_e, dtype=float)
        self.gamma = np.asarray(gamma, dtype=float)
        self.T = np.asarray(T, dtype=float)
        self.clamp = clamp
        self._dlr = self.log_rho[1] - self.log_rho[0]
        self._dle = self.log_e[1] - self.log_e[0]
        if (not np.allclose(np.diff(self.log_rho), self._dlr)
                or not np.allclose(np.diff(self.log_e), self._dle)):
            raise InputError("table grids must be uniform in log space")
        # precompute gamma gradients for the sound-speed reconstruction
        self._dg_dlr, self._dg_dle = np.gradient(
            self.gamma, self.log_rho, self.log_e)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, gas: EquilibriumGas, *, rho_range=(1e-7, 10.0),
              e_range=(5e4, 1.5e8), n_rho=48,
              n_e=72) -> "EquilibriumEOSTable":
        """Fill the table by batched (rho, e) equilibrium solves.

        The default energy ceiling (1.5e8 J/kg ~ a 17 km/s stagnation
        enthalpy) keeps every grid state reachable by the single-ionization
        chemistry model below the solver's 1e5 K bracket.
        """
        if min(rho_range) <= 0.0 or min(e_range) <= 0.0:
            raise InputError("table ranges must be positive (log-spaced)")
        # catlint: disable=CAT001 -- ranges validated positive above
        log_rho = np.linspace(np.log(rho_range[0]), np.log(rho_range[1]),
                              n_rho)
        # catlint: disable=CAT001 -- ranges validated positive above
        log_e = np.linspace(np.log(e_range[0]), np.log(e_range[1]), n_e)
        LR, LE = np.meshgrid(log_rho, log_e, indexing="ij")
        # catlint: disable=CAT004 -- exp/log round-trip of the validated
        # finite table range; bounded by log(rho_range[1])
        rho = np.exp(LR).ravel()
        # catlint: disable=CAT004 -- same round-trip bound for e_range
        e = np.exp(LE).ravel()
        st = gas.state_rho_e(rho, e)
        gamma = (1.0 + st["p"] / (rho * e)).reshape(n_rho, n_e)
        T = st["T"].reshape(n_rho, n_e)
        return cls(log_rho, log_e, gamma, T)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the table to an .npz file (atomic replace)."""
        d = os.path.dirname(os.path.abspath(path))
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, suffix=".npz")
        os.close(fd)
        try:
            np.savez(tmp, log_rho=self.log_rho, log_e=self.log_e,
                     gamma=self.gamma, T=self.T)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path: str) -> "EquilibriumEOSTable":
        with np.load(path) as z:
            return cls(z["log_rho"], z["log_e"], z["gamma"], z["T"])

    # ------------------------------------------------------------------
    # interpolation
    # ------------------------------------------------------------------

    def _locate(self, lr, le):
        if self.clamp:
            lr = np.clip(lr, self.log_rho[0], self.log_rho[-1])
            le = np.clip(le, self.log_e[0], self.log_e[-1])
        else:
            if (np.any(lr < self.log_rho[0]) or np.any(lr > self.log_rho[-1])
                    or np.any(le < self.log_e[0])
                    or np.any(le > self.log_e[-1])):
                raise TableRangeError("EOS table lookup out of range")
        fi = (lr - self.log_rho[0]) / self._dlr
        fj = (le - self.log_e[0]) / self._dle
        i = np.clip(fi.astype(int), 0, self.log_rho.size - 2)
        j = np.clip(fj.astype(int), 0, self.log_e.size - 2)
        return i, j, fi - i, fj - j

    def _bilinear(self, tab, i, j, wi, wj):
        return ((1 - wi) * (1 - wj) * tab[i, j]
                + wi * (1 - wj) * tab[i + 1, j]
                + (1 - wi) * wj * tab[i, j + 1]
                + wi * wj * tab[i + 1, j + 1])

    def lookup(self, rho, e):
        """Interpolate (gamma_eff, T) at given (rho, e); any shapes."""
        rho = np.asarray(rho, dtype=float)
        e = np.asarray(e, dtype=float)
        lr = np.log(np.maximum(rho, 1e-300))
        le = np.log(np.maximum(e, 1e-300))
        i, j, wi, wj = self._locate(lr, le)
        gamma = self._bilinear(self.gamma, i, j, wi, wj)
        T = self._bilinear(self.T, i, j, wi, wj)
        return gamma, T

    def pressure(self, rho, e):
        """p(rho, e) [Pa] from the effective-gamma form."""
        gamma, _ = self.lookup(rho, e)
        return (gamma - 1.0) * np.asarray(rho, float) * np.asarray(e, float)

    def temperature(self, rho, e):
        """T(rho, e) [K]."""
        return self.lookup(rho, e)[1]

    def sound_speed(self, rho, e):
        """Equilibrium sound speed [m/s] from table-gradient reconstruction."""
        rho = np.asarray(rho, dtype=float)
        e = np.asarray(e, dtype=float)
        lr = np.log(np.maximum(rho, 1e-300))
        le = np.log(np.maximum(e, 1e-300))
        i, j, wi, wj = self._locate(lr, le)
        gamma = self._bilinear(self.gamma, i, j, wi, wj)
        dg_dlr = self._bilinear(self._dg_dlr, i, j, wi, wj)
        dg_dle = self._bilinear(self._dg_dle, i, j, wi, wj)
        p = (gamma - 1.0) * rho * e
        # p = (gamma-1) rho e with gamma(log rho, log e):
        # (dp/drho)_e = (gamma-1) e + e dg/dlnrho
        # (dp/de)_rho = (gamma-1) rho + rho dg/dlne
        dpdr = (gamma - 1.0) * e + e * dg_dlr
        dpde = (gamma - 1.0) * rho + rho * dg_dle
        a2 = dpdr + p / rho**2 * dpde
        return np.sqrt(np.maximum(a2, 1.0))


#: module-level cache for the default air table
_AIR_TABLE_CACHE: dict[tuple, EquilibriumEOSTable] = {}


def build_air_table(*, n_rho=48, n_e=72, cache_dir=None
                    ) -> EquilibriumEOSTable:
    """Build (or load from disk cache) the standard equilibrium-air table."""
    from repro.thermo.equilibrium import air_reference_mass_fractions
    from repro.thermo.species import species_set

    key = (n_rho, n_e)
    if key in _AIR_TABLE_CACHE:
        return _AIR_TABLE_CACHE[key]
    cache_dir = cache_dir or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")
    path = os.path.join(cache_dir, f"air_eos_{n_rho}x{n_e}.npz")
    if os.path.exists(path):
        try:
            tab = EquilibriumEOSTable.load(path)
            _AIR_TABLE_CACHE[key] = tab
            return tab
        # catlint: disable=CAT012 -- deliberate: any unreadable/corrupt
        # cache file falls through to a fresh table build
        except Exception:
            pass  # rebuild on any cache corruption
    db = species_set("air11")
    gas = EquilibriumGas(db, air_reference_mass_fractions(db))
    tab = EquilibriumEOSTable.build(gas, n_rho=n_rho, n_e=n_e)
    try:
        tab.save(path)
    except OSError:
        pass  # cache is best-effort
    _AIR_TABLE_CACHE[key] = tab
    return tab
