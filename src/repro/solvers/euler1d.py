"""One-dimensional finite-volume Euler solver.

The validation workhorse: MUSCL + HLLE (or any flux from the numerics
toolbox) with SSP-RK2 time stepping, verified against the exact Riemann
solution (Sod problem) in the integration tests and benchmarked in
bench_upwind.
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasEOS, IdealGasEOS, eos_from_spec, eos_spec
from repro.errors import InputError
from repro.numerics.fluxes import hlle_flux, primitives
from repro.numerics.limiters import minmod
from repro.numerics.muscl import muscl_interface_states
from repro.numerics.time_integration import (cfl_timestep_1d, check_state,
                                             ssp_rk2_step)
from repro.numerics.upwind import (ausm_plus_flux, steger_warming_flux,
                                   van_leer_flux)
from repro.solvers.degradable import QuarantineMixin

__all__ = ["Euler1DSolver"]

_FLUXES = {"hlle": None, "van_leer": van_leer_flux,
           "steger_warming": steger_warming_flux, "ausm": ausm_plus_flux}


class Euler1DSolver(QuarantineMixin):
    """Shock-capturing 1-D Euler solver on a fixed node grid.

    Parameters
    ----------
    x_nodes:
        Cell-interface coordinates (n+1 for n cells), strictly increasing.
    eos:
        Equation of state (defaults to ideal air).
    flux:
        "hlle" (any EOS), or "van_leer" / "steger_warming" / "ausm"
        (ideal gas).
    order:
        1 or 2 (MUSCL with the given limiter).
    bc:
        ("transmissive"|"reflective", same) for the two ends.
    """

    def __init__(self, x_nodes, eos: GasEOS | None = None, *,
                 flux: str = "hlle", order: int = 2, limiter=minmod,
                 bc=("transmissive", "transmissive")):
        self.x_nodes = np.asarray(x_nodes, dtype=float)
        if np.any(np.diff(self.x_nodes) <= 0):
            raise InputError("x_nodes must be strictly increasing")
        self.dx = np.diff(self.x_nodes)
        self.xc = 0.5 * (self.x_nodes[1:] + self.x_nodes[:-1])
        self.n = self.xc.size
        self.eos = eos if eos is not None else IdealGasEOS(1.4)
        if flux not in _FLUXES:
            raise InputError(f"unknown flux {flux!r}; options: "
                             f"{sorted(_FLUXES)}")
        self.flux_name = flux
        self.order = order
        self.limiter = limiter
        self.bc = bc
        self.U = None
        self.t = 0.0
        self.steps = 0
        self.converged = False
        self.quarantined_cells = None

    # ------------------------------------------------------------------
    # resilience protocol
    # ------------------------------------------------------------------

    @property
    def closed_domain(self) -> bool:
        """True when both boundaries are reflective walls — mass and
        energy are then exact invariants the watchdog can audit."""
        return self.bc == ("reflective", "reflective")

    def conservation_totals(self):
        """Global invariants for the conservation watchdog."""
        return {"mass": float(np.sum(self.U[:, 0] * self.dx)),
                "energy": float(np.sum(self.U[:, 2] * self.dx))}

    def total_entropy(self):
        """Global entropy functional ``sum(rho s dx)`` with the ideal-gas
        ``s = ln(p) - gamma ln(rho)`` (per unit R/(gamma-1); only the
        sign of changes matters to the watchdog).  None for non-ideal
        EOS."""
        gamma = getattr(self.eos, "gamma", None)
        if gamma is None:
            return None
        rho, _, p = self.primitives()
        s = np.log(np.maximum(p, 1e-300)) \
            - gamma * np.log(np.maximum(rho, 1e-300))
        return float(np.sum(rho * s * self.dx))

    def get_state(self):
        """Restorable marching state (see repro.resilience)."""
        return {"U": self.U.copy(), "t": self.t, "steps": self.steps}

    def set_state(self, state):
        self.U = state["U"]
        self.t = state["t"]
        self.steps = state["steps"]

    def persist_config(self):
        """JSON-able constructor fingerprint (durable checkpoints)."""
        return {"flux": self.flux_name, "order": int(self.order),
                "limiter": self.limiter.__name__, "bc": list(self.bc),
                "n": int(self.n), "eos": eos_spec(self.eos)}

    def persist_arrays(self):
        """Constructor ndarrays persisted alongside the state."""
        return {"x_nodes": self.x_nodes}

    @classmethod
    def from_persist(cls, config, arrays):
        """Rebuild a state-less instance from a snapshot manifest."""
        from repro.numerics import limiters as _limiters
        return cls(arrays["x_nodes"], eos_from_spec(config["eos"]),
                   flux=config["flux"], order=config["order"],
                   limiter=getattr(_limiters, config["limiter"]),
                   bc=tuple(config["bc"]))

    # ------------------------------------------------------------------

    def set_initial(self, rho, u, p):
        """Initialise from primitive fields (broadcast to the grid)."""
        rho = np.broadcast_to(np.asarray(rho, float), (self.n,)).copy()
        u = np.broadcast_to(np.asarray(u, float), (self.n,)).copy()
        p = np.broadcast_to(np.asarray(p, float), (self.n,)).copy()
        e = self._e_from_p_rho(p, rho)
        self.U = np.stack([rho, rho * u, rho * (e + 0.5 * u * u)], axis=-1)
        self.t = 0.0
        self.steps = 0
        return self

    def _e_from_p_rho(self, p, rho):
        if hasattr(self.eos, "e_from_p_rho"):
            return self.eos.e_from_p_rho(p, rho)
        raise InputError("EOS cannot invert p(rho, e)")

    def _ghost(self, U):
        """Two ghost cells per side according to the boundary conditions."""
        left, right = self.bc
        g = np.empty((U.shape[0] + 4, 3), dtype=np.float64)
        g[2:-2] = U
        # left boundary
        if left == "transmissive":
            g[0] = U[0]
            g[1] = U[0]
        elif left == "reflective":
            g[0] = U[1] * np.array([1.0, -1.0, 1.0])
            g[1] = U[0] * np.array([1.0, -1.0, 1.0])
        else:
            raise InputError(f"unknown bc {left!r}")
        if right == "transmissive":
            g[-1] = U[-1]
            g[-2] = U[-1]
        elif right == "reflective":
            g[-1] = U[-2] * np.array([1.0, -1.0, 1.0])
            g[-2] = U[-1] * np.array([1.0, -1.0, 1.0])
        else:
            raise InputError(f"unknown bc {right!r}")
        return g

    def _face_flux(self, U):
        g = self._ghost(U)
        fo = None
        if self.quarantined_cells is not None:
            fo = np.pad(self.quarantined_cells, 2, mode="edge")
        WL, WR = muscl_interface_states(g, order=self.order,
                                        limiter=self.limiter,
                                        first_order_mask=fo)
        # faces of interest: between cells -1|0 ... n-1|n (n+1 faces) —
        # the ghost array has n+4 cells and n+3 faces; drop the outermost
        WL = WL[1:-1]
        WR = WR[1:-1]
        if self.flux_name == "hlle":
            return hlle_flux(WL, WR, self.eos)
        fn = _FLUXES[self.flux_name]
        gamma = getattr(self.eos, "gamma", 1.4)
        return fn(WL, WR, gamma)

    def residual(self, U):
        """dU/dt = -(F_{i+1/2} - F_{i-1/2}) / dx."""
        F = self._face_flux(U)
        return -(F[1:] - F[:-1]) / self.dx[:, None]

    # ------------------------------------------------------------------

    def step(self, dt):
        self.U = ssp_rk2_step(self.U, dt, self.residual)
        self.t += dt
        self.steps += 1
        check_state(self.U, step=self.steps, label="euler1d")

    def run(self, t_final, *, cfl=0.45, max_steps=100000, resilience=None,
            faults=None, persist=None, watchdog=None, degradation=None,
            heartbeat=None):
        """Advance to t_final with CFL-limited steps.

        With ``resilience`` (a :class:`repro.resilience.RetryPolicy`, or
        ``True`` for the defaults) the march runs under a
        :class:`repro.resilience.RunSupervisor`: checkpointed, with
        automatic rollback and CFL backoff on :class:`StabilityError`.
        ``faults`` optionally injects deterministic faults (testing);
        ``persist`` (a :class:`repro.resilience.PersistencePolicy` or a
        directory path) adds durable on-disk snapshots the march resumes
        from after a crash (see
        :func:`repro.resilience.persistence.resume_run`).
        ``watchdog`` (``True`` or a
        :class:`repro.resilience.WatchdogPolicy`) audits conservation
        budgets / entropy each step; ``degradation`` (``True`` or a
        :class:`repro.resilience.DegradationPolicy`) arms the graceful
        fallback to quarantined first-order reconstruction before a
        failing run aborts — the ledger lands on
        ``self.degradation_ledger``.
        ``heartbeat`` (a :class:`repro.resilience.Heartbeat`) is touched
        every supervised step so a sandboxing parent process
        (:class:`repro.resilience.IsolatedRunner`) can distinguish a
        slow march from a hung one.
        """
        if self.U is None:
            raise InputError("call set_initial first")
        if resilience is not None or faults is not None \
                or persist is not None or watchdog is not None \
                or degradation is not None or heartbeat is not None:
            from repro.resilience import (RetryPolicy, RunSupervisor)
            policy = (resilience if isinstance(resilience, RetryPolicy)
                      else RetryPolicy())
            sup = RunSupervisor(self, policy, faults=faults,
                                label="euler1d", persist=persist,
                                watchdog=watchdog,
                                degradation=degradation,
                                heartbeat=heartbeat)
            sup.march(self._cfl_step(t_final), n_steps=max_steps, cfl=cfl,
                      stop=lambda: self.t >= t_final - 1e-15,
                      run_kwargs={"t_final": t_final, "cfl": cfl,
                                  "max_steps": max_steps})
            return self
        while self.t < t_final - 1e-15 and self.steps < max_steps:
            self._cfl_step(t_final)(cfl)
        self.converged = self.t >= t_final - 1e-15
        return self

    def _cfl_step(self, t_final):
        """One CFL-limited step toward ``t_final`` as a closure over the
        current CFL number (the supervisor's backoff knob)."""
        def advance(cfl_now):
            w = primitives(self.U, self.eos)
            dt = cfl_timestep_1d(self.dx, w["vel"][0], w["a"], cfl_now)
            self.step(min(dt, t_final - self.t))
        return advance

    # ------------------------------------------------------------------

    def primitives(self):
        """Current (rho, u, p) fields."""
        w = primitives(self.U, self.eos)
        return w["rho"], w["vel"][0], w["p"]

    def total_mass(self):
        return float(np.sum(self.U[:, 0] * self.dx))

    def total_energy(self):
        return float(np.sum(self.U[:, 2] * self.dx))
