"""Axisymmetric time-marching Euler solver (shock capturing).

The "E" of the paper's E+BL method and the inviscid core of the NS codes:
a cell-centred finite-volume scheme on the body-fitted blunt-body grid,
MUSCL + HLLE upwinding (the bow shock is captured, per Ref. 26), explicit
local-time-step marching "in a time-like manner until a steady state is
asymptotically achieved".

Axisymmetric formulation (per radian about the x axis, y = radial
coordinate): volumes and face normals are radius weighted, and the hoop
pressure appears as the radial-momentum source ``p * A_cell``.

Works with any :class:`~repro.core.gas.GasEOS` — the ideal gas for the
classical mode, the tabulated equilibrium-air EOS for the real-gas mode
(that pairing is the Fig. 4 experiment).
"""

from __future__ import annotations

import numpy as np

from repro.core.gas import GasEOS, IdealGasEOS, eos_from_spec, eos_spec
from repro.errors import InputError, StabilityError
from repro.grid.structured import StructuredGrid2D
from repro.numerics.fluxes import (hlle_flux, primitives,
                                   rotate_from_normal, rotate_to_normal)
from repro.numerics.limiters import minmod
from repro.numerics.muscl import muscl_interface_states
from repro.numerics.time_integration import component_name
from repro.numerics.upwind import steger_warming_flux, van_leer_flux
from repro.solvers.degradable import QuarantineMixin

__all__ = ["AxisymmetricEulerSolver"]


class AxisymmetricEulerSolver(QuarantineMixin):
    """Blunt-body Euler solver on a body-fitted (i: surface, j: normal)
    grid.

    Boundary conventions:

    * i = 0: symmetry axis (upstream stagnation ray),
    * i = ni: supersonic outflow (extrapolation),
    * j = 0: body surface (slip wall),
    * j = nj: freestream inflow (Dirichlet).
    """

    def __init__(self, grid: StructuredGrid2D, eos: GasEOS | None = None,
                 *, order: int = 2, limiter=minmod, flux: str = "hlle"):
        self.grid = grid
        self.eos = eos if eos is not None else IdealGasEOS(1.4)
        self.order = order
        self.limiter = limiter
        if flux == "hlle":
            self._flux = lambda UL, UR: hlle_flux(UL, UR, self.eos)
        elif flux in ("steger_warming", "van_leer"):
            # FVS schemes are ideal-gas algebra; real-gas runs use HLLE
            if not isinstance(self.eos, IdealGasEOS):
                raise InputError(f"flux {flux!r} requires an ideal-gas "
                                 f"EOS; use 'hlle' for real gas")
            fn = (steger_warming_flux if flux == "steger_warming"
                  else van_leer_flux)
            gamma = self.eos.gamma
            self._flux = lambda UL, UR: fn(UL, UR, gamma)
        else:
            raise InputError(f"unknown flux {flux!r}")
        self.flux_name = flux
        self.vol = grid.axisymmetric_volumes()
        n_i, n_j = grid.axisymmetric_face_metrics()
        # unit normals + radius-weighted areas
        self.area_i = np.linalg.norm(n_i, axis=-1)
        self.area_j = np.linalg.norm(n_j, axis=-1)
        with np.errstate(invalid="ignore", divide="ignore"):
            self.nhat_i = n_i / np.maximum(self.area_i, 1e-300)[..., None]
            self.nhat_j = n_j / np.maximum(self.area_j, 1e-300)[..., None]
        # plane-geometry face normals for wall ghost mirroring
        self.wall_normal = grid.n_j[:, 0, :] / np.maximum(
            np.linalg.norm(grid.n_j[:, 0, :], axis=-1), 1e-300)[:, None]
        self.U = None
        self.U_inf = None
        self.t = 0.0
        self.steps = 0
        self.converged = False
        self.residual_history: list[float] = []
        self.quarantined_cells = None

    #: Blunt-body domains exchange mass/energy through the inflow and
    #: outflow boundaries, so global budgets are not invariants here and
    #: the watchdog skips them (species/entropy audits still apply).
    closed_domain = False

    # ------------------------------------------------------------------
    # resilience protocol
    # ------------------------------------------------------------------

    def conservation_totals(self):
        """Global totals (per radian): diagnostics, audited only on
        closed domains."""
        return {"mass": float(np.sum(self.U[..., 0] * self.vol)),
                "energy": float(np.sum(self.U[..., 3] * self.vol))}

    def total_entropy(self):
        """Global entropy functional ``sum(rho s vol)`` with the
        ideal-gas ``s = ln(p) - gamma ln(rho)``; None for non-ideal
        EOS."""
        gamma = getattr(self.eos, "gamma", None)
        if gamma is None:
            return None
        w = primitives(self.U, self.eos)
        s = np.log(np.maximum(w["p"], 1e-300)) \
            - gamma * np.log(np.maximum(w["rho"], 1e-300))
        return float(np.sum(w["rho"] * s * self.vol))

    def get_state(self):
        """Restorable marching state (see repro.resilience).

        Complete for durable restarts: includes the freestream vector so
        a solver rebuilt from a manifest needs no ``set_freestream``.
        """
        return {"U": self.U.copy(), "t": self.t, "steps": self.steps,
                "U_inf": None if self.U_inf is None else self.U_inf.copy(),
                "residual_history": list(self.residual_history)}

    def set_state(self, state):
        self.U = state["U"]
        self.t = state["t"]
        self.steps = state["steps"]
        if "U_inf" in state and state["U_inf"] is not None:
            self.U_inf = state["U_inf"]
        self.residual_history = state["residual_history"]

    def persist_config(self):
        """JSON-able constructor fingerprint (durable checkpoints)."""
        return {"flux": self.flux_name, "order": int(self.order),
                "limiter": self.limiter.__name__,
                "grid": [int(self.grid.ni), int(self.grid.nj)],
                "eos": eos_spec(self.eos)}

    def persist_arrays(self):
        """Constructor ndarrays persisted alongside the state."""
        return {"grid_x": self.grid.x, "grid_y": self.grid.y}

    @classmethod
    def from_persist(cls, config, arrays):
        """Rebuild a state-less instance from a snapshot manifest."""
        from repro.numerics import limiters as _limiters
        grid = StructuredGrid2D(arrays["grid_x"], arrays["grid_y"])
        return cls(grid, eos_from_spec(config["eos"]),
                   order=config["order"],
                   limiter=getattr(_limiters, config["limiter"]),
                   flux=config["flux"])

    # ------------------------------------------------------------------

    def set_freestream(self, rho, u_x, p):
        """Initialise the whole field to a uniform x-directed freestream."""
        e = self.eos.e_from_p_rho(p, rho)
        self.U_inf = np.array([rho, rho * u_x, 0.0,
                               rho * (e + 0.5 * u_x**2)])
        ni, nj = self.grid.ni, self.grid.nj
        self.U = np.broadcast_to(self.U_inf, (ni, nj, 4)).copy()
        self.t = 0.0
        self.steps = 0
        self.residual_history = []
        return self

    # ------------------------------------------------------------------
    # ghost construction
    # ------------------------------------------------------------------

    def _pad_i(self, U):
        """Ghosts along i: axis mirror at i=0, extrapolation at i=ni."""
        g = np.empty((U.shape[0] + 4,) + U.shape[1:], dtype=np.float64)
        g[2:-2] = U
        # axis symmetry: mirror with radial momentum flipped
        flip = np.array([1.0, 1.0, -1.0, 1.0])
        g[1] = U[0] * flip
        g[0] = U[1] * flip
        g[-2] = U[-1]
        g[-1] = U[-1]
        return g

    def _pad_j(self, U):
        """Ghosts along j: slip wall at j=0, freestream at j=nj."""
        g = np.empty((U.shape[0], U.shape[1] + 4, 4), dtype=np.float64)
        g[:, 2:-2] = U
        # wall: mirror velocity about the wall tangent plane
        for k, src in ((1, 0), (0, 1)):
            Uw = U[:, src].copy()
            n = self.wall_normal
            mn = Uw[:, 1] * n[:, 0] + Uw[:, 2] * n[:, 1]
            Uw[:, 1] -= 2.0 * mn * n[:, 0]
            Uw[:, 2] -= 2.0 * mn * n[:, 1]
            g[:, k] = Uw
        g[:, -2] = self.U_inf
        g[:, -1] = self.U_inf
        return g

    # ------------------------------------------------------------------
    # residual
    # ------------------------------------------------------------------

    def residual(self, U):
        """dU/dt per cell (axisymmetric FV with hoop-pressure source)."""
        eos = self.eos
        fo_i = fo_j = None
        if self.quarantined_cells is not None:
            fo_i = np.pad(self.quarantined_cells, ((2, 2), (0, 0)),
                          mode="edge")
            fo_j = np.pad(self.quarantined_cells, ((0, 0), (2, 2)),
                          mode="edge")
        # ---- i-direction fluxes ----
        gi = self._pad_i(U)
        UL, UR = muscl_interface_states(gi, axis=0, order=self.order,
                                        limiter=self.limiter,
                                        first_order_mask=fo_i)
        UL, UR = UL[1:-1], UR[1:-1]          # (ni+1, nj, 4) faces
        nx, ny = self.nhat_i[..., 0], self.nhat_i[..., 1]
        F_i = rotate_from_normal(
            self._flux(rotate_to_normal(UL, nx, ny),
                       rotate_to_normal(UR, nx, ny)), nx, ny)
        F_i = F_i * self.area_i[..., None]
        # ---- j-direction fluxes ----
        gj = self._pad_j(U)
        VL, VR = muscl_interface_states(gj, axis=1, order=self.order,
                                        limiter=self.limiter,
                                        first_order_mask=fo_j)
        VL, VR = VL[:, 1:-1], VR[:, 1:-1]    # (ni, nj+1, 4)
        mx, my = self.nhat_j[..., 0], self.nhat_j[..., 1]
        F_j = rotate_from_normal(
            self._flux(rotate_to_normal(VL, mx, my),
                       rotate_to_normal(VR, mx, my)), mx, my)
        F_j = F_j * self.area_j[..., None]
        # ---- divergence + axisymmetric source ----
        div = (F_i[1:] - F_i[:-1]) + (F_j[:, 1:] - F_j[:, :-1])
        R = -div / self.vol[..., None]
        w = primitives(U, eos)
        R[..., 2] += w["p"] * self.grid.area / self.vol
        return R

    # ------------------------------------------------------------------
    # time marching
    # ------------------------------------------------------------------

    def local_timestep(self, cfl):
        """Per-cell explicit timestep from the inscribed length scale."""
        w = primitives(self.U, self.eos)
        speed = np.hypot(w["vel"][0], w["vel"][1]) + w["a"]
        return cfl * self.grid.min_cell_size() / speed

    def step(self, cfl=0.4):
        """One local-time-step forward-Euler update (steady-state mode)."""
        dt = self.local_timestep(cfl)
        R = self.residual(self.U)
        self.U = self.U + dt[..., None] * R
        self._sanitise()
        self.steps += 1
        # catlint: disable=CAT002 -- mean of squares is >= 0
        rho_res = float(np.sqrt(np.mean((R[..., 0] * dt) ** 2))
                        / max(float(np.mean(self.U[..., 0])), 1e-300))
        self.residual_history.append(rho_res)
        return rho_res

    def _sanitise(self):
        """Clip transient negative density/energy during shock formation."""
        U = self.U
        if not np.all(np.isfinite(U)):
            first = tuple(int(i) for i in np.argwhere(~np.isfinite(U))[0])
            comp = component_name(first[-1], U.shape[-1])
            raise StabilityError(
                f"euler2d: non-finite state at cell {first[:-1]}, "
                f"component {comp}",
                step=self.steps, cell=first[:-1], component=comp,
                value=float(U[first]))
        rho_floor = 1e-6 * float(self.U_inf[0])
        bad = U[..., 0] < rho_floor
        if np.any(bad):
            U[bad, :] = self.U_inf
        # energy floor: keep internal energy positive
        rho = U[..., 0]
        ke = 0.5 * (U[..., 1] ** 2 + U[..., 2] ** 2) / rho
        e_min = 1e-8 * float(self.U_inf[3])
        U[..., 3] = np.maximum(U[..., 3], ke + e_min)

    def run(self, *, n_steps=4000, cfl=0.4, tol=1e-8, verbose=False,
            resilience=None, faults=None, persist=None, watchdog=None,
            degradation=None, heartbeat=None):
        """March to steady state; stops early when the residual drops
        below ``tol`` (relative density update per step).

        With ``resilience`` (a :class:`repro.resilience.RetryPolicy`, or
        ``True`` for the defaults) the march runs supervised: periodic
        checkpoints, per-step state guards, automatic rollback with CFL
        backoff on :class:`StabilityError`, and a
        :class:`~repro.resilience.FailureReport` on exhaustion.
        ``faults`` optionally injects deterministic faults (testing);
        ``persist`` (a :class:`repro.resilience.PersistencePolicy` or a
        directory path) adds durable on-disk snapshots the march resumes
        from after a crash (see
        :func:`repro.resilience.persistence.resume_run`).
        ``watchdog`` (``True`` or a
        :class:`repro.resilience.WatchdogPolicy`) audits species bounds
        and entropy monotonicity each step; ``degradation`` (``True`` or
        a :class:`repro.resilience.DegradationPolicy`) arms the graceful
        fallback to quarantined first-order reconstruction before a
        failing run aborts (ledger on ``self.degradation_ledger``).
        ``heartbeat`` (a :class:`repro.resilience.Heartbeat`) is touched
        every supervised step for a sandboxing parent
        (:class:`repro.resilience.IsolatedRunner`).
        ``self.converged`` records whether ``tol`` was reached.
        """
        if self.U is None:
            raise InputError("call set_freestream first")
        if resilience is not None or faults is not None \
                or persist is not None or watchdog is not None \
                or degradation is not None or heartbeat is not None:
            from repro.resilience import RetryPolicy, RunSupervisor
            policy = (resilience if isinstance(resilience, RetryPolicy)
                      else RetryPolicy())
            sup = RunSupervisor(self, policy, faults=faults,
                                label=type(self).__name__, persist=persist,
                                watchdog=watchdog,
                                degradation=degradation,
                                heartbeat=heartbeat)
            sup.march(self.step, n_steps=n_steps, cfl=cfl, tol=tol,
                      run_kwargs={"n_steps": n_steps, "cfl": cfl,
                                  "tol": tol})
            return self
        for k in range(n_steps):
            res = self.step(cfl)
            if verbose and k % 200 == 0:
                print(f"step {self.steps}: res={res:.3e}")
            if res < tol:
                break
        self.converged = bool(self.residual_history
                              and self.residual_history[-1] < tol)
        return self

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def fields(self):
        """Primitive fields at cell centres (dict of (ni, nj) arrays)."""
        w = primitives(self.U, self.eos)
        return {"rho": w["rho"], "u": w["vel"][0], "v": w["vel"][1],
                "p": w["p"], "e": w["e"], "a": w["a"],
                "T": self.eos.temperature(w["rho"], w["e"]),
                "x": self.grid.xc, "y": self.grid.yc}

    def shock_location(self, *, threshold=1.5):
        """Bow-shock position along each i-ray.

        Detected as the outermost cell where density exceeds
        ``threshold`` x freestream.  Returns (x_shock, y_shock) arrays
        (NaN where no shock is found on a ray).
        """
        f = self.fields()
        rho_inf = float(self.U_inf[0])
        mask = f["rho"] > threshold * rho_inf
        ni, nj = mask.shape
        # outermost exceeding cell per ray: argmax of the reversed mask
        j_shock = nj - 1 - np.argmax(mask[:, ::-1], axis=1)
        has_shock = mask.any(axis=1)
        rays = np.arange(ni)
        xs = np.where(has_shock, f["x"][rays, j_shock], np.nan)
        ys = np.where(has_shock, f["y"][rays, j_shock], np.nan)
        return xs, ys

    def stagnation_standoff(self):
        """Shock standoff distance along the stagnation ray [m]."""
        xs, _ = self.shock_location()
        if np.isnan(xs[0]):
            raise StabilityError("no shock detected on the stagnation ray")
        # body nose is at x(i=0, j=0) wall node
        x_nose = self.grid.x[0, 0]
        return float(x_nose - xs[0])

    def surface_pressure(self):
        """Wall-adjacent cell pressure along the body, with arc positions."""
        f = self.fields()
        return f["x"][:, 0], f["y"][:, 0], f["p"][:, 0]
