"""Dimension algebra, docstring signature extraction, UNIT00x checks."""

import ast
import textwrap

import pytest

from repro.analysis.dimensions import (
    DIMENSIONLESS,
    Dim,
    UnitParseError,
    find_unit_tag,
    parse_unit,
)
from repro.analysis.registry import constants_units
from repro.analysis.units import check_units_source, signature_from_docstring


def unit_codes(source, constants=None):
    return [f.rule for f in check_units_source(
        textwrap.dedent(source), path="src/repro/example.py",
        constants=constants or {})]


class TestDimAlgebra:
    def test_parse_compound(self):
        assert parse_unit("J/kg") == parse_unit("m^2/s^2")
        assert parse_unit("W/(m^2 K^4)") == (
            parse_unit("W") / (parse_unit("m") ** 2 * parse_unit("K") ** 4))

    def test_scale_is_ignored_dimension_is_not(self):
        assert parse_unit("cm") == parse_unit("m")
        assert parse_unit("atm") == parse_unit("Pa")
        assert parse_unit("J/mol") != parse_unit("J/kg")

    def test_dimensionless_spellings(self):
        assert parse_unit("-") == DIMENSIONLESS
        assert parse_unit("1") == DIMENSIONLESS
        assert Dim().dimensionless

    def test_algebra(self):
        J, s, W = parse_unit("J"), parse_unit("s"), parse_unit("W")
        assert J / s == W
        assert (W * s) == J
        assert parse_unit("m") ** 2 == parse_unit("m^2")

    def test_bad_tag_raises(self):
        with pytest.raises(UnitParseError):
            parse_unit("florps")

    def test_find_unit_tag_skips_citations(self):
        assert find_unit_tag("heat flux [W/m^2] per Fay-Riddell [3]") == \
            parse_unit("W/m^2")
        assert find_unit_tag("see reference [12]") is None


class TestDocstringSignatures:
    def _sig(self, src):
        fn = ast.parse(textwrap.dedent(src)).body[0]
        return signature_from_docstring(fn)

    def test_params_and_returns_extracted(self):
        sig = self._sig('''
        def q(rho, v):
            """Heat flux.

            Parameters
            ----------
            rho:
                Density [kg/m^3].
            v:
                Velocity [m/s].

            Returns
            -------
            q:
                Flux [W/m^2].
            """
        ''')
        assert sig.param_units["rho"] == parse_unit("kg/m^3")
        assert sig.param_units["v"] == parse_unit("m/s")
        assert sig.returns == parse_unit("W/m^2")

    def test_summary_line_return_tag(self):
        sig = self._sig('''
        def mu(T):
            """Viscosity [Pa s] of the mixture."""
        ''')
        assert sig.returns == parse_unit("Pa s")

    def test_untagged_docstring_gives_no_signature(self):
        assert self._sig('''
        def f(x):
            """Just prose, nothing bracketed."""
        ''') is None


class TestConstantsScrape:
    def test_hash_colon_comments(self):
        src = ("#: Boltzmann constant [J/K].\n"
               "K_B = 1.380649e-23\n"
               "#: no unit here\n"
               "OTHER = 2\n")
        out = constants_units(src)
        assert out == {"K_B": parse_unit("J/K")}


class TestUnit001:
    def test_positive_molar_plus_specific(self):
        src = '''
        def f(h, e0):
            """Mix-up.

            Parameters
            ----------
            h:
                Specific enthalpy [J/kg].
            e0:
                Formation energy [J/mol].
            """
            return h + e0
        '''
        assert "UNIT001" in unit_codes(src)

    def test_negative_compatible_addition(self):
        src = '''
        def f(h, dh):
            """Sum.

            Parameters
            ----------
            h:
                Enthalpy [J/kg].
            dh:
                Increment [J/kg].
            """
            return h + dh
        '''
        assert unit_codes(src) == []

    def test_positive_comparison(self):
        src = '''
        def f(p, T):
            """Compare.

            Parameters
            ----------
            p:
                Pressure [Pa].
            T:
                Temperature [K].
            """
            return p > T
        '''
        assert "UNIT001" in unit_codes(src)

    def test_unknown_side_is_wildcard(self):
        src = '''
        def f(p, x):
            """Silent when one side has no tag.

            Parameters
            ----------
            p:
                Pressure [Pa].
            """
            return p + x
        '''
        assert unit_codes(src) == []


class TestUnit002:
    def test_positive_return_mismatch(self):
        src = '''
        def T_post(p, rho):
            """Post-shock temperature.

            Parameters
            ----------
            p:
                Pressure [Pa].
            rho:
                Density [kg/m^3].

            Returns
            -------
            T:
                Temperature [K].
            """
            return p / rho
        '''
        assert "UNIT002" in unit_codes(src)

    def test_negative_consistent_return(self):
        src = '''
        def v(q, rho):
            """Speed.

            Parameters
            ----------
            q:
                Dynamic pressure [Pa].
            rho:
                Density [kg/m^3].

            Returns
            -------
            v2:
                Squared speed [m^2/s^2].
            """
            return q / rho
        '''
        assert unit_codes(src) == []

    def test_positive_parameter_rebound(self):
        src = '''
        def f(T, p):
            """Rebind.

            Parameters
            ----------
            T:
                Temperature [K].
            p:
                Pressure [Pa].
            """
            T = p
            return T
        '''
        assert "UNIT002" in unit_codes(src)

    def test_pragma_suppresses(self):
        src = '''
        def tau(p):
            """Empirical fit.

            Parameters
            ----------
            p:
                Pressure [Pa].

            Returns
            -------
            t:
                Relaxation time [s].
            """
            # catlint: disable=UNIT002 -- fit constant absorbs the units
            return 1.0 / p
        '''
        assert unit_codes(src) == []


class TestUnit003:
    def test_positive_registry_call_mismatch(self):
        # h_mass is in the curated API registry: T must be [K]
        src = '''
        def f(gas, p):
            """Call with the wrong quantity.

            Parameters
            ----------
            p:
                Pressure [Pa].
            """
            return gas.h_mass(p)
        '''
        assert "UNIT003" in unit_codes(src)

    def test_negative_registry_call_match(self):
        src = '''
        def f(gas, T):
            """Call with a temperature.

            Parameters
            ----------
            T:
                Temperature [K].
            """
            return gas.h_mass(T)
        '''
        assert unit_codes(src) == []

    def test_local_docstring_signature_checks_callers(self):
        src = '''
        def speed(d, t):
            """Speed.

            Parameters
            ----------
            d:
                Distance [m].
            t:
                Time [s].
            """
            return d / t

        def f(p):
            """Caller.

            Parameters
            ----------
            p:
                Pressure [Pa].
            """
            return speed(p, p)
        '''
        assert "UNIT003" in unit_codes(src)

    def test_constants_dict_feeds_inference(self):
        src = '''
        from repro.constants import R_UNIVERSAL

        def f(gas):
            """R has J/(mol K): not a temperature."""
            return gas.h_mass(R_UNIVERSAL)
        '''
        consts = {"R_UNIVERSAL": parse_unit("J/(mol K)")}
        assert "UNIT003" in unit_codes(src, constants=consts)
