"""Setup script.

Metadata is duplicated from pyproject.toml so that ``pip install -e .``
works in fully offline environments (no wheel/build isolation available),
where pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Computational aerothermodynamics (CAT) toolkit: real-gas CFD "
        "solvers (NS/PNS/E+BL/VSL), equilibrium and two-temperature air "
        "chemistry, radiation, and entry-heating analysis"
    ),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
