"""Integration tests for the post-shock relaxation solver (Fig. 7 class)."""

import numpy as np
import pytest

from repro.constants import TORR
from repro.errors import InputError
from repro.solvers.shock_relaxation import ShockRelaxationSolver


@pytest.fixture(scope="module")
def profile_10kms():
    solver = ShockRelaxationSolver("air11")
    return solver.solve(u1=10000.0, p1=0.1 * TORR, T1=300.0,
                        x_end=0.02, n_out=150, rtol=1e-6)


class TestRelaxationStructure:
    def test_frozen_jump_temperature(self, profile_10kms):
        # frozen (vibration-cold) jump at 10 km/s: ~47000-49000 K
        assert 42000.0 < profile_10kms.T[0] < 52000.0

    def test_T_relaxes_downward(self, profile_10kms):
        p = profile_10kms
        assert p.T[-1] < 0.3 * p.T[0]

    def test_Tv_rises_and_merges(self, profile_10kms):
        p = profile_10kms
        assert p.Tv[0] < 500.0
        assert abs(p.Tv[-1] - p.T[-1]) < 0.02 * p.T[-1]

    def test_equilibrium_plateau_matches_gibbs_shock(self, profile_10kms,
                                                     air_gas):
        # the relaxed state must agree with the equilibrium-RH solution
        from repro.solvers.shock import equilibrium_normal_shock
        p1 = 0.1 * TORR
        rho1 = p1 / (288.2 * 300.0)
        res = equilibrium_normal_shock(air_gas, rho1, 300.0, 10000.0)
        assert profile_10kms.T[-1] == pytest.approx(res["T2"], rel=0.05)

    def test_conservation_along_zone(self, profile_10kms):
        p = profile_10kms
        m = p.rho * p.u
        mom = p.p + p.rho * p.u**2
        assert np.max(np.abs(m / m[0] - 1.0)) < 1e-6
        assert np.max(np.abs(mom / mom[0] - 1.0)) < 1e-6

    def test_dissociation_progress(self, profile_10kms):
        p = profile_10kms
        jN2 = p.db.index["N2"]
        jN = p.db.index["N"]
        assert p.y[0, jN2] == pytest.approx(0.767, abs=1e-6)
        assert p.y[-1, jN] > 0.3

    def test_ionization_grows(self, profile_10kms):
        ne = profile_10kms.electron_number_density
        assert ne[0] < 1e10
        assert ne[-1] > 1e19

    def test_station_interpolation(self, profile_10kms):
        st = profile_10kms.station(0.005)
        assert st["T"] > 0 and st["y"].shape == (11,)


class TestInputs:
    def test_bad_mass_fractions(self):
        solver = ShockRelaxationSolver("air5")
        y_bad = np.zeros(5)
        y_bad[0] = 0.5
        with pytest.raises(InputError):
            solver.solve(u1=8000.0, p1=100.0, T1=300.0, y1=y_bad,
                         x_end=0.01)

    def test_air5_runs_without_ions(self):
        solver = ShockRelaxationSolver("air5")
        p = solver.solve(u1=6000.0, p1=50.0, T1=300.0, x_end=0.01,
                         n_out=50, rtol=1e-6)
        # catlint: disable=CAT010 -- species set has no ions, so n_e is exactly zero
        assert np.all(p.electron_number_density == 0.0)
        assert p.T[-1] < p.T[0]
