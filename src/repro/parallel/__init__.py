"""Shared-memory parallel substrate (domain decomposition + halo exchange).

The paper closes with the supercomputing challenge: "the development of
methods and data structures that are optimized for supercomputer
processing".  This subpackage provides the multiprocessor pattern in pure
Python: 1-D block domain decomposition, MPI-style halo exchange (the API
deliberately mirrors the mpi4py buffer idioms — ghost rows are copied
into/out of contiguous buffers), and a fork-based shared-memory worker
pool that runs registered stencil kernels with barrier synchronisation.

mpi4py itself is unavailable in the offline environment; the
process+shared-memory pool reproduces the *scaling shape* (speedup vs
workers with halo-synchronisation overhead) that the original Cray-era
claims were about.  See ``benchmarks/test_bench_scaling.py``.
"""

from repro.parallel.decomposition import Block1D, partition_1d
from repro.parallel.halo import exchange_halos_inplace, with_halo
from repro.parallel.executor import SharedMemoryStencilPool
from repro.parallel.kernels import KERNELS, heat5_step, euler1d_hlle_step

__all__ = ["Block1D", "partition_1d", "exchange_halos_inplace",
           "with_halo", "SharedMemoryStencilPool", "KERNELS",
           "heat5_step", "euler1d_hlle_step"]
