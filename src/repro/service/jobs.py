"""Durable asynchronous jobs: submit a long solve, walk away, come back.

The batch service (DESIGN §8) is synchronous — the caller holds the
connection while the farm works.  The paper's real workloads (full
trajectory marches, vehicle/material sweep campaigns) run for minutes to
hours, so this module adds the asynchronous front door: ``submit()``
returns a job id immediately, the solve runs on the existing farm, and
the client polls ``status``/``watch`` or collects ``result`` later —
surviving client disconnects, supervisor crashes and whole-host loss on
the way.  See DESIGN §9.

Architecture — three cooperating layers, all rooted in one queue dir:

* **Queue layer** (:mod:`repro.resilience.queue`): the job rides the
  durable work queue as kind ``"async"`` wrapping an inner
  :data:`~repro.resilience.farm.JOB_KINDS` executor.  Claims, leases,
  retry/backoff, dead-lettering and the exactly-once completion audit
  are all inherited unchanged.

* **Job state machine** (this module): a crash-safe JSON record at
  ``work/<id>/jobstate.json`` — deliberately next to the job's durable
  :class:`~repro.resilience.persistence.SnapshotStore` ladder at
  ``work/<id>/ckpt`` — tracking ``pending → claimed → running →
  checkpointing → done | failed | cancelled``.  Every transition is
  journaled (``job-transition``) and **fenced**: attempt-side
  transitions are committed only by the worker holding the job's lease,
  validated against the on-disk lease token before *and* after the
  write (the queue's double-verify idiom), so a partitioned supervisor
  whose lease was reaped can never commit a stale transition — it
  journals ``job-fenced`` and abandons the write instead.  Terminal
  states are *derived* from the queue's own fenced commits (result file
  / dead letter), which keeps "done" exactly-once by construction.

* **Progress channel**: the marching supervisor publishes step / time /
  residual through the existing heartbeat file
  (``work/<id>/sandbox/heartbeat.json``), so ``status`` and ``watch``
  show live progress without ever signalling or touching the child.

Cancellation is cooperative first — a flag file the supervisor's
process-global cancel hook polls every march iteration, answered with a
final durable snapshot and a terminal ``cancelled`` state — then
escalates down the existing SIGTERM → SIGKILL kill path against the
advertised sandbox child.  Dead jobs (killed supervisors/workers) are
detected by lease reaping and requeued automatically; the next attempt
resumes from the latest durable snapshot generation.  ``gc`` applies a
TTL + keep-last retention policy to finished-job artifacts.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import sys
import time

from repro.errors import CancelledError, InputError, SolverError
from repro.resilience.isolation import (kill_pid_tree, set_process_cancel,
                                        signal_group)
from repro.resilience.persistence import set_save_observer
from repro.resilience.queue import Job, WorkQueue

__all__ = ["AsyncJob", "JOB_STATES", "JOB_TERMINAL", "JOB_TRANSITIONS",
           "JobManager", "audit_job_transitions", "run_async_attempt",
           "run_chaos_jobs"]


# ----------------------------------------------------------------------
# the state machine
# ----------------------------------------------------------------------

PENDING, CLAIMED, RUNNING = "pending", "claimed", "running"
CHECKPOINTING = "checkpointing"
DONE, FAILED, CANCELLED = "done", "failed", "cancelled"

JOB_STATES = (PENDING, CLAIMED, RUNNING, CHECKPOINTING, DONE, FAILED,
              CANCELLED)

#: terminal job states — never left, whatever the queue does next
JOB_TERMINAL = frozenset((DONE, FAILED, CANCELLED))

#: the legal transition table.  ``running/claimed/checkpointing →
#: pending`` is the requeue edge (lease reaped, worker preempted or a
#: failed attempt backing off); every state may reach a terminal.
#: ``failed → pending`` is the one exit from a terminal: the operator
#: resurrect edge taken when ``campaign --retry-dead-letters`` grants a
#: dead job a fresh attempt budget.
JOB_TRANSITIONS: dict = {
    PENDING: frozenset((CLAIMED, DONE, FAILED, CANCELLED)),
    CLAIMED: frozenset((RUNNING, PENDING, DONE, FAILED, CANCELLED)),
    RUNNING: frozenset((CHECKPOINTING, PENDING, DONE, FAILED,
                        CANCELLED)),
    CHECKPOINTING: frozenset((RUNNING, PENDING, DONE, FAILED,
                              CANCELLED)),
    DONE: frozenset(), FAILED: frozenset((PENDING,)),
    CANCELLED: frozenset(),
}

#: jobstate history entries kept in the record file (the journal keeps
#: them all; the record keeps a bounded tail plus a total counter)
_HISTORY_KEEP = 50


def _record_path(queue: WorkQueue, job_id: str) -> str:
    return os.path.join(queue.job_workdir(job_id), "jobstate.json")


def _cancel_path(queue: WorkQueue, job_id: str) -> str:
    return os.path.join(queue.job_workdir(job_id), "cancel.json")


def _terminal_marker(queue: WorkQueue, job_id: str) -> str:
    return os.path.join(queue.job_workdir(job_id), "terminal.lock")


def read_record(queue: WorkQueue, job_id: str) -> dict | None:
    """The job's persisted state record; None when never submitted.

    A torn record (crash mid-write is impossible — writes are atomic —
    but disk corruption is not) is quarantined and rebuilt by replaying
    the journal's ``job-transition`` stream, the same recovery path the
    queue uses for its own state files.
    """
    path = _record_path(queue, job_id)
    rec, torn = queue._read_json_checked(path)
    if rec is not None:
        return rec
    if torn:
        queue._quarantine(path, "unparseable jobstate record")
        rebuilt = _record_from_journal(queue, job_id)
        if rebuilt is not None:
            queue._write_json(path, rebuilt)
            queue.journal("job-state-rebuilt", job=job_id,
                          state=rebuilt.get("state"))
            return rebuilt
    return None


def _record_from_journal(queue: WorkQueue, job_id: str) -> dict | None:
    rec = None
    for line in queue.read_journal():
        if line.get("job") != job_id \
                or line.get("event") != "job-transition":
            continue
        if rec is None:
            rec = {"id": job_id, "kind": line.get("kind"),
                   "state": line.get("to"),
                   "submitted_at": float(line.get("t") or 0.0),
                   "updated_at": float(line.get("t") or 0.0),
                   "transitions": 0, "history": [], "error": None}
        rec["state"] = line.get("to")
        rec["updated_at"] = float(line.get("t") or 0.0)
        rec["transitions"] += 1
        if line.get("error"):
            rec["error"] = line["error"]
    return rec


def _verify_token(queue: WorkQueue, job_id: str,
                  token: str | None) -> bool:
    """Does the on-disk lease (or its absence) match our credential?

    ``token=None`` is the client/reconciler fence: legal only while no
    lease exists at all, so a client-side write can never race a live
    attempt's fenced commits.
    """
    held = queue.leases.holder(job_id)
    if token is None:
        return held is None
    return held is not None and held.get("token") == token


def commit_transition(queue: WorkQueue, job_id: str, to: str, *,
                      by: str | None, token: str | None = None,
                      kind: str | None = None, error: str | None = None,
                      detail: str | None = None) -> bool:
    """Atomically commit one fenced state-machine transition.

    Returns True when the transition landed.  Rejections are silent to
    the caller but never to the audit trail: a lease-token mismatch
    journals ``job-fenced`` (a partitioned writer was stopped), an
    illegal edge journals ``job-illegal`` (a logic bug or a racing
    terminal), and both leave the record untouched.

    The fence is checked twice — before building the new record and
    again immediately before the atomic replace — mirroring the queue's
    double-verify completion commit, so the stale-writer window is one
    rename wide and anything slipping through shows up in the journal
    replay that :func:`audit_job_transitions` validates.
    """
    if to not in JOB_STATES:
        raise InputError(f"unknown job state {to!r}")
    if not _verify_token(queue, job_id, token):
        queue.journal("job-fenced", job=job_id, to=to, by=by)
        return False
    rec = read_record(queue, job_id)
    if rec is None:
        if to != PENDING:
            queue.journal("job-illegal", job=job_id, frm=None, to=to,
                          by=by)
            return False
        now = queue.clock()
        rec = {"id": job_id, "kind": kind, "state": PENDING,
               "submitted_at": now, "updated_at": now,
               "transitions": 0, "history": [], "error": None}
        frm = None
    else:
        frm = rec.get("state")
        if to not in JOB_TRANSITIONS.get(frm, frozenset()):
            queue.journal("job-illegal", job=job_id, frm=frm, to=to,
                          by=by)
            return False
    if to in JOB_TERMINAL:
        # exclusive hard gate on the *journal* line: of N concurrent
        # terminal writers (the lease holder vs. racing client-side
        # reconcilers) exactly one O_EXCL create succeeds, so the
        # at-most-one-terminal audit invariant holds by construction.
        # A marker creator dying before the record write is repaired
        # journal-lessly by JobManager.sync().
        try:
            fd = os.open(_terminal_marker(queue, job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            os.close(fd)
        except FileExistsError:
            return False
        except OSError:
            pass   # marker dir gone (gc race): proceed unguarded
    now = queue.clock()
    rec["state"] = to
    rec["updated_at"] = now
    rec["transitions"] = int(rec.get("transitions", 0)) + 1
    if error is not None:
        rec["error"] = error
    entry = {"from": frm, "to": to, "at": now, "by": by}
    if detail:
        entry["detail"] = detail
    history = list(rec.get("history") or [])
    history.append(entry)
    rec["history"] = history[-_HISTORY_KEEP:]
    if not _verify_token(queue, job_id, token):
        queue.journal("job-fenced", job=job_id, to=to, by=by)
        return False
    queue._write_json(_record_path(queue, job_id), rec)
    if frm in JOB_TERMINAL and to == PENDING:
        # resurrect (dead-letter retry): re-arm the exclusive terminal
        # gate and drop any stale cancel flag from the prior life
        for stale in (_terminal_marker(queue, job_id),
                      _cancel_path(queue, job_id)):
            try:
                os.remove(stale)
            except OSError:
                pass
    queue.journal("job-transition", job=job_id, frm=frm, to=to, by=by,
                  kind=rec.get("kind"), error=error, detail=detail,
                  token=None if token is None else token[:8])
    return True


def audit_job_transitions(queue: WorkQueue) -> dict:
    """Replay every journaled ``job-transition`` and prove the history
    legal: each edge in :data:`JOB_TRANSITIONS`, at most one terminal
    per job, nothing after a terminal."""
    state: dict[str, str | None] = {}
    violations: list[dict] = []
    for line in queue.read_journal():
        if line.get("event") != "job-transition":
            continue
        job, frm, to = line.get("job"), line.get("frm"), line.get("to")
        seen = state.get(job)
        resurrect = frm == FAILED and to == PENDING
        if seen in JOB_TERMINAL and not (resurrect and seen == FAILED):
            # covers double-terminal too: a second terminal while
            # already terminal (without a resurrect in between) lands
            # here
            violations.append({"job": job, "kind": "after-terminal",
                               "frm": frm, "to": to})
        elif seen is not None and frm is not None and seen != frm:
            violations.append({"job": job, "kind": "discontinuity",
                               "recorded": seen, "frm": frm, "to": to})
        if frm is None:
            legal = to == PENDING
        else:
            legal = to in JOB_TRANSITIONS.get(frm, frozenset())
        if not legal:
            violations.append({"job": job, "kind": "illegal-edge",
                               "frm": frm, "to": to})
        state[job] = to
    return {"ok": not violations, "jobs": len(state),
            "violations": violations}


# ----------------------------------------------------------------------
# the attempt executor (runs in the farm's sandbox child)
# ----------------------------------------------------------------------

class _CancelPoll:
    """Throttled cancel-flag poll installed as the process-global cancel
    hook: the supervisor calls it every march iteration; it touches the
    filesystem at most every ``min_interval`` seconds."""

    def __init__(self, path: str, *, min_interval: float = 0.2):
        self.path = path
        self.min_interval = float(min_interval)
        self._last = 0.0
        self._reason: str | None = None

    def __call__(self) -> str | None:
        if self._reason is not None:
            return self._reason
        now = time.monotonic()
        if now - self._last < self.min_interval:
            return None
        self._last = now
        try:
            with open(self.path) as f:
                flag = json.load(f)
        except (OSError, ValueError):
            return None
        self._reason = str(flag.get("reason") or "cancel requested")
        return self._reason


class _CheckpointObserver:
    """Save observer bracketing every durable snapshot commit with
    fenced ``running → checkpointing → running`` transitions."""

    def __init__(self, queue: WorkQueue, job_id: str,
                 token: str | None, worker: str | None):
        self.queue = queue
        self.job_id = job_id
        self.token = token
        self.worker = worker

    def __call__(self, phase: str, *, store=None, seq=None,
                 completed=False) -> None:
        try:
            if phase == "begin":
                commit_transition(self.queue, self.job_id, CHECKPOINTING,
                                  by=self.worker, token=self.token)
            elif phase == "end":
                commit_transition(self.queue, self.job_id, RUNNING,
                                  by=self.worker, token=self.token,
                                  detail=f"snapshot seq {seq}")
        except OSError:
            pass   # a failed bookkeeping write must never kill a save


def _cancel_requested(queue: WorkQueue, job_id: str) -> dict | None:
    return queue._read_json(_cancel_path(queue, job_id))


def run_async_attempt(payload: dict, ctx: dict) -> dict:
    """Execute one fenced attempt of an async job (sandbox-child side).

    Reconciles any non-terminal state a killed predecessor left behind
    (back to ``pending``, legally), acknowledges a pending cancel flag
    before spending any compute, then drives the inner job kind under
    ``claimed → running → (checkpointing …) → `` bookkeeping.  A
    cooperative :class:`~repro.errors.CancelledError` becomes a clean
    ``{"cancelled": True}`` result — the queue still records a fenced,
    exactly-once *completion*; the job-level terminal state is derived
    as ``cancelled`` from the result payload.
    """
    from repro.resilience.farm import JOB_KINDS
    queue = WorkQueue(ctx["queue_dir"])
    job_id = ctx["job_id"]
    token = ctx.get("lease_token")
    worker = ctx.get("worker")
    inner_kind = payload.get("kind")
    fn = JOB_KINDS.get(inner_kind)
    if fn is None:
        raise SolverError(f"async job {job_id}: unknown inner kind "
                          f"{inner_kind!r} (registered: "
                          f"{sorted(JOB_KINDS)})")
    rec = read_record(queue, job_id)
    if rec is None:
        # submitted through the bare queue API: adopt it
        commit_transition(queue, job_id, PENDING, by=worker,
                          token=token, kind=inner_kind)
        rec = read_record(queue, job_id)
    state = (rec or {}).get("state")
    if state in (CLAIMED, RUNNING, CHECKPOINTING):
        # a killed attempt never got to requeue its record — do it now,
        # under our lease, before claiming
        commit_transition(queue, job_id, PENDING, by=worker,
                          token=token, detail="stale attempt reconciled")
        state = PENDING
    elif state == FAILED:
        # the operator granted a dead-lettered job a fresh attempt
        # budget (retry_dead_letters): take the resurrect edge
        commit_transition(queue, job_id, PENDING, by=worker,
                          token=token, detail="dead-letter retry")
        state = PENDING
    flag = _cancel_requested(queue, job_id)
    if flag is not None or state == CANCELLED:
        # acknowledge without burning compute; queue-level completion
        # still commits exactly once through the worker's fenced path
        if state not in JOB_TERMINAL:
            commit_transition(queue, job_id, CANCELLED, by=worker,
                              token=token,
                              detail="cancelled before start")
        return {"job": job_id, "cancelled": True,
                "reason": (flag or {}).get("reason"), "wall_s": 0.0}
    commit_transition(queue, job_id, CLAIMED, by=worker, token=token)
    poll = _CancelPoll(_cancel_path(queue, job_id))
    set_process_cancel(poll)
    set_save_observer(_CheckpointObserver(queue, job_id, token, worker))
    commit_transition(queue, job_id, RUNNING, by=worker, token=token)
    t0 = time.monotonic()
    try:
        inner = fn(dict(payload.get("payload") or {}), ctx)
    except CancelledError as err:
        commit_transition(queue, job_id, CANCELLED, by=worker,
                          token=token, detail=str(err))
        return {"job": job_id, "cancelled": True, "reason": str(err),
                "step": err.step,
                "wall_s": round(time.monotonic() - t0, 3)}
    finally:
        set_process_cancel(None)
        set_save_observer(None)
    commit_transition(queue, job_id, DONE, by=worker, token=token)
    return {"job": job_id, "cancelled": False, "result": inner,
            "wall_s": round(time.monotonic() - t0, 3)}


# ----------------------------------------------------------------------
# the client surface
# ----------------------------------------------------------------------

def _job_id_for(kind: str, payload: dict) -> str:
    """Content-addressed default job id: resubmitting the same work is
    idempotent (the queue dedups on id), mirroring the batch service's
    idempotency keys."""
    blob = json.dumps({"kind": kind, "payload": payload},
                      sort_keys=True, default=str)
    return f"job-{hashlib.sha256(blob.encode()).hexdigest()[:12]}"


class JobManager:
    """Client-side surface over one queue directory's async jobs.

    Every method opens its own view of the shared directory — there is
    no in-memory authority to lose, so any number of clients, CLIs and
    supervisors can operate on the same jobs concurrently.
    """

    def __init__(self, queue_dir, *, host_id: str | None = None,
                 lease_ttl: float = 15.0, max_skew: float = 2.0,
                 clock=None):
        self.queue = WorkQueue(queue_dir, host_id=host_id,
                               lease_ttl=lease_ttl, max_skew=max_skew,
                               clock=clock)

    # -- submit ---------------------------------------------------------

    def submit(self, kind: str, payload: dict | None = None, *,
               job_id: str | None = None, priority: int = 0,
               max_attempts: int | None = None,
               deadline: float | None = None,
               memory_mb: float | None = None,
               stall_timeout: float | None = None) -> dict:
        """Enqueue an async job; returns ``{"job", "state", "fresh"}``
        immediately — the solve itself runs whenever a farm supervisor
        (``python -m repro serve``) drains the queue."""
        from repro.resilience.farm import JOB_KINDS
        if kind not in JOB_KINDS or kind == "async":
            raise InputError(f"unknown job kind {kind!r} (registered: "
                             f"{sorted(k for k in JOB_KINDS if k != 'async')})")
        payload = dict(payload or {})
        job_id = job_id or _job_id_for(kind, payload)
        t0 = time.monotonic()
        fresh = self.queue.enqueue(Job(
            id=job_id, kind="async",
            payload={"kind": kind, "payload": payload},
            priority=priority, max_attempts=max_attempts,
            deadline=deadline, memory_mb=memory_mb,
            stall_timeout=stall_timeout))
        if fresh:
            commit_transition(self.queue, job_id, PENDING, by="client",
                              kind=kind)
        rec = read_record(self.queue, job_id) or {}
        return {"job": job_id, "state": rec.get("state", PENDING),
                "kind": kind, "fresh": fresh,
                "submit_latency_s": round(time.monotonic() - t0, 4)}

    # -- reconciliation -------------------------------------------------

    def sync(self, job_id: str) -> dict | None:
        """Reconcile the job record against queue truth; returns it.

        Terminal states derive from the queue's fenced commits: a
        result file means ``done`` (or ``cancelled`` when the attempt
        reported a cooperative cancellation), a dead letter means
        ``failed``.  A non-terminal record whose attempt lost its lease
        (reaped, preempted or requeued with backoff) is folded back to
        ``pending``.  Also reaps expired leases first — dead-job
        detection does not wait for a farm supervisor to notice.
        """
        self.queue.reclaim_expired()
        rec = read_record(self.queue, job_id)
        if rec is None:
            return None
        if rec.get("state") in JOB_TERMINAL:
            return rec
        qst = self.queue.state(job_id)
        status = qst.get("status")
        to, error, detail = None, None, None
        if status == "done":
            res = (self.queue.result(job_id) or {}).get("result") or {}
            to = CANCELLED if res.get("cancelled") else DONE
            detail = "derived from queue completion"
        elif status == "dead":
            dead = self.queue.dead_letter(job_id) or {}
            to, error = FAILED, dead.get("error")
            detail = "derived from dead letter"
        elif (status == "pending"
              and rec.get("state") in (CLAIMED, RUNNING, CHECKPOINTING)
              and self.queue.leases.holder(job_id) is None):
            commit_transition(self.queue, job_id, PENDING,
                              by="reconcile", error=qst.get("last_error"),
                              detail="attempt lost its lease; requeued")
        if to is not None:
            commit_transition(self.queue, job_id, to, by="reconcile",
                              error=error, detail=detail)
            rec = read_record(self.queue, job_id)
            if rec is not None and rec.get("state") not in JOB_TERMINAL:
                # a prior terminal writer created the exclusive marker
                # and died before the record write (or its fenced
                # commit was abandoned post-marker): repair the record
                # journal-lessly — the queue's own fenced commit is the
                # durable proof; the journal simply never shows this
                # terminal edge
                rec["state"] = to
                rec["updated_at"] = self.queue.clock()
                if error is not None:
                    rec["error"] = error
                self.queue._write_json(_record_path(self.queue, job_id),
                                       rec)
                self.queue.journal("job-terminal-repair", job=job_id,
                                   to=to)
            return rec
        return read_record(self.queue, job_id)

    # -- introspection --------------------------------------------------

    def _progress(self, job_id: str) -> dict | None:
        hb = self.queue._read_json(os.path.join(
            self.queue.job_workdir(job_id), "sandbox",
            "heartbeat.json"))
        return (hb or {}).get("progress")

    def _snapshots(self, job_id: str) -> dict:
        ckpt_dir = os.path.join(self.queue.job_workdir(job_id), "ckpt")
        try:
            names = sorted(n for n in os.listdir(ckpt_dir)
                           if n.startswith("ckpt-")
                           and n.endswith(".json"))
        except OSError:
            names = []
        latest = None
        if names:
            latest = int(names[-1][len("ckpt-"):-len(".json")])
        return {"generations": len(names), "latest": latest}

    def status(self, job_id: str) -> dict:
        """One reconciled, JSON-able view of the job: state-machine
        state, queue status, live progress and snapshot ladder — read
        entirely from durable files, never from the child."""
        rec = self.sync(job_id)
        if rec is None:
            raise InputError(f"unknown job {job_id!r}")
        qst = self.queue.state(job_id)
        lease = self.queue.leases.holder(job_id)
        return {"job": job_id, "state": rec.get("state"),
                "kind": rec.get("kind"),
                "queue_status": qst.get("status"),
                "attempts": qst.get("attempts"),
                "owner": None if lease is None else lease.get("owner"),
                "error": rec.get("error"),
                "cancel_requested":
                    _cancel_requested(self.queue, job_id) is not None,
                "progress": self._progress(job_id),
                "snapshots": self._snapshots(job_id),
                "transitions": rec.get("transitions"),
                "updated_at": rec.get("updated_at"),
                "history": list(rec.get("history") or [])[-8:]}

    def watch(self, job_id: str, *, timeout: float | None = None,
              poll: float = 0.5, stream=None) -> dict:
        """Poll ``status`` until the job is terminal, emitting one JSON
        line per observed change; returns the final status (with
        ``timed_out=True`` when the budget ran out first)."""
        t0 = time.monotonic()
        last_line = None
        while True:
            st = self.status(job_id)
            line = json.dumps(
                {k: st.get(k) for k in ("job", "state", "attempts",
                                        "progress", "snapshots")},
                sort_keys=True, default=str)
            if stream is not None and line != last_line:
                print(line, file=stream, flush=True)
                last_line = line
            if st["state"] in JOB_TERMINAL:
                return st
            if (timeout is not None
                    and time.monotonic() - t0 > timeout):
                st["timed_out"] = True
                return st
            time.sleep(poll)

    def result(self, job_id: str, *, wait: float | None = None,
               poll: float = 0.5) -> dict:
        """The job's terminal outcome: ``{"job", "state", "result" |
        "error", ...}``.  With ``wait`` blocks up to that long for a
        terminal state; a non-terminal job reports ``ready=False``."""
        t0 = time.monotonic()
        while True:
            rec = self.sync(job_id)
            if rec is None:
                raise InputError(f"unknown job {job_id!r}")
            state = rec.get("state")
            if state in JOB_TERMINAL:
                break
            if wait is None or time.monotonic() - t0 > wait:
                return {"job": job_id, "state": state, "ready": False}
            time.sleep(poll)
        out = {"job": job_id, "state": state, "ready": True}
        if state == FAILED:
            dead = self.queue.dead_letter(job_id) or {}
            out["error"] = dead.get("error") or rec.get("error")
            out["attempts"] = dead.get("attempts")
        else:
            envelope = (self.queue.result(job_id) or {}).get("result") \
                or {}
            out["wall_s"] = envelope.get("wall_s")
            if state == CANCELLED:
                out["reason"] = envelope.get("reason")
            else:
                out["result"] = envelope.get("result")
        return out

    # -- cancellation ---------------------------------------------------

    def cancel(self, job_id: str, *, reason: str | None = None,
               escalate_after: float | None = None,
               wait: float | None = None, poll: float = 0.25) -> dict:
        """Request cancellation; cooperative first, then escalating.

        Writes the durable cancel flag (the running march's cancel hook
        acknowledges it within one poll interval, commits a final
        snapshot and exits ``cancelled``); an unclaimed job is
        terminalized client-side immediately.  With ``escalate_after``
        a job still not terminal after that many seconds gets the
        SIGTERM → SIGKILL path against its advertised sandbox child —
        the lease then expires, the requeued attempt sees the flag at
        entry and acknowledges it without marching.
        """
        rec = self.sync(job_id)
        if rec is None:
            raise InputError(f"unknown job {job_id!r}")
        if rec.get("state") in JOB_TERMINAL:
            return {"job": job_id, "state": rec["state"],
                    "already_terminal": True}
        queue = self.queue
        queue._write_json(_cancel_path(queue, job_id),
                          {"job": job_id, "t": queue.clock(),
                           "by": queue.host_id,
                           "reason": reason or "client cancel"})
        queue.journal("job-cancel-request", job=job_id,
                      reason=reason or "client cancel")
        # an unclaimed job can be terminalized right now (fenced by the
        # absence of any lease; a racing claim converges at attempt
        # entry, which re-checks the flag before marching)
        if queue.state(job_id).get("status") == "pending" \
                and queue.leases.holder(job_id) is None:
            commit_transition(queue, job_id, CANCELLED, by="client",
                              detail=reason or "client cancel")
        escalated = False
        t0 = time.monotonic()
        deadline = None if wait is None else t0 + wait
        esc_at = (None if escalate_after is None
                  else t0 + escalate_after)
        while True:
            rec = self.sync(job_id)
            if rec.get("state") in JOB_TERMINAL:
                break
            now = time.monotonic()
            if esc_at is not None and now >= esc_at and not escalated:
                escalated = True
                self._escalate(job_id)
            if deadline is None or now >= deadline:
                break
            time.sleep(poll)
        return {"job": job_id, "state": rec.get("state"),
                "escalated": escalated,
                "already_terminal": False}

    def _escalate(self, job_id: str, *, grace: float = 2.0) -> None:
        """SIGTERM the advertised sandbox child, then SIGKILL its
        group — the same escalation every other supervisor uses."""
        child = self.queue._read_json(os.path.join(
            self.queue.job_workdir(job_id), "child.json"))
        pid = None if child is None else child.get("pid")
        if pid is None:
            return
        self.queue.journal("job-cancel-escalate", job=job_id, pid=pid)
        signal_group(int(pid), signal.SIGTERM)
        t_end = time.monotonic() + grace
        while time.monotonic() < t_end:
            try:
                os.kill(int(pid), 0)
            except OSError:
                return   # gone within the grace window
            time.sleep(0.1)
        kill_pid_tree(int(pid))

    # -- garbage collection ---------------------------------------------

    def gc(self, *, ttl: float = 0.0, keep_last: int = 0,
           include_failed: bool = False) -> dict:
        """TTL-based retention sweep over *finished* jobs.

        Removes every artifact (spec, state, result, dead letter,
        workdir with its snapshot ladder) of jobs terminal for longer
        than ``ttl`` seconds — except the ``keep_last`` most recently
        finished, and except ``failed`` jobs unless ``include_failed``
        (their dead letters are the debugging record).  Running,
        pending and leased jobs are never touched.
        """
        now = self.queue.clock()
        finished: list[tuple[float, str, str]] = []
        for job_id in self.queue.job_ids():
            rec = self.sync(job_id)
            if rec is None or rec.get("state") not in JOB_TERMINAL:
                continue
            if self.queue.leases.holder(job_id) is not None:
                continue
            finished.append((float(rec.get("updated_at") or 0.0),
                             job_id, rec["state"]))
        finished.sort(reverse=True)
        retained = [j for _, j, _ in finished[:max(0, int(keep_last))]]
        collected: list[str] = []
        for updated, job_id, state in finished[max(0, int(keep_last)):]:
            if state == FAILED and not include_failed:
                continue
            if now - updated < ttl:
                continue
            self._remove_artifacts(job_id)
            collected.append(job_id)
        return {"collected": sorted(collected),
                "retained": sorted(retained),
                "n_collected": len(collected)}

    def _remove_artifacts(self, job_id: str) -> None:
        queue = self.queue
        shutil.rmtree(os.path.join(queue.work_dir, job_id),
                      ignore_errors=True)
        for path in (
                os.path.join(queue.jobs_dir, f"{job_id}.json"),
                os.path.join(queue.state_dir, f"{job_id}.json"),
                os.path.join(queue.results_dir, f"{job_id}.json"),
                os.path.join(queue.dead_dir, f"{job_id}.json"),
                os.path.join(queue.dead_dir, f"{job_id}-history.json")):
            try:
                os.remove(path)
            except OSError:
                pass
        queue.journal("job-gc", job=job_id)

    # -- fleet view -----------------------------------------------------

    def ledger(self) -> dict:
        """Summary of every job in the queue directory, plus both
        audits (queue-level exactly-once, job-level legal history)."""
        from repro.resilience.farm import audit_exactly_once
        rows = []
        by_state: dict[str, int] = {}
        for job_id in self.queue.job_ids():
            rec = self.sync(job_id)
            if rec is None:
                continue
            state = rec.get("state", "?")
            by_state[state] = by_state.get(state, 0) + 1
            rows.append({"job": job_id, "state": state,
                         "kind": rec.get("kind"),
                         "transitions": rec.get("transitions"),
                         "error": rec.get("error"),
                         "updated_at": rec.get("updated_at")})
        return {"jobs": rows, "by_state": by_state,
                "audit": audit_exactly_once(self.queue),
                "transitions_audit":
                    audit_job_transitions(self.queue)}


class AsyncJob:
    """Thin client handle returned by :func:`repro.core.submit_async`:
    the job id plus bound ``status``/``watch``/``result``/``cancel``."""

    def __init__(self, manager: JobManager, job_id: str):
        self.manager = manager
        self.id = job_id

    def status(self) -> dict:
        return self.manager.status(self.id)

    def watch(self, **kwargs) -> dict:
        return self.manager.watch(self.id, **kwargs)

    def result(self, **kwargs) -> dict:
        return self.manager.result(self.id, **kwargs)

    def cancel(self, **kwargs) -> dict:
        return self.manager.cancel(self.id, **kwargs)

    def __repr__(self) -> str:
        return f"AsyncJob({self.id!r})"


# ----------------------------------------------------------------------
# chaos --jobs: kill-and-resume campaign
# ----------------------------------------------------------------------

def _jobs_supervisor_main(queue_dir: str, host_id: str,
                          cfg: dict) -> None:
    """One supervisor process draining the jobs queue (chaos target)."""
    try:
        os.setpgid(0, 0)
    except OSError:
        pass
    from repro.resilience.farm import Farm, FarmPolicy
    from repro.resilience.queue import BackoffPolicy
    policy = FarmPolicy(
        n_workers=int(cfg.get("n_workers", 1)),
        lease_ttl=float(cfg.get("lease_ttl", 2.0)),
        poll_interval=0.1, worker_stall_timeout=60.0,
        stall_timeout=None,
        backoff=BackoffPolicy(max_attempts=8, base=0.1, max_delay=1.0),
        drain_when_idle=bool(cfg.get("drain_when_idle", True)),
        host_id=host_id, max_skew=float(cfg.get("max_skew", 0.5)),
        beacon_interval=0.2,
        snapshot_every=int(cfg.get("snapshot_every", 2)))
    stream = sys.stdout if cfg.get("verbose") else open(os.devnull, "w")
    Farm(queue_dir, policy, label=f"jobs-{host_id}",
         stream=stream).run()


def run_chaos_jobs(*, case: str = "euler2d", n_steps: int = 40,
                   every_n_steps: int = 2, deadline: float = 240.0,
                   out: str | None = "chaos-jobs-reports",
                   queue_dir: str | None = None, stream=None) -> int:
    """Kill-and-resume chaos campaign for the async-job subsystem.

    1. March an uninterrupted in-process reference → state fingerprint.
    2. ``submit`` the same march as an async job (benchmarking submit
       latency on ballast submissions first), start a supervisor,
       SIGKILL the whole supervisor tree (supervisor, worker, sandbox
       child) once live progress and ≥ 1 durable snapshot prove the
       march is mid-flight.
    3. Start a second supervisor under a different host id: lease
       reaping requeues the dead job, the attempt resumes from the
       latest snapshot generation and finishes.
    4. Assert: final state bitwise-identical to the reference,
       exactly-once completion from the merged journal, legal
       state-machine history, cooperative cancellation works, and
       after ``gc`` no job artifacts or orphan processes remain.

    Writes ``chaos-jobs-ledger.json`` + ``BENCH_jobs.json`` under
    ``out``; returns a process exit code.
    """
    import multiprocessing as mp
    import tempfile

    from repro.resilience.chaos import CASES
    from repro.resilience.farm import (state_fingerprint, sweep_orphans,
                                       write_bench_json)
    from repro.resilience.lease import read_beacons
    stream = stream or sys.stdout
    if case not in CASES:
        raise InputError(f"unknown chaos case {case!r} (options: "
                         f"{sorted(CASES)})")
    if queue_dir is None:
        queue_dir = (os.path.join(out, "jobs-queue") if out is not None
                     else tempfile.mkdtemp(prefix="chaos-jobs-"))
    if out is not None:
        os.makedirs(out, exist_ok=True)
    events: list[dict] = []
    t_campaign = time.monotonic()

    def _elapsed() -> float:
        return time.monotonic() - t_campaign

    def _note(event: str, **fields):
        events.append({"t": round(_elapsed(), 2), "event": event,
                       **fields})
        body = ", ".join(f"{k}={v}" for k, v in fields.items())
        print(f"  t={_elapsed():.1f}s {event}: {body}", file=stream)

    # -- 1. uninterrupted reference ------------------------------------
    factory, base_kwargs, _, _ = CASES[case]
    run_kwargs = dict(base_kwargs)
    run_kwargs["n_steps"] = int(n_steps)
    solver = factory()
    t0 = time.monotonic()
    solver.run(**run_kwargs)
    ref_wall = time.monotonic() - t0
    ref_fp = state_fingerprint(solver)
    print(f"chaos --jobs: case {case}, {n_steps} step(s); reference "
          f"marched in {ref_wall:.2f} s ({ref_fp[:12]}…)", file=stream)

    # -- submit-latency bench on a scratch queue -----------------------
    with tempfile.TemporaryDirectory(prefix="jobs-bench-") as bench_dir:
        bench_mgr = JobManager(bench_dir)
        lat = sorted(
            bench_mgr.submit("sleep", {"duration": 0.01},
                             job_id=f"bench-{i:03d}")["submit_latency_s"]
            for i in range(20))
    submit_latency = {"n": len(lat),
                      "p50_s": round(lat[len(lat) // 2], 4),
                      "max_s": round(lat[-1], 4)}

    # -- 2. submit, supervise, kill mid-march --------------------------
    mgr = JobManager(queue_dir, host_id="jobs-driver", lease_ttl=2.0,
                     max_skew=0.5)
    sub = mgr.submit("solver_case",
                     {"case": case, "run_kwargs": {"n_steps": n_steps},
                      "every_n_steps": int(every_n_steps)},
                     job_id="march-00", max_attempts=8)
    _note("submit", job=sub["job"], latency_s=sub["submit_latency_s"])
    cfg = {"n_workers": 1, "lease_ttl": 2.0, "max_skew": 0.5,
           "snapshot_every": every_n_steps}
    ctx = mp.get_context("fork")

    def _spawn(host_id: str):
        proc = ctx.Process(target=_jobs_supervisor_main,
                           args=(queue_dir, host_id, cfg), daemon=False)
        proc.start()
        _note("supervisor-up", host=host_id, pid=proc.pid)
        return proc

    def _wait(cond, budget: float) -> bool:
        while not cond():
            if _elapsed() > budget:
                return False
            time.sleep(0.1)
        return True

    def _mid_march() -> bool:
        st = mgr.status("march-00")
        prog = st.get("progress") or {}
        return (st["snapshots"]["generations"] >= 1
                and int(prog.get("step") or 0) >= every_n_steps
                and st["state"] not in JOB_TERMINAL)

    t_interrupted = time.monotonic()
    proc_a = _spawn("jobsA")
    checks: dict[str, bool] = {}
    killed_pids: list[int] = []
    try:
        checks["reached_mid_march"] = _wait(_mid_march, deadline / 3.0)
        st = mgr.status("march-00")
        _note("mid-march", state=st["state"],
              progress=(st.get("progress") or {}).get("step"),
              snapshots=st["snapshots"]["generations"])
        # SIGKILL the whole host: supervisor, workers, sandbox children
        beacon = read_beacons(mgr.queue.hosts_dir).get("jobsA") or {}
        killed_pids = [proc_a.pid] + [int(p) for p
                                      in beacon.get("workers") or []]
        for pid in killed_pids:
            kill_pid_tree(pid)
        proc_a.join(10.0)
        swept = sweep_orphans(mgr.queue, host="jobsA")
        _note("host-kill", host="jobsA", pids=killed_pids,
              orphans_swept=len(swept))

        # -- 3. resume on a fresh supervisor ---------------------------
        proc_b = _spawn("jobsB")
        try:
            checks["resumed_done"] = _wait(
                lambda: mgr.sync("march-00").get("state") == DONE,
                deadline)
        finally:
            proc_b.join(30.0)
            if proc_b.is_alive():
                kill_pid_tree(proc_b.pid)
                proc_b.join(5.0)
        wall_interrupted = time.monotonic() - t_interrupted
        res = mgr.result("march-00")
        got_fp = ((res.get("result") or {}).get("state_sha256")
                  if res.get("ready") else None)
        checks["bitwise_match"] = got_fp == ref_fp
        _note("resumed", state=res.get("state"),
              fingerprint=(got_fp or "?")[:12],
              attempts=mgr.status("march-00").get("attempts"))

        # -- 4. cooperative cancellation probe -------------------------
        mgr.submit("solver_case",
                   {"case": case, "run_kwargs": {"n_steps": 4000},
                    "every_n_steps": int(every_n_steps)},
                   job_id="cancel-00", max_attempts=8)
        proc_c = _spawn("jobsC")
        try:
            _wait(lambda: (mgr.status("cancel-00").get("progress")
                           or {}).get("step") is not None,
                  deadline / 3.0)
            cancelled = mgr.cancel("cancel-00", reason="chaos probe",
                                   escalate_after=15.0,
                                   wait=deadline / 3.0)
            checks["cancelled"] = cancelled.get("state") == CANCELLED
            _note("cancel", state=cancelled.get("state"),
                  escalated=cancelled.get("escalated"))
        finally:
            proc_c.join(30.0)
            if proc_c.is_alive():
                kill_pid_tree(proc_c.pid)
                proc_c.join(5.0)
    finally:
        if proc_a.is_alive():
            kill_pid_tree(proc_a.pid)
            proc_a.join(5.0)

    # -- audits --------------------------------------------------------
    ledger = mgr.ledger()
    checks["exactly_once"] = bool(ledger["audit"]["ok"])
    checks["legal_transitions"] = bool(ledger["transitions_audit"]["ok"])

    # -- gc: no leaked artifacts, no orphan processes ------------------
    swept = mgr.gc(ttl=0.0, include_failed=True)
    leaked = []
    for job_id in swept["collected"]:
        for d in (mgr.queue.work_dir, mgr.queue.jobs_dir,
                  mgr.queue.state_dir, mgr.queue.results_dir):
            path = os.path.join(d, job_id)
            if os.path.exists(path) or os.path.exists(f"{path}.json"):
                leaked.append(path)
    checks["gc_clean"] = (not leaked
                          and swept["n_collected"] >= 2)
    orphans = []
    for pid in killed_pids:
        try:
            os.kill(int(pid), 0)
        except OSError:
            continue
        orphans.append(int(pid))
    checks["no_orphans"] = not orphans
    _note("gc", collected=swept["n_collected"], leaked=len(leaked),
          orphans=len(orphans))

    bench = {"bench": "jobs", "case": case, "n_steps": int(n_steps),
             "submit_latency": submit_latency,
             "resume": {"reference_wall_s": round(ref_wall, 3),
                        "interrupted_wall_s": round(wall_interrupted, 3),
                        "overhead_ratio":
                            (round(wall_interrupted / ref_wall, 2)
                             if ref_wall > 0 else None)}}
    verdict = {"mode": "jobs", "case": case, "checks": checks,
               "events": events, "bench": bench,
               "jobs_ledger": ledger, "ok": all(checks.values())}
    if out is not None:
        with open(os.path.join(out, "chaos-jobs-ledger.json"), "w") as f:
            json.dump(verdict, f, indent=1, default=str)
        write_bench_json(os.path.join(out, "BENCH_jobs.json"), bench)
    if not verdict["ok"]:
        failed = [k for k, v in checks.items() if not v]
        print(f"chaos --jobs: FAILED ({', '.join(failed)})",
              file=stream)
        return 1
    print(f"chaos --jobs: green — killed supervisor mid-march, resumed "
          f"bitwise-identical ({ref_fp[:12]}…), exactly-once audit "
          f"clean, transitions legal, cancel acknowledged, gc left "
          f"nothing behind", file=stream)
    return 0
