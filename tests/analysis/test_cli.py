"""CLI behaviour: exit codes, JSON reports, baseline flow, self-check."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = textwrap.dedent("""
    import numpy as np

    def f(x):
        return np.log(x)
""")

CLEAN_SOURCE = textwrap.dedent("""
    import numpy as np

    def f(x):
        return np.log(np.maximum(x, 1e-300))
""")


@pytest.fixture()
def bad_file(tmp_path):
    # path must look like library code (guarded-math rules skip tests)
    d = tmp_path / "src" / "repro" / "demo"
    d.mkdir(parents=True)
    p = d / "seeded.py"
    p.write_text(BAD_SOURCE)
    return p


class TestLintCommand:
    def test_seeded_violation_fails_with_json_finding(self, bad_file,
                                                      capsys):
        rc = main(["lint", str(bad_file), "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "catlint"
        (finding,) = [f for f in doc["findings"] if f["rule"] == "CAT001"]
        assert finding["path"] == str(bad_file)
        assert finding["line"] == 5
        assert "np.log" in finding["source_line"]

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text(CLEAN_SOURCE)
        assert main(["lint", str(p)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_min_severity_filters(self, tmp_path, capsys):
        p = tmp_path / "src" / "repro" / "m.py"
        p.parent.mkdir(parents=True)
        p.write_text(BAD_SOURCE)  # CAT001 is a warning
        assert main(["lint", str(p), "--min-severity", "error"]) == 0

    def test_select_runs_only_named_rules(self, bad_file, capsys):
        assert main(["lint", str(bad_file), "--select", "CAT015"]) == 0
        assert main(["lint", str(bad_file), "--select", "CAT001"]) == 1


class TestBaselineFlow:
    def test_write_then_pass_then_regress(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(bad_file),
                     "--write-baseline", str(baseline)]) == 0
        # grandfathered finding no longer fails the build
        assert main(["lint", str(bad_file), "--baseline",
                     str(baseline)]) == 0
        # a fresh violation on top of the baseline does
        bad_file.write_text(BAD_SOURCE + "\n\ndef g(y):\n"
                            "    return np.sqrt(y)\n")
        capsys.readouterr()  # drain the text-mode output above
        rc = main(["lint", str(bad_file), "--baseline", str(baseline),
                   "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        new = [f for f in doc["findings"] if f["new"]]
        assert [f["rule"] for f in new] == ["CAT002"]

    def test_stale_entries_reported_not_fatal(self, bad_file, tmp_path,
                                              capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad_file), "--write-baseline", str(baseline)])
        bad_file.write_text(CLEAN_SOURCE)
        assert main(["lint", str(bad_file), "--baseline",
                     str(baseline)]) == 0
        assert "stale" in capsys.readouterr().out


class TestUnitsCommand:
    def test_violation_fails(self, tmp_path, capsys):
        p = tmp_path / "u.py"
        p.write_text(textwrap.dedent('''
            def f(h, e0):
                """Mix-up.

                Parameters
                ----------
                h:
                    Enthalpy [J/kg].
                e0:
                    Formation energy [J/mol].
                """
                return h + e0
        '''))
        rc = main(["units", str(p), "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "UNIT001"

    def test_clean_exits_zero(self, tmp_path):
        p = tmp_path / "u.py"
        p.write_text(CLEAN_SOURCE)
        assert main(["units", str(p)]) == 0


class TestSelfCheck:
    """The repo's own tree is the permanent integration fixture."""

    def test_src_tree_is_catlint_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src/repro", "--baseline"]) == 0

    def test_tests_tree_is_catlint_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "tests", "--baseline"]) == 0

    def test_src_tree_units_clean(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["units", "src/repro"]) == 0


class TestEntryPoint:
    def test_python_dash_m_invocation(self, bad_file):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "lint",
             str(bad_file), "--format", "json"],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["counts"]["total"] >= 1

    def test_list_rules_catalogs_ten_plus(self, capsys):
        assert main(["list-rules"]) == 0
        out = capsys.readouterr().out
        rule_lines = [ln for ln in out.splitlines()
                      if ln.startswith(("CAT", "UNIT"))]
        assert len(rule_lines) >= 10

    def test_no_command_is_usage_error(self, capsys):
        assert main([]) == 2
