"""Tests for the exact Riemann solver."""

import numpy as np
import pytest

from repro.errors import InputError
from repro.numerics.riemann import exact_riemann, sample_riemann, sod_exact


class TestStarState:
    def test_sod_star_values(self):
        # Toro's book: p* = 0.30313, u* = 0.92745 for the Sod problem
        sol = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
        assert sol["p_star"] == pytest.approx(0.30313, rel=1e-4)
        assert sol["u_star"] == pytest.approx(0.92745, rel=1e-4)

    def test_toro_test2_123_problem(self):
        # two receding rarefactions: p* = 0.00189, u* = 0
        sol = exact_riemann(1.0, -2.0, 0.4, 1.0, 2.0, 0.4)
        assert sol["u_star"] == pytest.approx(0.0, abs=1e-10)
        assert sol["p_star"] == pytest.approx(0.00189, rel=5e-3)

    def test_toro_test3_strong_shock(self):
        # left blast: p* = 460.894, u* = 19.5975
        sol = exact_riemann(1.0, 0.0, 1000.0, 1.0, 0.0, 0.01)
        assert sol["p_star"] == pytest.approx(460.894, rel=1e-4)
        assert sol["u_star"] == pytest.approx(19.5975, rel=1e-4)

    def test_symmetric_collision(self):
        sol = exact_riemann(1.0, 100.0, 1e5, 1.0, -100.0, 1e5)
        assert sol["u_star"] == pytest.approx(0.0, abs=1e-8)
        assert sol["p_star"] > 1e5  # compression

    def test_uniform_state_trivial(self):
        sol = exact_riemann(1.0, 50.0, 1e5, 1.0, 50.0, 1e5)
        assert sol["p_star"] == pytest.approx(1e5, rel=1e-10)
        assert sol["u_star"] == pytest.approx(50.0, rel=1e-10)

    def test_vacuum_detection(self):
        with pytest.raises(InputError):
            exact_riemann(1.0, -3000.0, 100.0, 1.0, 3000.0, 100.0)


class TestSampling:
    def test_sod_profile_monotonic_density(self):
        x = np.linspace(0.0, 1.0, 500)
        rho, u, p = sod_exact(x, 0.2)
        # density decreases monotonically from left state to shocked state,
        # with the contact and shock jumps
        assert rho[0] == pytest.approx(1.0)
        assert rho[-1] == pytest.approx(0.125)
        assert u.max() == pytest.approx(0.92745, rel=1e-3)

    def test_sod_shock_position(self):
        # shock speed for Sod is ~1.7522; at t=0.2, x_s ~ 0.5 + 0.3504
        x = np.linspace(0.0, 1.0, 4001)
        rho, u, p = sod_exact(x, 0.2)
        # find the shock: last jump in p
        jump = np.nonzero(np.abs(np.diff(p)) > 0.05)[0]
        x_shock = x[jump[-1]]
        assert x_shock == pytest.approx(0.5 + 1.7522 * 0.2, abs=2e-3)

    def test_pressure_velocity_continuous_at_contact(self):
        sol = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
        xi = np.array([sol["u_star"] - 1e-9, sol["u_star"] + 1e-9])
        rho, u, p = sample_riemann(sol, xi)
        assert p[0] == pytest.approx(p[1], rel=1e-6)
        assert u[0] == pytest.approx(u[1], rel=1e-6)
        # density IS discontinuous across the contact
        assert abs(rho[0] - rho[1]) > 0.05

    def test_t_zero_invalid(self):
        with pytest.raises(InputError):
            sod_exact(np.linspace(0, 1, 10), 0.0)


class TestEntropyConditions:
    def test_shock_compression(self):
        # across the right shock of the Sod problem, density rises
        sol = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
        xi_pre = np.array([1.9])   # ahead of the shock (speed 1.7522)
        xi_post = np.array([1.6])  # behind
        rho_pre, _, p_pre = sample_riemann(sol, xi_pre)
        rho_post, _, p_post = sample_riemann(sol, xi_post)
        assert rho_post[0] > rho_pre[0]
        assert p_post[0] > p_pre[0]

    def test_rarefaction_smooth(self):
        sol = exact_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
        xi = np.linspace(-1.1, -0.1, 200)
        rho, u, p = sample_riemann(sol, xi)
        # no jumps inside the fan region
        assert np.abs(np.diff(rho)).max() < 0.02
