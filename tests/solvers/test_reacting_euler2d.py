"""Integration tests for the finite-rate (nonequilibrium) blunt-body
solver — the paper's "coupling nonequilibrium phenomena to flowfield
codes" challenge."""

import numpy as np
import pytest

from repro.errors import InputError
from repro.geometry import Sphere
from repro.grid import blunt_body_grid
from repro.solvers.reacting_euler2d import ReactingEulerSolver


def frozen_air5():
    y0 = np.zeros(5)
    y0[0], y0[1] = 0.767, 0.233
    return y0


@pytest.fixture(scope="module")
def noneq_solution():
    body = Sphere(0.3)
    grid = blunt_body_grid(body, n_s=19, n_normal=29, density_ratio=0.12,
                           margin=2.8)
    s = ReactingEulerSolver(grid, "air5")
    s.set_freestream(1e-3, 5000.0, 240.0, frozen_air5())
    s.run(n_steps=500, cfl=0.3)
    return s


class TestNonequilibriumShockLayer:
    def test_oxygen_dissociates_nitrogen_partially(self, noneq_solution):
        f = noneq_solution.fields()
        db = noneq_solution.db
        stag_y = f["y"][0, 0]
        assert stag_y[db.index["O2"]] < 0.05       # O2 consumed
        assert stag_y[db.index["O"]] > 0.15
        assert 0.01 < stag_y[db.index["N"]] < 0.5  # N2 only partially

    def test_temperature_between_frozen_and_equilibrium(self,
                                                        noneq_solution,
                                                        air5_gas):
        from repro.solvers.shock import (equilibrium_normal_shock,
                                         frozen_post_shock_state)
        f = noneq_solution.fields()
        T_stag = f["T"][0, 0]
        fr = frozen_post_shock_state(1e-3, 240.0, 5000.0)
        eq = equilibrium_normal_shock(air5_gas, 1e-3, 240.0, 5000.0)
        assert eq["T2"] * 0.9 < T_stag < fr["T2"]

    def test_species_mass_closure(self, noneq_solution):
        f = noneq_solution.fields()
        assert np.allclose(f["y"].sum(axis=-1), 1.0, atol=1e-9)

    def test_freestream_chemically_frozen(self, noneq_solution):
        f = noneq_solution.fields()
        # outer cells: unreacted freestream
        assert np.allclose(f["y"][:, -1, 0], 0.767, atol=1e-6)
        assert np.allclose(f["y"][:, -1, 1], 0.233, atol=1e-6)

    def test_standoff_physical(self, noneq_solution):
        d = noneq_solution.stagnation_standoff()
        # between the equilibrium (~0.04 Rn) and frozen (~0.11 Rn) limits
        # (with margin for the coarse grid)
        assert 0.01 < d / 0.3 < 0.20

    def test_chemistry_toggle(self):
        # chemistry=False must leave the composition frozen everywhere
        body = Sphere(0.3)
        grid = blunt_body_grid(body, n_s=13, n_normal=19,
                               density_ratio=0.15)
        s = ReactingEulerSolver(grid, "air5")
        s.set_freestream(1e-3, 4000.0, 240.0, frozen_air5())
        s.run(n_steps=60, cfl=0.3, chemistry=False)
        f = s.fields()
        assert np.allclose(f["y"][..., 0], 0.767, atol=1e-6)

    def test_input_validation(self):
        body = Sphere(0.3)
        grid = blunt_body_grid(body, n_s=9, n_normal=11)
        s = ReactingEulerSolver(grid, "air5")
        with pytest.raises(InputError):
            s.set_freestream(1e-3, 4000.0, 240.0, np.zeros(3))
        with pytest.raises(InputError):
            s.run(n_steps=1)
