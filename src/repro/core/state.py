"""Flight-condition and freestream state containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InputError

__all__ = ["FreeStream", "FlightCondition"]


@dataclass(frozen=True)
class FreeStream:
    """Uniform upstream state for a solver run.

    Velocity is the magnitude; solvers orient it along their own axes.
    """

    rho: float            #: density [kg/m^3]
    T: float              #: temperature [K]
    V: float              #: speed [m/s]
    p: float | None = None  #: pressure [Pa]; derived if omitted
    gamma: float = 1.4
    R: float = 287.0528

    def __post_init__(self):
        if self.rho <= 0 or self.T <= 0 or self.V < 0:
            raise InputError("freestream requires rho, T > 0 and V >= 0")
        if self.p is None:
            object.__setattr__(self, "p", self.rho * self.R * self.T)

    @property
    def a(self) -> float:
        """Frozen sound speed [m/s]."""
        # catlint: disable=CAT002 -- rho, T > 0 enforced in __post_init__
        return float(np.sqrt(self.gamma * self.R * self.T))

    @property
    def mach(self) -> float:
        return self.V / self.a

    @property
    def dynamic_pressure(self) -> float:
        return 0.5 * self.rho * self.V**2

    @property
    def e_internal(self) -> float:
        """Ideal-gas specific internal energy [J/kg]."""
        return self.p / ((self.gamma - 1.0) * self.rho)

    @property
    def total_enthalpy(self) -> float:
        """h0 = h + V^2/2 with the ideal-gas caloric relation [J/kg]."""
        return (self.gamma * self.e_internal + 0.5 * self.V**2)


@dataclass(frozen=True)
class FlightCondition:
    """A (velocity, altitude) point on a trajectory, with the atmosphere.

    This is the CAT-facing description: the solvers receive the derived
    :class:`FreeStream`.
    """

    V: float                     #: flight speed [m/s]
    h: float                     #: altitude [m]
    alpha_deg: float = 0.0       #: angle of attack [deg]
    atmosphere: object = None    #: Atmosphere model (Earth by default)

    def __post_init__(self):
        if self.atmosphere is None:
            from repro.atmosphere import EarthAtmosphere
            object.__setattr__(self, "atmosphere", EarthAtmosphere())

    def freestream(self, *, gamma: float = 1.4) -> FreeStream:
        atm = self.atmosphere
        return FreeStream(rho=float(atm.density(self.h)),
                          T=float(atm.temperature(self.h)),
                          V=self.V, gamma=gamma,
                          R=atm.gas_constant)

    @property
    def mach(self) -> float:
        return float(self.atmosphere.mach_number(self.V, self.h))
