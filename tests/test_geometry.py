"""Tests for axisymmetric body geometries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.geometry import (Biconic, Hemisphere, OrbiterWindwardProfile,
                            Sphere, SphereCone)
from repro.geometry.orbiter import (ORBITER_LENGTH, orbiter_cross_sections,
                                    orbiter_planform)


class TestSphere:
    def test_stagnation_point(self):
        s = Sphere(0.5)
        x, r = s.point(0.0)
        # catlint: disable=CAT010 -- sphere point(0) is the exact nose point by construction
        assert float(x) == 0.0 and float(r) == 0.0
        assert float(s.angle(0.0)) == pytest.approx(np.pi / 2)

    def test_equator(self):
        s = Sphere(1.0)
        x, r = s.point(np.pi / 2)  # quarter arc
        assert float(x) == pytest.approx(1.0)
        assert float(r) == pytest.approx(1.0)
        assert float(s.angle(np.pi / 2)) == pytest.approx(0.0, abs=1e-12)

    def test_constant_curvature(self):
        s = Sphere(2.0)
        ss = s.arc_grid(10)
        assert np.allclose(s.curvature(ss), 0.5)

    def test_invalid(self):
        with pytest.raises(InputError):
            Sphere(-1.0)

    @given(phi=st.floats(min_value=0.0, max_value=np.pi / 2))
    @settings(max_examples=30, deadline=None)
    def test_on_circle(self, phi):
        rn = 1.7
        s = Sphere(rn)
        x, r = s.point(rn * phi)
        assert (x - rn) ** 2 + r**2 == pytest.approx(rn**2, rel=1e-12)


class TestArcLengthConsistency:
    """|d(point)/ds| == 1 for an arc-length parameterisation."""

    @pytest.mark.parametrize("body", [
        Sphere(0.7),
        SphereCone(0.5, 45.0, 3.0),
        Biconic(0.3, 25.0, 2.0, 10.0, 3.0),
        OrbiterWindwardProfile(40.0),
    ])
    def test_unit_speed(self, body):
        s = np.linspace(1e-4, body.s_max * 0.999, 400)
        x, r = body.point(s)
        ds = np.gradient(s)
        speed = np.sqrt(np.gradient(x) ** 2 + np.gradient(r) ** 2) / ds
        # interior points (away from slope discontinuities) are unit speed
        assert np.median(np.abs(speed - 1.0)) < 1e-3

    @pytest.mark.parametrize("body", [
        Sphere(0.7),
        SphereCone(0.5, 45.0, 3.0),
        OrbiterWindwardProfile(40.0),
    ])
    def test_tangent_matches_angle(self, body):
        # dense sampling: the nose region is a small fraction of long
        # bodies and needs resolution for the finite-difference tangent
        s = np.linspace(1e-3, body.s_max * 0.99, 4000)
        x, r = body.point(s)
        theta = body.angle(s)
        dx = np.gradient(x, s)
        dr = np.gradient(r, s)
        # the surface inclination satisfies tan(theta) = dr/dx away from
        # the stagnation point (theta -> pi/2)
        interior = np.abs(theta - np.pi / 2) > 0.15
        assert np.allclose(np.arctan2(dr[interior], dx[interior]),
                           theta[interior], atol=0.02)


class TestSphereCone:
    def test_tangency_continuity(self):
        sc = SphereCone(0.64, 60.0, 1.0)
        s_t = sc._s_t
        eps = 1e-9
        x1, r1 = sc.point(s_t - eps)
        x2, r2 = sc.point(s_t + eps)
        assert float(x1) == pytest.approx(float(x2), abs=1e-6)
        assert float(r1) == pytest.approx(float(r2), abs=1e-6)
        # angle continuous at tangency
        assert float(sc.angle(s_t - eps)) == pytest.approx(
            float(sc.angle(s_t + eps)), abs=1e-6)

    def test_cone_angle_on_flank(self):
        sc = SphereCone(0.64, 60.0, 1.0)
        assert float(sc.angle(sc.s_max * 0.99)) == pytest.approx(
            np.deg2rad(60.0))

    def test_length_respected(self):
        sc = SphereCone(0.2, 30.0, 2.0)
        x_end, _ = sc.point(sc.s_max)
        assert float(x_end) == pytest.approx(2.0, rel=1e-9)

    def test_invalid_geometry(self):
        with pytest.raises(InputError):
            SphereCone(0.5, 95.0, 2.0)
        with pytest.raises(InputError):
            SphereCone(1.0, 45.0, 0.1)  # shorter than the cap


class TestBiconic:
    def test_angle_sequence(self):
        b = Biconic(0.3, 25.0, 2.0, 10.0, 3.0)
        assert float(b.angle(1e-6)) == pytest.approx(np.pi / 2, rel=1e-3)
        assert float(b.angle(b._s1 * 0.9)) == pytest.approx(
            np.deg2rad(25.0))
        assert float(b.angle(b.s_max * 0.99)) == pytest.approx(
            np.deg2rad(10.0))

    def test_invalid_ordering(self):
        with pytest.raises(InputError):
            Biconic(0.3, 10.0, 2.0, 25.0, 3.0)

    def test_radius_monotone(self):
        b = Biconic(0.3, 25.0, 2.0, 10.0, 3.0)
        s = np.linspace(0, b.s_max, 200)
        assert np.all(np.diff(b.radius(s)) > -1e-12)


class TestOrbiterProfile:
    def test_x_over_L_range(self):
        o = OrbiterWindwardProfile(40.0)
        s = np.linspace(0, o.s_max, 100)
        xl = o.x_over_L(s)
        assert xl[0] == pytest.approx(0.0)
        assert xl[-1] == pytest.approx(1.0, rel=1e-9)

    def test_s_at_x_roundtrip(self):
        o = OrbiterWindwardProfile(30.0)
        s = np.linspace(1e-3, o.s_max, 50)
        x, _ = o.point(s)
        s2 = o.s_at_x(x)
        assert np.allclose(s2, s, rtol=1e-9, atol=1e-9)

    def test_alpha_bounds(self):
        with pytest.raises(InputError):
            OrbiterWindwardProfile(0.0)
        with pytest.raises(InputError):
            OrbiterWindwardProfile(90.0)

    def test_ramp_angle_equals_alpha(self):
        o = OrbiterWindwardProfile(35.0)
        assert float(o.angle(o.s_max * 0.9)) == pytest.approx(
            np.deg2rad(35.0))


class TestOrbiterOutline:
    def test_planform_dimensions(self):
        x, y = orbiter_planform()
        assert x.max() == pytest.approx(ORBITER_LENGTH, rel=1e-9)
        # half span ~ 11.9 m
        assert y.max() == pytest.approx(0.363 * ORBITER_LENGTH, rel=1e-9)
        assert np.all(y >= 0.0)

    def test_cross_sections(self):
        secs = orbiter_cross_sections()
        assert len(secs) == 5
        for xl, y, z in secs:
            assert 0 < xl < 1
            assert y.shape == z.shape
