"""Error norms and convergence-order estimation."""

from __future__ import annotations

import numpy as np

from repro.errors import InputError

__all__ = ["error_norms", "observed_order", "richardson_extrapolate"]


def error_norms(computed, exact, *, weights=None) -> dict:
    """L1/L2/Linf error norms (optionally volume-weighted).

    Returns dict with keys "l1", "l2", "linf".
    """
    c = np.asarray(computed, dtype=float).ravel()
    e = np.asarray(exact, dtype=float).ravel()
    if c.shape != e.shape:
        raise InputError("computed/exact shape mismatch")
    d = np.abs(c - e)
    if weights is None:
        w = np.full(c.size, 1.0 / c.size)
    else:
        w = np.asarray(weights, dtype=float).ravel()
        if np.any(w < 0):
            raise InputError("weights must be non-negative")
        w = w / w.sum()
    return {"l1": float(np.sum(w * d)),
            # catlint: disable=CAT002 -- w >= 0 validated above, d*d >= 0
            "l2": float(np.sqrt(np.sum(w * d * d))),
            "linf": float(d.max())}


def observed_order(h, err) -> float:
    """Observed convergence order from (h, error) pairs (least squares).

    Requires at least two grids; fits log(err) = p log(h) + c.
    """
    h = np.asarray(h, dtype=float)
    err = np.asarray(err, dtype=float)
    if h.size < 2 or h.size != err.size:
        raise InputError("need matching h/err arrays with >= 2 entries")
    if np.any(h <= 0) or np.any(err <= 0):
        raise InputError("h and err must be positive")
    # catlint: disable=CAT001 -- h, err validated positive above
    p = np.polyfit(np.log(h), np.log(err), 1)[0]
    return float(p)


def richardson_extrapolate(f_coarse, f_fine, ratio: float, order: float):
    """Richardson extrapolation toward the zero-grid-spacing limit.

    Parameters
    ----------
    f_coarse, f_fine:
        Solution functionals on two grids (fine spacing = coarse/ratio).
    ratio:
        Grid refinement ratio (> 1).
    order:
        Formal (or observed) order of the scheme.
    """
    if ratio <= 1.0:
        raise InputError("refinement ratio must exceed 1")
    if order <= 0.0:
        raise InputError("scheme order must be positive")
    r_p = ratio**order
    # catlint: disable=CAT003 -- r_p = ratio**order > 1 (both validated)
    return (r_p * np.asarray(f_fine, dtype=float)
            - np.asarray(f_coarse, dtype=float)) / (r_p - 1.0)
