"""Post-processing: contour extraction, ASCII plotting, table formatting.

"Rapid advancements in computer graphics technology will be indispensable"
— in an offline terminal environment, this subpackage is the graphics
stack: marching-squares contour extraction from structured fields (Fig. 9's
mole-fraction contours), ASCII line/contour rendering for the examples,
and fixed-width table formatting for the benchmark reports.
"""

from repro.postprocess.contours import contour_lines
from repro.postprocess.ascii_plot import ascii_contour, ascii_plot
from repro.postprocess.tables import format_table

__all__ = ["contour_lines", "ascii_plot", "ascii_contour", "format_table"]
