"""repro — a computational aerothermodynamics (CAT) toolkit.

Python reproduction of Deiwert & Green, "Computational
Aerothermodynamics" (NASA TM-89450, 1987): high-temperature real-gas
thermochemistry, radiation, and the four CAT solver families (NS, PNS,
E+BL, VSL) with entry-heating analysis on top.

Start at :mod:`repro.core` (the high-level API), the README quickstart,
or ``python -m repro``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
