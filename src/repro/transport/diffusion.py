"""Mass diffusion: constant-Lewis-number and binary Chapman–Enskog models.

The paper's VSL codes offer "binary or multicomponent diffusion"; the usual
engineering default in shock-layer work is a single effective diffusivity
set by a constant Lewis number::

    D = Le * k / (rho * cp)

with Le ~ 1.4 for dissociating air.  The binary Chapman–Enskog coefficient
is provided for the higher-fidelity path (and for computing Schmidt numbers
in the boundary-layer solver).
"""

from __future__ import annotations

import numpy as np

from repro.constants import K_BOLTZMANN, N_AVOGADRO, P_ATM
from repro.errors import SpeciesError
from repro.transport.viscosity import LENNARD_JONES

__all__ = ["lewis_diffusivity", "binary_diffusion_coefficient",
           "DEFAULT_LEWIS"]

#: Standard CAT value for dissociating air.
DEFAULT_LEWIS = 1.4


def lewis_diffusivity(k, rho, cp, lewis=DEFAULT_LEWIS):
    """Effective diffusion coefficient [m^2/s] from a constant Lewis number.

    Parameters
    ----------
    k:
        Mixture thermal conductivity [W/(m K)].
    rho:
        Density [kg/m^3].
    cp:
        Frozen specific heat [J/(kg K)].
    lewis:
        Lewis number Le = rho D cp / k.
    """
    return (lewis * np.asarray(k, dtype=float)
            / (np.asarray(rho, dtype=float) * np.asarray(cp, dtype=float)))


def _omega11(t_star):
    """Neufeld correlation for the (1,1) reduced collision integral."""
    t = np.maximum(np.asarray(t_star, dtype=float), 1e-3)
    return (1.06036 * t**-0.15610 + 0.19300 * np.exp(-0.47635 * t)
            + 1.03587 * np.exp(-1.52996 * t)
            + 1.76474 * np.exp(-3.89411 * t))


def binary_diffusion_coefficient(name_a: str, name_b: str, T, p,
                                 molar_mass_a: float, molar_mass_b: float):
    """First-order Chapman–Enskog binary diffusion coefficient [m^2/s].

    Combining rules: sigma_ab = (sigma_a + sigma_b)/2,
    eps_ab = sqrt(eps_a eps_b).
    """
    try:
        sa, ea = LENNARD_JONES[name_a]
        sb, eb = LENNARD_JONES[name_b]
    except KeyError as exc:
        raise SpeciesError(f"no Lennard-Jones data for pair "
                           f"({name_a}, {name_b})") from exc
    T = np.asarray(T, dtype=float)
    p_atm = np.asarray(p, dtype=float) / P_ATM
    sigma = 0.5 * (sa + sb)
    # catlint: disable=CAT002 -- tabulated LJ well depths are positive
    eps = np.sqrt(ea * eb)
    m_ab = 2.0 / (1.0 / (molar_mass_a * 1e3) + 1.0 / (molar_mass_b * 1e3))
    omega = _omega11(T / eps)
    # standard form: D in cm^2/s with p in atm, then convert to m^2/s
    # catlint: disable=CAT002 -- m_ab is a harmonic mean of positive
    # molar masses
    d_cgs = 0.00266 * T**1.5 / (np.maximum(p_atm, 1e-300) * np.sqrt(m_ab)
                                * sigma**2 * omega)
    return d_cgs * 1.0e-4
