"""Durable filesystem work queue: atomic claims, crash-safe journals,
retry/backoff requeue and a dead-letter ledger — safe for many hosts.

The queue is a directory; every mutation is an atomic filesystem
operation, so any number of worker processes **on any number of hosts
mounting the directory** can share it and a crash at any instant
leaves a state the survivors can read:

```
queue-dir/
  jobs/<id>.json      immutable job spec (atomic write at enqueue)
  state/<id>.json     mutable status record (atomic replace)
  leases/lease-<id>.json   ownership (O_EXCL create, see lease.py)
  results/<id>.json   result payload of a completed job
  dead/<id>.json      dead-letter record (error + FailureReport)
  dead/<id>-history.json   prior dead-letter records preserved across
                      ``retry_dead_letters`` requeues
  work/<id>/          per-job workdir: ckpt/ (durable snapshots) and
                      sandbox/ (isolation heartbeat + error notes)
  hosts/<host>.json   advisory per-host clock beacon (see lease.py)
  quarantine/         torn/corrupt records moved aside, never parsed
  journal-<host>.jsonl         this host's append-only ledger
  journal-<host>.NNNNNN.jsonl  rotated segments (size-triggered)
  journal-<host>.compact.jsonl one-record summary of absorbed segments
```

A job moves through a small state machine::

    pending --claim--> running --complete--> done
       ^                  |
       |                  +--fail (attempts < max) --> pending
       |                  |     (not_before = now + backoff + jitter)
       |                  +--fail (attempts == max) --> dead
       |                  +--preempt (drain; attempt not counted)
       +---reclaim (lease expired: owner died) ---------+
       +---retry-dead-letter (fresh attempt budget) --- dead

Claims are arbitrated by the lease file (exactly one ``O_CREAT|O_EXCL``
create wins, kernel-arbitrated even over NFS); completion, failure and
preemption are all fenced by the lease token so a worker that lost its
lease mid-job — died, stalled, or **partitioned and healed** — cannot
clobber its successor.  Multi-host safety rests on three rules:

* **one journal file per host.**  ``O_APPEND`` writes are atomic on a
  local filesystem but *not* across NFS clients; giving each host its
  own ``journal-<host>.jsonl`` keeps every append single-writer-host.
  :meth:`WorkQueue.read_journal` merges all hosts' files (and rotated
  segments) back into one ledger stream.
* **no cross-host wall-clock comparisons.**  Lease expiry is
  observation-based (see :mod:`repro.resilience.lease`); the queue's
  own timestamps (backoff ``not_before``, journal ``t``) tolerate
  bounded skew because backoff delays are seconds-scale and ledger
  folding only counts events.
* **transient I/O failure is retried, torn state is quarantined.**
  Reads and atomic writes retry with exponential backoff (stale NFS
  handles, transient EIO); a state record that parses as garbage is
  moved to ``quarantine/`` and **rebuilt from the journal** — the
  journal, not the state file, is the source of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field

from repro.errors import InputError, SolverError
from repro.resilience.lease import (Lease, LeaseManager, default_clock,
                                    default_host_id)

__all__ = ["BackoffPolicy", "Job", "WorkQueue"]


# ----------------------------------------------------------------------
# retry / backoff
# ----------------------------------------------------------------------

@dataclass
class BackoffPolicy:
    """Exponential backoff with deterministic, job-seeded jitter.

    Delay before attempt ``n+1`` (after ``n`` failed attempts) is
    ``min(max_delay, base * factor**(n-1)) * (1 + jitter * u)`` where
    ``u`` in [0, 1) is a pure function of (job id, attempt) — never of
    process or host state — so the same campaign replays with the same
    requeue times on any host, retry schedules computed independently
    by several hosts for one job agree exactly, and concurrent failures
    of *different* jobs never thundering-herd the same instant.
    """

    max_attempts: int = 3
    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise InputError("max_attempts must be >= 1")
        if self.base < 0.0 or self.max_delay < 0.0 or self.jitter < 0.0:
            raise InputError("backoff delays and jitter must be >= 0")
        if self.factor < 1.0:
            raise InputError("backoff factor must be >= 1")

    @staticmethod
    def jitter_u(job_id: str, attempt: int) -> float:
        """The jitter fraction in [0, 1): sha256(job:attempt), no
        process-global or host-local state anywhere in the seed."""
        h = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        return int.from_bytes(h[:8], "big") / 2.0 ** 64

    def delay(self, job_id: str, attempt: int) -> float:
        """Requeue delay after ``attempt`` (1-based) failed attempts."""
        if attempt < 1:
            return 0.0
        raw = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        return raw * (1.0 + self.jitter * self.jitter_u(job_id, attempt))


# ----------------------------------------------------------------------
# job spec
# ----------------------------------------------------------------------

@dataclass
class Job:
    """Immutable description of one unit of work.

    ``kind`` names a registered executor in
    :data:`repro.resilience.farm.JOB_KINDS`; ``payload`` is its
    JSON-able argument.  The three budget fields become the per-job
    :class:`~repro.resilience.isolation.IsolationPolicy` the worker
    sandboxes the job under (None = farm default).
    """

    id: str
    kind: str
    payload: dict = field(default_factory=dict)
    priority: int = 0
    max_attempts: int | None = None
    deadline: float | None = None
    memory_mb: float | None = None
    stall_timeout: float | None = None

    def __post_init__(self):
        if (not self.id or "/" in self.id or self.id != self.id.strip()
                or self.id.startswith(".")):
            raise InputError(f"invalid job id {self.id!r} (must be a "
                             f"clean filename fragment)")

    def to_dict(self) -> dict:
        return {"id": self.id, "kind": self.kind,
                "payload": dict(self.payload),
                "priority": int(self.priority),
                "max_attempts": self.max_attempts,
                "deadline": self.deadline, "memory_mb": self.memory_mb,
                "stall_timeout": self.stall_timeout}

    @classmethod
    def from_dict(cls, d: dict) -> "Job":
        return cls(id=d["id"], kind=d["kind"],
                   payload=dict(d.get("payload") or {}),
                   priority=int(d.get("priority", 0)),
                   max_attempts=d.get("max_attempts"),
                   deadline=d.get("deadline"),
                   memory_mb=d.get("memory_mb"),
                   stall_timeout=d.get("stall_timeout"))


#: terminal statuses — a campaign is over when every job reaches one
TERMINAL = frozenset(("done", "dead"))

#: rotated journal segments carry a six-digit index suffix
_SEGMENT_RE = re.compile(r"^(\d{6})$")


def _safe_host(host: str) -> str:
    """Host id as a journal-filename fragment (no separators; a purely
    numeric id gets a prefix so it can never parse as a segment
    index)."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", host) or "host"
    if _SEGMENT_RE.match(safe):
        safe = f"h{safe}"
    return safe


# ----------------------------------------------------------------------
# the queue
# ----------------------------------------------------------------------

class WorkQueue:
    """Shared, durable job queue rooted at ``dir``.

    Every process (enqueuer, N workers, the supervising farm, a reaper)
    — on this host or any other host mounting the directory — opens its
    own ``WorkQueue``; there is no in-memory authority to lose.

    Parameters beyond PR 6:

    host_id:
        This process's clock/journal domain (default: hostname; the
        ``serve --host-id`` flag overrides).
    max_skew:
        Cross-host lease slack [s] (see
        :class:`~repro.resilience.lease.LeaseManager`).
    clock:
        Injectable wall clock (skew tests / chaos).
    rotate_bytes:
        Journal size that triggers rotation of this host's live file
        into a numbered segment (0 disables rotation).
    io_retries:
        Transient-OSError retries around every queue read/write
        (exponential backoff from 50 ms), for stale-NFS-handle and
        EIO-class blips.  ``REPRO_QUEUE_IO_DELAY`` (seconds) injects a
        delay before every operation — the chaos harness's slow-NFS
        simulation.
    """

    def __init__(self, dir, *, lease_ttl: float = 15.0,
                 backoff: BackoffPolicy | None = None,
                 fsync: bool = True, host_id: str | None = None,
                 max_skew: float = 2.0, clock=None,
                 rotate_bytes: int = 4 << 20, io_retries: int = 3):
        self.dir = os.fspath(dir)
        self.backoff = backoff or BackoffPolicy()
        self.fsync = bool(fsync)
        self.host_id = host_id or default_host_id()
        self.clock = clock or default_clock()
        self.rotate_bytes = int(rotate_bytes)
        self.io_retries = max(0, int(io_retries))
        try:
            self.io_delay = float(
                os.environ.get("REPRO_QUEUE_IO_DELAY", "") or 0.0)
        except ValueError:
            self.io_delay = 0.0
        self.jobs_dir = os.path.join(self.dir, "jobs")
        self.state_dir = os.path.join(self.dir, "state")
        self.results_dir = os.path.join(self.dir, "results")
        self.dead_dir = os.path.join(self.dir, "dead")
        self.work_dir = os.path.join(self.dir, "work")
        self.hosts_dir = os.path.join(self.dir, "hosts")
        self.quarantine_dir = os.path.join(self.dir, "quarantine")
        for d in (self.jobs_dir, self.state_dir, self.results_dir,
                  self.dead_dir, self.work_dir, self.hosts_dir,
                  self.quarantine_dir):
            os.makedirs(d, exist_ok=True)
        self.leases = LeaseManager(os.path.join(self.dir, "leases"),
                                   ttl=lease_ttl, host_id=self.host_id,
                                   max_skew=max_skew, clock=self.clock)
        self._journal_base = f"journal-{_safe_host(self.host_id)}"
        self.journal_path = os.path.join(self.dir,
                                         f"{self._journal_base}.jsonl")

    # -- retried, atomic JSON plumbing ---------------------------------

    def _with_retries(self, op, what: str):
        """Run a filesystem operation, retrying transient OSErrors with
        exponential backoff (stale NFS handles heal on reopen)."""
        if self.io_delay > 0.0:
            time.sleep(self.io_delay)
        delay = 0.05
        for attempt in range(self.io_retries + 1):
            try:
                return op()
            except OSError:
                if attempt >= self.io_retries:
                    raise
                time.sleep(delay)
                delay *= 2.0

    def _write_json(self, path: str, obj: dict) -> None:
        def op():
            tmp = os.path.join(
                os.path.dirname(path),
                f".tmp-{os.getpid()}-{os.path.basename(path)}")
            with open(tmp, "w") as f:
                json.dump(obj, f, indent=1, default=str)
                f.flush()
                if self.fsync:
                    os.fsync(f.fileno())
            os.replace(tmp, path)

        self._with_retries(op, f"write {path}")

    def _read_json_checked(self, path: str) -> tuple[dict | None, bool]:
        """``(payload, torn)``: torn means the file exists but does not
        parse — corruption, not absence."""
        def op():
            try:
                with open(path) as f:
                    raw = f.read()
            except FileNotFoundError:
                return None, False
            try:
                return json.loads(raw), False
            except ValueError:
                return None, True

        try:
            return self._with_retries(op, f"read {path}")
        except OSError:
            return None, False

    def _read_json(self, path: str) -> dict | None:
        return self._read_json_checked(path)[0]

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a torn/corrupt record aside instead of crashing on (or
        worse, trusting) it; the original name and a timestamp survive
        in the quarantine filename."""
        dest = os.path.join(
            self.quarantine_dir,
            f"{os.path.basename(path)}.{int(self.clock() * 1e3)}"
            f".{os.getpid()}")
        try:
            os.replace(path, dest)
        except OSError:
            return
        self.journal("quarantine", path=os.path.basename(path),
                     reason=reason)

    # -- journal: per-host, rotated, mergeable -------------------------

    def journal(self, event: str, **fields) -> None:
        """Append one fsync'd line to this host's campaign journal.

        O_APPEND writes of one line are atomic on a local filesystem;
        cross-host atomicity is not needed because every host appends
        only to its own ``journal-<host>.jsonl``.
        """
        rec = {"t": self.clock(), "host": self.host_id, "event": event}
        rec.update(fields)
        line = json.dumps(rec, default=str) + "\n"

        def op():
            fd = os.open(self.journal_path,
                         os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode())
                if self.fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)

        self._with_retries(op, "journal append")
        self._maybe_rotate()

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.dir,
                            f"{self._journal_base}.{index:06d}.jsonl")

    def _compact_path(self) -> str:
        return os.path.join(self.dir,
                            f"{self._journal_base}.compact.jsonl")

    def _segment_indices(self) -> list[int]:
        out = []
        prefix = f"{self._journal_base}."
        try:
            names = os.listdir(self.dir)
        except OSError:
            return out
        for name in names:
            if not (name.startswith(prefix) and name.endswith(".jsonl")):
                continue
            stem = name[len(prefix):-len(".jsonl")]
            if _SEGMENT_RE.match(stem):
                out.append(int(stem))
        return sorted(out)

    def _maybe_rotate(self) -> None:
        """Size-triggered rotation of this host's live journal.

        The live file is *hard-linked* to the next segment name, then
        unlinked: a concurrent appender that still holds the old fd (or
        races the unlink) keeps writing into the segment's inode, so no
        record is ever lost, and ``os.link`` refusing to clobber an
        existing segment arbitrates concurrent rotators.

        Two rotators of one host's journal (``serve`` plus a CLI
        reaper) can probe the same segment number; the loser must not
        abandon the rotation — its oversized live file would just keep
        growing — so it probes upward to the next free number, bounded.
        A collision on a segment that already *is* the live file (the
        racer linked it an instant ago) means the rotation happened:
        finish their unlink step instead of double-linking the inode
        into two segments (which would duplicate every record).
        """
        if self.rotate_bytes <= 0:
            return
        try:
            if os.path.getsize(self.journal_path) < self.rotate_bytes:
                return
        except OSError:
            return
        indices = self._segment_indices()
        index = indices[-1] + 1 if indices else 1
        for _ in range(8):
            seg = self._segment_path(index)
            try:
                os.link(self.journal_path, seg)
                break
            except FileExistsError:
                try:
                    if os.path.samefile(self.journal_path, seg):
                        break   # racer already rotated this very inode
                except OSError:
                    return   # live file vanished mid-race: rotated
                index += 1
            except OSError:
                return   # FS without hard links: rotation disabled
        else:
            return   # probe window exhausted; retry on a later append
        try:
            os.unlink(self.journal_path)
        except OSError:
            pass

    def _journal_files(self) -> list[str]:
        """Every journal file in ledger order: per host — compact
        summary, numbered segments, live file; legacy single-file
        ``journal.jsonl`` first.  Segments named in a compact summary's
        ``absorbed`` list are skipped (their records live on in the
        summary)."""
        try:
            names = os.listdir(self.dir)
        except OSError:
            return []
        by_host: dict[str, dict] = {}
        legacy = None
        for name in names:
            if not (name.startswith("journal") and name.endswith(".jsonl")):
                continue
            stem = name[len("journal"):-len(".jsonl")]
            if stem == "":
                legacy = name
                continue
            if not stem.startswith("-"):
                continue
            body = stem[1:]
            rec = None
            if body.endswith(".compact"):
                rec = (body[:-len(".compact")], "compact", 0)
            else:
                head, dot, tail = body.rpartition(".")
                if dot and _SEGMENT_RE.match(tail):
                    rec = (head, "segment", int(tail))
                else:
                    rec = (body, "live", 0)
            host, kind, idx = rec
            slot = by_host.setdefault(host, {"compact": None,
                                             "segments": [], "live": None})
            if kind == "compact":
                slot["compact"] = name
            elif kind == "segment":
                slot["segments"].append((idx, name))
            else:
                slot["live"] = name
        absorbed: set[str] = set()
        for slot in by_host.values():
            if slot["compact"] is None:
                continue
            payload = self._read_json(os.path.join(self.dir,
                                                   slot["compact"]))
            if payload:
                absorbed.update(payload.get("absorbed") or [])
        out: list[str] = []
        if legacy:
            out.append(legacy)
        for host in sorted(by_host):
            slot = by_host[host]
            if slot["compact"]:
                out.append(slot["compact"])
            out.extend(name for _, name in sorted(slot["segments"])
                       if name not in absorbed)
            if slot["live"]:
                out.append(slot["live"])
        return out

    def read_journal(self) -> list[dict]:
        """Every journal record from every host and rotated segment,
        oldest first (torn tails skipped).

        With a single writing host, file order is authoritative; with
        several hosts the streams are merged by timestamp (stable, so
        each host's internal order is preserved — cross-host order is
        only as good as the clocks, which ledger folding never relies
        on).
        """
        files = self._journal_files()
        out: list[dict] = []
        hosts = set()
        for name in files:
            if self.io_delay > 0.0:
                time.sleep(self.io_delay)
            try:
                with open(os.path.join(self.dir, name)) as f:
                    for line in f:
                        try:
                            rec = json.loads(line)
                        except ValueError:
                            continue   # torn tail from a crash mid-append
                        if not isinstance(rec, dict):
                            continue   # a journal line is always a record
                        hosts.add(rec.get("host"))
                        out.append(rec)
            except OSError:
                continue
        if len(hosts) > 1:
            out.sort(key=lambda r: float(r.get("t", 0.0)))
        return out

    def compact_journal(self) -> int:
        """Fold this host's rotated segments (and any prior summary)
        into a single one-record summary file; returns the number of
        segment files absorbed.

        The summary preserves everything ledger reconstruction and
        ``bench_from_journal`` need — per-event counts, each job's last
        claim / complete / fail timestamps and terminal transitions —
        so a compacted queue still folds into the identical campaign
        ledger.  The live file is untouched (writers keep appending);
        call from a single actor per host (the farm at campaign end, or
        ``campaign --merge-ledgers``).
        """
        indices = self._segment_indices()
        if not indices:
            return 0
        seg_names = [os.path.basename(self._segment_path(i))
                     for i in indices]
        counts: dict[str, int] = {}
        claims: dict[str, float] = {}
        completes: dict[str, float] = {}
        complete_counts: dict[str, int] = {}
        t_min = None
        absorbed: list[str] = list(seg_names)
        prior = self._read_json(self._compact_path())
        if prior and prior.get("event") == "journal-compact":
            counts.update(prior.get("events") or {})
            claims.update(prior.get("claims") or {})
            completes.update(prior.get("completes") or {})
            complete_counts.update(prior.get("complete_counts") or {})
            absorbed.extend(prior.get("absorbed") or [])
            t_min = prior.get("t")
        for name in seg_names:
            try:
                with open(os.path.join(self.dir, name)) as f:
                    lines = f.readlines()
            except OSError:
                continue
            for line in lines:
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                ev = rec.get("event", "?")
                counts[ev] = counts.get(ev, 0) + 1
                t = float(rec.get("t", 0.0))
                t_min = t if t_min is None else min(float(t_min), t)
                if ev == "claim":
                    claims[rec.get("job")] = t
                elif ev == "complete":
                    completes[rec.get("job")] = t
                    complete_counts[rec.get("job")] = \
                        complete_counts.get(rec.get("job"), 0) + 1
        summary = {"t": t_min if t_min is not None else self.clock(),
                   "host": self.host_id, "event": "journal-compact",
                   "segments": len(seg_names), "events": counts,
                   "claims": claims, "completes": completes,
                   "complete_counts": complete_counts,
                   "absorbed": sorted(set(absorbed))}

        # one JSONL record, not a pretty-printed document:
        # read_journal parses journal files line by line
        def op():
            path = self._compact_path()
            tmp = os.path.join(
                os.path.dirname(path),
                f".tmp-{os.getpid()}-{os.path.basename(path)}")
            with open(tmp, "w") as f:
                json.dump(summary, f, default=str)
                f.write("\n")
                f.flush()
                if self.fsync:
                    os.fsync(f.fileno())
            os.replace(tmp, path)

        self._with_retries(op, f"write {self._compact_path()}")
        for name in seg_names:
            try:
                os.unlink(os.path.join(self.dir, name))
            except OSError:
                pass
        return len(seg_names)

    # -- enqueue --------------------------------------------------------

    def enqueue(self, job: Job) -> bool:
        """Add ``job``; idempotent (an existing id keeps its state and
        returns False — re-running a campaign never resets progress)."""
        spec_path = os.path.join(self.jobs_dir, f"{job.id}.json")
        if os.path.exists(spec_path):
            return False
        self._write_json(spec_path, job.to_dict())
        self._write_json(self._state_path(job.id),
                         {"id": job.id, "status": "pending",
                          "attempts": 0, "not_before": 0.0,
                          "owner": None, "last_error": None})
        self.journal("enqueue", job=job.id, kind=job.kind,
                     priority=job.priority)
        return True

    # -- introspection --------------------------------------------------

    def _state_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def job(self, job_id: str) -> Job:
        spec = self._read_json(os.path.join(self.jobs_dir,
                                            f"{job_id}.json"))
        if spec is None:
            raise SolverError(f"work queue: unknown job {job_id!r}")
        return Job.from_dict(spec)

    def _state_from_journal(self, job_id: str) -> dict | None:
        """Rebuild a job's state record by replaying its journal
        transitions — the recovery path for a torn state file.  Returns
        None when the journal has never heard of the job."""
        st = None
        for rec in self.read_journal():
            if rec.get("job") != job_id:
                continue
            ev = rec.get("event")
            if ev == "enqueue":
                st = {"id": job_id, "status": "pending", "attempts": 0,
                      "not_before": 0.0, "owner": None,
                      "last_error": None}
            elif st is None:
                continue
            elif ev == "claim":
                st.update(status="running", owner=rec.get("worker"),
                          attempts=int(rec.get("attempt")
                                       or st["attempts"] + 1))
            elif ev == "complete":
                st.update(status="done", owner=None)
            elif ev == "requeue":
                st.update(status="pending", owner=None, not_before=0.0,
                          last_error=rec.get("error"))
            elif ev in ("reclaim", "retry-dead-letter"):
                st.update(status="pending", owner=None, not_before=0.0)
                if ev == "retry-dead-letter":
                    st["attempts"] = 0
            elif ev == "preempt":
                st.update(status="pending", owner=None,
                          attempts=max(0, st["attempts"] - 1),
                          not_before=0.0)
            elif ev == "dead-letter":
                st.update(status="dead", owner=None,
                          last_error=rec.get("error"))
        return st

    def state(self, job_id: str) -> dict:
        path = self._state_path(job_id)
        st, torn = self._read_json_checked(path)
        if st is not None:
            return st
        if torn:
            # corrupt record (torn NFS write, bitrot): quarantine it
            # and rebuild the truth from the journal
            self._quarantine(path, "unparseable state record")
            rebuilt = self._state_from_journal(job_id)
            if rebuilt is not None:
                self._write_json(path, rebuilt)
                self.journal("state-rebuilt", job=job_id,
                             status=rebuilt.get("status"))
                return rebuilt
        return {"id": job_id, "status": "unknown", "attempts": 0}

    def job_ids(self) -> list[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except FileNotFoundError:
            return []
        return sorted(n[:-len(".json")] for n in names
                      if n.endswith(".json"))

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for job_id in self.job_ids():
            status = self.state(job_id).get("status", "unknown")
            out[status] = out.get(status, 0) + 1
        return out

    def all_terminal(self) -> bool:
        return all(self.state(j).get("status") in TERMINAL
                   for j in self.job_ids())

    def result(self, job_id: str) -> dict | None:
        return self._read_json(os.path.join(self.results_dir,
                                            f"{job_id}.json"))

    def dead_letter(self, job_id: str) -> dict | None:
        return self._read_json(os.path.join(self.dead_dir,
                                            f"{job_id}.json"))

    def dead_letter_history(self, job_id: str) -> list[dict]:
        """Dead-letter records preserved from *prior* attempt budgets
        (``retry_dead_letters`` moves the active record here)."""
        payload = self._read_json(os.path.join(
            self.dead_dir, f"{job_id}-history.json"))
        return list(payload.get("records") or []) if payload else []

    def job_workdir(self, job_id: str) -> str:
        d = os.path.join(self.work_dir, job_id)
        os.makedirs(d, exist_ok=True)
        return d

    # -- claim ----------------------------------------------------------

    def ready(self, now: float | None = None) -> list[str]:
        """Pending, unleased, past-backoff job ids in (priority, id)
        order."""
        if now is None:
            now = self.clock()
        out = []
        for job_id in self.job_ids():
            st = self.state(job_id)
            if st.get("status") != "pending":
                continue
            if float(st.get("not_before") or 0.0) > now:
                continue
            if self.leases.holder(job_id) is not None:
                continue
            out.append(job_id)
        out.sort(key=lambda j: (self.job(j).priority, j))
        return out

    def claim(self, owner: str, now: float | None = None
              ) -> tuple[Job, Lease] | None:
        """Claim the first ready job for ``owner``; None when nothing is
        claimable right now.  Losing every race returns None too — the
        caller just polls again."""
        for job_id in self.ready(now):
            lease = self.leases.acquire(job_id, owner)
            if lease is None:
                continue
            st = self.state(job_id)
            job = self.job(job_id)
            limit = (self.backoff.max_attempts if job.max_attempts is
                     None else int(job.max_attempts))
            if int(st.get("attempts", 0)) >= limit:
                # poison job: every past attempt took its worker down
                # (reclaims charge the attempt but never reach fail()),
                # so it must dead-letter here or loop forever
                self._write_json(
                    os.path.join(self.dead_dir, f"{job_id}.json"),
                    {"id": job_id, "attempts": st["attempts"],
                     "worker": owner, "report": None, "t": self.clock(),
                     "error": (st.get("last_error")
                               or "attempt budget exhausted: every "
                                  "attempt lost its worker (lease "
                                  "reclaimed, no failure recorded)")})
                st.update(status="dead", owner=None)
                self._write_json(self._state_path(job_id), st)
                self.journal("dead-letter", job=job_id, worker=owner,
                             attempts=st["attempts"],
                             error="attempt budget exhausted on claim")
                self.leases.release(lease)
                continue
            st.update(status="running", owner=owner,
                      attempts=int(st.get("attempts", 0)) + 1)
            self._write_json(self._state_path(job_id), st)
            self.journal("claim", job=job_id, worker=owner,
                         attempt=st["attempts"])
            return job, lease
        return None

    # -- completion / failure / preemption ------------------------------

    def complete(self, job: Job, lease: Lease, result: dict | None
                 ) -> bool:
        """Commit a result.  Returns False (and journals ``fenced``)
        when the lease was lost — the successor owns the job now and
        this result is discarded.

        The token is checked **twice**: before staging the result and
        again before publishing it, so a holder that is reaped while
        writing (a partitioned worker healing mid-commit) is caught in
        the narrowest possible window.  The residual race — reaped
        between the second check and the rename — is bounded by one
        write and is exactly what the journal's exactly-once audit
        (:func:`repro.resilience.farm.audit_exactly_once`) detects.
        """
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="complete")
            return False
        path = os.path.join(self.results_dir, f"{job.id}.json")
        tmp = os.path.join(self.results_dir,
                           f".tmp-{os.getpid()}-{job.id}.json")

        def stage():
            with open(tmp, "w") as f:
                json.dump({"id": job.id, "result": result,
                           "worker": lease.owner, "host": lease.host,
                           "token": lease.token, "t": self.clock()},
                          f, indent=1, default=str)
                f.flush()
                if self.fsync:
                    os.fsync(f.fileno())

        self._with_retries(stage, f"stage result {job.id}")
        if not self.leases.verify(lease):
            try:
                os.remove(tmp)
            except OSError:
                pass
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="complete")
            return False
        self._with_retries(lambda: os.replace(tmp, path),
                           f"publish result {job.id}")
        st = self.state(job.id)
        st.update(status="done", owner=None)
        self._write_json(self._state_path(job.id), st)
        self.journal("complete", job=job.id, worker=lease.owner,
                     attempt=st.get("attempts"))
        self.leases.release(lease)
        return True

    def fail(self, job: Job, lease: Lease, error: str, *,
             report: dict | None = None) -> str:
        """Record a failed attempt: requeue with backoff, or dead-letter
        once attempts are exhausted.  Returns the resulting status."""
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="fail")
            return self.state(job.id).get("status", "unknown")
        st = self.state(job.id)
        attempts = int(st.get("attempts", 0))
        limit = (self.backoff.max_attempts if job.max_attempts is None
                 else int(job.max_attempts))
        if attempts >= limit:
            self._write_json(os.path.join(self.dead_dir,
                                          f"{job.id}.json"),
                             {"id": job.id, "error": error,
                              "attempts": attempts,
                              "worker": lease.owner,
                              "report": report, "t": self.clock()})
            st.update(status="dead", owner=None, last_error=error)
            self._write_json(self._state_path(job.id), st)
            self.journal("dead-letter", job=job.id, worker=lease.owner,
                         attempts=attempts, error=error)
            status = "dead"
        else:
            delay = self.backoff.delay(job.id, attempts)
            st.update(status="pending", owner=None, last_error=error,
                      not_before=self.clock() + delay)
            self._write_json(self._state_path(job.id), st)
            self.journal("requeue", job=job.id, worker=lease.owner,
                         attempt=attempts, backoff=round(delay, 3),
                         error=error)
            status = "pending"
        self.leases.release(lease)
        return status

    def preempt(self, job: Job, lease: Lease) -> None:
        """Return a job to the pool without charging an attempt (the
        graceful-drain path: the worker checkpointed and is exiting).
        Fenced like complete/fail — a preempt racing a reclaim must not
        clobber the successor's running state."""
        if not self.leases.verify(lease):
            self.journal("fenced", job=job.id, worker=lease.owner,
                         action="preempt")
            return
        st = self.state(job.id)
        st.update(status="pending", owner=None,
                  attempts=max(0, int(st.get("attempts", 1)) - 1),
                  not_before=0.0)
        self._write_json(self._state_path(job.id), st)
        self.journal("preempt", job=job.id, worker=lease.owner)
        self.leases.release(lease)

    # -- lease expiry ----------------------------------------------------

    def reclaim_expired(self, now: float | None = None) -> list[str]:
        """Reap expired leases and return their jobs to the pending
        pool (attempt already charged at claim).  The dead worker's
        durable snapshots remain under ``work/<id>/ckpt``, so the next
        attempt resumes the march instead of restarting it."""
        freed = self.leases.reap(now)
        for job_id in freed:
            st = self.state(job_id)
            if st.get("status") != "running":
                continue   # completed/failed just before expiry
            owner = st.get("owner")
            st.update(status="pending", owner=None, not_before=0.0)
            self._write_json(self._state_path(job_id), st)
            self.journal("reclaim", job=job_id, worker=owner)
        return freed

    # -- dead-letter requeue --------------------------------------------

    def retry_dead_letters(self, job_ids=None) -> list[str]:
        """Requeue dead-lettered jobs with a fresh attempt budget
        (``campaign --retry-dead-letters``).

        The exhausted dead-letter record — error, attempts, the
        attached FailureReport — is *preserved* by appending it to
        ``dead/<id>-history.json`` before the job returns to pending
        with ``attempts=0``.  Returns the requeued job ids.
        """
        requeued: list[str] = []
        for job_id in (self.job_ids() if job_ids is None
                       else list(job_ids)):
            st = self.state(job_id)
            if st.get("status") != "dead":
                continue
            rec = self.dead_letter(job_id)
            hist_path = os.path.join(self.dead_dir,
                                     f"{job_id}-history.json")
            if rec is not None:
                hist = self._read_json(hist_path) or {"id": job_id,
                                                      "records": []}
                hist["records"].append(rec)
                self._write_json(hist_path, hist)
                try:
                    os.remove(os.path.join(self.dead_dir,
                                           f"{job_id}.json"))
                except OSError:
                    pass
            st.update(status="pending", owner=None, attempts=0,
                      not_before=0.0)
            self._write_json(self._state_path(job_id), st)
            self.journal("retry-dead-letter", job=job_id,
                         prior_attempts=rec.get("attempts")
                         if rec else None)
            requeued.append(job_id)
        return requeued
