"""Tests for the domain-decomposition / shared-memory parallel substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.parallel import (SharedMemoryStencilPool, exchange_halos_inplace,
                            partition_1d, with_halo)
from repro.parallel.halo import strip_halo


class TestPartition:
    @given(n=st.integers(min_value=8, max_value=5000),
           p=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_covers_domain_exactly(self, n, p):
        blocks = partition_1d(n, p)
        assert blocks[0].lo == 0
        assert blocks[-1].hi == n
        for a, b in zip(blocks[:-1], blocks[1:]):
            assert a.hi == b.lo                      # contiguous
        sizes = [b.n_owned for b in blocks]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1          # balanced

    def test_invalid(self):
        with pytest.raises(InputError):
            partition_1d(4, 8)
        with pytest.raises(InputError):
            partition_1d(10, 0)

    def test_padding_clamped_at_edges(self):
        blocks = partition_1d(10, 2, halo=2)
        assert blocks[0].padded_lo == 0
        assert blocks[-1].padded_hi == 10
        assert blocks[0].padded_hi == blocks[0].hi + 2

    def test_owned_slice_alignment(self):
        blocks = partition_1d(12, 3, halo=1)
        g = np.arange(12.0)
        for blk in blocks:
            local = with_halo(g, blk)
            owned = strip_halo(local, blk)
            assert np.array_equal(owned, g[blk.lo:blk.hi])


class TestHaloExchange:
    def test_ghost_rows_match_neighbours(self):
        g = np.arange(20.0).reshape(20, 1) * np.ones((1, 3))
        blocks = partition_1d(20, 4, halo=1)
        locals_ = [with_halo(g, b) for b in blocks]
        # scramble ghosts, then exchange must restore them
        for loc, b in zip(locals_, blocks):
            if b.has_left:
                loc[0] = -99.0
            if b.has_right:
                loc[-1] = -99.0
        exchange_halos_inplace(locals_, blocks)
        for loc, b in zip(locals_, blocks):
            rebuilt = with_halo(g, b)
            assert np.array_equal(loc, rebuilt)

    def test_mismatched_lists(self):
        blocks = partition_1d(10, 2)
        with pytest.raises(InputError):
            exchange_halos_inplace([np.zeros(5)], blocks)


class TestPoolCorrectness:
    def test_heat_parallel_equals_serial(self, rng):
        U0 = rng.random((120, 60))
        pool = SharedMemoryStencilPool("heat5", n_workers=3)
        u_par, _ = pool.run(U0, 25, {"r": 0.2})
        u_ser, _ = pool.run_serial(U0, 25, {"r": 0.2})
        assert np.array_equal(u_par, u_ser)

    def test_heat_conserves_interior_physics(self, rng):
        # diffusion smooths: variance decreases
        U0 = rng.random((80, 40))
        pool = SharedMemoryStencilPool("heat5", n_workers=2)
        u, _ = pool.run(U0, 60, {"r": 0.2})
        assert u[1:-1, 1:-1].var() < U0[1:-1, 1:-1].var()

    def test_euler_kernel_matches_serial_and_physics(self):
        # Sod tube through the parallel kernel
        n = 200
        xc = (np.arange(n) + 0.5) / n
        U0 = np.zeros((n, 3))
        rho = np.where(xc < 0.5, 1.0, 0.125)
        p = np.where(xc < 0.5, 1.0, 0.1)
        U0[:, 0] = rho
        U0[:, 2] = p / 0.4
        dt_dx = 0.2  # dt/dx with dt ~ 0.001, dx = 0.005
        pool = SharedMemoryStencilPool("euler1d_hlle", n_workers=2)
        u_par, _ = pool.run(U0, 40, {"dt_dx": dt_dx})
        u_ser, _ = pool.run_serial(U0, 40, {"dt_dx": dt_dx})
        assert np.allclose(u_par, u_ser, atol=1e-14)
        # a shock moved right: density between the states appeared
        assert np.any((u_par[:, 0] > 0.2) & (u_par[:, 0] < 0.9))

    def test_worker_count_one(self, rng):
        U0 = rng.random((50, 20))
        pool = SharedMemoryStencilPool("heat5", n_workers=1)
        u_par, _ = pool.run(U0, 10, {"r": 0.2})
        u_ser, _ = pool.run_serial(U0, 10, {"r": 0.2})
        assert np.array_equal(u_par, u_ser)

    def test_unknown_kernel(self):
        with pytest.raises(InputError):
            SharedMemoryStencilPool("warp_drive")

    def test_invalid_workers(self):
        with pytest.raises(InputError):
            SharedMemoryStencilPool("heat5", n_workers=0)


class TestWorkerDeathDiagnosis:
    """A dead worker must surface as a diagnostic SolverError, not a
    hang, and shared memory must still be unlinked."""

    @pytest.fixture()
    def crash_kernel(self):
        from repro.parallel.kernels import KERNELS

        def _crash(local, out, p):         # dies on its first invocation
            import os
            os._exit(3)

        KERNELS["_test_crash"] = _crash
        yield "_test_crash"
        del KERNELS["_test_crash"]

    def test_dead_worker_raises_typed_error(self, crash_kernel, rng):
        from multiprocessing import shared_memory

        from repro.errors import SolverError
        before = self._segment_count()
        pool = SharedMemoryStencilPool(crash_kernel, n_workers=2,
                                       barrier_timeout=5.0)
        with pytest.raises(SolverError) as exc:
            pool.run(rng.random((40, 10)), 4, {})
        err = exc.value
        assert err.worker is not None
        assert err.step == 0
        assert err.exitcode == 3
        assert "worker" in str(err) and "step" in str(err)
        assert self._segment_count() == before  # shm unlinked in finally

    @staticmethod
    def _segment_count():
        import glob
        return len(glob.glob("/dev/shm/psm_*"))

    def test_invalid_barrier_timeout(self):
        with pytest.raises(InputError):
            SharedMemoryStencilPool("heat5", barrier_timeout=0.0)


class TestWorkerHangDiagnosis:
    """A worker stuck in its kernel (alive, not dead) must surface as a
    typed error naming the stalest worker by last-heartbeat age, and the
    pool must force-kill the straggler so repeated run() calls never
    accumulate zombies."""

    @pytest.fixture()
    def hang_kernel(self):
        from repro.parallel.kernels import KERNELS

        def _hang(local, out, p):           # wedges on first invocation
            import time
            time.sleep(600.0)

        KERNELS["_test_hang"] = _hang
        yield "_test_hang"
        del KERNELS["_test_hang"]

    def test_stuck_worker_named_by_heartbeat_age(self, hang_kernel, rng):
        import multiprocessing as mp

        from repro.errors import SolverError
        pool = SharedMemoryStencilPool(hang_kernel, n_workers=2,
                                       barrier_timeout=1.5)
        with pytest.raises(SolverError) as exc:
            pool.run(rng.random((40, 10)), 3, {})
        err = exc.value
        msg = str(err)
        assert "heartbeat" in msg and "stalest" in msg
        assert err.worker is not None
        # the finally block reaped the stragglers: no zombie workers
        # survive into the next run() call
        for p in mp.active_children():
            p.join(timeout=5.0)
        assert not any(p.is_alive() for p in mp.active_children())


class TestScalingHarness:
    def test_result_structure(self):
        from repro.parallel.scaling import run_strong_scaling
        res = run_strong_scaling(shape=(128, 64), n_steps=4,
                                 workers=(1, 2))
        assert len(res.times) == 2
        assert len(res.speedups) == 2
        assert all(t > 0 for t in res.times)
        rows = res.rows()
        assert rows[0][0] == 1 and len(rows[0]) == 4
