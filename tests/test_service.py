"""Batch evaluation service: envelopes, admission, deadlines, breakers,
idempotency keys and the farm-sharded path."""

import json
import threading

import numpy as np
import pytest

from repro.errors import InputError, OverloadError
from repro.service import (ADMISSION, AdmissionController, BatchPolicy,
                           BreakerBoard, BreakerPolicy, canonical_request,
                           evaluate_batch, evaluate_batch_farm,
                           request_key, validate_request)
from repro.service.batch import batch_jobs, shard_requests


def _good(i=0, **kw):
    req = {"method": "heat_point", "V": 7000.0 + i, "h": 50e3,
           "nose_radius": 1.0}
    req.update(kw)
    return req


class TestValidation:
    def test_non_dict_is_invalid_record(self):
        req, env = validate_request("garbage", index=3)
        assert req is None
        assert env.status == "failed"
        assert env.error["kind"] == "invalid"
        assert env.error["error_type"] == "InputError"
        assert env.index == 3

    def test_unknown_method_lists_options(self):
        _, env = validate_request({"method": "warp"}, index=0)
        assert "heat_point" in env.error["message"]

    def test_missing_and_out_of_range_fields_all_reported(self):
        _, env = validate_request({"method": "heat_point", "V": -5.0},
                                  index=0)
        msgs = " ".join(env.error["problems"])
        assert "'V'" in msgs and "nose_radius" in msgs and "'h'" in msgs

    def test_unknown_gas_is_invalid(self):
        _, env = validate_request(_good(gas="venus"), index=0)
        assert "venus" in env.error["message"]
        assert "titan" in env.error["message"]

    def test_fault_rejected_without_allow_faults(self):
        _, env = validate_request(_good(fault={"kind": "fail"}),
                                  index=0)
        assert env is not None and "fault" in env.error["message"]
        req, env = validate_request(_good(fault={"kind": "fail"}),
                                    index=0, allow_faults=True)
        assert env is None and req.fault == {"kind": "fail"}

    def test_nonfinite_and_unexpected_fields(self):
        _, env = validate_request(_good(V=float("nan"), bogus=1),
                                  index=0)
        msgs = " ".join(env.error["problems"])
        assert "finite" in msgs and "bogus" in msgs


class TestRequestKeys:
    def test_key_ignores_volatile_tags_and_order(self):
        a = {"method": "heat_point", "V": 7.0e3, "h": 5.0e4,
             "nose_radius": 1.0, "id": "client-1"}
        b = {"id": "client-2", "nose_radius": 1.0, "h": 5.0e4,
             "V": 7000.0, "method": "heat_point"}
        assert request_key(a) == request_key(b)

    def test_fault_changes_the_key(self):
        assert request_key(_good()) != request_key(
            _good(fault={"kind": "hang"}))

    def test_canonical_drops_tags(self):
        assert "id" not in canonical_request(_good(id="x"))

    def test_dedup_within_batch(self):
        res = evaluate_batch([_good(), _good(i=1), _good()])
        assert res.envelopes[2].deduped_of == 0
        assert res.envelopes[2].result == res.envelopes[0].result
        assert res.ledger["deduped"] == 1

    def test_no_dedup_when_disabled(self):
        res = evaluate_batch([_good(), _good()],
                             BatchPolicy(dedup=False))
        assert res.envelopes[1].deduped_of is None


class TestBreakerStateMachine:
    def _board(self, trip_after=3, cooldown=10.0):
        clock = [0.0]
        board = BreakerBoard(BreakerPolicy(trip_after=trip_after,
                                           cooldown=cooldown),
                             clock=lambda: clock[0])
        return board, clock

    def test_trips_after_k_consecutive_failures(self):
        board, _ = self._board(trip_after=3)
        cell = board.cell("stagnation", "vsl", "air")
        for _ in range(2):
            assert cell.allow()
            cell.record_failure()
        assert cell.state == "closed"
        assert cell.allow()
        cell.record_failure()
        assert cell.state == "open"
        assert not cell.allow()

    def test_success_resets_the_consecutive_count(self):
        board, _ = self._board(trip_after=3)
        cell = board.cell("m", "r", "c")
        cell.record_failure()
        cell.record_failure()
        cell.record_success()
        cell.record_failure()
        cell.record_failure()
        assert cell.state == "closed"

    def test_half_open_probe_recloses_on_success(self):
        board, clock = self._board(trip_after=1, cooldown=10.0)
        cell = board.cell("m", "r", "c")
        cell.allow()
        cell.record_failure()
        assert cell.state == "open"
        clock[0] = 5.0
        assert not cell.allow()          # cooldown not elapsed
        clock[0] = 10.0
        assert cell.allow()              # the half-open probe
        assert cell.state == "half_open"
        assert not cell.allow()          # only one probe at a time
        cell.record_success()
        assert cell.state == "closed"
        pairs = [(t["from"], t["to"]) for t in board.transitions]
        assert pairs == [("closed", "open"), ("open", "half_open"),
                         ("half_open", "closed")]

    def test_half_open_probe_reopens_on_failure(self):
        board, clock = self._board(trip_after=1, cooldown=10.0)
        cell = board.cell("m", "r", "c")
        cell.allow()
        cell.record_failure()
        clock[0] = 11.0
        assert cell.allow()
        cell.record_failure()
        assert cell.state == "open"
        clock[0] = 20.0
        assert not cell.allow()          # cooldown restarted at 11
        clock[0] = 21.0
        assert cell.allow()

    def test_breaker_routes_batch_down_the_ladder(self):
        # three failing requests trip the cell; the fourth routes to
        # the correlation rung without touching the failing rung
        pol = BatchPolicy(allow_faults=True,
                          breaker=BreakerPolicy(trip_after=3,
                                                cooldown=600.0))
        reqs = [{"method": "stagnation", "V": 7000.0 + i, "h": 71e3,
                 "nose_radius": 1.3,
                 "fault": {"kind": "fail", "rung": "vsl"}}
                for i in range(4)]
        res = evaluate_batch(reqs, pol)
        assert [e.status for e in res.envelopes] == ["degraded"] * 4
        assert res.envelopes[3].routed_by_breaker
        trans = res.ledger["breaker"]["transitions"]
        assert [(t["from"], t["to"]) for t in trans] == [
            ("closed", "open")]
        assert trans[0]["request_index"] == 2


class TestAdmissionControl:
    def test_shed_above_rejects_the_whole_batch(self):
        adm = AdmissionController()
        with pytest.raises(OverloadError) as exc:
            evaluate_batch([_good(i) for i in range(5)],
                           BatchPolicy(shed_above=3), admission=adm)
        assert exc.value.limit == 3
        assert adm.queued == 0          # nothing left admitted

    def test_queue_depth_backpressure(self):
        adm = AdmissionController()
        pol = BatchPolicy(max_queued=10)
        adm.admit(8, pol)
        with pytest.raises(OverloadError) as exc:
            evaluate_batch([_good(i) for i in range(5)], pol,
                           admission=adm)
        assert exc.value.queued == 8
        assert exc.value.retry_after is not None
        adm.release(8)

    def test_slot_timeout_is_an_overload_envelope_not_a_hang(self):
        adm = AdmissionController()
        pol = BatchPolicy(max_in_flight=1, admit_timeout=0.05)
        hold = threading.Event()
        release = threading.Event()

        def hog():
            with adm.slot(pol):
                hold.set()
                release.wait(5.0)

        t = threading.Thread(target=hog)
        t.start()
        assert hold.wait(5.0)
        res = evaluate_batch([_good()], pol, admission=adm)
        release.set()
        t.join()
        env = res.envelopes[0]
        assert env.status == "failed"
        assert env.error["kind"] == "overload"
        assert env.error["error_type"] == "OverloadError"

    def test_global_controller_is_clean_after_batches(self):
        before = ADMISSION.stats()["queued"]
        evaluate_batch([_good()])
        assert ADMISSION.stats()["queued"] == before


class TestDeadlines:
    def test_batch_deadline_marks_unserved_requests(self):
        pol = BatchPolicy(deadline=0.2, allow_faults=True)
        reqs = [_good(fault={"kind": "slow", "seconds": 0.3})]
        reqs += [_good(i) for i in range(1, 4)]
        res = evaluate_batch(reqs, pol)
        assert res.envelopes[0].status == "ok"   # ran before expiry
        late = [e for e in res.envelopes[1:]]
        assert all(e.status == "failed"
                   and e.error["kind"] == "deadline" for e in late)
        assert res.ledger["deadline_expired"] == 3

    def test_hung_request_is_killed_and_recorded(self):
        pol = BatchPolicy(allow_faults=True, request_deadline=0.6)
        res = evaluate_batch([_good(fault={"kind": "hang"}),
                              _good(i=1)], pol)
        hung, good = res.envelopes
        assert hung.status == "failed"
        assert hung.error["kind"] == "hang"
        assert hung.report is not None
        assert good.status == "ok"

    def test_per_request_deadline_field_wins_when_tighter(self):
        pol = BatchPolicy(allow_faults=True, request_deadline=30.0)
        res = evaluate_batch(
            [_good(fault={"kind": "hang"}, deadline=0.5)], pol)
        assert res.envelopes[0].error["kind"] == "hang"
        assert res.envelopes[0].latency_s < 5.0


class TestChaosStyleBatch:
    def test_200_requests_20_faulted_exactly_180_ok_bitwise(self):
        rng = np.random.default_rng(42)
        good = []
        for i in range(180):
            pick = i % 3
            if pick == 0:
                good.append({"method": "heat_point",
                             "V": 3000.0 + 9000.0 * rng.random(),
                             "h": 30e3 + 50e3 * rng.random(),
                             "nose_radius": 0.5 + 3.0 * rng.random()})
            elif pick == 1:
                good.append({"method": "stagnation_correlation",
                             "V": 4000.0 + 8000.0 * rng.random(),
                             "h": 30e3 + 50e3 * rng.random(),
                             "nose_radius": 0.5 + 3.0 * rng.random()})
            else:
                good.append({"method": "equilibrium_composition",
                             "T": 1500.0 + 6000.0 * rng.random(),
                             "p": 10.0 ** (3 + 2 * rng.random())})
        # 20 fault-injected requests on the titan condition class: a
        # breaker cell the good (earth-class) requests never share
        faulted = [{"method": "heat_point", "V": 5000.0 + 7.0 * i,
                    "h": 55e3, "nose_radius": 1.0, "gas": "titan",
                    "fault": {"kind": ("fail", "nan")[i % 2]}}
                   for i in range(20)]
        positions = sorted(rng.choice(200, size=20,
                                      replace=False).tolist())
        batch, gi, fi = [], 0, 0
        for i in range(200):
            if i in set(positions):
                batch.append(faulted[fi]); fi += 1
            else:
                batch.append(good[gi]); gi += 1

        res = evaluate_batch(batch, BatchPolicy(allow_faults=True))
        ref = evaluate_batch(good)

        assert len(res.envelopes) == 200
        ok = [e for e in res.envelopes if e.status == "ok"]
        assert len(ok) == 180
        good_pos = [i for i in range(200) if i not in set(positions)]
        for j, i in enumerate(good_pos):
            assert res.envelopes[i].status == "ok"
            assert res.envelopes[i].result == ref.envelopes[j].result
        for i in positions:
            env = res.envelopes[i]
            assert env.status == "failed"
            assert env.error is not None

    def test_campaign_entry_point_passes(self, tmp_path):
        from repro.service.chaos import run_chaos_batch
        code = run_chaos_batch(requests=24, faulted=5, seed=3,
                               out=str(tmp_path), deadline=120.0,
                               stream=open(tmp_path / "log.txt", "w"))
        report = json.loads(
            (tmp_path / "chaos-batch.json").read_text())
        assert code == 0, report["checks"]
        assert report["ok"]
        assert report["checks"]["good_results_bitwise_identical"]
        assert report["checks"]["breaker_transitions_deterministic"]


class TestFarmBatch:
    def test_farm_shards_match_serial_bitwise(self, tmp_path):
        reqs = [_good(i) for i in range(11)]
        reqs[4] = {"method": "heat_point", "V": -1.0, "h": 50e3,
                   "nose_radius": 1.0}    # invalid rides along
        serial = evaluate_batch(reqs)
        farm = evaluate_batch_farm(reqs, queue_dir=str(tmp_path / "q"),
                                   n_workers=2, chunk_size=4)
        assert farm.ledger["ok"]
        assert farm.ledger["audit"]["ok"]
        assert len(farm.envelopes) == len(reqs)
        for s, f in zip(serial.envelopes, farm.envelopes):
            assert s.status == f.status
            assert s.result == f.result
            assert f.index == s.index

    def test_chunk_job_ids_are_content_addressed(self):
        reqs = [_good(i) for i in range(10)]
        a = batch_jobs(reqs, BatchPolicy(), chunk_size=4)
        b = batch_jobs(list(reqs), BatchPolicy(), chunk_size=4)
        assert [j.id for j in a] == [j.id for j in b]
        assert len(a) == 3
        assert [j.payload["offset"] for j in a] == [0, 4, 8]

    def test_dead_lettered_chunk_still_yields_envelopes(self, tmp_path):
        from repro.resilience.farm import FarmPolicy
        from repro.resilience.queue import BackoffPolicy, Job, WorkQueue
        # poison the first chunk's (content-addressed) job id with an
        # always-failing job: enqueue is idempotent, so the campaign
        # inherits the poisoned job, it dead-letters after one attempt,
        # and the merge must synthesize one failed envelope per request
        pol = BatchPolicy(chunk_size=3)
        reqs = [_good(i) for i in range(5)]
        jobs = batch_jobs(reqs, pol, chunk_size=3)
        queue = WorkQueue(str(tmp_path / "q"))
        queue.enqueue(Job(id=jobs[0].id, kind="flaky",
                          payload={"fail_first": 99}, max_attempts=1))
        farm = evaluate_batch_farm(
            reqs, pol, queue_dir=str(tmp_path / "q"), n_workers=1,
            chunk_size=3,
            farm_policy=FarmPolicy(
                n_workers=1,
                backoff=BackoffPolicy(max_attempts=1)))
        assert len(farm.envelopes) == 5
        assert all(e is not None for e in farm.envelopes)
        assert [e.error["kind"] for e in farm.envelopes[:3]] \
            == ["farm"] * 3
        assert [e.status for e in farm.envelopes[3:]] == ["ok", "ok"]
        assert farm.ledger["failed_kinds"]["farm"] == 3

    def test_shard_requests_covers_everything_once(self):
        shards = shard_requests(list(range(10)), 4)
        assert [s[0] for s in shards] == [0, 4, 8]
        assert sum((s[1] for s in shards), []) == list(range(10))


class TestEnvelopeInvariants:
    def test_no_exception_escapes_and_nan_results_fail(self):
        pol = BatchPolicy(allow_faults=True)
        reqs = [_good(),
                _good(i=1, fault={"kind": "nan"}),
                {"method": "equilibrium_composition", "T": 4000.0,
                 "p": 1.0e4, "gas": "jupiter"},
                "garbage",
                {"method": "windward", "V": 5000.0, "h": 60e3,
                 "alpha_deg": 1e9}]
        res = evaluate_batch(reqs, pol)
        assert [e.index for e in res.envelopes] == list(range(5))
        assert res.envelopes[1].status == "failed"
        assert "non-finite" in res.envelopes[1].error["message"]
        assert res.ledger["ok"]

    def test_columns_align_with_requests(self):
        res = evaluate_batch([_good(), "junk", _good(i=2)])
        cols = res.columns(["q_conv"])
        assert cols["q_conv"].shape == (3,)
        assert np.isnan(cols["q_conv"][1])
        assert cols["ok"].tolist() == [True, False, True]

    def test_roundtrips_through_json(self):
        from repro.service import Envelope
        res = evaluate_batch([_good(), "junk"])
        for env in res.envelopes:
            blob = json.dumps(env.to_dict(), default=str)
            back = Envelope.from_dict(json.loads(blob))
            assert back.status == env.status
            assert back.result == env.result


class TestBatchCLI:
    def _write(self, tmp_path, rows):
        p = tmp_path / "reqs.jsonl"
        p.write_text("\n".join(json.dumps(r) if isinstance(r, dict)
                               else r for r in rows) + "\n")
        return str(p)

    def test_good_batch_exits_zero(self, tmp_path, capsys):
        from repro.__main__ import main
        path = self._write(tmp_path, [_good(i) for i in range(3)])
        out = tmp_path / "out.jsonl"
        assert main(["batch", path, "--out", str(out)]) == 0
        lines = [json.loads(x) for x in
                 out.read_text().splitlines()]
        assert [e["status"] for e in lines] == ["ok"] * 3

    def test_failures_exit_one(self, tmp_path):
        from repro.__main__ import main
        path = self._write(tmp_path, [_good(), "not-json"])
        assert main(["batch", path, "--out",
                     str(tmp_path / "o.jsonl")]) == 1

    def test_usage_errors_exit_two(self, tmp_path):
        from repro.__main__ import main
        path = self._write(tmp_path, [_good()])
        assert main(["batch", "--bogus"]) == 2
        assert main(["batch", path, "-j", "4"]) == 2
        # -j at its default value must still require --farm
        assert main(["batch", path, "-j", "2"]) == 2
        assert main(["batch", path, "--isolate", "sometimes"]) == 2
        assert main(["batch", str(tmp_path / "missing.jsonl")]) == 2
        assert main(["chaos", "--requests", "10"]) == 2
        assert main(["chaos", "--batch", "--requests", "5",
                     "--faulted", "5"]) == 2

    def test_bench_and_ledger_written(self, tmp_path):
        from repro.__main__ import main
        path = self._write(tmp_path, [_good(i) for i in range(4)])
        led, bench = tmp_path / "led.json", tmp_path / "bench.json"
        code = main(["batch", path, "--out",
                     str(tmp_path / "o.jsonl"), "--ledger", str(led),
                     "--bench", str(bench)])
        assert code == 0
        ledger = json.loads(led.read_text())
        record = json.loads(bench.read_text())
        assert ledger["counts"] == {"ok": 4}
        assert record["requests_per_s"] > 0
        assert set(record["latency_s"]) >= {"p50", "p99"}


# ----------------------------------------------------------------------
# breaker ledger merge determinism (satellite)
# ----------------------------------------------------------------------


class TestBreakerMergeDeterminism:
    """Chunk boards number transitions per-process, so bare ``seq``
    values collide across chunks; the merged ledger keys by
    ``(cell, origin, seq)`` and must be a pure function of the chunk
    set, whatever order the farm finished the chunks in."""

    @staticmethod
    def _chunk(origin, cells):
        return {"breaker": {
            "states": {c: "open" for c in cells},
            "transitions": [{"seq": i, "origin": origin, "cell": c,
                             "frm": "closed", "to": "open",
                             "request": 10 * i}
                            for i, c in enumerate(cells)]}}

    def test_merge_is_chunk_order_invariant(self):
        import random
        from repro.service.batch import _merge_chunk_breakers
        chunks = [self._chunk("hostA:11", ["c2", "c0", "c1"]),
                  self._chunk("hostB:7", ["c1", "c0"]),
                  self._chunk("hostA:90", ["c2"]),
                  {"breaker": {}},   # chunk with no trips
                  None]              # dead-lettered chunk
        ref = _merge_chunk_breakers(chunks)
        assert len(ref["transitions"]) == 6
        assert list(ref["states"]) == sorted(ref["states"])
        for seed in range(8):
            shuffled = list(chunks)
            random.Random(seed).shuffle(shuffled)
            merged = _merge_chunk_breakers(shuffled)
            assert merged["transitions"] == ref["transitions"]
            assert list(merged["states"]) == list(ref["states"])

    def test_colliding_bare_seqs_stay_distinct(self):
        from repro.service.batch import _merge_chunk_breakers
        merged = _merge_chunk_breakers(
            [self._chunk("hostA:1", ["c0"]),
             self._chunk("hostB:2", ["c0"])])
        # both chunks tripped cell c0 with seq 0; the composite key
        # keeps both records instead of deduplicating one away
        keys = {(t["cell"], t["origin"], t["seq"])
                for t in merged["transitions"]}
        assert len(keys) == len(merged["transitions"]) == 2

    def test_live_boards_stamp_distinct_origins(self):
        from repro.service.breaker import BreakerBoard, BreakerPolicy
        a = BreakerBoard(BreakerPolicy(), origin="hostA:1")
        b = BreakerBoard(BreakerPolicy(), origin="hostB:2")
        for board in (a, b):
            cell = board.cell("stag", "euler", "laminar")
            for i in range(board.policy.trip_after):
                cell.record_failure(request_index=i)
        trips = (a.snapshot()["transitions"]
                 + b.snapshot()["transitions"])
        assert len(trips) == 2
        assert {t["origin"] for t in trips} == {"hostA:1", "hostB:2"}
