"""Solver resilience layer: supervised marching, rollback-retry,
failure diagnostics and deterministic fault injection.

Production aerothermodynamics runs must degrade gracefully, not die.
This package provides the machinery the solver stack wires through:

* :class:`RunSupervisor` / :class:`RetryPolicy` — checkpointed marching
  with automatic rollback and CFL backoff,
* :func:`supervised_call` — bounded parameter-adjustment retries for
  one-shot solves,
* :class:`FailureReport` — the diagnostic bundle every exhausted retry
  ladder emits,
* :class:`Checkpoint` — restorable solver snapshots,
* :class:`FaultInjector` — deterministic NaN / perturbation / Newton
  faults so every recovery path is exercised by tests.
"""

from repro.resilience.checkpoint import Checkpoint
from repro.resilience.faults import Fault, FaultInjector
from repro.resilience.report import FailureReport, solver_config
from repro.resilience.supervisor import (RetryPolicy, RunSupervisor,
                                         supervised_call)

__all__ = ["Checkpoint", "Fault", "FaultInjector", "FailureReport",
           "RetryPolicy", "RunSupervisor", "solver_config",
           "supervised_call"]
