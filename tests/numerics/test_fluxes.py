"""Tests for Euler fluxes, HLLE, and the FVS schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.gas import IdealGasEOS
from repro.numerics.fluxes import (euler_flux, hlle_flux, primitives,
                                   rotate_from_normal, rotate_to_normal)
from repro.numerics.upwind import (ausm_plus_flux, steger_warming_flux,
                                   van_leer_flux)

EOS = IdealGasEOS(1.4)


def make_state_1d(rho, u, p, gamma=1.4):
    e = p / ((gamma - 1.0) * rho)
    return np.array([rho, rho * u, rho * (e + 0.5 * u * u)])


def make_state_2d(rho, u, v, p, gamma=1.4):
    e = p / ((gamma - 1.0) * rho)
    return np.array([rho, rho * u, rho * v,
                     rho * (e + 0.5 * (u * u + v * v))])


STATES = st.tuples(
    st.floats(min_value=0.01, max_value=10.0),      # rho
    st.floats(min_value=-2000.0, max_value=2000.0),  # u
    st.floats(min_value=100.0, max_value=1e6),       # p
)


class TestPrimitives:
    def test_roundtrip_1d(self):
        U = make_state_1d(1.2, 340.0, 101325.0)
        w = primitives(U, EOS)
        assert float(w["rho"]) == pytest.approx(1.2)
        assert float(w["vel"][0]) == pytest.approx(340.0)
        assert float(w["p"]) == pytest.approx(101325.0, rel=1e-12)

    def test_roundtrip_2d(self):
        U = make_state_2d(0.5, 100.0, -50.0, 5000.0)
        w = primitives(U, EOS)
        assert float(w["vel"][1]) == pytest.approx(-50.0)
        assert float(w["p"]) == pytest.approx(5000.0, rel=1e-12)

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            primitives(np.zeros(5), EOS)


class TestConsistency:
    """F_num(U, U) == F(U) for every scheme."""

    @given(s=STATES)
    @settings(max_examples=40, deadline=None)
    def test_hlle(self, s):
        U = make_state_1d(*s)
        F_exact = euler_flux(U, s[2])
        F_num = hlle_flux(U, U, EOS)
        assert np.allclose(F_num, F_exact, rtol=1e-10, atol=1e-8)

    @given(s=STATES)
    @settings(max_examples=40, deadline=None)
    def test_steger_warming(self, s):
        U = make_state_1d(*s)
        F_exact = euler_flux(U, s[2])
        F_num = steger_warming_flux(U, U)
        scale = np.abs(F_exact).max() + 1.0
        assert np.allclose(F_num, F_exact, rtol=1e-9, atol=1e-9 * scale)

    @given(s=STATES)
    @settings(max_examples=40, deadline=None)
    def test_van_leer(self, s):
        U = make_state_1d(*s)
        F_exact = euler_flux(U, s[2])
        F_num = van_leer_flux(U, U)
        scale = np.abs(F_exact).max() + 1.0
        # van Leer is consistent but not exactly flux-preserving for the
        # energy component at the sonic blend; keep a modest bound
        assert np.allclose(F_num, F_exact, rtol=2e-2, atol=1e-6 * scale)

    @given(s=STATES)
    @settings(max_examples=40, deadline=None)
    def test_ausm(self, s):
        U = make_state_1d(*s)
        F_exact = euler_flux(U, s[2])
        F_num = ausm_plus_flux(U, U)
        scale = np.abs(F_exact).max() + 1.0
        assert np.allclose(F_num, F_exact, rtol=1e-9, atol=1e-9 * scale)

    def test_supersonic_upwinding(self):
        # fully supersonic flow: numerical flux equals the upwind flux
        UL = make_state_1d(1.0, 2000.0, 1e4)
        UR = make_state_1d(0.5, 2200.0, 2e4)
        for flux in (lambda a, b: hlle_flux(a, b, EOS),
                     steger_warming_flux, van_leer_flux, ausm_plus_flux):
            F = flux(UL, UR)
            assert np.allclose(F, euler_flux(UL, 1e4), rtol=1e-8)

    def test_two_dim_tangential_advection(self):
        UL = make_state_2d(1.0, 800.0, 120.0, 1e5)
        UR = make_state_2d(1.0, 800.0, 120.0, 1e5)
        F = hlle_flux(UL, UR, EOS)
        # tangential momentum flux = mdot * v
        assert float(F[2]) == pytest.approx(1.0 * 800.0 * 120.0, rel=1e-10)


class TestSplitProperties:
    @given(s=STATES)
    @settings(max_examples=30, deadline=None)
    def test_sw_mass_split_signs(self, s):
        from repro.numerics.upwind import _sw_split
        U = make_state_1d(*s)
        fp = _sw_split(U, 1.4, +1.0)
        fm = _sw_split(U, 1.4, -1.0)
        assert fp[0] >= -1e-10   # F+ carries non-negative mass flux
        assert fm[0] <= 1e-10

    @given(s=STATES)
    @settings(max_examples=30, deadline=None)
    def test_vl_mass_split_signs(self, s):
        from repro.numerics.upwind import _vl_split
        U = make_state_1d(*s)
        fp = _vl_split(U, 1.4, +1.0)
        fm = _vl_split(U, 1.4, -1.0)
        assert fp[0] >= -1e-10
        assert fm[0] <= 1e-10


class TestRotation:
    @given(th=st.floats(min_value=-np.pi, max_value=np.pi))
    @settings(max_examples=30, deadline=None)
    def test_rotate_roundtrip(self, th):
        U = make_state_2d(1.0, 300.0, -120.0, 1e5)
        nx, ny = np.cos(th), np.sin(th)
        U2 = rotate_from_normal(rotate_to_normal(U, nx, ny), nx, ny)
        assert np.allclose(U2, U, rtol=1e-12, atol=1e-9)

    def test_rotation_preserves_kinetic_energy(self):
        U = make_state_2d(2.0, 150.0, 250.0, 4e4)
        Ur = rotate_to_normal(U, 0.6, 0.8)
        ke1 = U[1] ** 2 + U[2] ** 2
        ke2 = Ur[1] ** 2 + Ur[2] ** 2
        assert ke1 == pytest.approx(ke2, rel=1e-12)

    def test_identity_normal(self):
        U = make_state_2d(1.0, 10.0, 20.0, 1e4)
        assert np.allclose(rotate_to_normal(U, 1.0, 0.0), U)


class TestHLLEProperties:
    def test_positivity_strong_expansion(self):
        # receding states: HLLE must not produce negative density update
        UL = make_state_1d(1.0, -2000.0, 1e3)
        UR = make_state_1d(1.0, 2000.0, 1e3)
        F = hlle_flux(UL, UR, EOS)
        assert np.all(np.isfinite(F))

    def test_entropy_satisfying_at_sonic(self):
        # transonic rarefaction: no expansion shock (flux between one-sided)
        UL = make_state_1d(1.0, 0.0, 1e5)
        UR = make_state_1d(0.125, 0.0, 1e4)
        F = hlle_flux(UL, UR, EOS)
        assert np.all(np.isfinite(F))
