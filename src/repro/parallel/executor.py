"""Fork-based shared-memory stencil pool with barrier synchronisation.

The execution model is bulk-synchronous (the era's multitasked vector
codes): each worker owns a contiguous block of rows; per step it

1. copies its halo-padded slice out of the shared source buffer,
2. waits at a barrier (everyone holds a consistent snapshot),
3. writes its owned rows of the destination buffer through the kernel,
4. waits again, then the buffers swap roles.

Two barriers per step make the double-buffered scheme race-free.

A worker that dies (crash in the kernel, OOM kill) aborts the shared
barrier, so the parent never hangs: barrier waits carry a timeout, and
on a broken/expired barrier the parent identifies the dead worker and
raises a diagnostic :class:`~repro.errors.SolverError` (which worker,
which step, what exit code).  Shared-memory segments are unlinked in a
``finally`` regardless of how the run ends.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory
from threading import BrokenBarrierError

import numpy as np

from repro.errors import InputError, SolverError
from repro.parallel.decomposition import partition_1d
from repro.parallel.kernels import KERNELS
from repro.resilience.lease import (format_ages, heartbeat_ages,
                                    stalest_index)

__all__ = ["SharedMemoryStencilPool"]


def _worker(shm_a_name, shm_b_name, shape, dtype_str, block, kernel_name,
            n_steps, params, barrier, heartbeats, rank):
    shm_a = shared_memory.SharedMemory(name=shm_a_name)
    shm_b = shared_memory.SharedMemory(name=shm_b_name)
    try:
        A = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm_a.buf)
        B = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm_b.buf)
        kernel = KERNELS[kernel_name]
        p = dict(params)
        p["own"] = block.owned_slice_in_padded()
        src, dst = A, B
        for _ in range(n_steps):
            # liveness beat: CLOCK_MONOTONIC is system-wide on Linux,
            # so the parent can age these against its own clock
            heartbeats[rank] = time.monotonic()
            local = np.array(src[block.padded_lo:block.padded_hi])
            barrier.wait()
            kernel(local, dst[block.lo:block.hi], p)
            heartbeats[rank] = time.monotonic()
            barrier.wait()
            src, dst = dst, src
    except BaseException:
        # wake everyone blocked on the barrier so the parent can
        # diagnose the death instead of hanging forever
        barrier.abort()
        raise
    finally:
        shm_a.close()
        shm_b.close()


class SharedMemoryStencilPool:
    """Run a registered kernel over a decomposed array with N workers.

    Parameters
    ----------
    kernel, n_workers, halo:
        Kernel registry name, worker count and halo width.
    barrier_timeout:
        Seconds any single barrier wait may block before the pool checks
        worker liveness and raises :class:`~repro.errors.SolverError`
        instead of hanging on a dead worker.
    """

    def __init__(self, kernel: str, *, n_workers: int = 2, halo: int = 1,
                 barrier_timeout: float = 60.0):
        if kernel not in KERNELS:
            raise InputError(f"unknown kernel {kernel!r}; registered: "
                             f"{sorted(KERNELS)}")
        if n_workers < 1:
            raise InputError("n_workers must be >= 1")
        if barrier_timeout <= 0:
            raise InputError("barrier_timeout must be positive")
        self.kernel = kernel
        self.n_workers = n_workers
        self.halo = halo
        self.barrier_timeout = barrier_timeout

    def _diagnose_dead_workers(self, procs, heartbeats, step: int):
        """Turn a broken/expired barrier into a typed diagnosis."""
        # give the OS a beat to reap a worker that died this instant
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            dead = [(i, p.exitcode) for i, p in enumerate(procs)
                    if not p.is_alive() and p.exitcode not in (0, None)]
            if dead:
                worker, code = dead[0]
                raise SolverError(
                    f"stencil pool: worker {worker}/{len(procs)} died "
                    f"with exit code {code} at step {step} "
                    f"(all dead: {[w for w, _ in dead]})",
                    worker=worker, step=step, exitcode=code)
            time.sleep(0.05)
        # nobody died: name the stalest worker by last-heartbeat age so
        # a kernel wedge points at the culprit, not just "deadlock" —
        # the same liveness-by-silence helpers the farm supervisor and
        # lease expiry use (repro.resilience.lease)
        ages = heartbeat_ages(list(heartbeats))
        stalest = stalest_index(ages)
        raise SolverError(
            f"stencil pool: barrier broken or timed out at step {step} "
            f"but every worker is still alive (deadlock or a worker "
            f"stuck in the kernel); last heartbeat ages: "
            f"{format_ages(ages)}; stalest: worker {stalest}",
            worker=stalest, step=step)

    def run(self, U0: np.ndarray, n_steps: int, params: dict | None = None):
        """Advance U0 by n_steps; returns (U_final, elapsed_seconds).

        The timing covers the stepping loop only (not process spawn), the
        convention strong-scaling studies use.  A worker death surfaces
        as a :class:`~repro.errors.SolverError` naming the worker, step
        and exit code; shared memory is always unlinked.
        """
        params = dict(params or {})
        U0 = np.ascontiguousarray(U0, dtype=np.float64)
        blocks = partition_1d(U0.shape[0], self.n_workers, halo=self.halo)
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(self.n_workers + 1)
        # one monotonic timestamp per worker, written every half-step;
        # lock-free is safe (single writer per slot, torn reads only
        # misreport an age, never corrupt state)
        heartbeats = ctx.Array("d", self.n_workers, lock=False)
        nbytes = U0.nbytes
        shm_a = shared_memory.SharedMemory(create=True, size=nbytes)
        procs: list = []
        try:
            shm_b = shared_memory.SharedMemory(create=True, size=nbytes)
        except BaseException:
            shm_a.close()
            shm_a.unlink()
            raise
        try:
            A = np.ndarray(U0.shape, dtype=np.float64, buffer=shm_a.buf)
            B = np.ndarray(U0.shape, dtype=np.float64, buffer=shm_b.buf)
            A[...] = U0
            B[...] = U0  # boundary rows persist through the swaps
            procs = [ctx.Process(
                target=_worker,
                args=(shm_a.name, shm_b.name, U0.shape, "float64", blk,
                      self.kernel, n_steps, params, barrier, heartbeats,
                      rank))
                for rank, blk in enumerate(blocks)]
            for p in procs:
                p.start()
            t0 = time.perf_counter()
            for step in range(n_steps):
                try:
                    barrier.wait(timeout=self.barrier_timeout)  # snapshot
                    barrier.wait(timeout=self.barrier_timeout)  # write
                except BrokenBarrierError:
                    self._diagnose_dead_workers(procs, heartbeats, step)
            elapsed = time.perf_counter() - t0
            for i, p in enumerate(procs):
                p.join(timeout=self.barrier_timeout)
                if p.is_alive():
                    # straggler past the final barrier: force-kill so
                    # repeated run() calls never accumulate zombies
                    p.kill()
                    p.join()
                    raise SolverError(
                        f"stencil pool: worker {i} still running "
                        f"{self.barrier_timeout:.0f} s after the final "
                        f"step (force-killed)", worker=i)
                if p.exitcode != 0:
                    raise SolverError(
                        f"stencil pool: worker {i} exited with code "
                        f"{p.exitcode} after the final step",
                        worker=i, exitcode=p.exitcode)
            out = np.array(B if n_steps % 2 == 1 else A)
            return out, elapsed
        finally:
            # reap workers first (terminate stragglers so unlink is not
            # racing live attachments), then unlink each segment in its
            # own try/finally — one failure must not leak the other
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5)
                if p.is_alive():
                    # SIGTERM ignored or wedged in uninterruptible IO:
                    # escalate so no zombie survives the pool
                    p.kill()
                    p.join()
            try:
                try:
                    shm_a.close()
                finally:
                    shm_a.unlink()
            finally:
                try:
                    shm_b.close()
                finally:
                    shm_b.unlink()

    def run_serial(self, U0: np.ndarray, n_steps: int,
                   params: dict | None = None):
        """Single-process reference (same kernel, no decomposition)."""
        params = dict(params or {})
        U = np.ascontiguousarray(U0, dtype=np.float64).copy()
        out = U.copy()
        kernel = KERNELS[self.kernel]
        p = dict(params)
        p["own"] = slice(0, U.shape[0])
        t0 = time.perf_counter()
        for _ in range(n_steps):
            kernel(U, out[0:U.shape[0]], p)
            U, out = out, U
        return U, time.perf_counter() - t0
