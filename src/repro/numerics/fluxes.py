"""Euler fluxes and the HLLE approximate Riemann flux.

Conserved-variable layout (trailing axis):

* 1-D: ``[rho, rho*u, rho*E]``
* 2-D: ``[rho, rho*u, rho*v, rho*E]``

All face fluxes here are *normal-direction* fluxes: 2-D callers rotate the
momentum into the face frame with :func:`rotate_to_normal`, call the 1-D-
like flux (the tangential momentum rides along as a passively advected
component), and rotate back.

HLLE is the workhorse for real-gas runs because it needs only sound speeds
from the EOS (no gamma algebra), is positively conservative, and captures
the strong bow shocks of the paper's flows without entropy fixes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["primitives", "euler_flux", "hlle_flux", "rotate_to_normal",
           "rotate_from_normal"]


def primitives(U, eos):
    """Unpack conserved variables.

    Returns dict with rho, velocity components, e (internal), p, a.
    Works for both 1-D (3-component) and 2-D (4-component) layouts.
    """
    U = np.asarray(U, dtype=float)
    m = U.shape[-1]
    rho = np.maximum(U[..., 0], 1e-300)
    if m == 3:
        u = U[..., 1] / rho
        ke = 0.5 * u * u
        vel = (u,)
    elif m == 4:
        u = U[..., 1] / rho
        v = U[..., 2] / rho
        ke = 0.5 * (u * u + v * v)
        vel = (u, v)
    else:
        raise ValueError(f"unsupported state vector length {m}")
    e = np.maximum(U[..., -1] / rho - ke, 1e-30)
    p = eos.pressure(rho, e)
    a = eos.sound_speed(rho, e)
    return {"rho": rho, "vel": vel, "e": e, "p": p, "a": a}


def euler_flux(U, p):
    """Physical Euler flux in the first (normal) velocity direction.

    ``p`` must be consistent with ``U`` through the EOS.
    """
    U = np.asarray(U, dtype=float)
    rho = np.maximum(U[..., 0], 1e-300)
    un = U[..., 1] / rho
    F = np.empty_like(U)
    F[..., 0] = U[..., 1]
    F[..., 1] = U[..., 1] * un + p
    if U.shape[-1] == 4:
        F[..., 2] = U[..., 2] * un          # tangential momentum advection
    F[..., -1] = (U[..., -1] + p) * un
    return F


def hlle_flux(UL, UR, eos):
    """HLLE flux for left/right states in the face-normal frame.

    Wave-speed estimates follow Einfeldt: Roe-averaged velocity/sound speed
    bounded by the one-sided extremes.
    """
    UL = np.asarray(UL, dtype=float)
    UR = np.asarray(UR, dtype=float)
    wl = primitives(UL, eos)
    wr = primitives(UR, eos)
    ul, ur = wl["vel"][0], wr["vel"][0]
    al, ar = wl["a"], wr["a"]
    # Roe-ish averages (sqrt-rho weighting)
    # catlint: disable=CAT002 -- primitives() clamps rho >= 1e-300
    sl = np.sqrt(wl["rho"])
    sr = np.sqrt(wr["rho"])  # catlint: disable=CAT002 -- primitives() clamps rho >= 1e-300
    u_hat = (sl * ul + sr * ur) / (sl + sr)
    a_hat = (sl * al + sr * ar) / (sl + sr)
    b_minus = np.minimum(np.minimum(ul - al, u_hat - a_hat), 0.0)
    b_plus = np.maximum(np.maximum(ur + ar, u_hat + a_hat), 0.0)
    FL = euler_flux(UL, wl["p"])
    FR = euler_flux(UR, wr["p"])
    denom = np.maximum(b_plus - b_minus, 1e-12)
    bp = b_plus[..., None]
    bm = b_minus[..., None]
    return ((bp * FL - bm * FR) + (bp * bm) * (UR - UL)) / denom[..., None]


def rotate_to_normal(U, nx, ny):
    """Rotate 2-D conserved momentum into the (normal, tangential) frame.

    ``nx, ny`` is the unit face normal.  Density and energy are invariant.
    """
    U = np.asarray(U, dtype=float)
    out = U.copy()
    mu, mv = U[..., 1], U[..., 2]
    out[..., 1] = mu * nx + mv * ny
    out[..., 2] = -mu * ny + mv * nx
    return out


def rotate_from_normal(F, nx, ny):
    """Rotate a face-frame flux back to the global frame."""
    F = np.asarray(F, dtype=float)
    out = F.copy()
    fn, ft = F[..., 1], F[..., 2]
    out[..., 1] = fn * nx - ft * ny
    out[..., 2] = fn * ny + ft * nx
    return out
