"""Fault-tolerant solve farm: N supervised workers draining a durable
work queue.

The farm is the job scheduler the resilience stack was built toward:
:class:`~repro.resilience.isolation.IsolatedRunner` sandboxes one
attempt, :class:`~repro.resilience.persistence.SnapshotStore` makes a
killed march resumable, and the :mod:`~repro.resilience.queue` /
:mod:`~repro.resilience.lease` pair make *ownership* of work durable.
This module assembles them:

* **Workers** (:func:`_worker_main`) claim jobs off the shared
  :class:`~repro.resilience.queue.WorkQueue`, execute them inside an
  isolation sandbox under the job's wall-clock deadline, RSS budget and
  heartbeat stall timeout, renew their lease from a background thread
  while the job runs, and commit the result fenced by the lease token.
  SIGTERM drains gracefully: the current attempt is checkpointed (the
  sandbox child is killed — its durable snapshots survive), the job is
  preempted back to the queue *without* charging an attempt, and the
  worker exits 0.

* **The farm** (:class:`Farm`) spawns the workers, watches their
  heartbeat files with the same liveness-by-silence helpers the
  stencil pool uses (:mod:`repro.resilience.lease`), reaps expired job
  leases so a dead worker's job is reclaimed within one ttl, replaces
  dead or stalled workers from a bounded restart budget, sweeps the
  orphaned sandbox children a SIGKILLed worker leaves behind, and —
  when a :class:`WorkerKillPlan` is armed — SIGKILLs its own workers on
  a deterministic schedule (the chaos harness's ``--farm`` mode).

* **Job kinds** (:data:`JOB_KINDS`) map a job's ``kind`` string to the
  function that executes its payload inside the sandbox child: paper
  figures, persist-protocol solver marches (which auto-resume from the
  latest durable snapshot generation when a killed attempt is
  retried), chaos rounds, arbitrary callables, and two scripted kinds
  (``sleep``, ``flaky``) the tests and smoke campaigns lean on.

The farm is **multi-host aware**: each supervisor runs under a
``host_id`` (defaulting to the machine hostname), names its workers
``host:pid`` so journal lines, leases, orphan sweeps and dead-letter
reports attribute work to a machine, and publishes an advisory clock
beacon (``hosts/<host>.json``) every ``beacon_interval`` seconds.
Several supervisors on different machines can drain one shared
(NFS-mounted) queue directory; cross-host lease reaping never compares
wall clocks (see :mod:`repro.resilience.lease`), and
:func:`audit_exactly_once` proves from the merged journal that no job
was completed twice.

Every attempt, kill, requeue, reclaim, preemption and dead-letter is a
line in the queue's crash-safe journal; :func:`build_ledger` folds the
journal into the campaign ledger and :func:`bench_from_journal` into
the ``BENCH_farm.json`` throughput record.  Ledgers from separate
farms sharing one campaign merge with :func:`merge_ledgers`.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import multiprocessing as mp
import os
import signal
import sys
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import CatError, InputError, SolverError
from repro.resilience.isolation import (Heartbeat, IsolatedRunner,
                                        IsolationPolicy,
                                        current_process_heartbeat,
                                        kill_pid_tree, terminate_process)
from repro.resilience.lease import (HostBeacon, default_host_id,
                                    estimate_skew, expired_indices,
                                    format_ages, heartbeat_ages,
                                    read_beacons)
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue

__all__ = ["Farm", "FarmPolicy", "JOB_KINDS", "WorkerKillPlan",
           "audit_exactly_once", "bench_from_journal", "build_ledger",
           "job_kind", "merge_ledgers", "run_campaign",
           "sweep_orphans", "write_bench_json"]


# ----------------------------------------------------------------------
# job kinds
# ----------------------------------------------------------------------

#: kind name -> ``fn(payload, ctx) -> JSON-able result`` executed in the
#: sandbox child.  ``ctx`` carries ``workdir`` (durable, per-job),
#: ``ckpt_dir`` (durable snapshot ladder — marches resume from here
#: after a kill), ``queue_dir``, ``job_id``, plus the claiming lease's
#: fencing credentials ``lease_token`` / ``worker``.
JOB_KINDS: dict = {}


def job_kind(name: str):
    """Register a job executor under ``name`` (decorator)."""

    def deco(fn):
        JOB_KINDS[name] = fn
        return fn

    return deco


@job_kind("figure")
def _job_figure(payload: dict, ctx: dict) -> dict:
    """One paper figure: payload ``{"module": "fig1_flight_domain",
    "quick": true}``.  Figures that speak the persist protocol march
    durably under the job workdir, so a killed attempt resumes."""
    mod = importlib.import_module(
        f"repro.experiments.{payload['module']}")
    kwargs: dict = {"quick": bool(payload.get("quick", True))}
    if "persist_dir" in inspect.signature(mod.main).parameters:
        kwargs["persist_dir"] = os.path.join(ctx["workdir"], "persist")
    return {"output": mod.main(**kwargs)}


@job_kind("solver_case")
def _job_solver_case(payload: dict, ctx: dict) -> dict:
    """March one chaos-matrix solver case durably; returns a SHA-256
    fingerprint of the final marching state, so kill-and-resume
    campaigns can assert bitwise identity against a reference run."""
    from repro.resilience.chaos import CASES
    from repro.resilience.persistence import PersistencePolicy
    factory, run_kwargs, _, _ = CASES[payload["case"]]
    solver = factory()
    kwargs = dict(run_kwargs)
    kwargs.update(payload.get("run_kwargs") or {})
    solver.run(**kwargs, persist=PersistencePolicy(
        dir=ctx["ckpt_dir"],
        every_n_steps=int(payload.get("every_n_steps", 3))))
    return {"case": payload["case"], "steps": int(solver.steps),
            "state_sha256": state_fingerprint(solver)}


@job_kind("chaos_round")
def _job_chaos_round(payload: dict, ctx: dict) -> dict:
    """One chaos round with its own spawned rng (``seed`` is a sequence
    like ``[campaign_seed, index]`` so rounds are order-independent).

    The round supervises its *own* inner sandbox, so jobs of this kind
    must run with the outer ``stall_timeout`` disabled: the outer child
    blocks in the inner supervision loop and never beats.
    """
    from repro.resilience.chaos import run_round
    rng = np.random.default_rng(payload["seed"])
    report = run_round(
        int(payload["index"]), rng,
        out_dir=os.path.join(ctx["workdir"], "reports"),
        deadline=float(payload.get("deadline", 30.0)),
        stall_timeout=float(payload.get("stall_timeout", 2.0)),
        memory_margin_mb=float(payload.get("memory_margin_mb", 250.0)),
        balloon_mb=float(payload.get("balloon_mb", 500.0)))
    return {"report": report}


@job_kind("batch")
def _job_batch(payload: dict, ctx: dict) -> dict:
    """One chunk of a sharded batch-service call: payload
    ``{"requests": [...], "policy": {...}, "offset": N}``.

    The chunk runs :func:`repro.service.batch.evaluate_batch` inside
    the worker's sandbox; envelopes come back with chunk-local indices
    (the merger re-offsets them).  Chunk job ids derive from the batch
    content key, so retry after preemption re-executes the same
    requests idempotently and the exactly-once audit still holds.
    """
    from repro.service.batch import BatchPolicy, evaluate_batch
    policy = BatchPolicy.from_dict(payload.get("policy"))
    result = evaluate_batch(payload["requests"], policy)
    return {"offset": int(payload.get("offset", 0)),
            "envelopes": [e.to_dict() for e in result.envelopes],
            "ledger": result.ledger}


@job_kind("callable")
def _job_callable(payload: dict, ctx: dict) -> dict:
    """``{"module": "pkg.mod", "func": "name", "kwargs": {...}}`` —
    the generic escape hatch (batch solve requests, benchmarks)."""
    mod = importlib.import_module(payload["module"])
    fn = getattr(mod, payload["func"])
    return {"result": fn(**dict(payload.get("kwargs") or {}))}


@job_kind("sleep")
def _job_sleep(payload: dict, ctx: dict) -> dict:
    """Scripted busy-wait that beats the process heartbeat — scheduling
    fodder for tests and throughput smoke campaigns."""
    t_end = time.monotonic() + float(payload.get("duration", 0.1))
    hb = current_process_heartbeat()
    while time.monotonic() < t_end:
        if hb is not None:
            hb.beat(force=True)
        time.sleep(0.01)
    return {"slept": float(payload.get("duration", 0.1))}


@job_kind("async")
def _job_async(payload: dict, ctx: dict) -> dict:
    """One attempt of a durable async job: payload ``{"kind": inner,
    "payload": {...}}``.  The wrapper drives the inner kind under the
    job's persisted state machine — fenced ``claimed → running →
    checkpointing`` transitions, cancel-flag acknowledgement, progress
    publication — see :mod:`repro.service.jobs`."""
    from repro.service.jobs import run_async_attempt
    return run_async_attempt(payload, ctx)


@job_kind("flaky")
def _job_flaky(payload: dict, ctx: dict) -> dict:
    """Fails its first ``fail_first`` attempts (scripted, durable
    count), then succeeds — exercises the retry/backoff ladder and the
    dead-letter path end to end."""
    marker_dir = os.path.join(ctx["workdir"], "flaky-attempts")
    os.makedirs(marker_dir, exist_ok=True)
    n_before = len(os.listdir(marker_dir))
    with open(os.path.join(marker_dir, f"attempt-{n_before:04d}-"
                           f"{os.getpid()}"), "w") as f:
        f.write(str(time.time()))
    if n_before < int(payload.get("fail_first", 1)):
        raise SolverError(f"flaky job: scripted failure "
                          f"{n_before + 1}/{payload.get('fail_first')}")
    return {"attempts_used": n_before + 1}


def state_fingerprint(solver) -> str:
    """SHA-256 over the solver's full marching state, byte-exact."""
    h = hashlib.sha256()
    for k in sorted(solver.get_state()):
        v = solver.get_state()[k]
        h.update(k.encode())
        h.update(v.tobytes() if isinstance(v, np.ndarray)
                 else repr(v).encode())
    return h.hexdigest()


def _execute_job(queue_dir: str, job_id: str,
                 lease_token: str | None = None,
                 worker: str | None = None):
    """Sandbox-child entry point: resolve the job and run its kind.

    ``lease_token``/``worker`` are the fencing credentials of the
    claiming worker's lease: executors that commit their own durable
    records (the async-job state machine) validate every write against
    the token on disk, so an attempt whose lease was reaped can never
    clobber its successor's transitions.
    """
    queue = WorkQueue(queue_dir)
    job = queue.job(job_id)
    fn = JOB_KINDS.get(job.kind)
    if fn is None:
        raise SolverError(f"farm: unknown job kind {job.kind!r} "
                          f"(registered: {sorted(JOB_KINDS)})")
    workdir = queue.job_workdir(job_id)
    ctx = {"workdir": workdir,
           "ckpt_dir": os.path.join(workdir, "ckpt"),
           "queue_dir": queue_dir, "job_id": job_id,
           "lease_token": lease_token, "worker": worker}
    return fn(job.payload, ctx)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

@dataclass
class FarmPolicy:
    """Budgets and knobs of a farm run.

    Attributes
    ----------
    n_workers:
        Supervised worker processes draining the queue.
    lease_ttl:
        Job-lease time to live [s]; a worker renews every ttl/3, so a
        dead worker's job is reclaimed within roughly one ttl.
    poll_interval:
        Idle-worker and farm-supervision poll period [s].
    worker_stall_timeout:
        Worker-heartbeat silence [s] after which the farm kills and
        replaces the worker (its job lease then expires and reclaims).
    worker_restart_budget:
        Replacement workers the farm may spawn campaign-wide after
        deaths/kills before it stops replacing.
    deadline, memory_mb, stall_timeout:
        Per-job isolation budgets applied when the job spec leaves them
        None.
    snapshot_every:
        Durable snapshot cadence marching jobs run with (the resume
        granularity after a kill).
    backoff:
        The queue's retry :class:`~repro.resilience.queue.BackoffPolicy`
        (max attempts, exponential delay, deterministic jitter).
    drain_when_idle:
        Campaign mode: workers exit once every job is terminal.  The
        ``serve`` loop sets this False and waits for new work instead.
    max_wall_time:
        Campaign wall-clock budget [s]; None = unbounded.
    host_id:
        This supervisor's identity in the shared queue directory;
        defaults to the machine hostname.  Workers are named
        ``host_id:pid``.
    max_skew:
        Cross-host clock-skew bound [s] granted before reaping another
        host's lease (see :class:`~repro.resilience.lease.LeaseManager`).
    beacon_interval:
        Cadence [s] of the advisory ``hosts/<host>.json`` clock beacon.
    clock_offset:
        Injected wall-clock skew [s] for this farm and its workers —
        chaos/testing knob, equivalent to setting ``REPRO_CLOCK_SKEW``.
    freeze_beacon_after:
        Chaos knob: stop refreshing the host beacon after this many
        seconds of campaign time (a frozen beacon must *not* get the
        host's leases reaped — beacons are advisory).
    """

    n_workers: int = 2
    lease_ttl: float = 15.0
    poll_interval: float = 0.25
    worker_stall_timeout: float = 60.0
    worker_restart_budget: int = 8
    deadline: float | None = None
    memory_mb: float | None = None
    stall_timeout: float | None = None
    snapshot_every: int = 5
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    drain_when_idle: bool = True
    max_wall_time: float | None = None
    host_id: str | None = None
    max_skew: float = 2.0
    beacon_interval: float = 2.0
    clock_offset: float = 0.0
    freeze_beacon_after: float | None = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise InputError("n_workers must be >= 1")
        if self.lease_ttl <= 0.0 or self.poll_interval <= 0.0:
            raise InputError("lease_ttl and poll_interval must be "
                             "positive")
        if self.max_skew < 0.0:
            raise InputError("max_skew must be >= 0")

    def worker_config(self) -> dict:
        return {"lease_ttl": self.lease_ttl,
                "poll_interval": self.poll_interval,
                "deadline": self.deadline, "memory_mb": self.memory_mb,
                "stall_timeout": self.stall_timeout,
                "snapshot_every": self.snapshot_every,
                "backoff": asdict(self.backoff),
                "drain_when_idle": self.drain_when_idle,
                "host_id": self.host_id or default_host_id(),
                "max_skew": self.max_skew,
                "clock_offset": self.clock_offset}

    def clock(self):
        """Wall clock for this farm, honouring ``clock_offset``."""
        return _offset_clock(self.clock_offset)


def _offset_clock(offset: float):
    """A ``time.time``-alike shifted by ``offset`` seconds (0 → the
    default clock, which itself honours ``REPRO_CLOCK_SKEW``)."""
    if not offset:
        return None
    return lambda: time.time() + offset


@dataclass
class WorkerKillPlan:
    """Deterministic worker-SIGKILL schedule (chaos ``--farm`` mode).

    ``kills`` SIGKILLs are delivered to randomly-chosen live workers at
    intervals drawn uniformly from [min_interval, max_interval] — all
    of it a pure function of ``seed``, so a failing campaign replays.
    """

    seed: int = 0
    kills: int = 2
    min_interval: float = 1.0
    max_interval: float = 6.0

    def schedule(self) -> list[float]:
        """Kill times as offsets from campaign start [s]."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.uniform(self.min_interval, self.max_interval,
                           size=int(self.kills))
        return list(np.cumsum(gaps))


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------

class _DrainRequested(Exception):
    """Raised by the worker's SIGTERM handler mid-job: checkpoint,
    preempt the job back to the queue, exit clean."""


def _renew_loop(queue: WorkQueue, lease, stop: threading.Event,
                lost: threading.Event, hb: Heartbeat) -> None:
    """Background renewal while the job runs: keep the lease fresh and
    the worker's heartbeat visible; flag the lease as lost (fenced) the
    moment renewal fails."""
    interval = max(0.05, lease.ttl / 3.0)
    while not stop.wait(interval):
        hb.beat(force=True)
        if not queue.leases.renew(lease):
            lost.set()
            return


def _child_pid_path(workdir: str) -> str:
    return os.path.join(workdir, "child.json")


def sweep_orphans(queue: WorkQueue, *, worker: str | None = None,
                  host: str | None = None) -> list[dict]:
    """SIGKILL the sandbox children a dead worker (or a whole dead
    host) left behind — they live in their own process groups, so
    killing the worker's group does not reach them.

    Matches the advertised ``work/<job>/child.json`` records against
    ``worker`` (exact ``host:pid`` identity) or ``host`` (every worker
    whose name carries that host prefix).  Returns the swept records.
    """
    swept = []
    for job_id in queue.job_ids():
        path = _child_pid_path(os.path.join(queue.work_dir, job_id))
        try:
            with open(path) as f:
                rec = json.load(f)
        except (OSError, ValueError):
            continue
        owner = str(rec.get("worker") or "")
        if worker is not None and owner != worker:
            continue
        if host is not None and not owner.startswith(f"{host}:"):
            continue
        kill_pid_tree(rec.get("pid"))
        try:
            os.remove(path)
        except OSError:
            pass
        queue.journal("orphan-sweep", worker=owner,
                      job=rec.get("job"), pid=rec.get("pid"))
        swept.append(rec)
    return swept


def _run_one(queue: WorkQueue, job: Job, lease, name: str, cfg: dict,
             flags: dict, hb: Heartbeat) -> None:
    """Execute one claimed job attempt end to end (sandbox, renewal
    thread, fenced commit / requeue / preemption)."""
    if job.kind not in JOB_KINDS:
        # fail fast without burning a sandbox spawn on every retry
        queue.fail(job, lease, f"farm: unknown job kind {job.kind!r} "
                   f"(registered: {sorted(JOB_KINDS)})")
        return
    workdir = queue.job_workdir(job.id)
    policy = IsolationPolicy(
        deadline=(job.deadline if job.deadline is not None
                  else cfg["deadline"]),
        memory_mb=(job.memory_mb if job.memory_mb is not None
                   else cfg["memory_mb"]),
        stall_timeout=(job.stall_timeout if job.stall_timeout is not None
                       else cfg["stall_timeout"]),
        max_restarts=0,   # retries belong to the queue, not the sandbox
        term_grace=1.0,
        every_n_steps=int(cfg["snapshot_every"]))
    runner = IsolatedRunner(policy, label=f"{name}:{job.id}")

    def on_spawn(pid, attempt):
        # advertise the sandbox child so the farm can sweep it if this
        # worker is SIGKILLed out from under it
        try:
            with open(_child_pid_path(workdir), "w") as f:
                json.dump({"worker": name, "job": job.id, "pid": pid},
                          f)
        except OSError:
            pass

    stop, lost = threading.Event(), threading.Event()
    renewer = threading.Thread(target=_renew_loop,
                               args=(queue, lease, stop, lost, hb),
                               daemon=True)
    renewer.start()
    outcome, err_obj, result = "drain", None, None
    try:
        flags["raise_on_term"] = True
        try:
            if flags["draining"]:
                raise _DrainRequested()
            result = runner.run_callable(
                _execute_job, (queue.dir, job.id, lease.token, name),
                workdir=os.path.join(workdir, "sandbox"),
                on_spawn=on_spawn)
            outcome = "ok"
        except _DrainRequested:
            outcome = "drain"
            flags["draining"] = True
        except CatError as err:
            outcome, err_obj = "fail", err
        # catlint: disable=CAT012 -- worker boundary: an exotic job
        # exception must dead-letter the job, never kill the worker
        # loop; SimulatedCrash is a BaseException and still propagates
        except Exception as err:
            outcome, err_obj = "fail", err
        finally:
            flags["raise_on_term"] = False
        if outcome == "ok":
            for ev in runner.events:
                queue.journal("isolation-event", job=job.id, worker=name,
                              kind=ev.kind, message=ev.message)
            queue.complete(job, lease, result)
        elif outcome == "drain":
            queue.preempt(job, lease)
        else:
            report = getattr(err_obj, "report", None)
            queue.fail(job, lease,
                       f"{type(err_obj).__name__}: {err_obj}",
                       report=None if report is None
                       else report.to_dict())
    finally:
        stop.set()
        renewer.join(timeout=5.0)
        try:
            os.remove(_child_pid_path(workdir))
        except OSError:
            pass


def worker_name(host_id: str, pid: int) -> str:
    """The canonical ``host:pid`` worker identity — computed the same
    way by the supervisor (from the spawned pid) and by the worker
    itself (from ``os.getpid()``), so both sides agree without an IPC
    handshake."""
    return f"{host_id}:{pid}"


def _worker_main(queue_dir: str, cfg: dict) -> None:
    """A worker process: claim → sandbox → commit, until drained."""
    try:
        os.setpgid(0, 0)
    except OSError:
        pass
    host = cfg.get("host_id") or default_host_id()
    name = worker_name(host, os.getpid())
    queue = WorkQueue(queue_dir, lease_ttl=cfg["lease_ttl"],
                      backoff=BackoffPolicy(**cfg["backoff"]),
                      host_id=host,
                      max_skew=float(cfg.get("max_skew", 2.0)),
                      clock=_offset_clock(
                          float(cfg.get("clock_offset", 0.0))))
    workers_dir = os.path.join(queue.dir, "workers")
    os.makedirs(workers_dir, exist_ok=True)
    hb = Heartbeat(os.path.join(workers_dir, f"{name}.json"),
                   min_interval=0.02, host=host)
    flags = {"draining": False, "raise_on_term": False}

    def on_term(signum, frame):
        flags["draining"] = True
        if flags["raise_on_term"]:
            raise _DrainRequested()

    signal.signal(signal.SIGTERM, on_term)
    signal.signal(signal.SIGINT, on_term)
    queue.journal("worker-start", worker=name, pid=os.getpid())
    while not flags["draining"]:
        hb.beat(force=True)
        claimed = queue.claim(name)
        if claimed is None:
            if cfg["drain_when_idle"] and queue.all_terminal():
                break
            time.sleep(cfg["poll_interval"])
            continue
        job, lease = claimed
        _run_one(queue, job, lease, name, cfg, flags, hb)
    queue.journal("worker-exit", worker=name, pid=os.getpid(),
                  drained=flags["draining"])


# ----------------------------------------------------------------------
# the farm
# ----------------------------------------------------------------------

class Farm:
    """Spawn, supervise and (when chaos demands) kill the workers.

    Parameters
    ----------
    queue:
        A :class:`~repro.resilience.queue.WorkQueue` or a queue
        directory path.
    policy:
        A :class:`FarmPolicy` (defaults apply when None).
    kill_plan:
        Optional :class:`WorkerKillPlan` — the farm SIGKILLs its own
        workers on the plan's deterministic schedule.
    """

    def __init__(self, queue, policy: FarmPolicy | None = None, *,
                 label: str = "farm", stream=None, kill_plan=None):
        self.policy = policy or FarmPolicy()
        self.host = self.policy.host_id or default_host_id()
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue, lease_ttl=self.policy.lease_ttl,
                              backoff=self.policy.backoff,
                              host_id=self.host,
                              max_skew=self.policy.max_skew,
                              clock=self.policy.clock())
        self.queue = queue
        self.label = label
        self.stream = stream or sys.stdout
        self.kill_plan = kill_plan
        self.kills: list[dict] = []
        self.beacon = HostBeacon(self.queue.hosts_dir,
                                 host_id=self.host,
                                 interval=self.policy.beacon_interval,
                                 clock=self.queue.clock)
        self._stop = False
        self._workers: list[dict] = []   # {proc, name, index, last_raw,
        #                                   last_change}
        self._spawned = 0
        #: the most recent campaign ledger (``serve --ledger`` writes
        #: it to disk after the drain, for ``campaign --merge-ledgers``)
        self.last_ledger: dict | None = None

    # -- worker lifecycle ----------------------------------------------

    def _spawn_worker(self, index: int) -> dict:
        self._spawned += 1
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_worker_main,
                           args=(self.queue.dir,
                                 self.policy.worker_config()),
                           daemon=False)
        proc.start()
        # the worker derives the same host:pid name from os.getpid()
        name = worker_name(self.host, proc.pid)
        rec = {"proc": proc, "name": name, "index": index,
               "last_raw": None, "last_change": time.monotonic()}
        print(f"[{self.label}] worker {name} started (pid {proc.pid})",
              file=self.stream)
        return rec

    def _hb_path(self, name: str) -> str:
        return os.path.join(self.queue.dir, "workers", f"{name}.json")

    def _observe(self, rec: dict, now: float) -> None:
        """Age a worker's heartbeat with the farm's own clock (payload
        change detection, same convention as IsolatedRunner)."""
        try:
            with open(self._hb_path(rec["name"]), "rb") as f:
                raw = f.read()
        except OSError:
            raw = None
        if raw != rec["last_raw"]:
            rec["last_raw"], rec["last_change"] = raw, now

    def _sweep_orphans(self, victim: str) -> None:
        sweep_orphans(self.queue, worker=victim)

    def _kill_worker(self, rec: dict, *, kind: str, reason: str) -> None:
        proc = rec["proc"]
        pid = proc.pid
        if kind == "chaos":
            # the whole point: an abrupt SIGKILL, no graceful path
            kill_pid_tree(pid)
            proc.join(10.0)
        else:
            terminate_process(proc, grace=1.0)
        self._sweep_orphans(rec["name"])
        self.kills.append({"worker": rec["name"], "pid": pid,
                           "kind": kind, "reason": reason})
        self.queue.journal("worker-kill", worker=rec["name"], pid=pid,
                           kind=kind, reason=reason)
        print(f"[{self.label}] killed worker {rec['name']} ({kind}: "
              f"{reason})", file=self.stream)

    def _replace(self, rec: dict, restarts_left: int) -> int:
        self._workers.remove(rec)
        if restarts_left <= 0:
            print(f"[{self.label}] worker restart budget exhausted; "
                  f"not replacing {rec['name']}", file=self.stream)
            return restarts_left
        self._workers.append(self._spawn_worker(rec["index"]))
        return restarts_left - 1

    # -- supervision loop ----------------------------------------------

    def _install_signals(self):
        def on_term(signum, frame):
            self._stop = True

        try:
            signal.signal(signal.SIGTERM, on_term)
            signal.signal(signal.SIGINT, on_term)
        except ValueError:
            pass   # not the main thread (tests drive run() directly)

    def run(self) -> dict:
        """Drive a campaign to completion; returns the campaign ledger.

        Exits when every job is terminal (``drain_when_idle``), when the
        wall-clock budget runs out, or on SIGTERM/SIGINT — always
        through the graceful drain (workers SIGTERMed, current attempts
        checkpointed and preempted) and always with a ledger.
        """
        pol = self.policy
        self._install_signals()
        self.queue.journal("campaign-start", label=self.label,
                           n_workers=pol.n_workers,
                           jobs=len(self.queue.job_ids()))
        t0 = time.monotonic()
        self._workers = [self._spawn_worker(i)
                         for i in range(pol.n_workers)]
        self.beacon.workers = [r["proc"].pid for r in self._workers]
        self.beacon.write(force=True)
        restarts_left = pol.worker_restart_budget
        kill_times = (self.kill_plan.schedule()
                      if self.kill_plan is not None else [])
        kill_rng = (np.random.default_rng(self.kill_plan.seed + 1)
                    if self.kill_plan is not None else None)
        next_kill = 0
        try:
            while True:
                time.sleep(pol.poll_interval)
                now = time.monotonic()
                elapsed = now - t0
                if (pol.freeze_beacon_after is not None
                        and elapsed >= pol.freeze_beacon_after):
                    self.beacon.frozen = True
                self.beacon.workers = [r["proc"].pid
                                       for r in self._workers
                                       if r["proc"].is_alive()]
                self.beacon.write()
                for job_id in self.queue.reclaim_expired():
                    print(f"[{self.label}] lease expired: job "
                          f"{job_id} reclaimed", file=self.stream)
                # chaos kills on schedule
                while (next_kill < len(kill_times)
                        and elapsed >= kill_times[next_kill]):
                    alive = [r for r in self._workers
                             if r["proc"].is_alive()]
                    if alive:
                        victim = alive[int(kill_rng.integers(
                            0, len(alive)))]
                        self._kill_worker(victim, kind="chaos",
                                          reason="scheduled chaos kill")
                    next_kill += 1
                # worker liveness
                for rec in list(self._workers):
                    proc = rec["proc"]
                    self._observe(rec, now)
                    if not proc.is_alive():
                        if proc.exitcode == 0:
                            self._workers.remove(rec)   # drained
                            continue
                        self.queue.journal(
                            "worker-death", worker=rec["name"],
                            exitcode=proc.exitcode)
                        self._sweep_orphans(rec["name"])
                        if not self.queue.all_terminal():
                            restarts_left = self._replace(
                                rec, restarts_left)
                        else:
                            self._workers.remove(rec)
                        continue
                    ages = heartbeat_ages([rec["last_change"]], now)
                    if expired_indices(ages, pol.worker_stall_timeout):
                        self._kill_worker(
                            rec, kind="stall",
                            reason=f"no heartbeat for {ages[0]:.1f} s "
                                   f"({format_ages(ages)})")
                        restarts_left = self._replace(rec,
                                                      restarts_left)
                        continue
                if self._stop:
                    break
                if (pol.max_wall_time is not None
                        and elapsed > pol.max_wall_time):
                    self.queue.journal("campaign-timeout",
                                       elapsed=round(elapsed, 2))
                    break
                if pol.drain_when_idle and self.queue.all_terminal():
                    break
                if pol.drain_when_idle and not self._workers:
                    # every worker gone and none replaceable: jobs left
                    # unclaimed would wait forever — stop with a ledger
                    break
        finally:
            self._drain_workers()
        wall = time.monotonic() - t0
        ledger = build_ledger(self.queue, wall_time=wall,
                              label=self.label, kills=self.kills,
                              n_workers=pol.n_workers)
        self.queue.journal("campaign-end", label=self.label,
                           wall=round(wall, 2), ok=ledger["ok"])
        self.last_ledger = ledger
        return ledger

    def serve(self) -> int:
        """Long-running mode: keep workers draining the queue (new jobs
        may be enqueued by other processes at any time) until SIGTERM /
        SIGINT, then drain gracefully.  Returns a process exit code."""
        self.policy.drain_when_idle = False
        ledger = self.run()
        pending = sum(v for k, v in ledger["jobs"].items()
                      if k not in ("done", "dead"))
        print(f"[{self.label}] drained: {ledger['jobs']} "
              f"({pending} job(s) left for the next serve)",
              file=self.stream)
        return 0

    def _drain_workers(self) -> None:
        """SIGTERM every worker (finish-or-checkpoint), then escalate."""
        for rec in self._workers:
            proc = rec["proc"]
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + 15.0
        for rec in self._workers:
            proc = rec["proc"]
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                terminate_process(proc, grace=1.0)
                self._sweep_orphans(rec["name"])
        self._workers = []


# ----------------------------------------------------------------------
# ledger and bench records
# ----------------------------------------------------------------------

def build_ledger(queue: WorkQueue, *, wall_time: float, label: str,
                 kills: list | None = None, n_workers: int | None = None
                 ) -> dict:
    """Fold the journal + job states into the campaign ledger.

    The journal read merges every host's per-host files (and compacted
    segment summaries), so a ledger built on any host of a shared-queue
    campaign covers the whole campaign; ``hosts`` breaks claims /
    completes / kills down per writer host.
    """
    journal = queue.read_journal()
    by_event: dict[str, int] = {}
    by_host: dict[str, dict[str, int]] = {}

    def _host_count(host, event, n=1):
        hc = by_host.setdefault(host or "?", {})
        hc[event] = hc.get(event, 0) + n

    for rec in journal:
        ev = rec.get("event", "?")
        if ev == "journal-compact":
            # a compacted summary stands in for its absorbed segments
            for name, n in (rec.get("events") or {}).items():
                by_event[name] = by_event.get(name, 0) + int(n)
                if name in ("claim", "complete", "worker-kill"):
                    _host_count(rec.get("host"), name, int(n))
            continue
        by_event[ev] = by_event.get(ev, 0) + 1
        if ev in ("claim", "complete", "worker-kill"):
            _host_count(rec.get("host"), ev)
    skews = estimate_skew(read_beacons(queue.hosts_dir),
                          host_id=queue.host_id, clock=queue.clock)
    counts = queue.counts()
    dead = []
    for job_id in queue.job_ids():
        if queue.state(job_id).get("status") == "dead":
            rec = queue.dead_letter(job_id) or {"id": job_id}
            dead.append({"id": job_id, "error": rec.get("error"),
                         "attempts": rec.get("attempts"),
                         "has_report": rec.get("report") is not None})
    n_jobs = len(queue.job_ids())
    done = counts.get("done", 0)
    return {"label": label, "wall_time": round(wall_time, 3),
            "n_workers": n_workers,
            "host": queue.host_id,
            "hosts": by_host,
            "skew_estimates": {h: round(s, 3)
                               for h, s in skews.items()},
            "jobs": counts, "n_jobs": n_jobs,
            "attempts": by_event.get("claim", 0),
            "requeues": by_event.get("requeue", 0),
            "reclaims": by_event.get("reclaim", 0),
            "preempts": by_event.get("preempt", 0),
            "fenced": by_event.get("fenced", 0),
            "worker_kills": list(kills or []),
            "dead_letter": dead,
            "events": by_event,
            "throughput_jobs_per_s": (round(done / wall_time, 4)
                                      if wall_time > 0 else None),
            "ok": done + len(dead) == n_jobs and not any(
                counts.get(k) for k in ("pending", "running",
                                        "unknown"))}


def bench_from_journal(queue: WorkQueue, *, wall_time: float,
                       n_workers: int) -> dict:
    """Throughput record for one farm run: requests/sec and per-job
    claim→complete latency stats out of the journal."""
    claims: dict[str, float] = {}
    latencies: list[float] = []
    for rec in queue.read_journal():
        if rec.get("event") == "journal-compact":
            # compacted segments survive as last-claim / last-complete
            # timestamps per job in the summary record
            for job, t in (rec.get("claims") or {}).items():
                claims.setdefault(job, float(t))
            for job, t in (rec.get("completes") or {}).items():
                t_claim = claims.get(job)
                if t_claim is not None:
                    latencies.append(float(t) - t_claim)
        elif rec.get("event") == "claim":
            claims[rec.get("job")] = float(rec["t"])
        elif rec.get("event") == "complete":
            t_claim = claims.get(rec.get("job"))
            if t_claim is not None:
                latencies.append(float(rec["t"]) - t_claim)
    done = queue.counts().get("done", 0)
    lat = sorted(latencies)
    stats = None
    if lat:
        stats = {"mean": round(sum(lat) / len(lat), 4),
                 "p50": round(lat[len(lat) // 2], 4),
                 "max": round(lat[-1], 4)}
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count()
    return {"n_workers": int(n_workers),
            "cpu_count": cpus,
            "wall_time_s": round(wall_time, 3),
            "jobs_done": int(done),
            "requests_per_s": (round(done / wall_time, 4)
                               if wall_time > 0 else None),
            "per_job_latency_s": stats}


def audit_exactly_once(queue: WorkQueue) -> dict:
    """Prove from the merged multi-host journal that every done job was
    completed **exactly once**.

    A fenced commit (stale token rejected after a reclaim) journals
    ``fenced``, not ``complete``, so any job with two ``complete``
    lines — or a done job with none — is a real exactly-once violation,
    whichever host wrote the lines.  Compacted segments are covered via
    the summary's per-job complete counts.
    """
    completes: dict[str, int] = {}
    for rec in queue.read_journal():
        ev = rec.get("event")
        if ev == "complete":
            job = rec.get("job")
            completes[job] = completes.get(job, 0) + 1
        elif ev == "journal-compact":
            for job, n in (rec.get("complete_counts") or {}).items():
                completes[job] = completes.get(job, 0) + int(n)
    double = {job: n for job, n in completes.items() if n > 1}
    missing = [job_id for job_id in queue.job_ids()
               if queue.state(job_id).get("status") == "done"
               and completes.get(job_id, 0) == 0]
    return {"ok": not double and not missing,
            "jobs_completed": len(completes),
            "double_completions": double,
            "done_without_complete": sorted(missing)}


def merge_ledgers(ledgers: list[dict]) -> dict:
    """Merge per-host campaign ledgers into one campaign view.

    Each ``serve``/``campaign`` invocation on a shared queue builds its
    ledger from the *merged* journal, so job/event counts agree across
    hosts — the merge takes the freshest view for those, unions the
    per-host breakdowns, kills and skew estimates, and sums wall time
    as aggregate host-seconds (``wall_time`` keeps the max).
    """
    if not ledgers:
        raise InputError("merge_ledgers: no ledgers given")
    best = max(ledgers, key=lambda led: (
        sum((led.get("jobs") or {}).values()),
        (led.get("events") or {}).get("complete", 0)))
    merged = dict(best)
    hosts: dict[str, dict] = {}
    skews: dict[str, float] = {}
    kills: list[dict] = []
    labels: list[str] = []
    for led in ledgers:
        for host, counts in (led.get("hosts") or {}).items():
            slot = hosts.setdefault(host, {})
            for ev, n in counts.items():
                slot[ev] = max(slot.get(ev, 0), int(n))
        skews.update(led.get("skew_estimates") or {})
        for kill in led.get("worker_kills") or []:
            if kill not in kills:
                kills.append(kill)
        if led.get("label") and led["label"] not in labels:
            labels.append(led["label"])
    merged["label"] = "+".join(labels) or best.get("label")
    merged["hosts"] = hosts
    merged["skew_estimates"] = skews
    merged["worker_kills"] = kills
    merged["merged_from"] = [{"label": led.get("label"),
                              "host": led.get("host"),
                              "wall_time": led.get("wall_time")}
                             for led in ledgers]
    merged["wall_time"] = max(float(led.get("wall_time") or 0.0)
                              for led in ledgers)
    merged["host_seconds"] = round(sum(
        float(led.get("wall_time") or 0.0) for led in ledgers), 3)
    return merged


def write_bench_json(path, record: dict) -> None:
    """Atomically write a ``BENCH_*.json`` perf-trajectory artifact."""
    record = dict(record)
    record.setdefault("bench", "farm")
    record.setdefault("created", time.time())
    tmp = f"{os.fspath(path)}.tmp-{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(record, f, indent=1)
    os.replace(tmp, os.fspath(path))


# ----------------------------------------------------------------------
# campaign convenience
# ----------------------------------------------------------------------

def run_campaign(queue_dir, jobs: list[Job], *,
                 policy: FarmPolicy | None = None, label: str =
                 "campaign", stream=None, kill_plan=None) -> dict:
    """Enqueue ``jobs`` (idempotently) and run the farm to completion;
    returns the campaign ledger."""
    policy = policy or FarmPolicy()
    queue = WorkQueue(queue_dir, lease_ttl=policy.lease_ttl,
                      backoff=policy.backoff, host_id=policy.host_id,
                      max_skew=policy.max_skew, clock=policy.clock())
    for job in jobs:
        queue.enqueue(job)
    farm = Farm(queue, policy, label=label, stream=stream,
                kill_plan=kill_plan)
    return farm.run()
