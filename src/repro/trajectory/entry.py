"""Three-degree-of-freedom planar entry dynamics.

Standard planar entry equations over a spherical non-rotating planet::

    dV/dt     = -D/m - g sin(gamma)
    dgamma/dt = [ L/m - (g - V^2/r) cos(gamma) ] / V
    dh/dt     = V sin(gamma)
    ds/dt     = V cos(gamma) * R_p / r

with gamma the flight-path angle (negative below horizontal), D and L the
drag and lift from the vehicle's ballistic characteristics, integrated with
a stiff-safe adaptive RK (scipy).  Termination events: surface impact,
atmospheric exit (skip-out), or velocity floor.

The canned vehicles (SHUTTLE, AOTV, TAV, TITAN_PROBE) carry representative
mass/area/aero numbers for the Fig. 1 flight-domain map; they are stated to
one significant figure on purpose — the figure's axes span seven decades.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.integrate import solve_ivp

from repro.atmosphere.base import Atmosphere
from repro.errors import InputError

__all__ = ["EntryVehicle", "Trajectory", "integrate_entry",
           "SHUTTLE", "AOTV", "TAV", "TITAN_PROBE"]


@dataclass(frozen=True)
class EntryVehicle:
    """Ballistic/aerodynamic description of an entry vehicle."""

    name: str
    mass: float                 #: [kg]
    area: float                 #: aerodynamic reference area [m^2]
    cd: float                   #: drag coefficient
    cl: float = 0.0             #: lift coefficient (planar, lift-up > 0)
    nose_radius: float = 1.0    #: [m], for heating correlations
    length: float = 10.0        #: reference length [m], for Reynolds number

    @property
    def ballistic_coefficient(self) -> float:
        """m / (Cd A) [kg/m^2]."""
        return self.mass / (self.cd * self.area)

    def with_bank(self, lift_fraction: float) -> "EntryVehicle":
        """Return a copy with the lift scaled (crude bank-angle modulation)."""
        return replace(self, cl=self.cl * lift_fraction)


#: Shuttle-Orbiter-like: ~100 t, large planform, high angle of attack.
SHUTTLE = EntryVehicle("shuttle", mass=99000.0, area=250.0, cd=0.84,
                       cl=0.84, nose_radius=1.3, length=32.8)

#: Aeroassisted orbital transfer vehicle: light, blunt, lift-down pass.
AOTV = EntryVehicle("aotv", mass=4500.0, area=38.0, cd=1.4, cl=0.4,
                    nose_radius=2.3, length=7.0)

#: Transatmospheric vehicle: slender, efficient, sustained hypersonic glide.
TAV = EntryVehicle("tav", mass=30000.0, area=120.0, cd=0.12, cl=0.35,
                   nose_radius=0.5, length=25.0)

#: Titan entry probe (Ref. 15): 60-deg sphere-cone ballistic capsule.
TITAN_PROBE = EntryVehicle("titan-probe", mass=190.0, area=1.65, cd=1.5,
                           cl=0.0, nose_radius=0.64, length=1.45)


@dataclass
class Trajectory:
    """Integrated entry history with derived aerothermal quantities."""

    t: np.ndarray           #: time [s]
    h: np.ndarray           #: altitude [m]
    V: np.ndarray           #: velocity [m/s]
    gamma: np.ndarray       #: flight-path angle [rad]
    s: np.ndarray           #: downrange [m]
    vehicle: EntryVehicle
    atmosphere: Atmosphere

    @property
    def rho(self):
        return self.atmosphere.density(self.h)

    @property
    def mach(self):
        return self.atmosphere.mach_number(self.V, self.h)

    @property
    def reynolds(self):
        """Reynolds number based on vehicle reference length."""
        return (self.atmosphere.reynolds_per_meter(self.V, self.h)
                * self.vehicle.length)

    @property
    def dynamic_pressure(self):
        return 0.5 * self.rho * self.V**2

    def index_of_peak(self, quantity) -> int:
        """Index of the maximum of an arbitrary derived array."""
        return int(np.argmax(np.asarray(quantity)))

    def resample(self, n: int) -> "Trajectory":
        """Uniform-in-time resampling (for plotting/benchmarks)."""
        tt = np.linspace(self.t[0], self.t[-1], n)
        interp = lambda f: np.interp(tt, self.t, f)  # noqa: E731
        return Trajectory(tt, interp(self.h), interp(self.V),
                          interp(self.gamma), interp(self.s),
                          self.vehicle, self.atmosphere)


def integrate_entry(vehicle: EntryVehicle, atmosphere: Atmosphere, *,
                    h0: float, V0: float, gamma0_deg: float,
                    t_max: float = 4000.0, h_stop: float = 0.0,
                    V_stop: float = 200.0, rtol: float = 1e-8,
                    max_step: float | None = None) -> Trajectory:
    """Integrate a planar entry from (h0, V0, gamma0).

    Parameters
    ----------
    vehicle, atmosphere:
        Vehicle ballistic description and the planet's atmosphere model.
    h0, V0:
        Entry-interface altitude [m] and inertial-relative speed [m/s].
    gamma0_deg:
        Initial flight-path angle in degrees (negative = descending).
    h_stop, V_stop:
        Termination altitude [m] / speed [m/s].

    Returns
    -------
    Trajectory
    """
    if V0 <= 0 or h0 <= h_stop:
        raise InputError("need V0 > 0 and h0 above h_stop")
    Rp = atmosphere.planet_radius
    beta_inv = vehicle.cd * vehicle.area / vehicle.mass
    lod = (vehicle.cl / vehicle.cd) if vehicle.cd > 0 else 0.0

    def rhs(t, u):
        V, gamma, h, s = u
        V = max(V, 1.0)
        rho = float(atmosphere.density(h))
        g = float(atmosphere.gravity(h))
        r = Rp + h
        q = 0.5 * rho * V * V
        a_drag = q * beta_inv
        a_lift = a_drag * lod
        dV = -a_drag - g * np.sin(gamma)
        dgamma = (a_lift - (g - V * V / r) * np.cos(gamma)) / V
        dh = V * np.sin(gamma)
        ds = V * np.cos(gamma) * Rp / r
        return [dV, dgamma, dh, ds]

    def hit_ground(t, u):
        return u[2] - h_stop
    hit_ground.terminal = True
    hit_ground.direction = -1

    def slowed(t, u):
        return u[0] - V_stop
    slowed.terminal = True
    slowed.direction = -1

    def skip_out(t, u):
        return u[2] - 1.5 * h0
    skip_out.terminal = True
    skip_out.direction = 1

    sol = solve_ivp(rhs, (0.0, t_max),
                    [V0, np.deg2rad(gamma0_deg), h0, 0.0],
                    method="RK45", rtol=rtol, atol=1e-6,
                    max_step=t_max / 400 if max_step is None else max_step,
                    events=[hit_ground, slowed, skip_out], dense_output=False)
    V, gamma, h, s = sol.y
    return Trajectory(sol.t, h, V, gamma, s, vehicle, atmosphere)
