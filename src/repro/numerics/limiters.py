"""TVD slope limiters.

Each limiter takes the two one-sided differences ``a`` (left) and ``b``
(right) of a cell and returns the limited slope.  All are symmetric,
vanish when ``a*b <= 0`` (extrema), and lie inside the second-order TVD
region (verified by property tests).
"""

from __future__ import annotations

import numpy as np

__all__ = ["minmod", "van_leer", "van_albada", "superbee"]


def minmod(a, b):
    """Most dissipative TVD limiter."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return np.where(a * b > 0.0,
                    np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def van_leer(a, b):
    """van Leer's harmonic limiter."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    prod = a * b
    return np.where(prod > 0.0, 2.0 * prod / (a + b + 1e-300), 0.0)


def van_albada(a, b):
    """van Albada's smooth limiter."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    prod = a * b
    return np.where(prod > 0.0,
                    prod * (a + b) / (a * a + b * b + 1e-300), 0.0)


def superbee(a, b):
    """Roe's superbee — least dissipative of the classical TVD limiters."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    s1 = minmod(2.0 * a, b)
    s2 = minmod(a, 2.0 * b)
    pick = np.where(np.abs(s1) > np.abs(s2), s1, s2)
    return np.where(a * b > 0.0, pick, 0.0)
