"""Ablation benchmarks for DESIGN.md's called-out design choices.

* upwind scheme on the blunt body (HLLE vs Steger-Warming vs van Leer):
  same captured physics, different cost/dissipation,
* MUSCL order (1 vs 2) on the Sod problem: accuracy per cost,
* radiative cooling on/off in the Titan VSL.
"""

import numpy as np
import pytest

from repro.core.gas import IdealGasEOS
from repro.geometry import Hemisphere
from repro.grid import blunt_body_grid
from repro.numerics.riemann import sod_exact
from repro.solvers.euler1d import Euler1DSolver
from repro.solvers.euler2d import AxisymmetricEulerSolver


@pytest.mark.parametrize("flux", ["hlle", "steger_warming", "van_leer"])
def test_bench_blunt_body_flux_scheme(benchmark, flux):
    body = Hemisphere(1.0)
    grid = blunt_body_grid(body, n_s=25, n_normal=35, density_ratio=0.2)
    s = AxisymmetricEulerSolver(grid, IdealGasEOS(1.4), flux=flux)
    rho, T = 0.01, 220.0
    s.set_freestream(rho, 8.0 * np.sqrt(1.4 * 287.0528 * T),
                     rho * 287.0528 * T)

    def fifty_steps():
        for _ in range(50):
            s.step(0.35)
        return s.U

    U = benchmark.pedantic(fifty_steps, rounds=1, iterations=1,
                           warmup_rounds=0)
    assert np.all(np.isfinite(U))
    print(f"\n{flux}: 50 steps on 24x34 cells")


@pytest.mark.parametrize("order", [1, 2])
def test_bench_sod_muscl_order(benchmark, order):
    x = np.linspace(0.0, 1.0, 201)
    xc = 0.5 * (x[1:] + x[:-1])

    def solve():
        s = Euler1DSolver(x, order=order)
        s.set_initial(np.where(xc < 0.5, 1.0, 0.125), 0.0,
                      np.where(xc < 0.5, 1.0, 0.1))
        s.run(0.2)
        return s

    s = benchmark.pedantic(solve, rounds=1, iterations=1,
                           warmup_rounds=0)
    re, _, _ = sod_exact(s.xc, 0.2)
    err = float(np.abs(s.primitives()[0] - re).mean())
    print(f"\nMUSCL order {order}: Sod L1 density error = {err:.4f}")
    assert err < (0.02 if order == 1 else 0.012)


def test_bench_fig4_grid_convergence(once):
    """Grid-convergence study of the equilibrium shock standoff (the
    credibility check behind the Fig. 4 numbers), with Richardson
    extrapolation of the grid-converged value."""
    from repro.core.gas import TabulatedEOS
    from repro.geometry import Sphere
    from repro.validation import richardson_extrapolate

    def standoff(n):
        body = Sphere(1.3)
        grid = blunt_body_grid(body, n_s=n, n_normal=int(1.5 * n),
                               density_ratio=0.07, margin=2.8)
        s = AxisymmetricEulerSolver(grid, TabulatedEOS())
        s.set_freestream(1.56e-4, 6700.0, 1.56e-4 * 287.05 * 233.0)
        s.run(n_steps=40 * n, cfl=0.35)
        return s.stagnation_standoff()

    def study():
        return standoff(21), standoff(31)

    d_c, d_f = once(study)
    d_rich = float(richardson_extrapolate(d_c, d_f, 31.0 / 21.0, 1.0))
    print(f"\nFig. 4 grid convergence: standoff {d_c:.4f} m (21x31) -> "
          f"{d_f:.4f} m (31x46); Richardson limit ~{d_rich:.4f} m")
    # the two grids agree to ~20% and bracket a physical value
    assert abs(d_f - d_c) < 0.25 * d_f
    assert 0.02 < d_rich < 0.12


def test_bench_vsl_radiative_cooling(once, ):
    from repro.atmosphere import TitanAtmosphere
    from repro.solvers.vsl import StagnationVSL
    from repro.thermo.equilibrium import (EquilibriumGas,
                                          titan_reference_mass_fractions)
    from repro.thermo.species import species_set

    db = species_set("titan9")
    gas = EquilibriumGas(db, titan_reference_mass_fractions(db))
    vsl = StagnationVSL(gas, nose_radius=0.64)
    atm = TitanAtmosphere()
    h = 287e3
    kw = dict(rho_inf=float(atm.density(h)),
              T_inf=float(atm.temperature(h)), V=10500.0, T_wall=1800.0,
              n_profile=40, n_lambda=120)

    def both():
        on = vsl.solve(radiative_cooling=True, **kw)
        off = vsl.solve(radiative_cooling=False, **kw)
        return on, off

    on, off = once(both)
    print(f"\nVSL radiative cooling: q_rad {off.q_rad / 1e4:.1f} -> "
          f"{on.q_rad / 1e4:.1f} W/cm^2 "
          f"({100 * (1 - on.q_rad / max(off.q_rad, 1e-30)):.1f}% loss "
          f"correction)")
    assert on.q_rad <= off.q_rad
