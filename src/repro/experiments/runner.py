"""Run every figure experiment and print a combined report.

``python -m repro.experiments.runner [--full]``

The runner is resilient two ways:

* a failing figure is caught, summarised (with its
  :class:`~repro.resilience.FailureReport` when the resilience layer
  attached one) and the suite continues — one bad flight condition must
  not cost the other eight figures;
* with ``checkpoint_dir`` the suite is **durable**: each completed
  figure leaves an atomically-written ``<name>.done`` marker holding its
  output, and marching figures persist solver snapshots beneath
  ``<checkpoint_dir>/<name>/``.  Re-running with ``resume=True`` after a
  crash (SIGKILL, OOM, preemption) replays completed figures from their
  markers and continues interrupted ones mid-march (see
  :mod:`repro.resilience.persistence`).

With ``isolate`` (``--isolate [--deadline S]`` on the CLI) each figure
additionally runs in a sandboxed child process under a wall-clock
deadline, an RSS memory budget and heartbeat stall detection
(:mod:`repro.resilience.isolation`): a hung or ballooning figure is
killed and retried in a fresh child — combined with ``checkpoint_dir``
the retry re-enters mid-march from the durable snapshots.
"""

from __future__ import annotations

import inspect
import json
import os
import shutil
import sys
import time
import traceback

from repro.errors import SolverError
from repro.resilience import drain_ledgers

from repro.experiments import (fig1_flight_domain, fig2_titan_heating,
                               fig3_species_profiles, fig4_shock_shape,
                               fig5_orbiter_geometry,
                               fig6_windward_heating,
                               fig7_shock_relaxation, fig8_spectra,
                               fig9_n2_contours)

__all__ = ["run_all", "run_all_farm"]

_MODULES = [
    ("fig1", fig1_flight_domain),
    ("fig2", fig2_titan_heating),
    ("fig3", fig3_species_profiles),
    ("fig4", fig4_shock_shape),
    ("fig5", fig5_orbiter_geometry),
    ("fig6", fig6_windward_heating),
    ("fig7", fig7_shock_relaxation),
    ("fig8", fig8_spectra),
    ("fig9", fig9_n2_contours),
]


def _write_done(path: str, text: str) -> None:
    """Atomic done-marker write (temp -> fsync -> rename), so a crash
    mid-write never leaves a half-truthful completion record."""
    tmp = os.path.join(os.path.dirname(path),
                       f".tmp-{os.path.basename(path)}")
    with open(tmp, "w") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _run_isolated(name, mod, kwargs, isolate, checkpoint_dir, stream):
    """Run one figure inside an isolation sandbox; reports kill events
    on the stream and returns the figure's output text."""
    from repro.resilience.isolation import IsolatedRunner, as_isolation
    runner = IsolatedRunner(as_isolation(isolate), label=name)
    workdir = (None if checkpoint_dir is None
               else os.path.join(checkpoint_dir, f"{name}.sandbox"))
    try:
        return runner.run_callable(mod.main, kwargs=kwargs,
                                   workdir=workdir)
    finally:
        for ev in runner.events:
            print(f"[{name} isolation: {ev.kind} after "
                  f"{ev.elapsed:.1f} s on attempt {ev.attempt} — "
                  f"{ev.message}]", file=stream)


def run_all(quick: bool = True, *, stream=None, keep_going: bool = True,
            checkpoint_dir: str | None = None, resume: bool = False,
            isolate=None) -> dict:
    """Run every experiment.

    Returns ``{"timings": {name: seconds}, "failures": {name: exc},
    "skipped": [names replayed from done markers],
    "ledgers": {name: [ledger dicts]}}``.
    With ``keep_going`` (the default) a failing figure is reported —
    including its attached FailureReport, when present — and the rest of
    the suite still runs; ``keep_going=False`` restores fail-fast.

    Degradation ledgers (see :mod:`repro.resilience.degradation`) are
    drained per figure: any march that degraded gracefully shows up
    under its figure's name, is summarised on the stream, and — with
    ``checkpoint_dir`` — is written to ``<name>.ledger.json``.

    ``checkpoint_dir`` makes the suite durable (done markers + solver
    snapshots); ``resume`` replays completed figures from their markers
    and lets marching figures continue from their latest on-disk
    snapshot instead of starting over.

    ``isolate`` (``True`` for defaults, or an
    :class:`~repro.resilience.IsolationPolicy`) sandboxes each figure
    in a supervised child process — hung, ballooning or crashing
    figures are killed, reported and retried in a fresh child.  Note
    that a sandboxed figure's degradation ledgers drain inside the
    child and are not visible to the suite's ``ledgers`` output.
    """
    stream = stream or sys.stdout
    timings: dict[str, float] = {}
    failures: dict[str, Exception] = {}
    skipped: list[str] = []
    ledgers: dict[str, list] = {}
    drain_ledgers()  # discard stale entries from earlier in-process runs
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    for name, mod in _MODULES:
        done_path = (None if checkpoint_dir is None
                     else os.path.join(checkpoint_dir, f"{name}.done"))
        print(f"\n{'=' * 78}\n{name}: {mod.__doc__.splitlines()[0]}"
              f"\n{'=' * 78}", file=stream)
        if resume and done_path is not None and os.path.exists(done_path):
            with open(done_path) as f:
                print(f.read(), file=stream)
            print(f"[{name} replayed from checkpoint]", file=stream)
            skipped.append(name)
            timings[name] = 0.0
            continue
        if checkpoint_dir is not None and not resume:
            # fresh (non-resume) run: stale markers/snapshots from an
            # earlier suite must not be silently resumed into
            if os.path.exists(done_path):
                os.remove(done_path)
            shutil.rmtree(os.path.join(checkpoint_dir, name),
                          ignore_errors=True)
        kwargs: dict = {"quick": quick}
        if (checkpoint_dir is not None and "persist_dir"
                in inspect.signature(mod.main).parameters):
            kwargs["persist_dir"] = os.path.join(checkpoint_dir, name)
        t0 = time.perf_counter()
        try:
            if isolate:
                out = _run_isolated(name, mod, kwargs, isolate,
                                    checkpoint_dir, stream)
            else:
                out = mod.main(**kwargs)
            print(out, file=stream)
            if done_path is not None:
                _write_done(done_path, out)
        except Exception as err:
            if not keep_going:
                raise
            failures[name] = err
            print(f"[{name} FAILED: {type(err).__name__}: {err}]",
                  file=stream)
            report = getattr(err, "report", None)
            if report is not None:
                print(report.summary(), file=stream)
            else:
                print("".join(traceback.format_exception(err)).rstrip(),
                      file=stream)
        finally:
            drained = [led.to_dict() for led in drain_ledgers()
                       if len(led)]
            if drained:
                ledgers[name] = drained
                for led in drained:
                    print(f"[{name} degradation: "
                          f"{led['n_demotions']} demotion(s), "
                          f"{led['n_promotions']} re-promotion(s), "
                          f"fully_promoted={led['fully_promoted']}]",
                          file=stream)
                if checkpoint_dir is not None:
                    ledger_path = os.path.join(checkpoint_dir,
                                               f"{name}.ledger.json")
                    with open(ledger_path, "w") as f:
                        json.dump(drained, f, indent=2)
            timings[name] = time.perf_counter() - t0
            print(f"[{name} completed in {timings[name]:.1f} s]",
                  file=stream)
    if skipped:
        print(f"\n{len(skipped)} figure(s) replayed from "
              f"{checkpoint_dir!r}: {skipped}", file=stream)
    if failures:
        print(f"\n{len(failures)}/{len(_MODULES)} figure(s) failed: "
              f"{sorted(failures)}", file=stream)
    return {"timings": timings, "failures": failures, "skipped": skipped,
            "ledgers": ledgers}


def run_all_farm(quick: bool = True, *, n_workers: int = 4,
                 stream=None, queue_dir: str | None = None,
                 deadline: float | None = None,
                 stall_timeout: float | None = None,
                 memory_mb: float | None = None, kill_plan=None,
                 host_id: str | None = None,
                 max_skew: float = 2.0) -> dict:
    """Run the nine-figure suite on the solve farm (``figures --farm``).

    Each figure becomes one ``figure`` job on a durable
    :class:`~repro.resilience.WorkQueue`, drained by ``n_workers``
    sandboxed workers; a figure whose worker dies is reclaimed when its
    lease expires and retried, resuming any durable march from its
    snapshots under the job workdir.  Passing an existing ``queue_dir``
    resumes a previous campaign: completed figures replay from their
    queue results instead of recomputing (enqueue is idempotent).

    Returns the ``run_all`` dict plus a ``"farm"`` campaign ledger;
    ``failures`` maps dead-lettered figures to their recorded errors.
    """
    import tempfile

    from repro.resilience.farm import Farm, FarmPolicy
    from repro.resilience.queue import Job, WorkQueue

    stream = stream or sys.stdout
    if queue_dir is None:
        queue_dir = tempfile.mkdtemp(prefix="repro-figures-farm-")
    policy = FarmPolicy(n_workers=n_workers, deadline=deadline,
                        stall_timeout=stall_timeout,
                        memory_mb=memory_mb, host_id=host_id,
                        max_skew=max_skew)
    queue = WorkQueue(queue_dir, lease_ttl=policy.lease_ttl,
                      backoff=policy.backoff, host_id=host_id,
                      max_skew=max_skew)
    for name, mod in _MODULES:
        queue.enqueue(Job(
            id=name, kind="figure",
            payload={"module": mod.__name__.rsplit(".", 1)[1],
                     "quick": bool(quick)}))
    print(f"figures --farm: {len(_MODULES)} figure(s) on {n_workers} "
          f"worker(s), queue {queue_dir}", file=stream)
    farm = Farm(queue, policy, label="figures", stream=stream,
                kill_plan=kill_plan)
    ledger = farm.run()

    timings: dict[str, float] = {}
    failures: dict[str, Exception] = {}
    skipped: list[str] = []
    for name, mod in _MODULES:
        print(f"\n{'=' * 78}\n{name}: {mod.__doc__.splitlines()[0]}"
              f"\n{'=' * 78}", file=stream)
        res = queue.result(name)
        if res is not None:
            print((res.get("result") or {}).get("output"), file=stream)
            continue
        rec = queue.dead_letter(name) or {}
        err = SolverError(f"{name}: dead-lettered after "
                          f"{rec.get('attempts')} attempt(s): "
                          f"{rec.get('error')}")
        failures[name] = err
        print(f"[{name} FAILED: {err}]", file=stream)
    claims: dict[str, float] = {}
    for recd in queue.read_journal():
        if recd.get("event") == "claim":
            claims[recd.get("job")] = float(recd["t"])
        elif (recd.get("event") == "complete"
                and recd.get("job") in claims):
            timings[recd["job"]] = round(
                float(recd["t"]) - claims[recd["job"]], 2)
    print(f"\nfigures --farm: {ledger['jobs']} in "
          f"{ledger['wall_time']:.1f} s wall "
          f"({ledger['attempts']} attempt(s), "
          f"{ledger['reclaims']} reclaim(s))", file=stream)
    if failures:
        print(f"{len(failures)}/{len(_MODULES)} figure(s) failed: "
              f"{sorted(failures)}", file=stream)
    return {"timings": timings, "failures": failures, "skipped": skipped,
            "ledgers": {}, "farm": ledger}


if __name__ == "__main__":
    res = run_all(quick="--full" not in sys.argv)
    raise SystemExit(1 if res["failures"] else 0)
