"""Finding and severity types shared by catlint and the units checker."""

from __future__ import annotations

import dataclasses
import hashlib


class Severity:
    """Ordered severity levels.

    ``error`` findings are correctness hazards (swallowed crash faults,
    float equality on state); ``warning`` findings are numerical-safety
    smells (missing dtype, unguarded log); ``info`` findings are
    conventions (pragma without a reason).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 2, WARNING: 1, INFO: 0}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, -1)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``line``/``col`` are 1-based line and 0-based column, matching the
    ``ast`` module.  ``source_line`` is the stripped text of the
    offending line — it anchors the baseline key so findings survive
    unrelated line-number drift.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    def key(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        h = hashlib.sha256()
        h.update(self.path.encode())
        h.update(b"\x00")
        h.update(self.rule.encode())
        h.update(b"\x00")
        h.update(self.source_line.strip().encode())
        return h.hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
            "key": self.key(),
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} [{self.severity}] {self.message}")
