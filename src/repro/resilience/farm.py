"""Fault-tolerant solve farm: N supervised workers draining a durable
work queue.

The farm is the job scheduler the resilience stack was built toward:
:class:`~repro.resilience.isolation.IsolatedRunner` sandboxes one
attempt, :class:`~repro.resilience.persistence.SnapshotStore` makes a
killed march resumable, and the :mod:`~repro.resilience.queue` /
:mod:`~repro.resilience.lease` pair make *ownership* of work durable.
This module assembles them:

* **Workers** (:func:`_worker_main`) claim jobs off the shared
  :class:`~repro.resilience.queue.WorkQueue`, execute them inside an
  isolation sandbox under the job's wall-clock deadline, RSS budget and
  heartbeat stall timeout, renew their lease from a background thread
  while the job runs, and commit the result fenced by the lease token.
  SIGTERM drains gracefully: the current attempt is checkpointed (the
  sandbox child is killed — its durable snapshots survive), the job is
  preempted back to the queue *without* charging an attempt, and the
  worker exits 0.

* **The farm** (:class:`Farm`) spawns the workers, watches their
  heartbeat files with the same liveness-by-silence helpers the
  stencil pool uses (:mod:`repro.resilience.lease`), reaps expired job
  leases so a dead worker's job is reclaimed within one ttl, replaces
  dead or stalled workers from a bounded restart budget, sweeps the
  orphaned sandbox children a SIGKILLed worker leaves behind, and —
  when a :class:`WorkerKillPlan` is armed — SIGKILLs its own workers on
  a deterministic schedule (the chaos harness's ``--farm`` mode).

* **Job kinds** (:data:`JOB_KINDS`) map a job's ``kind`` string to the
  function that executes its payload inside the sandbox child: paper
  figures, persist-protocol solver marches (which auto-resume from the
  latest durable snapshot generation when a killed attempt is
  retried), chaos rounds, arbitrary callables, and two scripted kinds
  (``sleep``, ``flaky``) the tests and smoke campaigns lean on.

Every attempt, kill, requeue, reclaim, preemption and dead-letter is a
line in the queue's crash-safe journal; :func:`build_ledger` folds the
journal into the campaign ledger and :func:`bench_from_journal` into
the ``BENCH_farm.json`` throughput record.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import multiprocessing as mp
import os
import signal
import sys
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import CatError, InputError, SolverError
from repro.resilience.isolation import (Heartbeat, IsolatedRunner,
                                        IsolationPolicy,
                                        current_process_heartbeat,
                                        kill_pid_tree, terminate_process)
from repro.resilience.lease import (expired_indices, format_ages,
                                    heartbeat_ages)
from repro.resilience.queue import BackoffPolicy, Job, WorkQueue

__all__ = ["Farm", "FarmPolicy", "JOB_KINDS", "WorkerKillPlan",
           "bench_from_journal", "build_ledger", "job_kind",
           "run_campaign", "write_bench_json"]


# ----------------------------------------------------------------------
# job kinds
# ----------------------------------------------------------------------

#: kind name -> ``fn(payload, ctx) -> JSON-able result`` executed in the
#: sandbox child.  ``ctx`` carries ``workdir`` (durable, per-job),
#: ``ckpt_dir`` (durable snapshot ladder — marches resume from here
#: after a kill), ``queue_dir`` and ``job_id``.
JOB_KINDS: dict = {}


def job_kind(name: str):
    """Register a job executor under ``name`` (decorator)."""

    def deco(fn):
        JOB_KINDS[name] = fn
        return fn

    return deco


@job_kind("figure")
def _job_figure(payload: dict, ctx: dict) -> dict:
    """One paper figure: payload ``{"module": "fig1_flight_domain",
    "quick": true}``.  Figures that speak the persist protocol march
    durably under the job workdir, so a killed attempt resumes."""
    mod = importlib.import_module(
        f"repro.experiments.{payload['module']}")
    kwargs: dict = {"quick": bool(payload.get("quick", True))}
    if "persist_dir" in inspect.signature(mod.main).parameters:
        kwargs["persist_dir"] = os.path.join(ctx["workdir"], "persist")
    return {"output": mod.main(**kwargs)}


@job_kind("solver_case")
def _job_solver_case(payload: dict, ctx: dict) -> dict:
    """March one chaos-matrix solver case durably; returns a SHA-256
    fingerprint of the final marching state, so kill-and-resume
    campaigns can assert bitwise identity against a reference run."""
    from repro.resilience.chaos import CASES
    from repro.resilience.persistence import PersistencePolicy
    factory, run_kwargs, _, _ = CASES[payload["case"]]
    solver = factory()
    kwargs = dict(run_kwargs)
    kwargs.update(payload.get("run_kwargs") or {})
    solver.run(**kwargs, persist=PersistencePolicy(
        dir=ctx["ckpt_dir"],
        every_n_steps=int(payload.get("every_n_steps", 3))))
    return {"case": payload["case"], "steps": int(solver.steps),
            "state_sha256": state_fingerprint(solver)}


@job_kind("chaos_round")
def _job_chaos_round(payload: dict, ctx: dict) -> dict:
    """One chaos round with its own spawned rng (``seed`` is a sequence
    like ``[campaign_seed, index]`` so rounds are order-independent).

    The round supervises its *own* inner sandbox, so jobs of this kind
    must run with the outer ``stall_timeout`` disabled: the outer child
    blocks in the inner supervision loop and never beats.
    """
    from repro.resilience.chaos import run_round
    rng = np.random.default_rng(payload["seed"])
    report = run_round(
        int(payload["index"]), rng,
        out_dir=os.path.join(ctx["workdir"], "reports"),
        deadline=float(payload.get("deadline", 30.0)),
        stall_timeout=float(payload.get("stall_timeout", 2.0)),
        memory_margin_mb=float(payload.get("memory_margin_mb", 250.0)),
        balloon_mb=float(payload.get("balloon_mb", 500.0)))
    return {"report": report}


@job_kind("callable")
def _job_callable(payload: dict, ctx: dict) -> dict:
    """``{"module": "pkg.mod", "func": "name", "kwargs": {...}}`` —
    the generic escape hatch (batch solve requests, benchmarks)."""
    mod = importlib.import_module(payload["module"])
    fn = getattr(mod, payload["func"])
    return {"result": fn(**dict(payload.get("kwargs") or {}))}


@job_kind("sleep")
def _job_sleep(payload: dict, ctx: dict) -> dict:
    """Scripted busy-wait that beats the process heartbeat — scheduling
    fodder for tests and throughput smoke campaigns."""
    t_end = time.monotonic() + float(payload.get("duration", 0.1))
    hb = current_process_heartbeat()
    while time.monotonic() < t_end:
        if hb is not None:
            hb.beat(force=True)
        time.sleep(0.01)
    return {"slept": float(payload.get("duration", 0.1))}


@job_kind("flaky")
def _job_flaky(payload: dict, ctx: dict) -> dict:
    """Fails its first ``fail_first`` attempts (scripted, durable
    count), then succeeds — exercises the retry/backoff ladder and the
    dead-letter path end to end."""
    marker_dir = os.path.join(ctx["workdir"], "flaky-attempts")
    os.makedirs(marker_dir, exist_ok=True)
    n_before = len(os.listdir(marker_dir))
    with open(os.path.join(marker_dir, f"attempt-{n_before:04d}-"
                           f"{os.getpid()}"), "w") as f:
        f.write(str(time.time()))
    if n_before < int(payload.get("fail_first", 1)):
        raise SolverError(f"flaky job: scripted failure "
                          f"{n_before + 1}/{payload.get('fail_first')}")
    return {"attempts_used": n_before + 1}


def state_fingerprint(solver) -> str:
    """SHA-256 over the solver's full marching state, byte-exact."""
    h = hashlib.sha256()
    for k in sorted(solver.get_state()):
        v = solver.get_state()[k]
        h.update(k.encode())
        h.update(v.tobytes() if isinstance(v, np.ndarray)
                 else repr(v).encode())
    return h.hexdigest()


def _execute_job(queue_dir: str, job_id: str):
    """Sandbox-child entry point: resolve the job and run its kind."""
    queue = WorkQueue(queue_dir)
    job = queue.job(job_id)
    fn = JOB_KINDS.get(job.kind)
    if fn is None:
        raise SolverError(f"farm: unknown job kind {job.kind!r} "
                          f"(registered: {sorted(JOB_KINDS)})")
    workdir = queue.job_workdir(job_id)
    ctx = {"workdir": workdir,
           "ckpt_dir": os.path.join(workdir, "ckpt"),
           "queue_dir": queue_dir, "job_id": job_id}
    return fn(job.payload, ctx)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

@dataclass
class FarmPolicy:
    """Budgets and knobs of a farm run.

    Attributes
    ----------
    n_workers:
        Supervised worker processes draining the queue.
    lease_ttl:
        Job-lease time to live [s]; a worker renews every ttl/3, so a
        dead worker's job is reclaimed within roughly one ttl.
    poll_interval:
        Idle-worker and farm-supervision poll period [s].
    worker_stall_timeout:
        Worker-heartbeat silence [s] after which the farm kills and
        replaces the worker (its job lease then expires and reclaims).
    worker_restart_budget:
        Replacement workers the farm may spawn campaign-wide after
        deaths/kills before it stops replacing.
    deadline, memory_mb, stall_timeout:
        Per-job isolation budgets applied when the job spec leaves them
        None.
    snapshot_every:
        Durable snapshot cadence marching jobs run with (the resume
        granularity after a kill).
    backoff:
        The queue's retry :class:`~repro.resilience.queue.BackoffPolicy`
        (max attempts, exponential delay, deterministic jitter).
    drain_when_idle:
        Campaign mode: workers exit once every job is terminal.  The
        ``serve`` loop sets this False and waits for new work instead.
    max_wall_time:
        Campaign wall-clock budget [s]; None = unbounded.
    """

    n_workers: int = 2
    lease_ttl: float = 15.0
    poll_interval: float = 0.25
    worker_stall_timeout: float = 60.0
    worker_restart_budget: int = 8
    deadline: float | None = None
    memory_mb: float | None = None
    stall_timeout: float | None = None
    snapshot_every: int = 5
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    drain_when_idle: bool = True
    max_wall_time: float | None = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise InputError("n_workers must be >= 1")
        if self.lease_ttl <= 0.0 or self.poll_interval <= 0.0:
            raise InputError("lease_ttl and poll_interval must be "
                             "positive")

    def worker_config(self) -> dict:
        return {"lease_ttl": self.lease_ttl,
                "poll_interval": self.poll_interval,
                "deadline": self.deadline, "memory_mb": self.memory_mb,
                "stall_timeout": self.stall_timeout,
                "snapshot_every": self.snapshot_every,
                "backoff": asdict(self.backoff),
                "drain_when_idle": self.drain_when_idle}


@dataclass
class WorkerKillPlan:
    """Deterministic worker-SIGKILL schedule (chaos ``--farm`` mode).

    ``kills`` SIGKILLs are delivered to randomly-chosen live workers at
    intervals drawn uniformly from [min_interval, max_interval] — all
    of it a pure function of ``seed``, so a failing campaign replays.
    """

    seed: int = 0
    kills: int = 2
    min_interval: float = 1.0
    max_interval: float = 6.0

    def schedule(self) -> list[float]:
        """Kill times as offsets from campaign start [s]."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.uniform(self.min_interval, self.max_interval,
                           size=int(self.kills))
        return list(np.cumsum(gaps))


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------

class _DrainRequested(Exception):
    """Raised by the worker's SIGTERM handler mid-job: checkpoint,
    preempt the job back to the queue, exit clean."""


def _renew_loop(queue: WorkQueue, lease, stop: threading.Event,
                lost: threading.Event, hb: Heartbeat) -> None:
    """Background renewal while the job runs: keep the lease fresh and
    the worker's heartbeat visible; flag the lease as lost (fenced) the
    moment renewal fails."""
    interval = max(0.05, lease.ttl / 3.0)
    while not stop.wait(interval):
        hb.beat(force=True)
        if not queue.leases.renew(lease):
            lost.set()
            return


def _child_pid_path(workdir: str) -> str:
    return os.path.join(workdir, "child.json")


def _run_one(queue: WorkQueue, job: Job, lease, name: str, cfg: dict,
             flags: dict, hb: Heartbeat) -> None:
    """Execute one claimed job attempt end to end (sandbox, renewal
    thread, fenced commit / requeue / preemption)."""
    if job.kind not in JOB_KINDS:
        # fail fast without burning a sandbox spawn on every retry
        queue.fail(job, lease, f"farm: unknown job kind {job.kind!r} "
                   f"(registered: {sorted(JOB_KINDS)})")
        return
    workdir = queue.job_workdir(job.id)
    policy = IsolationPolicy(
        deadline=(job.deadline if job.deadline is not None
                  else cfg["deadline"]),
        memory_mb=(job.memory_mb if job.memory_mb is not None
                   else cfg["memory_mb"]),
        stall_timeout=(job.stall_timeout if job.stall_timeout is not None
                       else cfg["stall_timeout"]),
        max_restarts=0,   # retries belong to the queue, not the sandbox
        term_grace=1.0,
        every_n_steps=int(cfg["snapshot_every"]))
    runner = IsolatedRunner(policy, label=f"{name}:{job.id}")

    def on_spawn(pid, attempt):
        # advertise the sandbox child so the farm can sweep it if this
        # worker is SIGKILLed out from under it
        try:
            with open(_child_pid_path(workdir), "w") as f:
                json.dump({"worker": name, "job": job.id, "pid": pid},
                          f)
        except OSError:
            pass

    stop, lost = threading.Event(), threading.Event()
    renewer = threading.Thread(target=_renew_loop,
                               args=(queue, lease, stop, lost, hb),
                               daemon=True)
    renewer.start()
    outcome, err_obj, result = "drain", None, None
    try:
        flags["raise_on_term"] = True
        try:
            if flags["draining"]:
                raise _DrainRequested()
            result = runner.run_callable(
                _execute_job, (queue.dir, job.id),
                workdir=os.path.join(workdir, "sandbox"),
                on_spawn=on_spawn)
            outcome = "ok"
        except _DrainRequested:
            outcome = "drain"
            flags["draining"] = True
        except CatError as err:
            outcome, err_obj = "fail", err
        # catlint: disable=CAT012 -- worker boundary: an exotic job
        # exception must dead-letter the job, never kill the worker
        # loop; SimulatedCrash is a BaseException and still propagates
        except Exception as err:
            outcome, err_obj = "fail", err
        finally:
            flags["raise_on_term"] = False
        if outcome == "ok":
            for ev in runner.events:
                queue.journal("isolation-event", job=job.id, worker=name,
                              kind=ev.kind, message=ev.message)
            queue.complete(job, lease, result)
        elif outcome == "drain":
            queue.preempt(job, lease)
        else:
            report = getattr(err_obj, "report", None)
            queue.fail(job, lease,
                       f"{type(err_obj).__name__}: {err_obj}",
                       report=None if report is None
                       else report.to_dict())
    finally:
        stop.set()
        renewer.join(timeout=5.0)
        try:
            os.remove(_child_pid_path(workdir))
        except OSError:
            pass


def _worker_main(queue_dir: str, name: str, cfg: dict) -> None:
    """A worker process: claim → sandbox → commit, until drained."""
    try:
        os.setpgid(0, 0)
    except OSError:
        pass
    queue = WorkQueue(queue_dir, lease_ttl=cfg["lease_ttl"],
                      backoff=BackoffPolicy(**cfg["backoff"]))
    workers_dir = os.path.join(queue.dir, "workers")
    os.makedirs(workers_dir, exist_ok=True)
    hb = Heartbeat(os.path.join(workers_dir, f"{name}.json"),
                   min_interval=0.02)
    flags = {"draining": False, "raise_on_term": False}

    def on_term(signum, frame):
        flags["draining"] = True
        if flags["raise_on_term"]:
            raise _DrainRequested()

    signal.signal(signal.SIGTERM, on_term)
    signal.signal(signal.SIGINT, on_term)
    queue.journal("worker-start", worker=name, pid=os.getpid())
    while not flags["draining"]:
        hb.beat(force=True)
        claimed = queue.claim(name)
        if claimed is None:
            if cfg["drain_when_idle"] and queue.all_terminal():
                break
            time.sleep(cfg["poll_interval"])
            continue
        job, lease = claimed
        _run_one(queue, job, lease, name, cfg, flags, hb)
    queue.journal("worker-exit", worker=name, pid=os.getpid(),
                  drained=flags["draining"])


# ----------------------------------------------------------------------
# the farm
# ----------------------------------------------------------------------

class Farm:
    """Spawn, supervise and (when chaos demands) kill the workers.

    Parameters
    ----------
    queue:
        A :class:`~repro.resilience.queue.WorkQueue` or a queue
        directory path.
    policy:
        A :class:`FarmPolicy` (defaults apply when None).
    kill_plan:
        Optional :class:`WorkerKillPlan` — the farm SIGKILLs its own
        workers on the plan's deterministic schedule.
    """

    def __init__(self, queue, policy: FarmPolicy | None = None, *,
                 label: str = "farm", stream=None, kill_plan=None):
        self.policy = policy or FarmPolicy()
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue, lease_ttl=self.policy.lease_ttl,
                              backoff=self.policy.backoff)
        self.queue = queue
        self.label = label
        self.stream = stream or sys.stdout
        self.kill_plan = kill_plan
        self.kills: list[dict] = []
        self._stop = False
        self._workers: list[dict] = []   # {proc, name, index, last_raw,
        #                                   last_change}
        self._spawned = 0

    # -- worker lifecycle ----------------------------------------------

    def _spawn_worker(self, index: int) -> dict:
        gen = self._spawned
        self._spawned += 1
        name = f"w{index}" if gen < self.policy.n_workers \
            else f"w{index}.{gen}"
        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_worker_main,
                           args=(self.queue.dir, name,
                                 self.policy.worker_config()),
                           daemon=False)
        proc.start()
        rec = {"proc": proc, "name": name, "index": index,
               "last_raw": None, "last_change": time.monotonic()}
        print(f"[{self.label}] worker {name} started (pid {proc.pid})",
              file=self.stream)
        return rec

    def _hb_path(self, name: str) -> str:
        return os.path.join(self.queue.dir, "workers", f"{name}.json")

    def _observe(self, rec: dict, now: float) -> None:
        """Age a worker's heartbeat with the farm's own clock (payload
        change detection, same convention as IsolatedRunner)."""
        try:
            with open(self._hb_path(rec["name"]), "rb") as f:
                raw = f.read()
        except OSError:
            raw = None
        if raw != rec["last_raw"]:
            rec["last_raw"], rec["last_change"] = raw, now

    def _sweep_orphans(self, victim: str) -> None:
        """SIGKILL the sandbox children a dead worker left behind (they
        live in their own process groups, so killing the worker's group
        does not reach them)."""
        for job_id in self.queue.job_ids():
            path = _child_pid_path(os.path.join(self.queue.work_dir,
                                                job_id))
            try:
                with open(path) as f:
                    rec = json.load(f)
            except (OSError, ValueError):
                continue
            if rec.get("worker") != victim:
                continue
            kill_pid_tree(rec.get("pid"))
            try:
                os.remove(path)
            except OSError:
                pass
            self.queue.journal("orphan-sweep", worker=victim,
                               job=rec.get("job"), pid=rec.get("pid"))

    def _kill_worker(self, rec: dict, *, kind: str, reason: str) -> None:
        proc = rec["proc"]
        pid = proc.pid
        if kind == "chaos":
            # the whole point: an abrupt SIGKILL, no graceful path
            kill_pid_tree(pid)
            proc.join(10.0)
        else:
            terminate_process(proc, grace=1.0)
        self._sweep_orphans(rec["name"])
        self.kills.append({"worker": rec["name"], "pid": pid,
                           "kind": kind, "reason": reason})
        self.queue.journal("worker-kill", worker=rec["name"], pid=pid,
                           kind=kind, reason=reason)
        print(f"[{self.label}] killed worker {rec['name']} ({kind}: "
              f"{reason})", file=self.stream)

    def _replace(self, rec: dict, restarts_left: int) -> int:
        self._workers.remove(rec)
        if restarts_left <= 0:
            print(f"[{self.label}] worker restart budget exhausted; "
                  f"not replacing {rec['name']}", file=self.stream)
            return restarts_left
        self._workers.append(self._spawn_worker(rec["index"]))
        return restarts_left - 1

    # -- supervision loop ----------------------------------------------

    def _install_signals(self):
        def on_term(signum, frame):
            self._stop = True

        try:
            signal.signal(signal.SIGTERM, on_term)
            signal.signal(signal.SIGINT, on_term)
        except ValueError:
            pass   # not the main thread (tests drive run() directly)

    def run(self) -> dict:
        """Drive a campaign to completion; returns the campaign ledger.

        Exits when every job is terminal (``drain_when_idle``), when the
        wall-clock budget runs out, or on SIGTERM/SIGINT — always
        through the graceful drain (workers SIGTERMed, current attempts
        checkpointed and preempted) and always with a ledger.
        """
        pol = self.policy
        self._install_signals()
        self.queue.journal("campaign-start", label=self.label,
                           n_workers=pol.n_workers,
                           jobs=len(self.queue.job_ids()))
        t0 = time.monotonic()
        self._workers = [self._spawn_worker(i)
                         for i in range(pol.n_workers)]
        restarts_left = pol.worker_restart_budget
        kill_times = (self.kill_plan.schedule()
                      if self.kill_plan is not None else [])
        kill_rng = (np.random.default_rng(self.kill_plan.seed + 1)
                    if self.kill_plan is not None else None)
        next_kill = 0
        try:
            while True:
                time.sleep(pol.poll_interval)
                now = time.monotonic()
                elapsed = now - t0
                for job_id in self.queue.reclaim_expired():
                    print(f"[{self.label}] lease expired: job "
                          f"{job_id} reclaimed", file=self.stream)
                # chaos kills on schedule
                while (next_kill < len(kill_times)
                        and elapsed >= kill_times[next_kill]):
                    alive = [r for r in self._workers
                             if r["proc"].is_alive()]
                    if alive:
                        victim = alive[int(kill_rng.integers(
                            0, len(alive)))]
                        self._kill_worker(victim, kind="chaos",
                                          reason="scheduled chaos kill")
                    next_kill += 1
                # worker liveness
                for rec in list(self._workers):
                    proc = rec["proc"]
                    self._observe(rec, now)
                    if not proc.is_alive():
                        if proc.exitcode == 0:
                            self._workers.remove(rec)   # drained
                            continue
                        self.queue.journal(
                            "worker-death", worker=rec["name"],
                            exitcode=proc.exitcode)
                        self._sweep_orphans(rec["name"])
                        if not self.queue.all_terminal():
                            restarts_left = self._replace(
                                rec, restarts_left)
                        else:
                            self._workers.remove(rec)
                        continue
                    ages = heartbeat_ages([rec["last_change"]], now)
                    if expired_indices(ages, pol.worker_stall_timeout):
                        self._kill_worker(
                            rec, kind="stall",
                            reason=f"no heartbeat for {ages[0]:.1f} s "
                                   f"({format_ages(ages)})")
                        restarts_left = self._replace(rec,
                                                      restarts_left)
                        continue
                if self._stop:
                    break
                if (pol.max_wall_time is not None
                        and elapsed > pol.max_wall_time):
                    self.queue.journal("campaign-timeout",
                                       elapsed=round(elapsed, 2))
                    break
                if pol.drain_when_idle and self.queue.all_terminal():
                    break
                if pol.drain_when_idle and not self._workers:
                    # every worker gone and none replaceable: jobs left
                    # unclaimed would wait forever — stop with a ledger
                    break
        finally:
            self._drain_workers()
        wall = time.monotonic() - t0
        ledger = build_ledger(self.queue, wall_time=wall,
                              label=self.label, kills=self.kills,
                              n_workers=pol.n_workers)
        self.queue.journal("campaign-end", label=self.label,
                           wall=round(wall, 2), ok=ledger["ok"])
        return ledger

    def serve(self) -> int:
        """Long-running mode: keep workers draining the queue (new jobs
        may be enqueued by other processes at any time) until SIGTERM /
        SIGINT, then drain gracefully.  Returns a process exit code."""
        self.policy.drain_when_idle = False
        ledger = self.run()
        pending = sum(v for k, v in ledger["jobs"].items()
                      if k not in ("done", "dead"))
        print(f"[{self.label}] drained: {ledger['jobs']} "
              f"({pending} job(s) left for the next serve)",
              file=self.stream)
        return 0

    def _drain_workers(self) -> None:
        """SIGTERM every worker (finish-or-checkpoint), then escalate."""
        for rec in self._workers:
            proc = rec["proc"]
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + 15.0
        for rec in self._workers:
            proc = rec["proc"]
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                terminate_process(proc, grace=1.0)
                self._sweep_orphans(rec["name"])
        self._workers = []


# ----------------------------------------------------------------------
# ledger and bench records
# ----------------------------------------------------------------------

def build_ledger(queue: WorkQueue, *, wall_time: float, label: str,
                 kills: list | None = None, n_workers: int | None = None
                 ) -> dict:
    """Fold the journal + job states into the campaign ledger."""
    journal = queue.read_journal()
    by_event: dict[str, int] = {}
    for rec in journal:
        by_event[rec.get("event", "?")] = \
            by_event.get(rec.get("event", "?"), 0) + 1
    counts = queue.counts()
    dead = []
    for job_id in queue.job_ids():
        if queue.state(job_id).get("status") == "dead":
            rec = queue.dead_letter(job_id) or {"id": job_id}
            dead.append({"id": job_id, "error": rec.get("error"),
                         "attempts": rec.get("attempts"),
                         "has_report": rec.get("report") is not None})
    n_jobs = len(queue.job_ids())
    done = counts.get("done", 0)
    return {"label": label, "wall_time": round(wall_time, 3),
            "n_workers": n_workers,
            "jobs": counts, "n_jobs": n_jobs,
            "attempts": by_event.get("claim", 0),
            "requeues": by_event.get("requeue", 0),
            "reclaims": by_event.get("reclaim", 0),
            "preempts": by_event.get("preempt", 0),
            "fenced": by_event.get("fenced", 0),
            "worker_kills": list(kills or []),
            "dead_letter": dead,
            "events": by_event,
            "throughput_jobs_per_s": (round(done / wall_time, 4)
                                      if wall_time > 0 else None),
            "ok": done + len(dead) == n_jobs and not any(
                counts.get(k) for k in ("pending", "running",
                                        "unknown"))}


def bench_from_journal(queue: WorkQueue, *, wall_time: float,
                       n_workers: int) -> dict:
    """Throughput record for one farm run: requests/sec and per-job
    claim→complete latency stats out of the journal."""
    claims: dict[str, float] = {}
    latencies: list[float] = []
    for rec in queue.read_journal():
        if rec.get("event") == "claim":
            claims[rec.get("job")] = float(rec["t"])
        elif rec.get("event") == "complete":
            t_claim = claims.get(rec.get("job"))
            if t_claim is not None:
                latencies.append(float(rec["t"]) - t_claim)
    done = queue.counts().get("done", 0)
    lat = sorted(latencies)
    stats = None
    if lat:
        stats = {"mean": round(sum(lat) / len(lat), 4),
                 "p50": round(lat[len(lat) // 2], 4),
                 "max": round(lat[-1], 4)}
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count()
    return {"n_workers": int(n_workers),
            "cpu_count": cpus,
            "wall_time_s": round(wall_time, 3),
            "jobs_done": int(done),
            "requests_per_s": (round(done / wall_time, 4)
                               if wall_time > 0 else None),
            "per_job_latency_s": stats}


def write_bench_json(path, record: dict) -> None:
    """Atomically write a ``BENCH_*.json`` perf-trajectory artifact."""
    record = dict(record)
    record.setdefault("bench", "farm")
    record.setdefault("created", time.time())
    tmp = f"{os.fspath(path)}.tmp-{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(record, f, indent=1)
    os.replace(tmp, os.fspath(path))


# ----------------------------------------------------------------------
# campaign convenience
# ----------------------------------------------------------------------

def run_campaign(queue_dir, jobs: list[Job], *,
                 policy: FarmPolicy | None = None, label: str =
                 "campaign", stream=None, kill_plan=None) -> dict:
    """Enqueue ``jobs`` (idempotently) and run the farm to completion;
    returns the campaign ledger."""
    policy = policy or FarmPolicy()
    queue = WorkQueue(queue_dir, lease_ttl=policy.lease_ttl,
                      backoff=policy.backoff)
    for job in jobs:
        queue.enqueue(job)
    farm = Farm(queue, policy, label=label, stream=stream,
                kill_plan=kill_plan)
    return farm.run()
